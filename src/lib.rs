//! # dalia — accelerated spatio-temporal Bayesian modeling for multivariate GPs
//!
//! Umbrella crate of the DALIA-RS workspace: it re-exports the public API of
//! every sub-crate so that downstream users (and the examples in `examples/`)
//! can depend on a single crate.
//!
//! The workspace reproduces the system described in *"Accelerated
//! Spatio-Temporal Bayesian Modeling for Multivariate Gaussian Processes"*
//! (SC 2025): integrated nested Laplace approximations (INLA) for multivariate
//! spatio-temporal Gaussian processes built on a block-tridiagonal-arrowhead
//! (BTA) structured solver with a three-layer nested parallelization scheme.
//!
//! ```
//! use dalia::prelude::*;
//!
//! // Build a tiny univariate spatio-temporal model and evaluate the INLA
//! // objective twice through a stateful session (the second evaluation
//! // reuses the solver workspaces built by the first).
//! let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
//! let obs = vec![Observation {
//!     var: 0,
//!     t: 0,
//!     loc: Point::new(0.4, 0.6),
//!     covariates: vec![1.0],
//!     value: 0.3,
//! }];
//! let model = std::sync::Arc::new(CoregionalModel::new(&mesh, 2, 1.0, 1, 1, obs).unwrap());
//! let theta0 = ModelHyper::default_for(1, 0.5, 2.0).to_theta();
//! let session = InlaEngine::builder(&model)
//!     .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
//!     .settings(InlaSettings::dalia(1))
//!     .build()
//!     .unwrap();
//! assert!(session.objective(&theta0).unwrap().is_finite());
//! assert!(session.objective(&theta0).unwrap().is_finite());
//! ```

/// The user guide (`docs/guide.md`), included so that every Rust snippet in
/// it is compiled and executed as a doctest by `cargo test` — the guide
/// cannot drift from the API without CI noticing.
#[cfg(doctest)]
#[doc = include_str!("../docs/guide.md")]
pub struct GuideDoctests;

pub use dalia_core as core;
pub use dalia_data as data;
pub use dalia_pool as pool;
pub use dalia_hpc as hpc;
pub use dalia_la as la;
pub use dalia_mesh as mesh;
pub use dalia_model as model;
pub use dalia_serve as serve;
pub use dalia_sparse as sparse;
pub use dalia_spde as spde;
pub use serinv;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use dalia_core::{
        conditional_mode, normal_quantile, predict, response_correlations, InlaEngine,
        InlaResult, InlaSession, InlaSessionBuilder, InlaSettings, InnerModeResult,
        InnerSettings, LatentSolver, PhaseTimers, PosteriorSnapshot, SolverBackend,
        StreamingWindow, VarianceMode,
    };
    #[allow(deprecated)]
    pub use dalia_core::evaluate_fobj;
    pub use dalia_data::{
        generate_count_dataset, generate_exceedance_dataset, generate_pollution_dataset,
        generate_univariate_dataset, observation_grid, DatasetConfig, StreamingSource,
    };
    pub use dalia_hpc::{dalia_iteration_time, gh200, rinla_iteration_time, ModelDims as PerfModelDims};
    pub use dalia_la::Matrix;
    pub use dalia_mesh::{Domain, Point, TriangleMesh};
    pub use dalia_model::{
        CoregionalModel, Likelihood, ModelHyper, Observation, PredictionTarget, ThetaPrior,
    };
    pub use dalia_serve::{InlaService, ServeConfig, Served};
    pub use dalia_sparse::{CooMatrix, CsrMatrix, Permutation, SparseCholesky};
    pub use dalia_spde::{SpatialSpde, SpatioTemporalSpde, StHyper};
    pub use serinv::{
        d_pobtaf, d_pobtaf_scheduled, d_pobtas, d_pobtas_scheduled, d_pobtasi,
        d_pobtasi_scheduled, pobtaf, pobtaf_parallel, pobtas, pobtasi, BtaMatrix,
        InteriorSchedule, Partitioning,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let m = Matrix::identity(2);
        assert_eq!(m.trace(), 2.0);
        let d = Domain::unit_square();
        assert!(d.contains(&Point::new(0.5, 0.5)));
    }
}
