//! Minimal, API-compatible shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: `lock()` /
//! `read()` / `write()` return guards directly instead of a poison `Result`.
//! A poisoned lock (a thread panicked while holding it) aborts the caller via
//! panic, matching the practical behavior the workspace expects.

/// Mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
