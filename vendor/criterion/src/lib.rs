//! Minimal, API-compatible shim for the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`, [`BenchmarkId`]
//! and [`Bencher::iter`] — backed by a simple wall-clock timer that prints a
//! one-line text report per benchmark instead of criterion's statistical
//! analysis and HTML output.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20 }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, id, 20, &mut f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), id, self.sample_size, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.render();
        run_one(Some(&self.name), &label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (report is emitted per benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { function: function.into(), parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    nanos: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, running a few warmup iterations first.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        self.nanos.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.nanos.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher { samples, nanos: Vec::new() };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if bencher.nanos.is_empty() {
        println!("bench {label}: no samples recorded");
        return;
    }
    let mean = bencher.nanos.iter().sum::<f64>() / bencher.nanos.len() as f64;
    let min = bencher.nanos.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "bench {label}: mean {:.1} us, min {:.1} us ({} samples)",
        mean / 1e3,
        min / 1e3,
        bencher.nanos.len()
    );
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| ());
            ran += 1;
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        group.finish();
    }
}
