//! Minimal, API-compatible shim for the `rand` crate (0.9 naming).
//!
//! The DALIA-RS build environment has no registry access, so this vendored
//! crate provides exactly the surface the workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`), the [`SeedableRng`] constructor
//! `seed_from_u64`, and [`Rng::random_range`] for `f64` and `usize` ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality,
//! deterministic across platforms, and more than adequate for synthetic data
//! generation and tests. It makes no cryptographic claims.

use std::ops::Range;

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface implemented by all generators in this shim.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open).
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// rand 0.8 spelling of [`Rng::random_range`], kept for compatibility.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        self.random_range(range)
    }

    /// Sample a uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        u64_to_unit_f64(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Raw 64-bit generator interface (object-safe).
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Copy + PartialOrd {
    /// Map raw 64 random bits into `range`.
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        let v = range.start + (range.end - range.start) * u64_to_unit_f64(bits);
        // Rounding in the affine map can land exactly on `end`; keep the
        // contract half-open.
        if v < range.end {
            v
        } else {
            range.end.next_down().max(range.start)
        }
    }
}

impl SampleRange for usize {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + (bits % span) as usize
    }
}

fn u64_to_unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro
            // authors (and used by rand's seed_from_u64).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<f64> = (0..16).map(|_| a.random_range(-1.0..1.0)).collect();
        let ys: Vec<f64> = (0..16).map(|_| b.random_range(-1.0..1.0)).collect();
        let zs: Vec<f64> = (0..16).map(|_| c.random_range(-1.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().zip(&zs).any(|(x, z)| x != z));
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(2.5..3.5);
            assert!((2.5..3.5).contains(&v));
            let u = rng.random_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
