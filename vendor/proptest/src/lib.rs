//! Minimal, API-compatible shim for the `proptest` crate.
//!
//! The DALIA-RS build environment has no registry access, so this vendored
//! crate implements the property-testing surface the workspace's test suites
//! use: the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, `prop_assert!` / `prop_assert_eq!`, composable
//! [`Strategy`](strategy::Strategy) values (`Range<f64>`, tuples,
//! [`Just`](strategy::Just), `prop_map`, `prop_perturb`) and
//! [`collection::vec`].
//!
//! Differences from real proptest:
//! * **No shrinking.** A failing case panics with its case index and the
//!   deterministic per-test seed, which is enough to reproduce it.
//! * Case generation is deterministic per (test name, case index), so runs
//!   are reproducible without a persistence file.

/// Composable value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A strategy produces values of an associated type from a seeded RNG.
    pub trait Strategy {
        /// Type of values produced.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Transform generated values with `f`, which additionally receives
        /// a private RNG it may consume freely.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            let value = self.inner.new_value(rng);
            let child = rng.fork();
            (self.f)(value, child)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.uniform_f64(self.start, self.end)
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn new_value(&self, rng: &mut TestRng) -> usize {
            rng.uniform_usize(self.start, self.end)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng), self.2.new_value(rng))
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` independent draws from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies. Delegates to the workspace's
    /// vendored `rand` shim (as real proptest delegates to real rand), so the
    /// generator and its range semantics live in exactly one place.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Deterministic RNG for a given seed.
        pub fn deterministic(seed: u64) -> Self {
            Self { inner: StdRng::seed_from_u64(seed) }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
            self.inner.random_range(lo..hi)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
            self.inner.random_range(lo..hi)
        }

        /// Split off an independent child RNG.
        pub fn fork(&mut self) -> Self {
            Self::deterministic(self.next_u64())
        }
    }
}

/// Everything a proptest suite normally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Stable per-test seed derived from the test path (FNV-1a of the name).
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `if cond {} else { panic }` rather than `if !cond` so the expansion
        // stays clean of clippy::neg_cmp_op_on_partial_ord in consumer crates.
        if $cond {
        } else {
            panic!($($fmt)*);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format_args!($($fmt)*)
        );
    }};
}

/// Define property tests. Supports an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// any number of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases as u64 {
                    let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                    let mut rng = $crate::test_runner::TestRng::deterministic(seed);
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                    let run = || -> () { $body };
                    if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case} of {} failed (seed {seed:#x})",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..1.0, -2.0f64..2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 0.25f64..0.75, v in crate::collection::vec(-1.0f64..1.0, 5)) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|e| (-1.0..1.0).contains(e)));
        }

        #[test]
        fn map_and_tuples(p in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((-2.0..3.0).contains(&p));
        }

        #[test]
        fn perturb_provides_rng(x in Just(()).prop_perturb(|_, mut rng| rng.next_u64() % 10)) {
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0.0f64..1.0) {
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    fn cases_vary_across_indices() {
        use crate::strategy::Strategy;
        let strat = 0.0f64..1.0;
        let a = strat.new_value(&mut crate::test_runner::TestRng::deterministic(crate::seed_for("t", 0)));
        let b = strat.new_value(&mut crate::test_runner::TestRng::deterministic(crate::seed_for("t", 1)));
        assert_ne!(a, b);
    }
}
