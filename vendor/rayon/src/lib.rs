//! Minimal, API-compatible shim for the `rayon` crate.
//!
//! The DALIA-RS build environment has no registry access, so this vendored
//! crate provides the parallel-iterator surface the workspace uses:
//! `par_iter()` on slices/`Vec`s, `into_par_iter()` on ranges and collections,
//! and an **eager, order-preserving** `map(..).collect()` executed on scoped
//! OS threads. There is no work stealing — items are split into contiguous
//! chunks, one per available core — which is a good fit for the workspace's
//! uniform-cost fan-outs (gradient evaluations, per-partition factorizations).
//!
//! Semantic differences from real rayon worth knowing about:
//! * `map` is eager (it runs when called, not at `collect`); the workspace
//!   always follows `map` immediately with `collect`, so this is unobservable.
//! * A panic in a worker propagates to the caller at the `map` call site.

use std::num::NonZeroUsize;

/// Parallel iterator over an owned list of items.
///
/// Produced by [`IntoParallelIterator::into_par_iter`] and
/// [`IntoParallelRefIterator::par_iter`]; consumed by [`ParIter::map`] /
/// [`ParIter::collect`].
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParIter { items: parallel_map(self.items, &f) }
    }

    /// Collect the (already computed) items into any `FromIterator` target.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Filter items (sequential; cheap predicate assumed).
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> ParIter<T> {
        ParIter { items: self.items.into_iter().filter(|t| f(t)).collect() }
    }

    /// Element-wise sum.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Eager for-each over all items in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = parallel_map(self.items, &|t| f(t));
    }
}

fn parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: &F) -> Vec<O> {
    let n = items.len();
    let threads = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut items = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    while !items.is_empty() {
        let take = items.len().min(chunk_size);
        let rest = items.split_off(take);
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out: Vec<Vec<O>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// `par_iter()` on borrowed collections (slices, `Vec`s, arrays, ...).
pub trait IntoParallelRefIterator<'data> {
    /// Item type produced (a reference).
    type Item: Send + 'data;
    /// Borrowing parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send + 'data,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// The rayon prelude: import the parallel-iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_range() {
        let squares: Vec<usize> = (0..17usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 17);
        assert_eq!(squares[16], 256);
    }

    #[test]
    fn collect_into_result_yields_first_error() {
        let r: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|x| if x == 7 { Err("seven".to_string()) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err("seven".to_string()));
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let distinct = ids.lock().unwrap().len();
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores > 1 {
            assert!(distinct > 1, "expected work on >1 thread, saw {distinct}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _: Vec<usize> =
            (0..8usize).into_par_iter().map(|x| if x == 3 { panic!("boom") } else { x }).collect();
    }
}
