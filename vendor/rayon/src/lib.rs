//! Minimal, API-compatible shim for the `rayon` crate, executing on the
//! workspace's work-stealing pool.
//!
//! The DALIA-RS build environment has no registry access, so this vendored
//! crate provides the parallel-iterator surface the workspace uses:
//! `par_iter()` on slices/`Vec`s, `into_par_iter()` on ranges and collections,
//! and an **eager, order-preserving** `map(..).collect()`. Since PR 4 the
//! execution engine is no longer an eager fixed-chunk map on scoped OS
//! threads but the work-stealing pool in `dalia-pool`: the item list is split
//! **adaptively** (recursive halving down to a grain of
//! `n / (threads × 8)` items) via `dalia_pool::join`, so idle workers steal
//! the larger, older half-ranges and non-uniform per-item costs — the S1
//! per-lane θ evaluations, the S3 per-partition eliminations — load-balance
//! instead of serializing on the unluckiest chunk.
//!
//! Each task writes a disjoint, index-addressed slice of the output, so
//! results (values *and* order) are identical to the sequential iterator no
//! matter how the work was stolen — pinned by the proptest parity suite in
//! `tests/proptest_parity.rs`.
//!
//! Semantic differences from real rayon worth knowing about:
//! * `map` is eager (it runs when called, not at `collect`); the workspace
//!   always follows `map` immediately with `collect`, so this is unobservable.
//! * A panic in a worker propagates to the caller at the `map` call site.
//! * Calling `par_iter` from inside a pool worker (nested parallelism) splits
//!   inline on the current pool — it never spawns new OS threads, so nesting
//!   cannot oversubscribe the machine.

/// Parallel iterator over an owned list of items.
///
/// Produced by [`IntoParallelIterator::into_par_iter`] and
/// [`IntoParallelRefIterator::par_iter`]; consumed by [`ParIter::map`] /
/// [`ParIter::collect`].
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParIter { items: parallel_map(self.items, &f) }
    }

    /// Collect the (already computed) items into any `FromIterator` target.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Filter items (sequential; cheap predicate assumed).
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> ParIter<T> {
        ParIter { items: self.items.into_iter().filter(|t| f(t)).collect() }
    }

    /// Element-wise sum.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Eager for-each over all items in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _ = parallel_map(self.items, &|t| f(t));
    }
}

/// Order-preserving parallel map on the work-stealing pool: recursive halving
/// into grain-sized leaf tasks, each filling its own disjoint output range.
fn parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: &F) -> Vec<O> {
    let n = items.len();
    let threads = dalia_pool::current_num_threads();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Grain: aim for ~8 leaf tasks per worker so stealing has enough slack to
    // balance non-uniform item costs without drowning in task overhead.
    let grain = (n / (threads * 8)).max(1);
    let mut input: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut output: Vec<Option<O>> = (0..n).map(|_| None).collect();
    dalia_pool::install(|| split_map(&mut input, &mut output, f, grain));
    output.into_iter().map(|o| o.expect("parallel_map: missing output slot")).collect()
}

/// Recursive adaptive split: halve until at most `grain` items remain, then
/// map the leaf sequentially into its slice of the output.
fn split_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(
    input: &mut [Option<T>],
    output: &mut [Option<O>],
    f: &F,
    grain: usize,
) {
    if input.len() <= grain {
        for (slot_in, slot_out) in input.iter_mut().zip(output.iter_mut()) {
            *slot_out = Some(f(slot_in.take().expect("parallel_map: item taken twice")));
        }
        return;
    }
    let mid = input.len() / 2;
    let (in_lo, in_hi) = input.split_at_mut(mid);
    let (out_lo, out_hi) = output.split_at_mut(mid);
    dalia_pool::join(
        || split_map(in_lo, out_lo, f, grain),
        || split_map(in_hi, out_hi, f, grain),
    );
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// `par_iter()` on borrowed collections (slices, `Vec`s, arrays, ...).
pub trait IntoParallelRefIterator<'data> {
    /// Item type produced (a reference).
    type Item: Send + 'data;
    /// Borrowing parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send + 'data,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// The rayon prelude: import the parallel-iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_range() {
        let squares: Vec<usize> = (0..17usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 17);
        assert_eq!(squares[16], 256);
    }

    #[test]
    fn collect_into_result_yields_first_error() {
        let r: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|x| if x == 7 { Err("seven".to_string()) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err("seven".to_string()));
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        (0..64usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let distinct = ids.lock().unwrap().len();
        if dalia_pool::current_num_threads() > 1 {
            assert!(distinct > 1, "expected work on >1 thread, saw {distinct}");
        }
    }

    #[test]
    fn tasks_run_on_pool_workers_not_fresh_threads() {
        let on_workers: Vec<bool> =
            (0..64usize).into_par_iter().map(|_| dalia_pool::is_worker()).collect();
        if dalia_pool::current_num_threads() > 1 {
            assert!(
                on_workers.iter().all(|&b| b),
                "par_iter items must execute on pool workers"
            );
        }
    }

    #[test]
    fn nested_par_iter_does_not_oversubscribe() {
        use std::collections::HashSet;
        // Nested parallelism: every task of both levels must stay on the
        // work-stealing pool's workers (the old shim spawned fresh OS threads
        // per level). With stealing, distinct thread ids are bounded by the
        // pool size instead of growing with nesting depth.
        let ids: Vec<(bool, Vec<bool>, std::thread::ThreadId)> = dalia_pool::install(|| {
            (0..16usize)
                .into_par_iter()
                .map(|_| {
                    let inner: Vec<bool> =
                        (0..8usize).into_par_iter().map(|_| dalia_pool::is_worker()).collect();
                    (dalia_pool::is_worker(), inner, std::thread::current().id())
                })
                .collect()
        });
        let pool_size = dalia_pool::current_num_threads();
        let distinct: HashSet<_> = ids.iter().map(|(_, _, id)| *id).collect();
        assert!(
            distinct.len() <= pool_size,
            "outer tasks ran on {} distinct threads, pool has {pool_size}",
            distinct.len()
        );
        for (outer, inner, _) in &ids {
            assert!(*outer, "outer task escaped the pool");
            assert!(inner.iter().all(|&b| b), "nested task escaped the pool");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _: Vec<usize> =
            (0..8usize).into_par_iter().map(|x| if x == 3 { panic!("boom") } else { x }).collect();
    }

    #[test]
    fn pool_survives_propagated_panic() {
        let r = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..32usize)
                .into_par_iter()
                .map(|x| if x == 11 { panic!("transient") } else { x })
                .collect();
        });
        assert!(r.is_err());
        // The pool must keep scheduling correctly afterwards.
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(v, (1..=100).collect::<Vec<_>>());
    }
}
