//! Property-based parity: the pool-backed `par_iter().map().collect()` must
//! be order-identical (element for element) to the sequential iterator for
//! random lengths, value distributions and split granularities — work
//! stealing may reorder *execution*, never *results*.

use proptest::collection::vec;
use proptest::prelude::*;
use rayon::prelude::*;

/// The mapped function: cheap but value-dependent, so any misrouted index or
/// reordered write shows up immediately.
fn scramble(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ 0xdead_beef
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_map_collect_is_order_identical(
        len in 0usize..512,
        salt in 0usize..1_000_000,
    ) {
        let items: Vec<u64> = (0..len).map(|i| (i * 2654435761 + salt) as u64).collect();
        let par: Vec<u64> = items.par_iter().map(|&x| scramble(x)).collect();
        let seq: Vec<u64> = items.iter().map(|&x| scramble(x)).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn into_par_iter_on_ranges_is_order_identical(len in 0usize..300) {
        let par: Vec<usize> = (0..len).into_par_iter().map(|x| x * x + 1).collect();
        let seq: Vec<usize> = (0..len).map(|x| x * x + 1).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn parity_holds_with_nonuniform_item_costs(costs in vec(0usize..64, 64)) {
        // Items spin for wildly different durations, maximizing steal churn;
        // ordering must still be exactly sequential.
        let busy = |c: usize| -> u64 {
            let mut acc = c as u64;
            for i in 0..(c * 997) {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            std::hint::black_box(acc)
        };
        let par: Vec<u64> = costs.par_iter().map(|&c| busy(c)).collect();
        let seq: Vec<u64> = costs.iter().map(|&c| busy(c)).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn nested_parity(outer in 1usize..12, inner in 1usize..24) {
        // Nested par_iter (splitting inline on the pool) must compose into
        // the same nested sequential result.
        let par: Vec<Vec<usize>> = (0..outer)
            .into_par_iter()
            .map(|i| (0..inner).into_par_iter().map(|j| i * 1000 + j).collect())
            .collect();
        let seq: Vec<Vec<usize>> = (0..outer)
            .map(|i| (0..inner).map(|j| i * 1000 + j).collect())
            .collect();
        prop_assert_eq!(par, seq);
    }
}
