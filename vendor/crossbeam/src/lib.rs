//! Minimal, API-compatible shim for the `crossbeam` crate.
//!
//! Provides `channel::{bounded, Sender, Receiver}` with crossbeam's
//! semantics: both halves are `Clone` and `Sync`, sends block on a full
//! queue, receives block on an empty one, and both have timed variants.
//! Implemented as a `Mutex` + two `Condvar`s around a `VecDeque` — blocked
//! parties sleep on a condvar (no polling) and wake on the matching
//! notification or disconnect.

/// Multi-producer multi-consumer bounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// All senders disconnected and the channel is empty.
        Disconnected,
    }

    /// Error returned by [`Sender::send_timeout`], carrying the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the channel still full.
        Timeout(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        cap: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Sending half of a bounded channel (`Clone` + `Sync`).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel (`Clone` + `Sync`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued (or the channel disconnects).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.shared.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout` trying to enqueue the value.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if st.queue.len() < self.shared.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero()) else {
                    return Err(SendTimeoutError::Timeout(value));
                };
                let (guard, _) = self
                    .shared
                    .not_full
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives (or the channel disconnects).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(value) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout` waiting for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if let Some(value) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
    }

    /// Create a bounded channel of capacity `cap` (must be at least 1;
    /// crossbeam's zero-capacity rendezvous mode is not implemented).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "this shim does not implement zero-capacity rendezvous channels");
        let shared = Arc::new(Shared {
            cap,
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(4);
            tx.send(vec![1.0, 2.0]).unwrap();
            assert_eq!(rx.recv().unwrap(), vec![1.0, 2.0]);
        }

        #[test]
        fn receiver_is_shareable_across_threads() {
            let (tx, rx) = bounded::<usize>(16);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in 0..8 {
                        tx.send(i).unwrap();
                    }
                });
                let mut got = Vec::new();
                for _ in 0..8 {
                    got.push(rx.recv().unwrap());
                }
                got.sort_unstable();
                assert_eq!(got, (0..8).collect::<Vec<_>>());
            });
        }

        #[test]
        fn blocking_send_unblocks_when_drained() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            std::thread::scope(|s| {
                let tx2 = tx.clone();
                s.spawn(move || tx2.send(2).unwrap());
                std::thread::sleep(Duration::from_millis(20));
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Ok(2));
            });
        }

        #[test]
        fn disconnect_reports_errors() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx2, rx2) = bounded::<u8>(1);
            drop(tx2);
            assert_eq!(rx2.recv(), Err(RecvError));
        }

        #[test]
        fn clone_keeps_channel_alive_until_last_drop() {
            let (tx, rx) = bounded::<u8>(2);
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(5).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_timeout_times_out_when_full_and_sends_when_drained() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            match tx.send_timeout(2, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(2)) => {}
                other => panic!("expected Timeout(2), got {other:?}"),
            }
            assert_eq!(rx.recv(), Ok(1));
            tx.send_timeout(3, Duration::from_millis(10)).unwrap();
            assert_eq!(rx.recv(), Ok(3));
            drop(rx);
            match tx.send_timeout(4, Duration::from_millis(10)) {
                Err(SendTimeoutError::Disconnected(4)) => {}
                other => panic!("expected Disconnected(4), got {other:?}"),
            }
        }

        #[test]
        fn recv_timeout_times_out_and_receives() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
