//! Minimal, API-compatible shim for the `crossbeam` crate.
//!
//! Provides `channel::{bounded, Sender, Receiver}` with crossbeam's
//! semantics: both halves are `Clone` and `Sync`, sends block on a full
//! queue, receives block on an empty one, and both have timed variants.
//! Implemented as a `Mutex` + two `Condvar`s around a `VecDeque` — blocked
//! parties sleep on a condvar (no polling) and wake on the matching
//! notification or disconnect.
//!
//! `bounded(0)` creates a **rendezvous channel**: a send completes only once
//! a receiver has committed to the handoff (it blocks until a receiver is
//! waiting in `recv`/`recv_timeout`). One shim-level approximation: the send
//! returns at handoff *commit* — if the committed receiver then times out
//! before collecting, the message stays in flight and is delivered to the
//! next receiver instead of being returned to the sender.
//!
//! This shim is the injector path of the `dalia-pool` work-stealing pool,
//! so its timed edge cases — zero timeouts, capacity-0 rendezvous,
//! disconnect while blocked — are pinned by tests below.
//!
//! # Notify hooks (shim extension)
//!
//! [`channel::Sender::set_notify_hook`] registers a callback invoked after
//! every successful enqueue, outside the channel lock. Real crossbeam has no
//! such hook; it exists so the event-parked `dalia-pool` can issue a
//! *targeted wake* (unpark exactly one sleeping worker) the moment a job
//! lands in the injector, instead of workers polling the channel with a
//! timed `recv`. The hook is set once, before the channel is shared, and is
//! shared by all cloned senders.

/// Multi-producer multi-consumer bounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::{Duration, Instant};

    /// Callback invoked (outside the lock) after every successful enqueue.
    pub type NotifyHook = Arc<dyn Fn() + Send + Sync>;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message available.
        Timeout,
        /// All senders disconnected and the channel is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is queued right now.
        Empty,
        /// All senders disconnected and the channel is empty.
        Disconnected,
    }

    /// Error returned by [`Sender::send_timeout`], carrying the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the channel still full.
        Timeout(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers currently committed to a rendezvous handoff (capacity-0
        /// channels only): a sender may enqueue one in-flight message per
        /// committed receiver.
        recv_waiting: usize,
    }

    struct Shared<T> {
        cap: usize,
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        /// Post-enqueue notify hook (shim extension, see the crate docs);
        /// write-once, invoked outside the state lock.
        notify: OnceLock<NotifyHook>,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Whether a sender may enqueue right now: below capacity, or — on a
        /// rendezvous channel — matched by a committed receiver.
        fn may_push(&self, st: &State<T>) -> bool {
            if self.cap == 0 {
                st.queue.len() < st.recv_waiting
            } else {
                st.queue.len() < self.cap
            }
        }
    }

    /// Sending half of a bounded channel (`Clone` + `Sync`).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel (`Clone` + `Sync`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Register the post-enqueue notify hook (shim extension). Returns
        /// `Err` with the hook if one was already registered; the hook is
        /// shared by every clone of this sender.
        pub fn set_notify_hook(&self, hook: NotifyHook) -> Result<(), NotifyHook> {
            self.shared.notify.set(hook)
        }

        /// Invoke the notify hook, if registered. Called after every
        /// successful enqueue, outside the state lock.
        fn notify_enqueue(&self) {
            if let Some(hook) = self.shared.notify.get() {
                hook();
            }
        }

        /// Block until the value is enqueued (or the channel disconnects).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if self.shared.may_push(&st) {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    self.notify_enqueue();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout` trying to enqueue the value. A zero
        /// timeout degenerates to a try-send: it enqueues if there is room
        /// (or a committed rendezvous receiver) right now, else returns
        /// [`SendTimeoutError::Timeout`] without blocking.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if self.shared.may_push(&st) {
                    st.queue.push_back(value);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    self.notify_enqueue();
                    return Ok(());
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero()) else {
                    return Err(SendTimeoutError::Timeout(value));
                };
                let (guard, _) = self
                    .shared
                    .not_full
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
    }

    impl<T> Receiver<T> {
        /// Whether the queue is empty right now. A racy snapshot — only
        /// suitable for heuristics and accounting, never for synchronization.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }

        /// Non-blocking receive: a value that is already queued, else an
        /// immediate [`TryRecvError`]. On a rendezvous channel this cannot
        /// pair with a sender that has not already committed a handoff.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(value) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Block until a value arrives (or the channel disconnects).
        pub fn recv(&self) -> Result<T, RecvError> {
            let rendezvous = self.shared.cap == 0;
            let mut registered = false;
            let mut st = self.shared.lock();
            loop {
                if let Some(value) = st.queue.pop_front() {
                    if registered {
                        st.recv_waiting -= 1;
                    }
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if st.senders == 0 {
                    if registered {
                        st.recv_waiting -= 1;
                    }
                    return Err(RecvError);
                }
                if rendezvous && !registered {
                    // Commit to the handoff so a blocked sender may enqueue.
                    st.recv_waiting += 1;
                    registered = true;
                    self.shared.not_full.notify_all();
                }
                st = self.shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout` waiting for a value. A zero timeout
        /// degenerates to a try-receive: it returns a value that is already
        /// queued, else [`RecvTimeoutError::Timeout`] without blocking (on a
        /// rendezvous channel it cannot pair with a sender that has not
        /// already committed).
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let rendezvous = self.shared.cap == 0;
            let mut registered = false;
            let mut st = self.shared.lock();
            loop {
                if let Some(value) = st.queue.pop_front() {
                    if registered {
                        st.recv_waiting -= 1;
                    }
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if st.senders == 0 {
                    if registered {
                        st.recv_waiting -= 1;
                    }
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero()) else {
                    if registered {
                        st.recv_waiting -= 1;
                    }
                    return Err(RecvTimeoutError::Timeout);
                };
                if rendezvous && !registered {
                    st.recv_waiting += 1;
                    registered = true;
                    self.shared.not_full.notify_all();
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
    }

    /// Create a bounded channel of capacity `cap`. `bounded(0)` creates a
    /// rendezvous channel: sends block until a receiver commits to the
    /// handoff (see the module docs for the one shim-level approximation).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            cap,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                recv_waiting: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            notify: OnceLock::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(4);
            tx.send(vec![1.0, 2.0]).unwrap();
            assert_eq!(rx.recv().unwrap(), vec![1.0, 2.0]);
        }

        #[test]
        fn receiver_is_shareable_across_threads() {
            let (tx, rx) = bounded::<usize>(16);
            std::thread::scope(|s| {
                s.spawn(|| {
                    for i in 0..8 {
                        tx.send(i).unwrap();
                    }
                });
                let mut got = Vec::new();
                for _ in 0..8 {
                    got.push(rx.recv().unwrap());
                }
                got.sort_unstable();
                assert_eq!(got, (0..8).collect::<Vec<_>>());
            });
        }

        #[test]
        fn blocking_send_unblocks_when_drained() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            std::thread::scope(|s| {
                let tx2 = tx.clone();
                s.spawn(move || tx2.send(2).unwrap());
                std::thread::sleep(Duration::from_millis(20));
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Ok(2));
            });
        }

        #[test]
        fn disconnect_reports_errors() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
            let (tx2, rx2) = bounded::<u8>(1);
            drop(tx2);
            assert_eq!(rx2.recv(), Err(RecvError));
        }

        #[test]
        fn clone_keeps_channel_alive_until_last_drop() {
            let (tx, rx) = bounded::<u8>(2);
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(5).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_timeout_times_out_when_full_and_sends_when_drained() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            match tx.send_timeout(2, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(2)) => {}
                other => panic!("expected Timeout(2), got {other:?}"),
            }
            assert_eq!(rx.recv(), Ok(1));
            tx.send_timeout(3, Duration::from_millis(10)).unwrap();
            assert_eq!(rx.recv(), Ok(3));
            drop(rx);
            match tx.send_timeout(4, Duration::from_millis(10)) {
                Err(SendTimeoutError::Disconnected(4)) => {}
                other => panic!("expected Disconnected(4), got {other:?}"),
            }
        }

        #[test]
        fn recv_timeout_times_out_and_receives() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn zero_timeout_is_a_try_operation() {
            let (tx, rx) = bounded::<u8>(1);
            // Empty channel: zero-timeout recv must not block.
            assert_eq!(rx.recv_timeout(Duration::ZERO), Err(RecvTimeoutError::Timeout));
            // Room available: zero-timeout send succeeds immediately.
            tx.send_timeout(1, Duration::ZERO).unwrap();
            // Full channel: zero-timeout send must not block.
            match tx.send_timeout(2, Duration::ZERO) {
                Err(SendTimeoutError::Timeout(2)) => {}
                other => panic!("expected Timeout(2), got {other:?}"),
            }
            // Queued value: zero-timeout recv succeeds immediately.
            assert_eq!(rx.recv_timeout(Duration::ZERO), Ok(1));
        }

        #[test]
        fn rendezvous_send_blocks_until_receiver_commits() {
            let (tx, rx) = bounded::<u8>(0);
            // No receiver committed yet: a timed send must time out.
            match tx.send_timeout(1, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(1)) => {}
                other => panic!("expected Timeout(1), got {other:?}"),
            }
            let t0 = Instant::now();
            std::thread::scope(|s| {
                let tx2 = tx.clone();
                s.spawn(move || {
                    // Blocks until the main thread commits via recv.
                    tx2.send(7).unwrap();
                });
                std::thread::sleep(Duration::from_millis(20));
                assert_eq!(rx.recv(), Ok(7));
            });
            assert!(
                t0.elapsed() >= Duration::from_millis(15),
                "rendezvous send completed before the receiver committed"
            );
        }

        #[test]
        fn rendezvous_pairs_each_send_with_one_receive() {
            let (tx, rx) = bounded::<usize>(0);
            std::thread::scope(|s| {
                for i in 0..4 {
                    let tx = tx.clone();
                    s.spawn(move || tx.send(i).unwrap());
                }
                let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2, 3]);
            });
            // All handoffs consumed: nothing left in flight.
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn rendezvous_zero_timeout_send_never_blocks() {
            let (tx, rx) = bounded::<u8>(0);
            match tx.send_timeout(3, Duration::ZERO) {
                Err(SendTimeoutError::Timeout(3)) => {}
                other => panic!("expected Timeout(3), got {other:?}"),
            }
            drop(rx);
            match tx.send_timeout(4, Duration::ZERO) {
                Err(SendTimeoutError::Disconnected(4)) => {}
                other => panic!("expected Disconnected(4), got {other:?}"),
            }
        }

        #[test]
        fn receiver_dropped_mid_send_unblocks_the_sender() {
            // A sender blocked on a full channel must observe the last
            // receiver going away and fail with SendError instead of hanging.
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            std::thread::scope(|s| {
                let tx2 = tx.clone();
                let h = s.spawn(move || tx2.send(2));
                std::thread::sleep(Duration::from_millis(20));
                drop(rx); // sender is still parked in send()
                assert_eq!(h.join().unwrap(), Err(SendError(2)));
            });
        }

        #[test]
        fn receiver_dropped_mid_rendezvous_send_unblocks_the_sender() {
            let (tx, rx) = bounded::<u8>(0);
            std::thread::scope(|s| {
                let tx2 = tx.clone();
                let h = s.spawn(move || tx2.send(9));
                std::thread::sleep(Duration::from_millis(20));
                drop(rx);
                assert_eq!(h.join().unwrap(), Err(SendError(9)));
            });
        }

        #[test]
        fn try_recv_is_nonblocking_and_reports_disconnect() {
            let (tx, rx) = bounded::<u8>(2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(4).unwrap();
            drop(tx);
            // Queued values drain before the disconnect is reported.
            assert_eq!(rx.try_recv(), Ok(4));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn notify_hook_fires_once_per_successful_enqueue() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let (tx, rx) = bounded::<u8>(1);
            let fired = Arc::new(AtomicUsize::new(0));
            let hook_count = Arc::clone(&fired);
            assert!(tx
                .set_notify_hook(Arc::new(move || {
                    hook_count.fetch_add(1, Ordering::Relaxed);
                }))
                .is_ok());
            // A second registration is rejected, the original hook stays.
            assert!(tx
                .set_notify_hook(Arc::new(|| panic!("replaced hook must never fire")))
                .is_err());

            tx.send(1).unwrap();
            assert_eq!(fired.load(Ordering::Relaxed), 1);
            // A failed (timed-out) send must not fire the hook.
            assert!(tx.send_timeout(2, Duration::ZERO).is_err());
            assert_eq!(fired.load(Ordering::Relaxed), 1);
            assert_eq!(rx.recv(), Ok(1));
            // Clones share the hook.
            let tx2 = tx.clone();
            tx2.send_timeout(5, Duration::from_millis(10)).unwrap();
            assert_eq!(fired.load(Ordering::Relaxed), 2);
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn notify_hook_fires_on_rendezvous_handoff() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let (tx, rx) = bounded::<u8>(0);
            let fired = Arc::new(AtomicUsize::new(0));
            let hook_count = Arc::clone(&fired);
            assert!(tx
                .set_notify_hook(Arc::new(move || {
                    hook_count.fetch_add(1, Ordering::Relaxed);
                }))
                .is_ok());
            std::thread::scope(|s| {
                let tx2 = tx.clone();
                s.spawn(move || tx2.send(7).unwrap());
                assert_eq!(rx.recv(), Ok(7));
            });
            assert_eq!(fired.load(Ordering::Relaxed), 1);
        }

        #[test]
        fn rendezvous_recv_timeout_deregisters_cleanly() {
            let (tx, rx) = bounded::<u8>(0);
            // Receiver commits, times out, deregisters.
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            // A later send must NOT see a stale committed receiver.
            match tx.send_timeout(5, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(5)) => {}
                other => panic!("expected Timeout(5), got {other:?}"),
            }
            // A fresh pairing still works.
            std::thread::scope(|s| {
                let tx2 = tx.clone();
                s.spawn(move || tx2.send(6).unwrap());
                assert_eq!(rx.recv(), Ok(6));
            });
        }
    }
}
