//! Structured-solver example: factorize, solve and selected-invert a
//! block-tridiagonal-arrowhead system sequentially and with the time-domain
//! partitioned (distributed) routines, verify they agree, and project the
//! run to cluster scale with the GH200 performance model.
//!
//! Run with: `cargo run --release --example solver_scaling`

use dalia::hpc::{d_bta_factor_time, gh200, weak_efficiency, BtaDims};
use dalia::prelude::*;
use dalia::serinv::testing;
use std::time::Instant;

fn main() {
    // A BTA system with 24 diagonal blocks of size 40 and a 4-wide arrowhead
    // (think: 24 time steps, 40 spatial nodes, 4 fixed effects).
    let (n, b, a) = (24usize, 40usize, 4usize);
    let matrix = testing::test_matrix(n, b, a, 3);
    println!("BTA system: n={n} blocks of size {b}, arrow {a}, dimension {}", matrix.dim());

    // Sequential reference.
    let t0 = Instant::now();
    let factor = pobtaf(&matrix).expect("factorization");
    println!("sequential pobtaf: {:.3} s, logdet = {:.3}", t0.elapsed().as_secs_f64(), factor.logdet().expect("SPD factor"));

    let rhs0 = testing::test_rhs(matrix.dim(), 1);
    let mut rhs = rhs0.clone();
    pobtas(&factor, &mut rhs);
    let selinv = pobtasi(&factor);
    println!("first marginal variances: {:?}", &selinv.diagonal()[..3]);

    // Distributed (partitioned) solver over 4 time-domain partitions.
    let part = Partitioning::load_balanced(n, 4, 1.6);
    let t0 = Instant::now();
    let dist = d_pobtaf(&matrix, &part).expect("distributed factorization");
    println!("\ndistributed d_pobtaf (P=4, lb=1.6): {:.3} s, logdet = {:.3}",
             t0.elapsed().as_secs_f64(), dist.logdet().expect("SPD factor"));
    let mut drhs = rhs0.clone();
    d_pobtas(&dist, &mut drhs);
    let dselinv = d_pobtasi(&dist);
    println!("max |x_seq - x_dist| = {:.2e}", rhs.max_abs_diff(&drhs));
    let max_var_diff = selinv
        .diagonal()
        .iter()
        .zip(dselinv.diagonal())
        .fold(0.0f64, |acc, (a, b)| acc.max((a - b).abs()));
    println!("max |var_seq - var_dist| = {max_var_diff:.2e}");

    // Project to cluster scale with the performance model (Fig. 5 setting).
    println!("\nmodeled weak-scaling efficiency of the factorization on GH200 (MB2 sizes):");
    let hw = gh200();
    let base = BtaDims { n: 128, b: 1675, a: 6 };
    let t1 = d_bta_factor_time(&base, 1, 1.0, &hw);
    for p in [2usize, 4, 8, 16] {
        let d = BtaDims { n: 128 * p, b: 1675, a: 6 };
        let eff = weak_efficiency(t1, d_bta_factor_time(&d, p, 1.6, &hw));
        println!("  {p:>2} GPUs: {:.1}%", 100.0 * eff);
    }
}
