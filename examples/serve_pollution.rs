//! Serving example: fit a trivariate air-pollution model once, freeze the
//! posterior into a `PosteriorSnapshot`, and serve concurrent downscaling
//! queries, latent-marginal lookups and posterior draws through a batching
//! `InlaService` — the read-only deployment mode of a completed DALIA fit.
//!
//! Run with: `cargo run --release --example serve_pollution`

use dalia::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    // --- Fit once (identical to the multivariate_pollution example) -------
    let domain = Domain::northern_italy_like();
    let coarse = observation_grid(&domain, 8, 4);
    let (observations, _truth) = generate_pollution_dataset(&domain, &coarse, 5, 11);
    let mesh = TriangleMesh::with_approx_nodes(domain, 60);
    let model = std::sync::Arc::new(
        CoregionalModel::new(&mesh, 5, 1.0, 3, 2, observations).expect("model"),
    );

    let mut hyper0 = ModelHyper::default_for(3, 0.3 * domain.width(), 4.0);
    hyper0.lambdas = vec![0.8, -0.3, -0.2];
    let theta0 = hyper0.to_theta();
    let mut settings = InlaSettings::dalia(1);
    settings.max_iter = 2;
    let session = InlaEngine::builder(&model)
        .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings");
    let result = session.run(&theta0).expect("INLA run");

    // --- Freeze the fit into an immutable, shareable snapshot -------------
    let snapshot = result.into_snapshot(&session).expect("snapshot");
    println!(
        "snapshot: backend {}, latent dimension {}, log|Q_c| = {:.1}",
        snapshot.backend_name(),
        snapshot.latent_dim(),
        snapshot.logdet_qc()
    );

    // --- Stand the serving front-end up on top of it -----------------------
    let service = InlaService::new(
        snapshot,
        ServeConfig { max_batch: 16, batch_window: Duration::from_micros(500), workers: 0 },
    )
    .expect("valid serve config");

    // Eight "dashboard" clients concurrently downscale one pollutant each at
    // staggered days, look marginals up and pull posterior draws. Requests
    // arriving within the 500 µs window coalesce into shared batches.
    let fine = observation_grid(&domain, 16, 8);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client in 0..8usize {
            let service = &service;
            let fine = &fine;
            let domain = &domain;
            s.spawn(move || {
                let pollutant = client % 3;
                let day = client % 5;
                let targets: Vec<PredictionTarget> = fine
                    .iter()
                    .map(|p| PredictionTarget {
                        var: pollutant,
                        t: day,
                        loc: *p,
                        covariates: vec![1.0, dalia::data::elevation_km(domain, p)],
                    })
                    .collect();
                // Exact-variance downscaling: one blocked multi-RHS solve
                // against the frozen factor of Q_c.
                let served =
                    service.predict(&targets, VarianceMode::Exact).expect("predict");
                let avg = served.value.mean.iter().sum::<f64>() / served.value.mean.len() as f64;
                let (lo, hi) = served.value.credible_interval_at(0, 0.95);
                println!(
                    "client {client}: pollutant {pollutant} day {day}: mean level {avg:+.2}, \
                     first cell 95% CI [{lo:+.2}, {hi:+.2}] \
                     (queued {:.0} µs, solved {:.0} µs, rode in a batch of {})",
                    served.timing.queue_seconds * 1e6,
                    served.timing.solve_seconds * 1e6,
                    served.timing.batch_size
                );

                let marginals = service.latent_marginals(&[client]).expect("marginals");
                let (m, sd) = marginals.value[0];
                println!("client {client}: latent component {client}: mean {m:+.3}, sd {sd:.3}");

                let draws = service.draws(4, client as u64).expect("draws");
                println!(
                    "client {client}: pulled {} posterior draws of dimension {}",
                    draws.value.ncols(),
                    draws.value.nrows()
                );
            });
        }
    });

    let stats = service.stats();
    println!(
        "\nserved {} requests in {} batches (largest {}, mean {:.2}) in {:.1} ms",
        stats.requests,
        stats.batches,
        stats.largest_batch,
        stats.mean_batch(),
        t0.elapsed().as_secs_f64() * 1e3
    );
}
