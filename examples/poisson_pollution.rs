//! Count-data air-quality example: exceedance-style *counts* of pollution
//! events per monitoring cell modelled with a Poisson likelihood and a log
//! link — the non-Gaussian counterpart of the paper's Sec. VI application.
//! The latent spatio-temporal field is the same SPDE prior as in the
//! Gaussian examples; only the observation model changes, and the INLA inner
//! Newton loop builds the Gaussian approximation at the conditional mode.
//!
//! Run with: `cargo run --release --example poisson_pollution`

use dalia::prelude::*;

fn main() {
    let domain = Domain::northern_italy_like();

    // Synthetic event counts on a coarse monitoring grid over 6 days:
    // y ~ Poisson(E · exp(intercept + elevation_effect · elev + u(s, t)))
    // with per-cell exposures E (population-weighted reading counts).
    let grid = observation_grid(&domain, 8, 4);
    let (observations, truth) = generate_count_dataset(&domain, &grid, 6, 7);
    let total: f64 = observations.iter().map(|o| o.value).sum();
    println!(
        "cells: {}, days: 6, observations: {}, total events: {}",
        grid.len(),
        observations.len(),
        total
    );

    let mesh = TriangleMesh::with_approx_nodes(domain, 60);
    let model = std::sync::Arc::new(
        CoregionalModel::new(&mesh, 6, 1.0, 1, 2, observations)
            .expect("model")
            .with_observation_scales(truth.scales.clone())
            .expect("exposures")
            .with_likelihood(Likelihood::Poisson)
            .expect("likelihood"),
    );
    println!("mesh nodes: {}, latent dimension: {}", model.dims.ns, model.dims.latent_dim());

    let theta0 = ModelHyper::default_for(1, 0.3 * domain.width(), 4.0).to_theta();
    let mut settings = InlaSettings::dalia(2);
    settings.max_iter = 12;
    let session = InlaEngine::builder(&model)
        .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings");
    let result = session.run(&theta0).expect("INLA run");

    println!(
        "\nf_obj at mode: {:.1}, {:.2} s/iteration",
        result.fobj_at_mode, result.seconds_per_iteration
    );
    println!(
        "field sd: {:.3} (generating {:.3}), spatial range: {:.3} (generating {:.3})",
        result.hyper_mode.sigmas[0],
        truth.hyper.sigmas[0],
        result.hyper_mode.range_s[0],
        truth.hyper.range_s[0]
    );
    println!(
        "intercept: {:+.3} (generating {:+.3}), elevation effect: {:+.3} (generating {:+.3})",
        result.fixed_effects[0].mean,
        truth.intercept,
        result.fixed_effects[1].mean,
        truth.elevation_effect
    );

    // Response-scale risk map for day 3 on a finer grid: the snapshot maps
    // the latent Gaussian approximation through the log link, so `mean` is
    // an event *rate* per unit exposure and `sd` is the delta-method band.
    let snapshot = result.into_snapshot(&session).expect("snapshot");
    let fine = observation_grid(&domain, 16, 8);
    let targets: Vec<PredictionTarget> = fine
        .iter()
        .map(|p| PredictionTarget {
            var: 0,
            t: 3,
            loc: *p,
            covariates: vec![1.0, dalia::data::elevation_km(&domain, p)],
        })
        .collect();
    let rates = snapshot.predict_response(&targets).expect("prediction");
    let peak = rates
        .mean
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, r)| (fine[i], *r))
        .expect("non-empty grid");
    let avg = rates.mean.iter().sum::<f64>() / rates.mean.len() as f64;
    println!(
        "\nday-3 event-rate surface on {} cells: average {:.2}, peak {:.2} at ({:.2}, {:.2})",
        fine.len(),
        avg,
        peak.1,
        peak.0.x,
        peak.0.y
    );
}
