//! Multivariate air-pollution example: jointly model three interdependent
//! pollutants (PM2.5, PM10, O3 proxies) with the linear model of
//! coregionalization, recover the coupling structure and downscale one
//! pollutant to a finer grid — a miniature version of the paper's Sec. VI
//! application.
//!
//! Run with: `cargo run --release --example multivariate_pollution`

use dalia::prelude::*;

fn main() {
    let domain = Domain::northern_italy_like();

    // Synthetic CAMS-like coarse grid (8 x 4 cells) observed over 5 days.
    let coarse = observation_grid(&domain, 8, 4);
    let (observations, truth) = generate_pollution_dataset(&domain, &coarse, 5, 11);
    println!("coarse grid: {} cells, days: 5, observations: {}", coarse.len(), observations.len());

    // Trivariate coregional model with intercept + elevation fixed effects.
    let mesh = TriangleMesh::with_approx_nodes(domain, 60);
    let model = std::sync::Arc::new(
        CoregionalModel::new(&mesh, 5, 1.0, 3, 2, observations).expect("model"),
    );
    println!("mesh nodes: {}, latent dimension: {}", model.dims.ns, model.dims.latent_dim());

    let mut hyper0 = ModelHyper::default_for(3, 0.3 * domain.width(), 4.0);
    hyper0.lambdas = vec![0.8, -0.3, -0.2];
    let theta0 = hyper0.to_theta();
    let mut settings = InlaSettings::dalia(1);
    settings.max_iter = 2;
    let session = InlaEngine::builder(&model)
        .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings");
    let result = session.run(&theta0).expect("INLA run");

    println!("\nf_obj at mode: {:.1}, {:.1} s/iteration", result.fobj_at_mode, result.seconds_per_iteration);

    let names = ["PM2.5", "PM10 ", "O3   "];
    println!("\nelevation effects (posterior mean, true value):");
    for fx in &result.fixed_effects {
        if fx.effect == 1 {
            println!("  {}  {:+.3}   (true {:+.2})", names[fx.process], fx.mean, truth.elevation_effects[fx.process]);
        }
    }

    let corr = response_correlations(&result.hyper_mode);
    let corr_true = response_correlations(&truth.hyper);
    println!("\ninter-pollutant correlations (estimated / generating):");
    println!("  PM2.5-PM10: {:+.2} / {:+.2}", corr[(1, 0)], corr_true[(1, 0)]);
    println!("  PM2.5-O3:   {:+.2} / {:+.2}", corr[(2, 0)], corr_true[(2, 0)]);
    println!("  PM10-O3:    {:+.2} / {:+.2}", corr[(2, 1)], corr_true[(2, 1)]);

    // Downscale the O3 surface at day 2 to a 4x finer grid.
    let fine = observation_grid(&domain, 32, 16);
    let targets: Vec<PredictionTarget> = fine
        .iter()
        .map(|p| PredictionTarget {
            var: 2,
            t: 2,
            loc: *p,
            covariates: vec![1.0, dalia::data::elevation_km(&domain, p)],
        })
        .collect();
    let pred = predict(&model, &result.hyper_mode, &result.latent, &targets).expect("prediction");
    let avg = pred.mean.iter().sum::<f64>() / pred.mean.len() as f64;
    println!("\ndownscaled O3 field at day 2: {} cells (16x finer), average level {:.1}", fine.len(), avg);
}
