//! Ad-hoc timing of the BTA factorize/selinv phases (used for before/after
//! comparisons on SA1-shaped blocks).
use serinv::testing::test_matrix;
use std::time::Instant;

fn main() {
    // SA1-shaped (scaled): nt blocks of b = nv*ns lanes, arrow a = nv*nr.
    let m = test_matrix(24, 320, 3, 42);
    // Warmup + 3 timed factorizations.
    let f = serinv::pobtaf(&m).unwrap();
    let t0 = Instant::now();
    for _ in 0..3 {
        let f = serinv::pobtaf(&m).unwrap();
        std::hint::black_box(f.logdet().expect("SPD factor"));
    }
    let fact = t0.elapsed().as_secs_f64() / 3.0;
    let t0 = Instant::now();
    let sel = serinv::pobtasi(&f);
    std::hint::black_box(sel.diagonal());
    let selinv = t0.elapsed().as_secs_f64();
    println!("factorize: {fact:.3} s   selinv: {selinv:.3} s");
}
