//! Quickstart: fit a univariate spatio-temporal model with DALIA-RS.
//!
//! Simulates observations of a smooth space-time field plus a known covariate
//! effect, runs the full INLA pipeline (hyperparameter optimization, Gaussian
//! posterior of θ, latent marginals via selected inversion) and prints the
//! recovered quantities.
//!
//! Run with: `cargo run --release --example quickstart`

use dalia::prelude::*;

fn main() {
    // 1. Simulate data: 30 stations observed over 4 time steps, with a fixed
    //    effect of +1.5 on a synthetic covariate.
    let domain = Domain::unit_square();
    let beta_true = 1.5;
    let (observations, truth) = generate_univariate_dataset(&domain, 30, 4, beta_true, 7);
    println!("simulated {} observations over {} time steps", observations.len(), 4);

    // 2. Build the model: a triangulated mesh, the SPDE-based spatio-temporal
    //    prior and one fixed effect.
    let mesh = TriangleMesh::structured(domain, 6, 6);
    let model = std::sync::Arc::new(
        CoregionalModel::new(&mesh, 4, 1.0, 1, 1, observations).expect("model"),
    );
    println!(
        "latent dimension N = {} (ns = {}, nt = {}), BTA blocks: b = {}, a = {}",
        model.dims.latent_dim(),
        model.dims.ns,
        model.dims.nt,
        model.dims.block_size(),
        model.dims.arrow_size()
    );

    // 3. Run INLA with the DALIA settings (structured BTA solver). The
    //    session owns the solver workspaces and reuses them across every
    //    objective evaluation of the BFGS run.
    let theta0 = ModelHyper::default_for(1, 0.4, 3.0).to_theta();
    let mut settings = InlaSettings::dalia(1);
    settings.max_iter = 6;
    let session = InlaEngine::builder(&model)
        .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings");
    let result = session.run(&theta0).expect("INLA run");

    // 4. Report.
    println!("\nconverged: {}, {} BFGS iterations, {:.2} s/iteration",
             result.converged, result.trace.len(), result.seconds_per_iteration);
    let mode = &result.hyper_mode;
    println!("posterior-mode hyperparameters:");
    println!("  spatial range  {:.3}  (simulation truth {:.3})", mode.range_s[0], truth.hyper.range_s[0]);
    println!("  temporal range {:.3}  (simulation truth {:.3})", mode.range_t[0], truth.hyper.range_t[0]);
    println!("  noise sd       {:.3}  (simulation truth {:.3})",
             1.0 / mode.noise_prec[0].sqrt(), truth.noise_sd[0]);
    let fx = &result.fixed_effects[0];
    println!("fixed effect: {:.3} [{:.3}, {:.3}]  (true value {beta_true})", fx.mean, fx.q025, fx.q975);

    // 5. Predict at a new location and time.
    let targets = vec![PredictionTarget {
        var: 0,
        t: 2,
        loc: Point::new(0.5, 0.5),
        covariates: vec![0.0],
    }];
    let pred = predict(&model, mode, &result.latent, &targets).expect("prediction");
    println!("prediction at (0.5, 0.5), t=2: {:.3} ± {:.3}", pred.mean[0], pred.sd[0]);
}
