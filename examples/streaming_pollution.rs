//! Streaming example: fit a trivariate air-pollution model on an initial
//! temporal window, then follow a live observation feed — each arriving day
//! retires the oldest slice and appends the new one through the incremental
//! trailing-block streaming kernels (`StreamingWindow`), re-snapshots the
//! posterior without a refit, and swaps the fresh snapshot into a running
//! `InlaService` so queries always see the current window.
//!
//! Run with: `cargo run --release --example streaming_pollution`

use dalia::prelude::*;
use std::time::{Duration, Instant};

fn main() {
    // --- Open the feed and fit the initial window --------------------------
    let domain = Domain::northern_italy_like();
    let grid = observation_grid(&domain, 8, 4);
    let mesh = TriangleMesh::with_approx_nodes(domain, 60);
    let nt = 5;

    let mut feed = StreamingSource::new(&domain, &grid, 11);
    let mut initial = Vec::new();
    for _ in 0..nt {
        initial.extend(feed.next_slice());
    }
    let model = std::sync::Arc::new(
        CoregionalModel::new(&mesh, nt, 1.0, 3, 2, initial).expect("model"),
    );

    let mut hyper0 = ModelHyper::default_for(3, 0.3 * domain.width(), 4.0);
    hyper0.lambdas = vec![0.8, -0.3, -0.2];
    let theta0 = hyper0.to_theta();
    let mut settings = InlaSettings::dalia(1);
    settings.max_iter = 2;
    let session = InlaEngine::builder(&model)
        .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings");
    let t0 = Instant::now();
    let result = session.run(&theta0).expect("INLA run");
    let fit_seconds = t0.elapsed().as_secs_f64();
    println!(
        "initial fit: {} days, {} observations, {:.2} s",
        nt,
        model.n_obs(),
        fit_seconds
    );

    // --- Stand serving up on the fitted window ------------------------------
    let mut service = InlaService::new(
        session.snapshot(&result).expect("snapshot"),
        ServeConfig { max_batch: 16, batch_window: Duration::from_micros(500), workers: 0 },
    )
    .expect("valid serve config");

    // --- Follow the feed: slide the window one day at a time ----------------
    // The streaming window is pinned at the fitted hyperparameter mode θ̂;
    // each update re-eliminates only the trailing block columns of the BTA
    // factor (append) or refills the factor allocation-free (retire), then
    // re-pins the latent mean and marginals on the new window.
    let mut window = session.streaming_window(&result).expect("streaming window");
    let target = PredictionTarget {
        var: 0, // PM2.5
        t: nt - 1,
        loc: Point::new(0.5 * (domain.x0 + domain.x1), 0.5 * (domain.y0 + domain.y1)),
        covariates: vec![1.0, 0.3],
    };
    for day in 0..4 {
        let slice = feed.next_slice_for(nt - 1); // window-relative index after retiring one
        let t0 = Instant::now();
        window.retire_slices(1).expect("retire oldest day");
        window.append_slices(1, slice).expect("append new day");
        let advanced = window.snapshot().expect("re-snapshot");
        let update_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Swap the advanced posterior into the running service; in-flight
        // requests finish on the old snapshot, new ones see the new window.
        let retired = service.swap_snapshot(advanced);
        let served =
            service.predict(std::slice::from_ref(&target), VarianceMode::Exact).expect("predict");
        println!(
            "day +{}: window advanced in {:.1} ms (was log|Q_c| = {:.1}, now {:.1}); \
             PM2.5 at center, newest day: {:.2} ± {:.2}",
            day + 1,
            update_ms,
            retired.logdet_qc(),
            service.snapshot().logdet_qc(),
            served.value.mean[0],
            served.value.sd[0]
        );
    }
    println!(
        "\nstreamed {} days on a {}-day window without a refit \
         (initial fit {:.2} s; see BENCH_stream.json for amortized speedups)",
        feed.slices_emitted() - nt,
        nt,
        fit_seconds
    );
}
