//! Golden regression wall for the Gaussian path across the inner-Newton-loop
//! refactor.
//!
//! The values below were captured from the pre-refactor engine (information
//! vector + single solve) on this fixture and are pinned at 1e-9 relative
//! tolerance — loose enough to absorb last-ulp differences across FMA/AVX
//! dispatch on different hosts, tight enough that any algorithmic drift in
//! the Gaussian path fails loudly. Two sharper checks complement the pinned
//! constants on the current host:
//!
//! * the Gaussian likelihood must terminate the inner loop in **exactly one
//!   Newton step** (ψ is quadratic, the step is exact), and
//! * `session.evaluate` must be **bitwise identical** to a hand-rolled
//!   replica of the legacy computation through the public solver API.

// The golden constants are transcribed at full f64 round-trip precision.
#![allow(clippy::excessive_precision)]

use dalia::prelude::*;
use std::sync::Arc;

fn toy_model(nv: usize) -> (Arc<CoregionalModel>, ThetaPrior, Vec<f64>) {
    let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
    let nt = 3;
    let nr = 1;
    let mut obs = Vec::new();
    for v in 0..nv {
        for t in 0..nt {
            for &(x, y) in &[(0.25, 0.25), (0.75, 0.5), (0.4, 0.85)] {
                obs.push(Observation {
                    var: v,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: 0.3 * (v as f64) + 0.2 * (t as f64) + 0.1 * x,
                });
            }
        }
    }
    let model = Arc::new(CoregionalModel::new(&mesh, nt, 1.0, nv, nr, obs).unwrap());
    let hyper = ModelHyper::default_for(nv, 0.7, 2.0);
    let theta = hyper.to_theta();
    let prior = ThetaPrior::weakly_informative(&theta, 2.0);
    (model, prior, theta)
}

fn backends() -> Vec<(&'static str, InlaSettings)> {
    let mut configs = vec![
        ("bta-sequential", InlaSettings::dalia(1)),
        ("bta-distributed", InlaSettings::dalia(2)),
        ("sparse-general", InlaSettings::rinla_like()),
    ];
    for (_, s) in configs.iter_mut() {
        // The goldens were captured with sequential gradient lanes.
        s.parallel_feval = false;
    }
    configs
}

struct Golden {
    fobj: f64,
    logdet_qp: f64,
    logdet_qc: f64,
    loglik: f64,
    grad: &'static [f64],
}

fn golden(nv: usize, backend: &str) -> Golden {
    match (nv, backend) {
        (1, "bta-sequential") => Golden {
            fobj: -1.88066397936992082e1,
            logdet_qp: -1.98997628546707332e1,
            logdet_qc: 8.88239295186325606e0,
            loglik: 2.08825340709503804e0,
            grad: &[
                -2.08364089027845978e0,
                -3.13923807794935783e-1,
                -1.57639842766279514e1,
                5.00597906469835152e-1,
            ],
        },
        (1, "bta-distributed") => Golden {
            fobj: -1.88066397936992189e1,
            logdet_qp: -1.98997628546707332e1,
            logdet_qc: 8.88239295186328093e0,
            loglik: 2.08825340709503804e0,
            grad: &[
                -2.08364089028201249e0,
                -3.13923807796712140e-1,
                -1.57639842766243987e1,
                5.00597906466282438e-1,
            ],
        },
        (1, "sparse-general") => Golden {
            fobj: -1.88066397936992153e1,
            logdet_qp: -1.98997628546707332e1,
            logdet_qc: 8.88239295186327027e0,
            loglik: 2.08825340709503804e0,
            grad: &[
                -2.08364089028201249e0,
                -3.13923807796712140e-1,
                -1.57639842766243987e1,
                5.00597906462729725e-1,
            ],
        },
        (2, "bta-sequential") => Golden {
            fobj: -3.92254850114626663e1,
            logdet_qp: -3.97995257093414594e1,
            logdet_qc: 1.77647859037265086e1,
            loglik: 4.17650672069754947e0,
            grad: &[
                -2.08364089028023614e0,
                -3.13923807794935783e-1,
                -2.08364079501066612e0,
                -3.13923837598650834e-1,
                -1.57639842766243987e1,
                -1.57635058081311286e1,
                2.22039000707496825e-1,
                5.00597906469835152e-1,
                5.00597812976621981e-1,
            ],
        },
        (2, "bta-distributed") => Golden {
            fobj: -3.92254850114626947e1,
            logdet_qp: -3.97995257093414665e1,
            logdet_qc: 1.77647859037265619e1,
            loglik: 4.17650672069755036e0,
            grad: &[
                -2.08364089028378885e0,
                -3.13923807798488497e-1,
                -2.08364079501421884e0,
                -3.13923837587992693e-1,
                -1.57639842766243987e1,
                -1.57635058081240231e1,
                2.22039000711049539e-1,
                5.00597906466282438e-1,
                5.00597812973069267e-1,
            ],
        },
        (2, "sparse-general") => Golden {
            fobj: -3.92254850114626805e1,
            logdet_qp: -3.97995257093414523e1,
            logdet_qc: 1.77647859037265405e1,
            loglik: 4.17650672069754947e0,
            grad: &[
                -2.08364089028378885e0,
                -3.13923807794935783e-1,
                -2.08364079501421884e0,
                -3.13923837595098121e-1,
                -1.57639842766279514e1,
                -1.57635058081311286e1,
                2.22039000711049539e-1,
                5.00597906462729725e-1,
                5.00597812969516553e-1,
            ],
        },
        _ => unreachable!("no golden for nv={nv} backend={backend}"),
    }
}

fn assert_rel(tag: &str, got: f64, want: f64) {
    let tol = 1e-9 * (1.0 + want.abs());
    assert!(
        (got - want).abs() <= tol,
        "{tag}: {got:.17e} drifted from golden {want:.17e} (|Δ| = {:.3e})",
        (got - want).abs()
    );
}

#[test]
fn gaussian_objective_and_gradient_match_pre_refactor_goldens() {
    for nv in [1usize, 2] {
        let (model, prior, theta) = toy_model(nv);
        for (name, settings) in backends() {
            let session = InlaEngine::builder(&model)
                .prior(prior.clone())
                .settings(settings)
                .build()
                .unwrap();
            let g = golden(nv, name);
            let r = session.evaluate(&theta).unwrap();
            let tag = format!("nv={nv} {name}");
            assert_rel(&format!("{tag} fobj"), r.value, g.fobj);
            assert_rel(&format!("{tag} logdet_qp"), r.logdet_qp, g.logdet_qp);
            assert_rel(&format!("{tag} logdet_qc"), r.logdet_qc, g.logdet_qc);
            assert_rel(&format!("{tag} loglik"), r.loglik, g.loglik);

            let grad = dalia::core::evaluate_gradient(&session, &theta).unwrap();
            assert_eq!(grad.gradient.len(), g.grad.len());
            for (i, (got, want)) in grad.gradient.iter().zip(g.grad).enumerate() {
                assert_rel(&format!("{tag} grad[{i}]"), *got, *want);
            }
        }
    }
}

#[test]
fn gaussian_inner_loop_converges_in_exactly_one_newton_step() {
    for nv in [1usize, 2] {
        let (model, prior, theta) = toy_model(nv);
        for (name, settings) in backends() {
            let session = InlaEngine::builder(&model)
                .prior(prior.clone())
                .settings(settings)
                .build()
                .unwrap();
            let r = session.evaluate(&theta).unwrap();
            assert_eq!(
                r.inner_iterations, 1,
                "nv={nv} {name}: quadratic ψ must converge in one Newton step"
            );
            assert!(r.inner_converged, "nv={nv} {name}: inner loop must report convergence");
        }
    }
}

#[test]
fn gaussian_evaluation_is_bitwise_the_legacy_information_vector_solve() {
    // Hand-rolled replica of the pre-refactor evaluation (factorize, build
    // A^T D y, one solve, same value expression) through the public solver
    // API. On the same host the new inner-loop path must reproduce it
    // bit-for-bit — the zero-start working rhs τ(y − 0) IS the information
    // vector τ·y.
    for nv in [1usize, 2] {
        let (model, prior, theta) = toy_model(nv);
        for (name, settings) in backends() {
            let hyper = ModelHyper::from_theta(nv, &theta);
            let logprior = prior.log_density(&theta);
            let mut solver = settings.backend.build(&model);
            solver.factorize(&hyper).unwrap();
            let info = model.information_vector(&hyper, solver.design());
            let mean = solver.solve_mean(&info);
            let logdet_qp = solver.logdet_qp();
            let logdet_qc = solver.logdet_qc();
            let quad = solver.quadratic_form_qp(&mean);
            let loglik = model.log_likelihood(&hyper, solver.design(), &mean);
            let legacy = logprior + loglik + 0.5 * logdet_qp - 0.5 * quad - 0.5 * logdet_qc;

            let session = InlaEngine::builder(&model)
                .prior(prior.clone())
                .settings(settings)
                .build()
                .unwrap();
            let r = session.evaluate(&theta).unwrap();
            assert_eq!(
                r.value.to_bits(),
                legacy.to_bits(),
                "nv={nv} {name}: inner-loop Gaussian path drifted from the legacy computation"
            );
            for (i, (a, b)) in r.mean.iter().zip(&mean).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "nv={nv} {name}: mean[{i}] not bitwise"
                );
            }
        }
    }
}
