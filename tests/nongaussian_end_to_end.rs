//! End-to-end hyperparameter recovery for the non-Gaussian observation
//! models: simulate count / exceedance data with known generating
//! hyperparameters, run the full INLA pipeline (outer BFGS over θ, inner
//! Newton loop per evaluation) on every solver backend, and check that the
//! generating structure is recovered and that all backends land on the same
//! fit.
//!
//! Tolerances are calibrated to the smallish simulated designs (36 cells ×
//! 6 steps): the field variance and the elevation effect are partially
//! confounded on a single realization, so recovery is asserted within broad
//! factors, while cross-backend agreement on the *same* data is asserted
//! tightly.

use dalia::prelude::*;
use std::sync::Arc;

struct Fit {
    backend: &'static str,
    hyper: ModelHyper,
    intercept: f64,
    elevation: f64,
}

fn fit_all_backends(lik: Likelihood, seed: u64) -> (Vec<Fit>, dalia::data::CountGroundTruth) {
    let domain = Domain::unit_square();
    let grid = observation_grid(&domain, 6, 6);
    let nt = 6;
    let (obs, truth) = match lik {
        Likelihood::Poisson => generate_count_dataset(&domain, &grid, nt, seed),
        Likelihood::Bernoulli => generate_exceedance_dataset(&domain, &grid, nt, seed),
        Likelihood::Gaussian => unreachable!("non-Gaussian recovery test"),
    };
    let mesh = TriangleMesh::structured(domain, 5, 5);
    let model = Arc::new(
        CoregionalModel::new(&mesh, nt, 1.0, 1, 2, obs)
            .unwrap()
            .with_observation_scales(truth.scales.clone())
            .unwrap()
            .with_likelihood(lik)
            .unwrap(),
    );
    let theta0 = ModelHyper::default_for(1, 0.3, 3.0).to_theta();

    let mut fits = Vec::new();
    for (backend, mut settings) in [
        ("bta-sequential", InlaSettings::dalia(1)),
        ("bta-distributed", InlaSettings::dalia(3)),
        ("sparse-general", InlaSettings::rinla_like()),
    ] {
        settings.max_iter = 15;
        let session = InlaEngine::builder(&model)
            .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
            .settings(settings)
            .build()
            .unwrap();
        let result = session.run(&theta0).unwrap();
        fits.push(Fit {
            backend,
            hyper: result.hyper_mode.clone(),
            intercept: result.fixed_effects[0].mean,
            elevation: result.fixed_effects[1].mean,
        });
    }
    (fits, truth)
}

fn check_recovery(lik: Likelihood, seed: u64) {
    let (fits, truth) = fit_all_backends(lik, seed);

    for fit in &fits {
        let tag = format!("{lik:?} {}", fit.backend);

        // Field amplitude within a factor of two of the generating value.
        let sigma = fit.hyper.sigmas[0];
        let sigma_true = truth.hyper.sigmas[0];
        assert!(
            sigma > 0.5 * sigma_true && sigma < 2.0 * sigma_true,
            "{tag}: sigma {sigma} not within 2x of generating {sigma_true}"
        );

        // Spatial range positive and of the right order of magnitude.
        let range = fit.hyper.range_s[0];
        assert!(
            range > 0.15 && range < 1.5,
            "{tag}: range_s {range} implausible for generating {}",
            truth.hyper.range_s[0]
        );

        // Fixed effects: the intercept lands near the generating value, the
        // elevation effect has the right sign and magnitude (it shares the
        // spatial structure of the field, so it carries the wider band).
        assert!(
            (fit.intercept - truth.intercept).abs() < 0.5,
            "{tag}: intercept {} vs generating {}",
            fit.intercept,
            truth.intercept
        );
        assert!(
            fit.elevation < 0.0 && (fit.elevation - truth.elevation_effect).abs() < 0.7,
            "{tag}: elevation effect {} vs generating {}",
            fit.elevation,
            truth.elevation_effect
        );
    }

    // All backends must land on the same optimum of the same objective.
    let first = &fits[0];
    for other in &fits[1..] {
        let tag = format!("{lik:?} {} vs {}", first.backend, other.backend);
        assert!(
            (first.hyper.sigmas[0] - other.hyper.sigmas[0]).abs() < 1e-3,
            "{tag}: sigma {} vs {}",
            first.hyper.sigmas[0],
            other.hyper.sigmas[0]
        );
        assert!(
            (first.hyper.range_s[0] - other.hyper.range_s[0]).abs() < 1e-3,
            "{tag}: range_s {} vs {}",
            first.hyper.range_s[0],
            other.hyper.range_s[0]
        );
        assert!(
            (first.intercept - other.intercept).abs() < 1e-3,
            "{tag}: intercept {} vs {}",
            first.intercept,
            other.intercept
        );
        assert!(
            (first.elevation - other.elevation).abs() < 1e-3,
            "{tag}: elevation {} vs {}",
            first.elevation,
            other.elevation
        );
    }
}

#[test]
fn poisson_recovers_generating_hyperparameters_on_all_backends() {
    check_recovery(Likelihood::Poisson, 42);
}

#[test]
fn bernoulli_recovers_generating_hyperparameters_on_all_backends() {
    check_recovery(Likelihood::Bernoulli, 43);
}
