//! Backend parity through the `LatentSolver` trait: every solver backend run
//! on the same small coregional model must agree on *all* the quantities an
//! INLA evaluation consumes — `log|Q_p|`, `log|Q_c|`, the conditional mean and
//! the selected-inverse marginal variances — to within 1e-8, not just on the
//! scalar objective value.

use dalia::prelude::*;

struct BackendResult {
    name: &'static str,
    logdet_qp: f64,
    logdet_qc: f64,
    mean: Vec<f64>,
    variances: Vec<f64>,
}

fn run_backend(
    model: &CoregionalModel,
    hyper: &ModelHyper,
    name: &'static str,
    backend: SolverBackend,
) -> BackendResult {
    let mut solver = backend.build(model);
    solver.factorize(hyper).expect("factorization must succeed");
    let info = model.information_vector(hyper, solver.design());
    let mean = solver.solve_mean(&info);
    let variances = solver.selected_inverse_diag();
    BackendResult {
        name,
        logdet_qp: solver.logdet_qp(),
        logdet_qc: solver.logdet_qc(),
        mean,
        variances,
    }
}

fn parity_case(nv: usize, nt: usize, partitions: usize) {
    let domain = Domain::unit_square();
    let mesh = TriangleMesh::structured(domain, 4, 4);
    let mut obs = Vec::new();
    for v in 0..nv {
        for t in 0..nt {
            for &(x, y) in &[(0.2, 0.3), (0.7, 0.6), (0.45, 0.85), (0.85, 0.2)] {
                obs.push(Observation {
                    var: v,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: 0.4 * (v as f64) - 0.15 * (t as f64) + 0.3 * x * y,
                });
            }
        }
    }
    let model = CoregionalModel::new(&mesh, nt, 1.0, nv, 1, obs).unwrap();
    let mut hyper = ModelHyper::default_for(nv, 0.6, 2.0);
    if nv > 1 {
        for l in hyper.lambdas.iter_mut() {
            *l = 0.4;
        }
    }

    let results = [
        run_backend(&model, &hyper, "bta-sequential", SolverBackend::Bta {
            partitions: 1,
            load_balance: 1.0,
        }),
        run_backend(&model, &hyper, "bta-distributed", SolverBackend::Bta {
            partitions,
            load_balance: 1.3,
        }),
        run_backend(&model, &hyper, "sparse-general", SolverBackend::SparseGeneral),
    ];

    let reference = &results[0];
    for other in &results[1..] {
        let tag = format!("nv={nv} nt={nt}: {} vs {}", reference.name, other.name);
        assert!(
            (reference.logdet_qp - other.logdet_qp).abs()
                < 1e-8 * (1.0 + reference.logdet_qp.abs()),
            "{tag}: logdet_qp {} vs {}",
            reference.logdet_qp,
            other.logdet_qp
        );
        assert!(
            (reference.logdet_qc - other.logdet_qc).abs()
                < 1e-8 * (1.0 + reference.logdet_qc.abs()),
            "{tag}: logdet_qc {} vs {}",
            reference.logdet_qc,
            other.logdet_qc
        );
        assert_eq!(reference.mean.len(), other.mean.len());
        for (i, (a, b)) in reference.mean.iter().zip(&other.mean).enumerate() {
            assert!((a - b).abs() < 1e-8, "{tag}: mean[{i}] {a} vs {b}");
        }
        assert_eq!(reference.variances.len(), other.variances.len());
        for (i, (a, b)) in reference.variances.iter().zip(&other.variances).enumerate() {
            assert!((a - b).abs() < 1e-8, "{tag}: variance[{i}] {a} vs {b}");
        }
    }
}

#[test]
fn univariate_backends_agree_on_all_solver_quantities() {
    parity_case(1, 4, 2);
}

#[test]
fn bivariate_backends_agree_on_all_solver_quantities() {
    parity_case(2, 3, 3);
}

#[test]
fn trivariate_backends_agree_on_all_solver_quantities() {
    parity_case(3, 4, 4);
}
