//! Backend parity through the `LatentSolver` trait: every solver backend run
//! on the same small coregional model must agree on *all* the quantities an
//! INLA evaluation consumes — `log|Q_p|`, `log|Q_c|`, the conditional mean and
//! the selected-inverse marginal variances — to within 1e-8, not just on the
//! scalar objective value.
//!
//! The non-Gaussian cases extend the wall through the inner Newton loop:
//! Poisson and Bernoulli fits must agree across all three backends to 1e-10
//! on the objective, the full gradient and the latent marginals, at 1 and 4
//! worker threads (the `DALIA_NUM_THREADS` CI matrix exercises the global
//! pool on top of the explicit pools pinned here).

use dalia::prelude::*;
use std::sync::Arc;

struct BackendResult {
    name: &'static str,
    logdet_qp: f64,
    logdet_qc: f64,
    mean: Vec<f64>,
    variances: Vec<f64>,
}

fn run_backend(
    model: &Arc<CoregionalModel>,
    hyper: &ModelHyper,
    name: &'static str,
    backend: SolverBackend,
) -> BackendResult {
    let mut solver = backend.build(model);
    solver.factorize(hyper).expect("factorization must succeed");
    let info = model.information_vector(hyper, solver.design());
    let mean = solver.solve_mean(&info);
    let variances = solver.selected_inverse_diag();
    BackendResult {
        name,
        logdet_qp: solver.logdet_qp(),
        logdet_qc: solver.logdet_qc(),
        mean,
        variances,
    }
}

fn parity_case(nv: usize, nt: usize, partitions: usize) {
    let domain = Domain::unit_square();
    let mesh = TriangleMesh::structured(domain, 4, 4);
    let mut obs = Vec::new();
    for v in 0..nv {
        for t in 0..nt {
            for &(x, y) in &[(0.2, 0.3), (0.7, 0.6), (0.45, 0.85), (0.85, 0.2)] {
                obs.push(Observation {
                    var: v,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: 0.4 * (v as f64) - 0.15 * (t as f64) + 0.3 * x * y,
                });
            }
        }
    }
    let model = Arc::new(CoregionalModel::new(&mesh, nt, 1.0, nv, 1, obs).unwrap());
    let mut hyper = ModelHyper::default_for(nv, 0.6, 2.0);
    if nv > 1 {
        for l in hyper.lambdas.iter_mut() {
            *l = 0.4;
        }
    }

    let results = [
        run_backend(&model, &hyper, "bta-sequential", SolverBackend::Bta {
            partitions: 1,
            load_balance: 1.0,
        }),
        run_backend(&model, &hyper, "bta-distributed", SolverBackend::Bta {
            partitions,
            load_balance: 1.3,
        }),
        run_backend(&model, &hyper, "sparse-general", SolverBackend::SparseGeneral),
    ];

    let reference = &results[0];
    for other in &results[1..] {
        let tag = format!("nv={nv} nt={nt}: {} vs {}", reference.name, other.name);
        assert!(
            (reference.logdet_qp - other.logdet_qp).abs()
                < 1e-8 * (1.0 + reference.logdet_qp.abs()),
            "{tag}: logdet_qp {} vs {}",
            reference.logdet_qp,
            other.logdet_qp
        );
        assert!(
            (reference.logdet_qc - other.logdet_qc).abs()
                < 1e-8 * (1.0 + reference.logdet_qc.abs()),
            "{tag}: logdet_qc {} vs {}",
            reference.logdet_qc,
            other.logdet_qc
        );
        assert_eq!(reference.mean.len(), other.mean.len());
        for (i, (a, b)) in reference.mean.iter().zip(&other.mean).enumerate() {
            assert!((a - b).abs() < 1e-8, "{tag}: mean[{i}] {a} vs {b}");
        }
        assert_eq!(reference.variances.len(), other.variances.len());
        for (i, (a, b)) in reference.variances.iter().zip(&other.variances).enumerate() {
            assert!((a - b).abs() < 1e-8, "{tag}: variance[{i}] {a} vs {b}");
        }
    }
}

/// Deterministic small count/exceedance fixture for `lik`.
fn nongaussian_model(lik: Likelihood) -> (Arc<CoregionalModel>, ThetaPrior, Vec<f64>) {
    let domain = Domain::unit_square();
    let mesh = TriangleMesh::structured(domain, 4, 4);
    let nt = 3;
    let locs = [(0.2, 0.3), (0.7, 0.6), (0.45, 0.85), (0.85, 0.2), (0.3, 0.7)];
    let mut obs = Vec::new();
    let mut scales = Vec::new();
    for t in 0..nt {
        for (i, &(x, y)) in locs.iter().enumerate() {
            let (value, scale) = match lik {
                // Counts 0..6 with exposures 1.5..3.5.
                Likelihood::Poisson => (((i * 3 + t * 2) % 7) as f64, 1.5 + 0.5 * i as f64),
                // Successes 0..3 out of 6 trials.
                Likelihood::Bernoulli => (((i + t) % 4) as f64, 6.0),
                Likelihood::Gaussian => unreachable!("fixture is for non-Gaussian cases"),
            };
            obs.push(Observation {
                var: 0,
                t,
                loc: Point::new(x, y),
                covariates: vec![1.0],
                value,
            });
            scales.push(scale);
        }
    }
    // Scales first: `with_likelihood` validates observation values against
    // the current scales (Bernoulli counts must fit inside `trials`).
    let model = Arc::new(
        CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs)
            .unwrap()
            .with_observation_scales(scales)
            .unwrap()
            .with_likelihood(lik)
            .unwrap(),
    );
    let theta = ModelHyper::default_for(1, 0.6, 2.0).to_theta();
    let prior = ThetaPrior::weakly_informative(&theta, 2.0);
    (model, prior, theta)
}

fn assert_close(tag: &str, a: f64, b: f64) {
    assert!(
        (a - b).abs() <= 1e-10 * (1.0 + a.abs()),
        "{tag}: {a:.17e} vs {b:.17e} (|Δ| = {:.3e})",
        (a - b).abs()
    );
}

fn nongaussian_parity_case(lik: Likelihood, threads: usize) {
    let (model, prior, theta) = nongaussian_model(lik);
    let hyper = ModelHyper::from_theta(1, &theta);

    let pool = dalia::pool::ThreadPool::new(threads);
    pool.install(|| {
        let mut results = Vec::new();
        for (name, backend) in [
            ("bta-sequential", SolverBackend::Bta { partitions: 1, load_balance: 1.0 }),
            ("bta-distributed", SolverBackend::Bta { partitions: 3, load_balance: 1.3 }),
            ("sparse-general", SolverBackend::SparseGeneral),
        ] {
            let mut settings = InlaSettings::dalia(1);
            settings.backend = backend;
            // Drive the mode to near machine precision so cross-backend
            // parity reflects the algorithm, not the stopping tolerance.
            settings.inner_tol = 1e-12;
            let session = InlaEngine::builder(&model)
                .prior(prior.clone())
                .settings(settings)
                .build()
                .unwrap();
            let r = session.evaluate(&theta).unwrap();
            assert!(r.inner_converged, "{name}: inner Newton loop did not converge");
            assert!(
                r.inner_iterations >= 2,
                "{name}: a non-quadratic ψ cannot converge in one step"
            );
            let grad = dalia::core::evaluate_gradient(&session, &theta).unwrap();
            let marg = session.latent_marginals(&hyper, r.mean.clone()).unwrap();
            results.push((name, r.value, grad.gradient, marg.mean, marg.sd));
        }

        let (ref_name, ref_fobj, ref_grad, ref_mean, ref_sd) = &results[0];
        for (name, fobj, grad, mean, sd) in &results[1..] {
            let tag = format!("{lik:?} threads={threads}: {ref_name} vs {name}");
            assert_close(&format!("{tag} fobj"), *ref_fobj, *fobj);
            assert_eq!(ref_grad.len(), grad.len());
            for (i, (a, b)) in ref_grad.iter().zip(grad).enumerate() {
                assert_close(&format!("{tag} grad[{i}]"), *a, *b);
            }
            for (i, (a, b)) in ref_mean.iter().zip(mean).enumerate() {
                assert_close(&format!("{tag} mode[{i}]"), *a, *b);
            }
            for (i, (a, b)) in ref_sd.iter().zip(sd).enumerate() {
                assert_close(&format!("{tag} sd[{i}]"), *a, *b);
            }
        }
    });
}

#[test]
fn poisson_backends_agree_single_threaded() {
    nongaussian_parity_case(Likelihood::Poisson, 1);
}

#[test]
fn poisson_backends_agree_four_threads() {
    nongaussian_parity_case(Likelihood::Poisson, 4);
}

#[test]
fn bernoulli_backends_agree_single_threaded() {
    nongaussian_parity_case(Likelihood::Bernoulli, 1);
}

#[test]
fn bernoulli_backends_agree_four_threads() {
    nongaussian_parity_case(Likelihood::Bernoulli, 4);
}

#[test]
fn univariate_backends_agree_on_all_solver_quantities() {
    parity_case(1, 4, 2);
}

#[test]
fn bivariate_backends_agree_on_all_solver_quantities() {
    parity_case(2, 3, 3);
}

#[test]
fn trivariate_backends_agree_on_all_solver_quantities() {
    parity_case(3, 4, 4);
}
