//! End-to-end integration tests: simulate data, run the full INLA pipeline and
//! check that the different solver backends and parallelization levels agree
//! and that known quantities are recovered.

use dalia::prelude::*;
use std::sync::Arc;

fn univariate_setup() -> (Arc<CoregionalModel>, Vec<f64>, f64) {
    let domain = Domain::unit_square();
    let beta_true = 1.5;
    let (obs, _) = generate_univariate_dataset(&domain, 25, 3, beta_true, 13);
    let mesh = TriangleMesh::structured(domain, 5, 5);
    let model = Arc::new(CoregionalModel::new(&mesh, 3, 1.0, 1, 1, obs).unwrap());
    let theta0 = ModelHyper::default_for(1, 0.4, 3.0).to_theta();
    (model, theta0, beta_true)
}

fn session(model: &Arc<CoregionalModel>, theta0: &[f64], settings: InlaSettings) -> InlaSession {
    InlaEngine::builder(model)
        .prior(ThetaPrior::weakly_informative(theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings")
}

#[test]
fn objective_agrees_across_backends_and_partitions() {
    let (model, theta0, _) = univariate_setup();
    let f_bta = session(&model, &theta0, InlaSettings::dalia(1)).evaluate(&theta0).unwrap();
    let f_dist = session(&model, &theta0, InlaSettings::dalia(3)).evaluate(&theta0).unwrap();
    let f_sparse = session(&model, &theta0, InlaSettings::rinla_like()).evaluate(&theta0).unwrap();
    let scale = 1.0 + f_bta.value.abs();
    assert!((f_bta.value - f_dist.value).abs() < 1e-7 * scale);
    assert!((f_bta.value - f_sparse.value).abs() < 1e-6 * scale);
    // Conditional means agree as well.
    for (a, b) in f_bta.mean.iter().zip(&f_sparse.mean) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn full_pipeline_recovers_fixed_effect_and_noise() {
    let (model, theta0, beta_true) = univariate_setup();
    let mut settings = InlaSettings::dalia(1);
    settings.max_iter = 6;
    let engine = session(&model, &theta0, settings);
    let result = engine.run(&theta0).unwrap();

    // Fixed effect is identified because the covariate varies independently of
    // space and time in the simulator.
    let fx = &result.fixed_effects[0];
    assert!(
        (fx.mean - beta_true).abs() < 0.5,
        "fixed effect {} not close to the true {}",
        fx.mean,
        beta_true
    );
    assert!(fx.q025 < fx.mean && fx.mean < fx.q975);

    // Noise standard deviation should land in the right order of magnitude
    // (simulated with sd ~ 0.14).
    let noise_sd = 1.0 / result.hyper_mode.noise_prec[0].sqrt();
    assert!(noise_sd > 0.01 && noise_sd < 1.0, "noise sd estimate {noise_sd}");

    // Hyperparameter uncertainties are finite and positive.
    assert!(result.hyper.sd.iter().all(|s| s.is_finite() && *s > 0.0));
}

#[test]
fn latent_uncertainty_is_smaller_near_observations() {
    let (model, theta0, _) = univariate_setup();
    let mut settings = InlaSettings::dalia(2);
    settings.max_iter = 3;
    let engine = session(&model, &theta0, settings);
    let result = engine.run(&theta0).unwrap();
    // Average posterior sd of the spatio-temporal field must be below the
    // prior marginal sd of ~1 (the data are informative).
    let b = model.dims.block_size();
    let nt = model.dims.nt;
    let avg_sd: f64 = result.latent.sd[..b * nt].iter().sum::<f64>() / (b * nt) as f64;
    assert!(avg_sd < 1.0, "posterior sd {avg_sd} not reduced below the prior scale");
}

#[test]
fn prediction_pipeline_produces_finite_surfaces() {
    let (model, theta0, _) = univariate_setup();
    let mut settings = InlaSettings::dalia(1);
    settings.max_iter = 2;
    let engine = session(&model, &theta0, settings);
    let result = engine.run(&theta0).unwrap();
    let grid = observation_grid(&Domain::unit_square(), 9, 9);
    let targets: Vec<PredictionTarget> = grid
        .iter()
        .map(|p| PredictionTarget { var: 0, t: 1, loc: *p, covariates: vec![0.0] })
        .collect();
    let pred = predict(&model, &result.hyper_mode, &result.latent, &targets).unwrap();
    assert_eq!(pred.mean.len(), 81);
    assert!(pred.mean.iter().all(|v| v.is_finite()));
    assert!(pred.sd.iter().all(|v| v.is_finite() && *v >= 0.0));
}
