//! Cross-crate integration tests of the solver stack: the SPDE precision of a
//! real model flowing through the structured sequential and distributed
//! solvers and the general sparse baseline must give identical answers.

use dalia::prelude::*;
use dalia::serinv::Partitioning;

#[test]
fn model_precision_through_all_three_solver_paths() {
    let domain = Domain::unit_square();
    let (obs, _) = generate_univariate_dataset(&domain, 20, 4, 0.5, 3);
    let mesh = TriangleMesh::structured(domain, 4, 4);
    let model = CoregionalModel::new(&mesh, 4, 1.0, 1, 1, obs).unwrap();
    let hyper = ModelHyper::default_for(1, 0.5, 2.0);

    let (qc_bta, design) = model.assemble_qc_bta(&hyper);
    let qc_csr = model.assemble_qc_csr(&hyper, true);
    let rhs = model.information_vector(&hyper, &design);

    // Sequential BTA.
    let f_seq = pobtaf(&qc_bta).unwrap();
    let x_seq = dalia::serinv::pobtas_vec(&f_seq, &rhs);
    // Distributed BTA.
    let part = Partitioning::load_balanced(4, 2, 1.0);
    let f_dist = d_pobtaf(&qc_bta, &part).unwrap();
    let mut x_dist = Matrix::col_vector(&rhs);
    d_pobtas(&f_dist, &mut x_dist);
    // General sparse.
    let f_sparse = SparseCholesky::factor(&qc_csr).unwrap();
    let x_sparse = f_sparse.solve(&rhs);

    let ld = f_seq.logdet().unwrap();
    assert!((ld - f_dist.logdet().unwrap()).abs() < 1e-8 * (1.0 + ld.abs()));
    assert!((ld - f_sparse.logdet()).abs() < 1e-7 * (1.0 + ld.abs()));
    for i in 0..rhs.len() {
        assert!((x_seq[i] - x_dist.col(0)[i]).abs() < 1e-8);
        assert!((x_seq[i] - x_sparse[i]).abs() < 1e-7);
    }

    // Selected inverses give the same marginal variances.
    let v_seq = pobtasi(&f_seq).diagonal();
    let v_dist = d_pobtasi(&f_dist).diagonal();
    let v_sparse = f_sparse.marginal_variances();
    for i in 0..rhs.len() {
        assert!((v_seq[i] - v_dist[i]).abs() < 1e-8);
        assert!((v_seq[i] - v_sparse[i]).abs() < 1e-7);
    }
}

#[test]
fn permutation_recovers_bta_structure_for_coregional_models() {
    // The un-permuted trivariate joint precision is *not* block-tridiagonal;
    // the coregional permutation restores the BTA pattern (Fig. 2b -> 2c).
    let domain = Domain::unit_square();
    let mesh = TriangleMesh::structured(domain, 3, 3);
    let mut obs = Vec::new();
    for v in 0..3usize {
        for t in 0..3usize {
            obs.push(Observation {
                var: v,
                t,
                loc: Point::new(0.3 + 0.1 * v as f64, 0.4),
                covariates: vec![1.0],
                value: v as f64 * 0.1,
            });
        }
    }
    let model = CoregionalModel::new(&mesh, 3, 1.0, 3, 1, obs).unwrap();
    let mut hyper = ModelHyper::default_for(3, 0.5, 2.0);
    hyper.lambdas = vec![0.7, -0.4, 0.3];

    let ns = model.dims.ns;
    let nt = model.dims.nt;
    let b = model.dims.block_size();
    let natural = model.assemble_qp_csr(&hyper, false);
    let permuted = model.assemble_qp_csr(&hyper, true);

    // Natural ordering couples entries far outside a bandwidth of one spatial
    // block; the permuted ordering stays within |time(i) - time(j)| <= 1.
    let mut natural_is_bt = true;
    let per_process = ns * nt + 1;
    for r in 0..3 * per_process {
        for (c, v) in natural.row_iter(r) {
            if v != 0.0 && (r % per_process) < ns * nt && (c % per_process) < ns * nt {
                let tr = (r % per_process) / ns;
                let tc = (c % per_process) / ns;
                let same_process = r / per_process == c / per_process;
                if !same_process && tr.abs_diff(tc) <= 1 {
                    continue;
                }
                if tr.abs_diff(tc) > 1 {
                    natural_is_bt = false;
                }
            }
        }
    }
    let _ = natural_is_bt; // the natural ordering is simply not time-blocked at all

    for r in 0..nt * b {
        for (c, v) in permuted.row_iter(r) {
            if c < nt * b && v != 0.0 {
                assert!(
                    (r / b).abs_diff(c / b) <= 1,
                    "permuted matrix violates the BTA pattern at ({r}, {c})"
                );
            }
        }
    }
}
