//! Integration tests of the trivariate coregional (LMC) pipeline: the joint
//! precision construction, the permuted BTA path and the recovery of the
//! coupling structure planted by the synthetic pollution generator.

use dalia::prelude::*;
use std::sync::Arc;

fn trivariate_setup() -> (Arc<CoregionalModel>, ModelHyper, dalia::data::GroundTruth) {
    let domain = Domain::northern_italy_like();
    let coarse = observation_grid(&domain, 7, 4);
    let (obs, truth) = generate_pollution_dataset(&domain, &coarse, 4, 21);
    let mesh = TriangleMesh::with_approx_nodes(domain, 48);
    let model = Arc::new(CoregionalModel::new(&mesh, 4, 1.0, 3, 2, obs).unwrap());
    let mut hyper0 = ModelHyper::default_for(3, 0.3 * domain.width(), 4.0);
    hyper0.lambdas = vec![0.8, -0.3, -0.2];
    (model, hyper0, truth)
}

fn session_with(
    model: &Arc<CoregionalModel>,
    theta0: &[f64],
    settings: InlaSettings,
) -> InlaSession {
    InlaEngine::builder(model)
        .prior(ThetaPrior::weakly_informative(theta0, 3.0))
        .settings(settings)
        .build()
        .expect("valid settings")
}

#[test]
fn trivariate_objective_runs_on_all_backends() {
    let (model, hyper0, _) = trivariate_setup();
    let theta0 = hyper0.to_theta();
    assert_eq!(theta0.len(), 15, "trivariate model must have 15 hyperparameters");
    let bta = session_with(&model, &theta0, InlaSettings::dalia(1)).evaluate(&theta0).unwrap();
    let dist = session_with(&model, &theta0, InlaSettings::dalia(2)).evaluate(&theta0).unwrap();
    let sparse =
        session_with(&model, &theta0, InlaSettings::rinla_like()).evaluate(&theta0).unwrap();
    let scale = 1.0 + bta.value.abs();
    assert!((bta.value - dist.value).abs() < 1e-7 * scale);
    assert!((bta.value - sparse.value).abs() < 1e-6 * scale);
}

#[test]
fn conditional_mean_recovers_elevation_effect_signs() {
    // At the generating hyperparameters the conditional mean should attribute
    // negative elevation effects to the PM-like variables and a positive one
    // to the O3-like variable (the paper's Sec. VI finding).
    let (model, _, truth) = trivariate_setup();
    let theta_true = truth.hyper.to_theta();
    let res =
        session_with(&model, &theta_true, InlaSettings::dalia(1)).evaluate(&theta_true).unwrap();
    let beta = |process: usize| res.mean[model.fixed_effect_index(process, 1)];
    assert!(beta(0) < 0.0, "PM2.5 elevation effect should be negative, got {}", beta(0));
    assert!(beta(1) < 0.0, "PM10 elevation effect should be negative, got {}", beta(1));
    assert!(beta(2) > 0.0, "O3 elevation effect should be positive, got {}", beta(2));
    // Magnitudes within a factor ~3 of the planted values.
    assert!((beta(0) - truth.elevation_effects[0]).abs() < 1.0);
    assert!((beta(2) - truth.elevation_effects[2]).abs() < 2.0);
}

#[test]
fn coregional_correlation_structure_from_generating_lambda() {
    let (_, _, truth) = trivariate_setup();
    let corr = response_correlations(&truth.hyper);
    // The generator plants a strong positive PM2.5-PM10 correlation and
    // negative correlations with O3 — the structure reported in the paper
    // (0.97, -0.61, -0.63).
    assert!(corr[(1, 0)] > 0.6);
    assert!(corr[(2, 0)] < -0.1);
    assert!(corr[(2, 1)] < -0.1);
}

#[test]
fn joint_bta_assembly_is_consistent_for_the_trivariate_model() {
    let (model, hyper0, _) = trivariate_setup();
    // BTA assembly and CSR+permutation assembly must agree (two independent
    // implementations of Eq. 11 + the Fig. 2c reordering).
    let bta = model.assemble_qp_bta(&hyper0);
    let csr = model.assemble_qp_csr(&hyper0, true);
    let diff = bta.to_dense().max_abs_diff(&csr.to_dense());
    assert!(diff < 1e-8, "joint precision assembly mismatch: {diff}");
    // The permuted matrix must be factorizable by the structured solver.
    assert!(pobtaf(&bta).is_ok());
}

#[test]
fn downscaling_produces_denser_surface_than_input() {
    let (model, hyper0, _) = trivariate_setup();
    let theta0 = hyper0.to_theta();
    let res = session_with(&model, &theta0, InlaSettings::dalia(1)).evaluate(&theta0).unwrap();
    let marginals = dalia::core::LatentMarginals {
        sd: vec![0.1; res.mean.len()],
        mean: res.mean.clone(),
        clamped: 0,
    };
    let domain = Domain::northern_italy_like();
    let fine = observation_grid(&domain, 21, 12);
    let targets: Vec<PredictionTarget> = fine
        .iter()
        .map(|p| PredictionTarget {
            var: 2,
            t: 1,
            loc: *p,
            covariates: vec![1.0, dalia::data::elevation_km(&domain, p)],
        })
        .collect();
    let pred = predict(&model, &hyper0, &marginals, &targets).unwrap();
    assert_eq!(pred.mean.len(), 252);
    assert!(pred.mean.iter().all(|v| v.is_finite()));
    // The downscaled surface must show spatial variation (not a constant).
    let mean = pred.mean.iter().sum::<f64>() / pred.mean.len() as f64;
    let var = pred.mean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / pred.mean.len() as f64;
    assert!(var > 1e-6, "downscaled surface is flat");
}
