//! Property-based wall around the inner Newton loop ([`conditional_mode`]).
//!
//! Four families of invariants, each checked across all three solver
//! backends on randomized small Poisson/Bernoulli fixtures:
//!
//! 1. **Stationarity** — the returned mode is a fixed point of the Newton
//!    map (one more solve from the mode moves by ≤ a few× the tolerance) and
//!    a local maximum of ψ along random directions.
//! 2. **Monotone line search** — the recorded ψ trace is non-decreasing up
//!    to the O(ε) rounding slack the line search itself allows.
//! 3. **Warm starts** — restarting the loop from a perturbed copy of the
//!    mode converges back to the same mode.
//! 4. **Diagonal perturbation** — `refactorize_conditional(w)` changes the
//!    conditional operator by exactly `Aᵀ diag(Δw) A`: the Woodbury-style
//!    residual identity holds through `solve_mean`, and a warm refactorize
//!    matches a fresh factorization at the same weights.

use dalia::prelude::*;
use std::sync::Arc;
use proptest::collection::vec;
use proptest::prelude::*;

const TOL: f64 = 1e-10;

fn fixture(lik: Likelihood, values: &[f64]) -> (Arc<CoregionalModel>, ModelHyper) {
    let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
    let nt = 2;
    let locs = [(0.2, 0.3), (0.7, 0.6), (0.45, 0.85), (0.85, 0.2)];
    let mut obs = Vec::new();
    let mut scales = Vec::new();
    let mut k = 0usize;
    for t in 0..nt {
        for &(x, y) in &locs {
            // Map the raw uniform draw in [0, 1) onto a valid count for the
            // likelihood: Poisson counts 0..8 (exposure 2), Bernoulli
            // successes 0..5 out of 5 trials.
            let u = values[k % values.len()];
            k += 1;
            let (value, scale) = match lik {
                Likelihood::Poisson => ((u * 9.0).floor(), 2.0),
                Likelihood::Bernoulli => ((u * 6.0).floor().min(5.0), 5.0),
                Likelihood::Gaussian => (u, 1.0),
            };
            obs.push(Observation {
                var: 0,
                t,
                loc: Point::new(x, y),
                covariates: vec![1.0],
                value,
            });
            scales.push(scale);
        }
    }
    let model = Arc::new(
        CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs)
            .unwrap()
            .with_observation_scales(scales)
            .unwrap()
            .with_likelihood(lik)
            .unwrap(),
    );
    let hyper = ModelHyper::default_for(1, 0.6, 2.0);
    (model, hyper)
}

fn backends() -> Vec<SolverBackend> {
    vec![
        SolverBackend::Bta { partitions: 1, load_balance: 1.0 },
        SolverBackend::Bta { partitions: 3, load_balance: 1.3 },
        SolverBackend::SparseGeneral,
    ]
}

fn psi(model: &CoregionalModel, solver: &dyn LatentSolver, hyper: &ModelHyper, x: &[f64]) -> f64 {
    let eta = solver.design().spmv(x);
    -0.5 * solver.quadratic_form_qp(x) + model.log_likelihood_at_eta(hyper, &eta)
}

/// Property 1: the mode is a Newton fixed point and a ψ-maximum along
/// random directions.
fn check_mode_is_stationary(lik: Likelihood, values: &[f64], dir: &[f64]) {
    let (model, hyper) = fixture(lik, values);
    let inner = InnerSettings { tol: TOL, max_iter: 100 };
    for backend in backends() {
        let mut solver = backend.build(&model);
        solver.factorize(&hyper).unwrap();
        let result = conditional_mode(solver.as_mut(), &hyper, None, inner).unwrap();
        prop_assert!(result.converged, "{}: inner loop did not converge", solver.backend_name());

        // Newton fixed point: one more solve from the mode barely moves.
        let eta = solver.design().spmv(&result.mode);
        let w = model.working_weights(&hyper, &eta);
        let g = model.likelihood_scores(&hyper, &eta);
        let work: Vec<f64> =
            eta.iter().zip(&w).zip(&g).map(|((&e, &wi), &gi)| wi * e + gi).collect();
        let rhs = solver.design().spmv_t(&work);
        let target = solver.solve_mean(&rhs);
        let residual = target
            .iter()
            .zip(&result.mode)
            .fold(0.0f64, |m, (&t, &x)| m.max((t - x).abs()));
        prop_assert!(
            residual <= 50.0 * TOL,
            "{}: Newton residual {residual:.3e} at the reported mode",
            solver.backend_name()
        );

        // Local maximum: stepping away along ±dir cannot increase ψ beyond
        // rounding noise.
        let psi_star = psi(&model, solver.as_ref(), &hyper, &result.mode);
        let scale = 1e-4;
        for sign in [1.0, -1.0] {
            let shifted: Vec<f64> = result
                .mode
                .iter()
                .enumerate()
                .map(|(i, &xi)| xi + sign * scale * dir[i % dir.len()])
                .collect();
            let psi_shift = psi(&model, solver.as_ref(), &hyper, &shifted);
            prop_assert!(
                psi_shift <= psi_star + 1e-10 * (1.0 + psi_star.abs()),
                "{}: ψ increased away from the mode ({psi_shift} > {psi_star})",
                solver.backend_name()
            );
        }
    }
}

/// Property 2: the accepted-step ψ trace is monotone non-decreasing up to
/// the line search's own rounding slack.
fn check_psi_trace_monotone(lik: Likelihood, values: &[f64]) {
    let (model, hyper) = fixture(lik, values);
    let inner = InnerSettings { tol: TOL, max_iter: 100 };
    for backend in backends() {
        let mut solver = backend.build(&model);
        solver.factorize(&hyper).unwrap();
        let result = conditional_mode(solver.as_mut(), &hyper, None, inner).unwrap();
        prop_assert!(result.psi_trace.len() >= 2, "non-Gaussian trace must record steps");
        for (k, pair) in result.psi_trace.windows(2).enumerate() {
            let slack = 1e-12 * (1.0 + pair[0].abs());
            prop_assert!(
                pair[1] >= pair[0] - slack,
                "{}: ψ decreased at accepted step {k}: {} -> {}",
                solver.backend_name(),
                pair[0],
                pair[1]
            );
        }
    }
}

/// Property 3: warm-starting from a perturbed mode converges back to the
/// cold-start mode.
fn check_warm_start_recovers_mode(lik: Likelihood, values: &[f64], noise: &[f64]) {
    let (model, hyper) = fixture(lik, values);
    let inner = InnerSettings { tol: TOL, max_iter: 100 };
    for backend in backends() {
        let mut solver = backend.build(&model);
        solver.factorize(&hyper).unwrap();
        let cold = conditional_mode(solver.as_mut(), &hyper, None, inner).unwrap();

        let x0: Vec<f64> = cold
            .mode
            .iter()
            .enumerate()
            .map(|(i, &xi)| xi + noise[i % noise.len()])
            .collect();
        let warm = conditional_mode(solver.as_mut(), &hyper, Some(&x0), inner).unwrap();
        prop_assert!(warm.converged, "{}: warm restart did not converge", solver.backend_name());
        for (i, (a, b)) in cold.mode.iter().zip(&warm.mode).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-7,
                "{}: mode[{i}] {a} vs warm {b}",
                solver.backend_name()
            );
        }
    }
}

/// Property 4: reweighting perturbs the conditional operator by exactly
/// `Aᵀ diag(Δw) A` (nothing off-diagonal, nothing in `Q_p`), and a warm
/// refactorize agrees with a fresh factorization at the same weights.
fn check_reweight_is_diagonal_perturbation(lik: Likelihood, values: &[f64], rhs_dir: &[f64]) {
    let (model, hyper) = fixture(lik, values);
    for backend in backends() {
        let mut solver = backend.build(&model);
        solver.factorize(&hyper).unwrap();
        let n = solver.design().ncols();
        let n_obs = solver.design().nrows();
        let b: Vec<f64> = (0..n).map(|i| rhs_dir[i % rhs_dir.len()]).collect();

        // Two weight vectors from two different linear predictors.
        let eta1 = vec![0.1; n_obs];
        let eta2: Vec<f64> = (0..n_obs).map(|i| 0.3 + 0.05 * i as f64).collect();
        let w1 = model.working_weights(&hyper, &eta1);
        let w2 = model.working_weights(&hyper, &eta2);

        // x2 = Q_c(w2)⁻¹ b, then the identity
        //   Q_c(w1) x2 = b − Aᵀ(Δw ⊙ (A x2))
        // must hold — i.e. solving at w1 with the corrected rhs returns x2.
        solver.refactorize_conditional(&w2).unwrap();
        let x2 = solver.solve_mean(&b);
        let logdet_warm = solver.logdet_qc();

        solver.refactorize_conditional(&w1).unwrap();
        let ax2 = solver.design().spmv(&x2);
        let corr: Vec<f64> = ax2
            .iter()
            .zip(&w2)
            .zip(&w1)
            .map(|((&a, &two), &one)| (two - one) * a)
            .collect();
        let corr_t = solver.design().spmv_t(&corr);
        let b_corr: Vec<f64> = b.iter().zip(&corr_t).map(|(&bi, &ci)| bi - ci).collect();
        let x2_again = solver.solve_mean(&b_corr);
        for (i, (a, c)) in x2.iter().zip(&x2_again).enumerate() {
            prop_assert!(
                (a - c).abs() <= 1e-8 * (1.0 + a.abs()),
                "{}: diagonal-perturbation identity broke at [{i}]: {a} vs {c}",
                solver.backend_name()
            );
        }

        // Warm refactorize == fresh factorization at the same weights.
        let mut fresh = backend.build(&model);
        fresh.factorize(&hyper).unwrap();
        fresh.refactorize_conditional(&w2).unwrap();
        let x2_fresh = fresh.solve_mean(&b);
        prop_assert!(
            (fresh.logdet_qc() - logdet_warm).abs() <= 1e-10 * (1.0 + logdet_warm.abs()),
            "{}: warm logdet_qc {} vs fresh {}",
            solver.backend_name(),
            logdet_warm,
            fresh.logdet_qc()
        );
        for (i, (a, c)) in x2.iter().zip(&x2_fresh).enumerate() {
            prop_assert!(
                (a - c).abs() <= 1e-10 * (1.0 + a.abs()),
                "{}: warm solve[{i}] {a} vs fresh {c}",
                solver.backend_name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn poisson_mode_is_stationary(
        values in vec(0.0f64..1.0, 8),
        dir in vec(-1.0f64..1.0, 8),
    ) {
        check_mode_is_stationary(Likelihood::Poisson, &values, &dir);
    }

    #[test]
    fn bernoulli_mode_is_stationary(
        values in vec(0.0f64..1.0, 8),
        dir in vec(-1.0f64..1.0, 8),
    ) {
        check_mode_is_stationary(Likelihood::Bernoulli, &values, &dir);
    }

    #[test]
    fn poisson_psi_trace_is_monotone(values in vec(0.0f64..1.0, 8)) {
        check_psi_trace_monotone(Likelihood::Poisson, &values);
    }

    #[test]
    fn bernoulli_psi_trace_is_monotone(values in vec(0.0f64..1.0, 8)) {
        check_psi_trace_monotone(Likelihood::Bernoulli, &values);
    }

    #[test]
    fn poisson_warm_starts_recover_the_mode(
        values in vec(0.0f64..1.0, 8),
        noise in vec(-0.5f64..0.5, 8),
    ) {
        check_warm_start_recovers_mode(Likelihood::Poisson, &values, &noise);
    }

    #[test]
    fn bernoulli_warm_starts_recover_the_mode(
        values in vec(0.0f64..1.0, 8),
        noise in vec(-0.5f64..0.5, 8),
    ) {
        check_warm_start_recovers_mode(Likelihood::Bernoulli, &values, &noise);
    }

    #[test]
    fn poisson_reweight_is_a_diagonal_perturbation(
        values in vec(0.0f64..1.0, 8),
        rhs in vec(-1.0f64..1.0, 8),
    ) {
        check_reweight_is_diagonal_perturbation(Likelihood::Poisson, &values, &rhs);
    }

    #[test]
    fn bernoulli_reweight_is_a_diagonal_perturbation(
        values in vec(0.0f64..1.0, 8),
        rhs in vec(-1.0f64..1.0, 8),
    ) {
        check_reweight_is_diagonal_perturbation(Likelihood::Bernoulli, &values, &rhs);
    }
}
