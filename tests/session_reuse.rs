//! Workspace-reuse correctness: calling `factorize` repeatedly with different
//! θ on one stateful solver must give *bitwise-identical* results to fresh
//! solvers, for every backend. This guards against stale-workspace bugs
//! (un-zeroed BTA blocks, a symbolic cache applied to the wrong pattern,
//! leftover factor values) that tolerance-based comparisons would let slip.

use dalia::prelude::*;
use std::sync::Arc;
use proptest::collection::vec;
use proptest::prelude::*;

fn toy_model(nv: usize) -> (Arc<CoregionalModel>, Vec<f64>) {
    let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
    let nt = 3;
    let mut obs = Vec::new();
    for v in 0..nv {
        for t in 0..nt {
            for &(x, y) in &[(0.25, 0.3), (0.7, 0.55), (0.45, 0.85)] {
                obs.push(Observation {
                    var: v,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: 0.2 * (v as f64) + 0.15 * (t as f64) + 0.1 * x,
                });
            }
        }
    }
    let model = Arc::new(CoregionalModel::new(&mesh, nt, 1.0, nv, 1, obs).unwrap());
    let theta0 = ModelHyper::default_for(nv, 0.6, 2.0).to_theta();
    (model, theta0)
}

fn backends() -> Vec<SolverBackend> {
    vec![
        SolverBackend::Bta { partitions: 1, load_balance: 1.0 },
        SolverBackend::Bta { partitions: 3, load_balance: 1.3 },
        SolverBackend::SparseGeneral,
    ]
}

fn shifted(theta0: &[f64], delta: &[f64]) -> Vec<f64> {
    theta0.iter().zip(delta).map(|(t, d)| t + d).collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], tag: &str) {
    assert_eq!(a.len(), b.len(), "{tag}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{tag}: drift at index {i}: {x} vs {y}");
    }
}

/// Solver level: factorize(θ₁) then factorize(θ₂) on one solver equals a
/// fresh solver's factorize(θ₂), bit for bit.
fn check_stateful_refactorization(d1: &[f64], d2: &[f64]) {
    let (model, theta0) = toy_model(1);
    let theta_a = shifted(&theta0, d1);
    let theta_b = shifted(&theta0, d2);
    let hyper_a = ModelHyper::from_theta(1, &theta_a);
    let hyper_b = ModelHyper::from_theta(1, &theta_b);

    for backend in backends() {
        let mut reused = backend.build(&model);
        reused.factorize(&hyper_a).unwrap();
        reused.factorize(&hyper_b).unwrap();
        let mut fresh = backend.build(&model);
        fresh.factorize(&hyper_b).unwrap();

        let tag = reused.backend_name();
        assert_eq!(reused.logdet_qp().to_bits(), fresh.logdet_qp().to_bits(), "{tag}: logdet_qp");
        assert_eq!(reused.logdet_qc().to_bits(), fresh.logdet_qc().to_bits(), "{tag}: logdet_qc");
        let info = model.information_vector(&hyper_b, fresh.design());
        assert_bits_eq(&reused.solve_mean(&info), &fresh.solve_mean(&info), tag);
        assert_bits_eq(&reused.selected_inverse_diag(), &fresh.selected_inverse_diag(), tag);
    }
}

/// Session level: evaluating θ₁ then θ₂ on one session equals a fresh
/// session's evaluation of θ₂, bit for bit (the pooled solver is reused
/// across `evaluate` calls).
fn check_session_evaluation_reuse(d1: &[f64], d2: &[f64]) {
    let (model, theta0) = toy_model(2);
    let theta_a = shifted(&theta0, d1);
    let theta_b = shifted(&theta0, d2);
    let prior = ThetaPrior::weakly_informative(&theta0, 3.0);

    for backend in backends() {
        let mut settings = InlaSettings::dalia(1);
        settings.backend = backend;
        settings.parallel_feval = false;
        let reused = InlaEngine::builder(&model)
            .prior(prior.clone())
            .settings(settings.clone())
            .build()
            .unwrap();
        let _ = reused.evaluate(&theta_a).unwrap();
        let via_reused = reused.evaluate(&theta_b).unwrap();

        let fresh =
            InlaEngine::builder(&model).prior(prior.clone()).settings(settings).build().unwrap();
        let via_fresh = fresh.evaluate(&theta_b).unwrap();

        assert_eq!(via_reused.value.to_bits(), via_fresh.value.to_bits());
        assert_eq!(via_reused.logdet_qp.to_bits(), via_fresh.logdet_qp.to_bits());
        assert_eq!(via_reused.logdet_qc.to_bits(), via_fresh.logdet_qc.to_bits());
        assert_eq!(via_reused.loglik.to_bits(), via_fresh.loglik.to_bits());
        assert_bits_eq(&via_reused.mean, &via_fresh.mean, "session mean");
    }
}

/// S1 parity: the gradient fan-out evaluated in parallel on the
/// work-stealing pool must give *bitwise-identical* results to the
/// single-threaded evaluation of the same session configuration, for every
/// backend. This pins the determinism guarantee of the execution model: work
/// stealing may move lanes between workers, but every lane computes the same
/// bits, and the parallel `gemm` trailing updates are split so that each
/// output element sees the exact same operation sequence.
fn check_parallel_vs_sequential_session(d: &[f64]) {
    let (model, theta0) = toy_model(1);
    let theta = shifted(&theta0, d);
    let prior = ThetaPrior::weakly_informative(&theta0, 3.0);

    for backend in backends() {
        let mut par_settings = InlaSettings::dalia(1);
        par_settings.backend = backend;
        par_settings.parallel_feval = true;
        let mut seq_settings = par_settings.clone();
        seq_settings.parallel_feval = false;

        let par_session = InlaEngine::builder(&model)
            .prior(prior.clone())
            .settings(par_settings)
            .build()
            .unwrap();
        let seq_session = InlaEngine::builder(&model)
            .prior(prior.clone())
            .settings(seq_settings)
            .build()
            .unwrap();

        let g_par = dalia_core::evaluate_gradient(&par_session, &theta).unwrap();
        let g_seq = dalia_core::evaluate_gradient(&seq_session, &theta).unwrap();

        let tag = format!("parallel-vs-sequential [{backend:?}]");
        assert_eq!(g_par.value.to_bits(), g_seq.value.to_bits(), "{tag}: objective value");
        assert_bits_eq(&g_par.gradient, &g_seq.gradient, &tag);
        assert_eq!(
            g_par.central.logdet_qp.to_bits(),
            g_seq.central.logdet_qp.to_bits(),
            "{tag}: logdet_qp"
        );
        assert_eq!(
            g_par.central.logdet_qc.to_bits(),
            g_seq.central.logdet_qc.to_bits(),
            "{tag}: logdet_qc"
        );
        assert_bits_eq(&g_par.central.mean, &g_seq.central.mean, &tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn stateful_refactorization_is_bitwise_identical(
        d1 in vec(-0.4f64..0.4, 4),
        d2 in vec(-0.4f64..0.4, 4),
    ) {
        check_stateful_refactorization(&d1, &d2);
    }

    #[test]
    fn session_evaluation_reuse_is_bitwise_identical(
        d1 in vec(-0.4f64..0.4, 9),
        d2 in vec(-0.4f64..0.4, 9),
    ) {
        check_session_evaluation_reuse(&d1, &d2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_gradient_is_bitwise_identical_to_sequential(
        d in vec(-0.3f64..0.3, 4),
    ) {
        check_parallel_vs_sequential_session(&d);
    }
}

/// Streaming level: `append_slices` on a fitted window equals a cold full
/// factorization of the extended window at the same pinned θ̂, bit for bit —
/// mean, marginal sds and conditional log-determinant — at 1 and at 4
/// threads. This extends the stateful-reuse contract above to the streaming
/// kernels: the incremental trailing-column elimination must replay exactly
/// the cold kernel sequence, regardless of how the pool schedules it.
#[test]
fn streaming_append_is_bitwise_identical_to_full_refit() {
    let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
    let window_obs = |range: std::ops::Range<usize>| -> Vec<Observation> {
        let mut obs = Vec::new();
        for t in range {
            for &(x, y) in &[(0.25, 0.3), (0.7, 0.55), (0.45, 0.85)] {
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: 0.15 * (t as f64) + 0.1 * x - 0.05 * y,
                });
            }
        }
        obs
    };
    let nt_old = 4;
    let k = 2;
    let old = Arc::new(
        CoregionalModel::new(&mesh, nt_old, 1.0, 1, 1, window_obs(0..nt_old)).unwrap(),
    );
    let mut full_obs = window_obs(0..nt_old);
    full_obs.extend(window_obs(nt_old..nt_old + k));
    let full = Arc::new(
        CoregionalModel::new(&mesh, nt_old + k, 1.0, 1, 1, full_obs).unwrap(),
    );
    let theta0 = ModelHyper::default_for(1, 0.6, 2.0).to_theta();

    for backend in [
        SolverBackend::Bta { partitions: 1, load_balance: 1.0 },
        SolverBackend::Bta { partitions: 3, load_balance: 1.3 },
    ] {
        // Fit the old window once; its θ̂ pins everything downstream.
        let mut settings = InlaSettings::dalia(1);
        settings.backend = backend;
        settings.max_iter = 2;
        let session = InlaEngine::builder(&old)
            .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
            .settings(settings)
            .build()
            .unwrap();
        let result = session.run(&theta0).unwrap();
        let hyper_mode = ModelHyper::from_theta(1, &result.hyper.mode);

        // Full-refit reference: a cold conditional factorization of the
        // extended window at the pinned θ̂ (sequential BTA — the streaming
        // window's factor is monolithic on every BTA backend).
        let mut cold =
            SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&full);
        cold.factorize_conditional(&hyper_mode).unwrap();
        let info = full.information_vector(&hyper_mode, cold.design());
        let ref_mean = cold.solve_mean(&info);
        let ref_sd: Vec<f64> =
            cold.selected_inverse_diag().iter().map(|v| v.max(0.0).sqrt()).collect();
        let ref_logdet = cold.logdet_qc();

        for threads in [1usize, 4] {
            let window = dalia::pool::ThreadPool::new(threads).install(|| {
                let mut w = session.streaming_window(&result).unwrap();
                w.append_slices(k, window_obs(nt_old..nt_old + k)).unwrap();
                w
            });
            let tag = format!("streaming append [{backend:?}, {threads} threads]");
            assert_bits_eq(&window.latent().mean, &ref_mean, &tag);
            assert_bits_eq(&window.latent().sd, &ref_sd, &tag);
            let snap = window.snapshot().unwrap();
            assert_eq!(
                snap.logdet_qc().to_bits(),
                ref_logdet.to_bits(),
                "{tag}: logdet_qc"
            );
        }
    }
}
