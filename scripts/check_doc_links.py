#!/usr/bin/env python3
"""Fail on broken relative links (and broken anchors) in the prose docs.

Coverage: README.md, ROADMAP.md, CHANGES.md, PAPER.md, vendor/README.md,
docs/*.md, and examples/*.md.

Scans markdown inline links and images (``[text](target)`` / ``![alt](target)``)
in the repository's prose documentation. External targets (http/https/mailto)
are ignored; every other target must resolve — after stripping any
``#fragment`` — to an existing file or directory relative to the file that
references it (or to the repository root for absolute-style ``/`` targets).

Fragments are verified too: for ``file.md#anchor`` and same-file ``#anchor``
targets, the fragment must match a heading anchor of the target markdown
file, using GitHub's slug rules (lowercase; markdown formatting stripped;
punctuation other than hyphens/underscores removed; spaces become hyphens; duplicate
slugs get ``-1``, ``-2``, ... suffixes).

Repo paths mentioned in inline code spans are checked as well: a prose doc
that says ``examples/streaming_pollution.rs`` or ``BENCH_stream.json`` names
a file that must exist at the repository root — stale references to renamed
examples, scripts or committed benchmark snapshots fail CI just like broken
links.

Exit code 0 when all links resolve, 1 otherwise (one line per broken link).
Run from anywhere: paths are anchored at this script's parent repository.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
# Inline markdown link/image: [text](target) with no nested parentheses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [
        REPO / "README.md",
        REPO / "ROADMAP.md",
        REPO / "CHANGES.md",
        REPO / "PAPER.md",
        REPO / "vendor" / "README.md",
    ]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    files.extend(sorted((REPO / "examples").glob("*.md")))
    return [f for f in files if f.exists()]


def strip_fences(text: str) -> str:
    """Drop fenced code blocks: their contents are not links or headings."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def strip_code_spans(text: str) -> str:
    """Drop inline code spans: a literal ``[text](file#anchor)`` inside
    backticks is documentation about link syntax, not a link."""
    return re.sub(r"`[^`\n]*`", "", text)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (sans the leading ``#``s)."""
    # Strip inline markdown: code spans, emphasis, links ([text](url) -> text).
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)
    # Emphasis markers only — underscores inside identifiers are kept by
    # GitHub (`DALIA_NUM_THREADS` → dalia_num_threads).
    text = re.sub(r"[*~]", "", text)
    text = text.strip().lower()
    # Keep alphanumerics (unicode), spaces, hyphens and underscores.
    text = "".join(c for c in text if c.isalnum() or c in " -_")
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    """All heading anchors of a markdown file, with -N dedup suffixes."""
    if path in cache:
        return cache[path]
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    for line in strip_fences(path.read_text(encoding="utf-8")).splitlines():
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = anchors
    return anchors


# A code span counts as a repo-path reference when it is a bare relative
# path into one of these roots, or a committed benchmark snapshot.
CODE_PATH_RE = re.compile(
    r"^(?:(?:examples|scripts|docs|crates|vendor|tests)/[\w./-]+\.\w+|BENCH_\w+\.json)$"
)


def code_path_refs(text: str) -> list[str]:
    """Repo file paths referenced in inline code spans of prose markdown."""
    return [
        m.group(1)
        for m in re.finditer(r"`([^`\n]+)`", text)
        if CODE_PATH_RE.match(m.group(1))
    ]


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    text = strip_code_spans(strip_fences(path.read_text(encoding="utf-8")))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        resolved, _, fragment = target.partition("#")
        if resolved:
            base = REPO if resolved.startswith("/") else path.parent
            candidate = (base / resolved.lstrip("/")).resolve()
            if not candidate.exists():
                errors.append(f"{path.relative_to(REPO)}: broken link -> {target}")
                continue
        else:
            candidate = path  # same-file "#fragment" link
        # Verify the fragment against the target's heading anchors (markdown
        # files only: other file types have no well-defined anchor set).
        if fragment and candidate.suffix == ".md":
            if fragment not in anchors_of(candidate, anchor_cache):
                errors.append(f"{path.relative_to(REPO)}: broken anchor -> {target}")
    # Inline-code path references are root-relative (the prose always names
    # them from the repository root, wherever the doc lives).
    for ref in code_path_refs(strip_fences(path.read_text(encoding="utf-8"))):
        if not (REPO / ref).exists():
            errors.append(f"{path.relative_to(REPO)}: missing file reference -> `{ref}`")
    return errors


def main() -> int:
    errors = []
    anchor_cache: dict[Path, set[str]] = {}
    for f in doc_files():
        errors.extend(check_file(f, anchor_cache))
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"doc links OK ({len(doc_files())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
