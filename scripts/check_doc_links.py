#!/usr/bin/env python3
"""Fail on broken relative links in README.md and docs/*.md.

Scans markdown inline links and images (``[text](target)`` / ``![alt](target)``)
in the repository's prose documentation. External targets (http/https/mailto)
are ignored; every other target must resolve — after stripping any
``#fragment`` — to an existing file or directory relative to the file that
references it (or to the repository root for absolute-style ``/`` targets).

Exit code 0 when all links resolve, 1 otherwise (one line per broken link).
Run from anywhere: paths are anchored at this script's parent repository.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
# Inline markdown link/image: [text](target) with no nested parentheses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    # Drop fenced code blocks: their bracket/paren sequences are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        base = REPO if resolved.startswith("/") else path.parent
        candidate = (base / resolved.lstrip("/")).resolve()
        if not candidate.exists():
            errors.append(f"{path.relative_to(REPO)}: broken link -> {target}")
    return errors


def main() -> int:
    errors = []
    for f in doc_files():
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"doc links OK ({len(doc_files())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
