//! Per-host cache-blocking autotuner for the packed level-3 engine.
//!
//! The BLIS-style engine in [`crate::blas`] is governed by three blocking
//! parameters `(MC, KC, NC)` (see [`crate::blas::blocking`]). The best values
//! depend on the host's cache hierarchy and on the active
//! [`KernelTier`] — the hard-coded defaults that
//! served the AVX2 tier at 256³ lose ~2× at 512³ once the packed B panel
//! falls out of L3. This module provides:
//!
//! - a tiny persisted cache file (schema [`TUNE_SCHEMA`]) mapping each tier
//!   to its tuned triple, stored under `target/` by default and overridable
//!   via the `DALIA_TUNE_CACHE` environment variable;
//! - `initial_config`, the read-only lookup the first
//!   [`blocking`](crate::blas::blocking) call uses to seed the process-wide
//!   blocking — any missing, unreadable, corrupt, truncated, or
//!   stale-schema cache falls back to [`default_config`], never a panic;
//! - [`autotune`] / [`autotune_and_persist`], the sweep that measures a
//!   512³ gemm per candidate triple and persists the winner (run by
//!   `kernel_bench`, not by library code — tuning is an explicit,
//!   bench-time act).
//!
//! The cache file is plain text so it stays inspectable and diffable:
//!
//! ```text
//! dalia-tune v1
//! avx2 128 256 512
//! avx512 256 256 512
//! ```

use crate::blas::{self, KernelTier, PackBuffer, Trans};
use crate::matrix::Matrix;
use std::path::{Path, PathBuf};

/// First line of a valid tune-cache file; bump on any format change so stale
/// caches from older builds are ignored (fall back to defaults) rather than
/// misparsed.
pub const TUNE_SCHEMA: &str = "dalia-tune v1";

/// One `(MC, KC, NC)` blocking triple for one kernel tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockConfig {
    /// Rows of the packed op(A) macro-panel (L2-resident).
    pub mc: usize,
    /// Depth of both packed panels.
    pub kc: usize,
    /// Columns of the packed op(B) macro-panel (L3-resident).
    pub nc: usize,
}

/// The built-in blocking every tier starts from when no tuned value is
/// available — the constants the engine shipped with before the autotuner.
pub fn default_config(_tier: KernelTier) -> BlockConfig {
    BlockConfig { mc: 128, kc: 256, nc: 256 }
}

/// Blocking used to seed the process on first use: the persisted tuned value
/// for `tier` when the cache file at [`cache_path`] has one, else
/// [`default_config`]. Any read or parse problem silently falls back.
pub(crate) fn initial_config(tier: KernelTier) -> BlockConfig {
    load_from(&cache_path(), tier).unwrap_or_else(|| default_config(tier))
}

/// Location of the persisted tune cache: `DALIA_TUNE_CACHE` when set and
/// non-empty, else `target/dalia_tune_cache.txt` next to the workspace
/// build artifacts.
pub fn cache_path() -> PathBuf {
    match std::env::var("DALIA_TUNE_CACHE") {
        Ok(p) if !p.trim().is_empty() => PathBuf::from(p),
        _ => PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/dalia_tune_cache.txt"
        )),
    }
}

/// Parse a tune-cache file's contents. Returns `None` unless the first line
/// is exactly [`TUNE_SCHEMA`]; later lines are `"<tier> <mc> <kc> <nc>"`
/// records, and individually malformed lines are skipped (a partial cache is
/// still useful). Values outside `[32, 2048]` invalidate their line.
pub fn parse(contents: &str) -> Option<Vec<(KernelTier, BlockConfig)>> {
    let mut lines = contents.lines();
    if lines.next().map(str::trim) != Some(TUNE_SCHEMA) {
        return None;
    }
    let mut out = Vec::new();
    for line in lines {
        let mut it = line.split_whitespace();
        let (Some(name), Some(mc), Some(kc), Some(nc), None) =
            (it.next(), it.next(), it.next(), it.next(), it.next())
        else {
            continue;
        };
        let Some(tier) = KernelTier::from_name(name) else { continue };
        let (Ok(mc), Ok(kc), Ok(nc)) =
            (mc.parse::<usize>(), kc.parse::<usize>(), nc.parse::<usize>())
        else {
            continue;
        };
        if [mc, kc, nc].iter().any(|&v| !(32..=2048).contains(&v)) {
            continue;
        }
        out.push((tier, BlockConfig { mc, kc, nc }));
    }
    Some(out)
}

/// Read the tuned blocking for `tier` from the cache file at `path`.
/// `None` on any read error, schema mismatch, or missing tier record — the
/// caller falls back to [`default_config`].
pub fn load_from(path: &Path, tier: KernelTier) -> Option<BlockConfig> {
    let contents = std::fs::read_to_string(path).ok()?;
    parse(&contents)?.into_iter().rev().find(|(t, _)| *t == tier).map(|(_, c)| c)
}

/// Serialize `records` in the cache-file format ([`TUNE_SCHEMA`] header plus
/// one line per tier).
pub fn render(records: &[(KernelTier, BlockConfig)]) -> String {
    let mut s = String::from(TUNE_SCHEMA);
    s.push('\n');
    for (tier, c) in records {
        s.push_str(&format!("{} {} {} {}\n", tier.name(), c.mc, c.kc, c.nc));
    }
    s
}

/// Write `records` to the cache file at `path` (parent directories are
/// created as needed). Errors are returned, not panicked, so bench harnesses
/// can degrade to in-memory tuning on read-only checkouts.
pub fn store_at(path: &Path, records: &[(KernelTier, BlockConfig)]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(records))
}

/// Candidate triples swept by [`autotune`]: every combination of
/// `MC ∈ {64, 128, 256}`, `KC ∈ {128, 256, 512}`, `NC ∈ {128, 256, 512}`.
pub fn candidates() -> Vec<BlockConfig> {
    let mut out = Vec::with_capacity(27);
    for mc in [64, 128, 256] {
        for kc in [128, 256, 512] {
            for nc in [128, 256, 512] {
                out.push(BlockConfig { mc, kc, nc });
            }
        }
    }
    out
}

/// Measure one candidate: seconds for a single `C += A·B` at `n`³ under the
/// current process blocking, run single-threaded so the measurement reflects
/// the per-core engine rather than pool scheduling.
fn measure_gemm(n: usize, a: &Matrix, b: &Matrix, c: &mut Matrix, pack: &mut PackBuffer) -> f64 {
    debug_assert_eq!(a.shape(), (n, n));
    let start = std::time::Instant::now();
    blas::gemm_with(pack, Trans::No, Trans::No, 1.0, a, b, 1.0, c);
    start.elapsed().as_secs_f64()
}

/// Sweep [`candidates`] for `tier` on a 512³ gemm (the size where the
/// default blocking falls off L3) and return the fastest triple with its
/// measured GFLOP/s. Forces `tier` for the duration and restores the
/// previous tier and blocking before returning; the winner is **not**
/// installed — callers decide via [`crate::blas::set_blocking`] or
/// [`store_at`].
///
/// Returns `None` when `tier` is unsupported on this host.
pub fn autotune(tier: KernelTier) -> Option<(BlockConfig, f64)> {
    autotune_sized(tier, 512)
}

/// [`autotune`] at an explicit problem size (tests use small sizes).
pub fn autotune_sized(tier: KernelTier, n: usize) -> Option<(BlockConfig, f64)> {
    if !tier.is_supported() {
        return None;
    }
    let prev_tier = blas::kernel_tier();
    let prev_blocking = blas::blocking();
    blas::set_kernel_tier(tier);

    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17 + 3) % 41) as f64 / 20.5 - 1.0);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 29 + 7) % 37) as f64 / 18.5 - 1.0);
    let mut c = Matrix::zeros(n, n);
    let mut pack = PackBuffer::new();
    let flops = blas::gemm_flops(n, n, n);

    // Warm the buffers and the instruction cache once before timing.
    measure_gemm(n, &a, &b, &mut c, &mut pack);

    let pool = dalia_pool::ThreadPool::new(1);
    let mut best: Option<(BlockConfig, f64)> = None;
    for cand in candidates() {
        blas::set_blocking(cand.mc, cand.kc, cand.nc);
        // Single worker: the sweep scores the sequential engine.
        let secs = pool.install(|| measure_gemm(n, &a, &b, &mut c, &mut pack));
        let gflops = flops as f64 / secs / 1e9;
        if best.is_none_or(|(_, g)| gflops > g) {
            best = Some((cand, gflops));
        }
    }

    blas::set_blocking(prev_blocking.0, prev_blocking.1, prev_blocking.2);
    blas::set_kernel_tier(prev_tier);
    best
}

/// Autotune every supported tier, persist the winners to [`cache_path`], and
/// return the records. The process tier and blocking are restored afterwards;
/// call [`crate::blas::set_blocking`] with a returned record to adopt one.
/// Persistence failures are reported but non-fatal (the records still come
/// back for in-memory use).
pub fn autotune_and_persist() -> Vec<(KernelTier, BlockConfig, f64)> {
    let mut records = Vec::new();
    for tier in blas::supported_kernel_tiers() {
        if let Some((cfg, gflops)) = autotune(tier) {
            records.push((tier, cfg, gflops));
        }
    }
    let to_store: Vec<(KernelTier, BlockConfig)> =
        records.iter().map(|&(t, c, _)| (t, c)).collect();
    let path = cache_path();
    if let Err(e) = store_at(&path, &to_store) {
        eprintln!("dalia-la: could not persist tune cache to {}: {e}", path.display());
    }
    records
}

#[cfg(test)]
mod tests {
    // These tests exercise only the pure parse/render/load/store layer: the
    // actual sweep mutates the process-wide blocking, which would race the
    // bitwise and parity tests sharing this test binary. The sweep runs in
    // `kernel_bench` (and its plumbing is covered by the integration test in
    // `crates/la/tests/autotune_cache.rs`, which serializes around it).
    use super::*;

    #[test]
    fn parse_roundtrips_through_render() {
        let records = vec![
            (KernelTier::Portable, BlockConfig { mc: 64, kc: 128, nc: 512 }),
            (KernelTier::Avx2, BlockConfig { mc: 128, kc: 256, nc: 256 }),
            (KernelTier::Avx512, BlockConfig { mc: 256, kc: 512, nc: 512 }),
        ];
        assert_eq!(parse(&render(&records)), Some(records));
    }

    #[test]
    fn parse_rejects_stale_or_missing_schema() {
        assert_eq!(parse(""), None);
        assert_eq!(parse("dalia-tune v0\navx2 128 256 256\n"), None);
        assert_eq!(parse("avx2 128 256 256\n"), None);
    }

    #[test]
    fn parse_skips_malformed_lines_and_out_of_range_values() {
        let contents = "dalia-tune v1\n\
                        avx2 128 256\n\
                        avx2 128 256 256 99\n\
                        sse9 128 256 256\n\
                        avx2 16 256 256\n\
                        avx2 128 256 4096\n\
                        avx2 abc 256 256\n\
                        avx512 256 512 512\n";
        assert_eq!(
            parse(contents),
            Some(vec![(KernelTier::Avx512, BlockConfig { mc: 256, kc: 512, nc: 512 })])
        );
    }

    #[test]
    fn last_record_for_a_tier_wins() {
        let contents = "dalia-tune v1\navx2 64 128 128\navx2 256 512 512\n";
        let parsed = parse(contents).expect("valid schema");
        let found = parsed.into_iter().rev().find(|(t, _)| *t == KernelTier::Avx2);
        assert_eq!(found, Some((KernelTier::Avx2, BlockConfig { mc: 256, kc: 512, nc: 512 })));
    }

    #[test]
    fn load_from_missing_or_corrupt_file_is_none() {
        let dir = std::env::temp_dir().join("dalia_tune_test_corrupt");
        std::fs::create_dir_all(&dir).expect("temp dir");
        assert_eq!(load_from(&dir.join("nonexistent.txt"), KernelTier::Avx2), None);
        let truncated = dir.join("truncated.txt");
        std::fs::write(&truncated, "dalia-tu").expect("write");
        assert_eq!(load_from(&truncated, KernelTier::Avx2), None);
        let binary = dir.join("binary.txt");
        std::fs::write(&binary, [0u8, 159, 146, 150]).expect("write");
        assert_eq!(load_from(&binary, KernelTier::Avx2), None);
    }

    #[test]
    fn store_and_load_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("dalia_tune_test_roundtrip");
        let path = dir.join("nested").join("cache.txt");
        let cfg = BlockConfig { mc: 256, kc: 512, nc: 128 };
        store_at(&path, &[(KernelTier::Portable, cfg)]).expect("store");
        assert_eq!(load_from(&path, KernelTier::Portable), Some(cfg));
        assert_eq!(load_from(&path, KernelTier::Avx2), None);
    }

    #[test]
    fn candidate_grid_is_the_documented_27() {
        let c = candidates();
        assert_eq!(c.len(), 27);
        assert!(c.contains(&BlockConfig { mc: 128, kc: 256, nc: 256 }), "defaults are swept");
    }

    #[test]
    fn default_config_matches_pre_autotuner_constants() {
        for tier in KernelTier::ALL {
            assert_eq!(default_config(tier), BlockConfig { mc: 128, kc: 256, nc: 256 });
        }
    }
}
