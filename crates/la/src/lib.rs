//! # dalia-la — dense linear algebra kernels
//!
//! From-scratch dense column-major linear algebra used throughout the DALIA-RS
//! workspace. It plays the role of the cuBLAS/cuSOLVER block kernels that the
//! original DALIA framework invokes through CuPy on GH200 GPUs:
//!
//! * [`matrix::Matrix`] — column-major dense storage,
//! * [`blas`] — GEMM / SYRK / TRSM / GEMV level-1/2/3 kernels,
//! * [`chol`] — dense Cholesky (POTRF/POTRS), LU, inverses and log-determinants,
//! * [`eigen`] — symmetric Jacobi eigendecomposition (hyperparameter Hessians).
//!
//! All kernels are validated against naive reference implementations plus
//! property-based tests. The only dependency is `dalia-pool`: large `gemm`
//! trailing updates (the reduced-system products of the distributed BTA
//! solver) split their output columns across the work-stealing pool, with
//! results bitwise-identical to the sequential blocked path.

pub mod blas;
pub mod chol;
pub mod eigen;
pub mod matrix;
pub mod tune;

pub use blas::{
    blocking, kernel_tier, set_blocking, set_kernel_tier, supported_kernel_tiers, KernelTier,
    PackBuffer, Side, Trans, Triangle,
};
pub use chol::{
    cholesky, logdet_from_cholesky, potrf, potrf_reference, potrf_with, potrs, potrs_vec,
    spd_inverse, spd_solve_vec,
};
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use matrix::Matrix;

/// Errors produced by the dense kernels.
#[derive(Clone, Debug, PartialEq)]
pub enum LaError {
    /// A Cholesky pivot was non-positive: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// An LU pivot vanished: the matrix is singular to working precision.
    Singular {
        /// Index of the offending pivot.
        pivot: usize,
    },
    /// Dimensions of the operands do not agree.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
}

impl std::fmt::Display for LaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix not positive definite at pivot {pivot} (value {value:.3e})")
            }
            LaError::Singular { pivot } => write!(f, "matrix singular at pivot {pivot}"),
            LaError::DimensionMismatch { context } => write!(f, "dimension mismatch: {context}"),
        }
    }
}

impl std::error::Error for LaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LaError::NotPositiveDefinite { pivot: 3, value: -1.0 };
        assert!(e.to_string().contains("pivot 3"));
        let s = LaError::Singular { pivot: 1 };
        assert!(s.to_string().contains("singular"));
        let d = LaError::DimensionMismatch { context: "gemm".into() };
        assert!(d.to_string().contains("gemm"));
    }
}
