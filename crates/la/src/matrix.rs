//! Column-major dense matrix type used by every other crate in the workspace.
//!
//! The storage layout intentionally matches LAPACK conventions (column major,
//! leading dimension = number of rows) so that the block kernels in
//! [`crate::blas`] and [`crate::chol`] translate directly from the textbook
//! formulations used by the DALIA paper's GPU kernels.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Dense column-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Matrix filled with a constant value.
    pub fn filled(nrows: usize, ncols: usize, value: f64) -> Self {
        Self { nrows, ncols, data: vec![value; nrows * ncols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Build from a closure `f(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build from row-major nested slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut m = Self::zeros(nrows, ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build from a column-major data vector.
    pub fn from_col_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "data length mismatch");
        Self { nrows, ncols, data }
    }

    /// Column vector from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Self::from_col_major(v.len(), 1, v.to_vec())
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A single column as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// A single column as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        let n = self.nrows;
        &mut self.data[j * n..(j + 1) * n]
    }

    /// Copy of row `i`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.ncols).map(|j| self[(i, j)]).collect()
    }

    /// Diagonal entries (up to `min(nrows, ncols)`).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols)).map(|i| self[(i, i)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Set every entry to zero without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Set every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// `self += alpha * other` (entry-wise).
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Shape as `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Extract the sub-matrix `rows x cols` starting at `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.nrows && c0 + cols <= self.ncols, "block out of range");
        let mut b = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                b[(i, j)] = self[(r0 + i, c0 + j)];
            }
        }
        b
    }

    /// Write `block` into `self` at offset `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.nrows <= self.nrows && c0 + block.ncols <= self.ncols,
            "set_block out of range"
        );
        for j in 0..block.ncols {
            for i in 0..block.nrows {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// `self[r0.., c0..] += alpha * block`.
    pub fn add_block(&mut self, r0: usize, c0: usize, alpha: f64, block: &Matrix) {
        assert!(
            r0 + block.nrows <= self.nrows && c0 + block.ncols <= self.ncols,
            "add_block out of range"
        );
        for j in 0..block.ncols {
            for i in 0..block.nrows {
                self[(r0 + i, c0 + j)] += alpha * block[(i, j)];
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Symmetrize in place: `A = (A + A^T) / 2`. Requires a square matrix.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for j in 0..self.ncols {
            for i in (j + 1)..self.nrows {
                let s = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = s;
                self[(j, i)] = s;
            }
        }
    }

    /// Mirror the lower triangle into the upper triangle.
    pub fn mirror_lower(&mut self) {
        assert!(self.is_square());
        for j in 0..self.ncols {
            for i in (j + 1)..self.nrows {
                self[(j, i)] = self[(i, j)];
            }
        }
    }

    /// Zero the strict upper triangle (keep lower + diagonal).
    pub fn zero_upper(&mut self) {
        assert!(self.is_square());
        for j in 0..self.ncols {
            for i in 0..j {
                self[(i, j)] = 0.0;
            }
        }
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square());
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |acc, (a, b)| acc.max((a - b).abs()))
    }

    /// `true` when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &self.data[j * self.nrows + i]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &mut self.data[j * self.nrows + i]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.nrows, self.ncols)?;
        let max_show = 8;
        for i in 0..self.nrows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(max_show) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.ncols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.nrows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        let mut out = self.clone();
        out.axpy(1.0, rhs);
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        let mut out = self.clone();
        out.axpy(-1.0, rhs);
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs);
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        let mut out = self.clone();
        out.scale(-1.0);
        out
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        crate::blas::matmul(self, rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(rhs);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.shape(), (3, 2));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn indexing_is_column_major() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn block_get_set() {
        let mut m = Matrix::zeros(4, 4);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.set_block(1, 2, &b);
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 3)], 4.0);
        let back = m.block(1, 2, 2, 2);
        assert_eq!(back, b);
    }

    #[test]
    fn add_block_accumulates() {
        let mut m = Matrix::filled(2, 2, 1.0);
        let b = Matrix::identity(2);
        m.add_block(0, 0, 2.0, &b);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(0, 1)], 1.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let s = &a + &b;
        assert_eq!(s[(0, 0)], 2.0);
        let d = &s - &b;
        assert_eq!(d, a);
        let n = -&a;
        assert_eq!(n[(1, 1)], -4.0);
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 0)], 6.0);
    }

    #[test]
    fn symmetrize_and_mirror() {
        let mut m = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0]]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(1, 0)], 4.0);

        let mut l = Matrix::from_rows(&[&[1.0, 0.0], &[7.0, 2.0]]);
        l.mirror_lower();
        assert_eq!(l[(0, 1)], 7.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-14);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn diag_extraction() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 5.0, 0.0]]);
        assert_eq!(m.diag(), vec![1.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn block_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.block(1, 1, 2, 2);
    }
}
