//! BLAS-like dense kernels (level 1/2/3) on [`Matrix`].
//!
//! These are straightforward cache-aware loops rather than hand-tuned SIMD
//! kernels: the DALIA algorithms only need *correct* block kernels with the
//! standard operation counts — absolute throughput is handled by the
//! performance model in `dalia-hpc`.

use crate::matrix::Matrix;

/// Transposition flag for level-3 kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Which triangle of a triangular operand is referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Triangle {
    Lower,
    Upper,
}

/// Side of a triangular solve (`AX = B` vs `XA = B`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` for slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// General matrix-vector product `y = alpha * op(A) x + beta * y`.
pub fn gemv(trans: Trans, alpha: f64, a: &Matrix, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.shape();
    match trans {
        Trans::No => {
            assert_eq!(x.len(), n, "gemv: x length mismatch");
            assert_eq!(y.len(), m, "gemv: y length mismatch");
            for yi in y.iter_mut() {
                *yi *= beta;
            }
            for j in 0..n {
                let xj = alpha * x[j];
                if xj != 0.0 {
                    axpy(xj, a.col(j), y);
                }
            }
        }
        Trans::Yes => {
            assert_eq!(x.len(), m, "gemv^T: x length mismatch");
            assert_eq!(y.len(), n, "gemv^T: y length mismatch");
            for (j, yj) in y.iter_mut().enumerate() {
                *yj = beta * *yj + alpha * dot(a.col(j), x);
            }
        }
    }
}

/// Convenience: `A x` as a new vector.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    gemv(Trans::No, 1.0, a, x, 0.0, &mut y);
    y
}

/// Convenience: `A^T x` as a new vector.
pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.ncols()];
    gemv(Trans::Yes, 1.0, a, x, 0.0, &mut y);
    y
}

/// General matrix-matrix product `C = alpha * op(A) op(B) + beta * C`.
///
/// The inner loops are arranged so the innermost traversal is down columns
/// (contiguous in the column-major layout).
pub fn gemm(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (am, an) = a.shape();
    let (bm, bn) = b.shape();
    let (opa_m, opa_k) = match trans_a {
        Trans::No => (am, an),
        Trans::Yes => (an, am),
    };
    let (opb_k, opb_n) = match trans_b {
        Trans::No => (bm, bn),
        Trans::Yes => (bn, bm),
    };
    assert_eq!(opa_k, opb_k, "gemm: inner dimension mismatch");
    assert_eq!(c.shape(), (opa_m, opb_n), "gemm: output shape mismatch");

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    let k = opa_k;

    match (trans_a, trans_b) {
        (Trans::No, Trans::No) => {
            // C[:, j] += alpha * A[:, l] * B[l, j]
            for j in 0..opb_n {
                for l in 0..k {
                    let blj = alpha * b[(l, j)];
                    if blj != 0.0 {
                        axpy(blj, a.col(l), c.col_mut(j));
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C[i, j] += alpha * dot(A[:, i], B[:, j])
            for j in 0..opb_n {
                let bcol = b.col(j);
                for i in 0..opa_m {
                    c[(i, j)] += alpha * dot(a.col(i), bcol);
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C[:, j] += alpha * A[:, l] * B[j, l]
            for j in 0..opb_n {
                for l in 0..k {
                    let bjl = alpha * b[(j, l)];
                    if bjl != 0.0 {
                        axpy(bjl, a.col(l), c.col_mut(j));
                    }
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            // C[i, j] += alpha * dot(A[:, i], B[j, :]) — fall back to explicit loop.
            for j in 0..opb_n {
                for i in 0..opa_m {
                    let mut s = 0.0;
                    for l in 0..k {
                        s += a[(l, i)] * b[(j, l)];
                    }
                    c[(i, j)] += alpha * s;
                }
            }
        }
    }
}

/// `A * B` as a new matrix.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, &mut c);
    c
}

/// Symmetric rank-k update restricted to the lower triangle:
/// `C := alpha * op(A) op(A)^T + beta * C` (only the lower triangle of C is written).
pub fn syrk_lower(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let n = match trans {
        Trans::No => a.nrows(),
        Trans::Yes => a.ncols(),
    };
    let k = match trans {
        Trans::No => a.ncols(),
        Trans::Yes => a.nrows(),
    };
    assert_eq!(c.shape(), (n, n), "syrk: output must be n x n");
    // Scale lower triangle of C by beta.
    for j in 0..n {
        for i in j..n {
            c[(i, j)] *= beta;
        }
    }
    match trans {
        Trans::No => {
            for l in 0..k {
                let col = a.col(l);
                for j in 0..n {
                    let ajl = alpha * col[j];
                    if ajl != 0.0 {
                        for i in j..n {
                            c[(i, j)] += ajl * col[i];
                        }
                    }
                }
            }
        }
        Trans::Yes => {
            for j in 0..n {
                for i in j..n {
                    c[(i, j)] += alpha * dot(a.col(i), a.col(j));
                }
            }
        }
    }
}

/// Full symmetric rank-k update (both triangles written), convenience wrapper.
pub fn syrk_full(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    syrk_lower(trans, alpha, a, beta, c);
    c.mirror_lower();
}

/// Triangular solve with multiple right-hand sides.
///
/// Solves `op(A) X = B` (`Side::Left`) or `X op(A) = B` (`Side::Right`) in
/// place on `b`, where `A` is triangular (only the triangle indicated by
/// `uplo` is referenced; the other triangle is assumed zero).
pub fn trsm(side: Side, uplo: Triangle, trans: Trans, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square(), "trsm: A must be square");
    let n = a.nrows();
    match side {
        Side::Left => {
            assert_eq!(b.nrows(), n, "trsm-left: dimension mismatch");
            let ncols = b.ncols();
            for j in 0..ncols {
                let col = b.col_mut(j);
                trsv_in_place(uplo, trans, a, col);
            }
            let _ = ncols;
        }
        Side::Right => {
            assert_eq!(b.ncols(), n, "trsm-right: dimension mismatch");
            // X op(A) = B  <=>  op(A)^T X^T = B^T.
            // Solve row by row: for each row r of B, solve op(A)^T x = r.
            let flipped = match trans {
                Trans::No => Trans::Yes,
                Trans::Yes => Trans::No,
            };
            let m = b.nrows();
            let mut row = vec![0.0; n];
            for i in 0..m {
                for j in 0..n {
                    row[j] = b[(i, j)];
                }
                trsv_in_place(uplo, flipped, a, &mut row);
                for j in 0..n {
                    b[(i, j)] = row[j];
                }
            }
        }
    }
}

/// Triangular solve for a single vector: solves `op(A) x = b` in place.
pub fn trsv_in_place(uplo: Triangle, trans: Trans, a: &Matrix, x: &mut [f64]) {
    let n = a.nrows();
    assert_eq!(x.len(), n, "trsv: dimension mismatch");
    match (uplo, trans) {
        (Triangle::Lower, Trans::No) => {
            // Forward substitution.
            for i in 0..n {
                let mut s = x[i];
                for k in 0..i {
                    s -= a[(i, k)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
        (Triangle::Lower, Trans::Yes) => {
            // Backward substitution with L^T (upper triangular).
            for i in (0..n).rev() {
                let mut s = x[i];
                for k in (i + 1)..n {
                    s -= a[(k, i)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
        (Triangle::Upper, Trans::No) => {
            for i in (0..n).rev() {
                let mut s = x[i];
                for k in (i + 1)..n {
                    s -= a[(i, k)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
        (Triangle::Upper, Trans::Yes) => {
            for i in 0..n {
                let mut s = x[i];
                for k in 0..i {
                    s -= a[(k, i)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
    }
}

/// Triangular matrix-matrix multiply `B := op(A) B` with `A` triangular
/// (referenced triangle given by `uplo`). Only `Side::Left` is needed by the
/// solver stack.
pub fn trmm_left(uplo: Triangle, trans: Trans, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square());
    let n = a.nrows();
    assert_eq!(b.nrows(), n);
    let mut tmp = vec![0.0; n];
    for j in 0..b.ncols() {
        {
            let col = b.col(j);
            for i in 0..n {
                let mut s = 0.0;
                match (uplo, trans) {
                    (Triangle::Lower, Trans::No) => {
                        for k in 0..=i {
                            s += a[(i, k)] * col[k];
                        }
                    }
                    (Triangle::Lower, Trans::Yes) => {
                        for k in i..n {
                            s += a[(k, i)] * col[k];
                        }
                    }
                    (Triangle::Upper, Trans::No) => {
                        for k in i..n {
                            s += a[(i, k)] * col[k];
                        }
                    }
                    (Triangle::Upper, Trans::Yes) => {
                        for k in 0..=i {
                            s += a[(k, i)] * col[k];
                        }
                    }
                }
                tmp[i] = s;
            }
        }
        b.col_mut(j).copy_from_slice(&tmp);
    }
}

/// Number of floating-point operations for a `m x k` by `k x n` GEMM.
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b) < tol
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn gemv_no_trans() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = matvec(&a, &[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn gemv_trans() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = matvec_t(&a, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![9.0, 12.0]);
    }

    #[test]
    fn gemm_all_transposes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]); // 3x2
        let expected = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);

        let c = matmul(&a, &b);
        assert!(approx_eq(&c, &expected, 1e-12));

        // A^T variant: (A^T)^T B = A B.
        let at = a.transpose();
        let mut c2 = Matrix::zeros(2, 2);
        gemm(Trans::Yes, Trans::No, 1.0, &at, &b, 0.0, &mut c2);
        assert!(approx_eq(&c2, &expected, 1e-12));

        // B^T variant.
        let bt = b.transpose();
        let mut c3 = Matrix::zeros(2, 2);
        gemm(Trans::No, Trans::Yes, 1.0, &a, &bt, 0.0, &mut c3);
        assert!(approx_eq(&c3, &expected, 1e-12));

        // Both transposed.
        let mut c4 = Matrix::zeros(2, 2);
        gemm(Trans::Yes, Trans::Yes, 1.0, &at, &bt, 0.0, &mut c4);
        assert!(approx_eq(&c4, &expected, 1e-12));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::filled(2, 2, 10.0);
        gemm(Trans::No, Trans::No, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 7.0); // 2*1 + 0.5*10
        assert_eq!(c[(1, 1)], 13.0); // 2*4 + 0.5*10
    }

    #[test]
    fn syrk_matches_gemm() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut c = Matrix::zeros(3, 3);
        syrk_full(Trans::No, 1.0, &a, 0.0, &mut c);
        let expected = matmul(&a, &a.transpose());
        assert!(approx_eq(&c, &expected, 1e-12));

        let mut ct = Matrix::zeros(2, 2);
        syrk_full(Trans::Yes, 1.0, &a, 0.0, &mut ct);
        let expected_t = matmul(&a.transpose(), &a);
        assert!(approx_eq(&ct, &expected_t, 1e-12));
    }

    #[test]
    fn trsv_lower_and_upper() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let mut x = vec![4.0, 11.0];
        trsv_in_place(Triangle::Lower, Trans::No, &l, &mut x);
        assert!((x[0] - 2.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);

        // L^T x = b.
        let mut y = vec![7.0, 9.0];
        trsv_in_place(Triangle::Lower, Trans::Yes, &l, &mut y);
        // L^T = [[2,1],[0,3]]; solve: x1 = 3, x0 = (7-3)/2 = 2.
        assert!((y[0] - 2.0).abs() < 1e-14);
        assert!((y[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn trsm_left_lower() {
        let l = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut b = matmul(&l, &x_true);
        trsm(Side::Left, Triangle::Lower, Trans::No, &l, &mut b);
        assert!(approx_eq(&b, &x_true, 1e-12));
    }

    #[test]
    fn trsm_right_lower_transpose() {
        // Solve X L^T = B, the operation used in block Cholesky (B_i L_ii^{-T}).
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut b = matmul(&x_true, &l.transpose());
        trsm(Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b);
        assert!(approx_eq(&b, &x_true, 1e-12));
    }

    #[test]
    fn trmm_left_lower() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = x.clone();
        trmm_left(Triangle::Lower, Trans::No, &l, &mut b);
        let expected = matmul(&l, &x);
        assert!(approx_eq(&b, &expected, 1e-12));

        let mut bt = x.clone();
        trmm_left(Triangle::Lower, Trans::Yes, &l, &mut bt);
        let expected_t = matmul(&l.transpose(), &x);
        assert!(approx_eq(&bt, &expected_t, 1e-12));
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }
}
