//! BLAS-like dense kernels (level 1/2/3) on [`Matrix`].
//!
//! The level-3 kernels (`gemm`, `syrk_lower`, `trsm`) are cache-blocked,
//! register-tiled implementations in the BLIS/GotoBLAS style: operand panels
//! are packed into contiguous buffers held in a reusable [`PackBuffer`]
//! workspace, and the innermost computation is an `MR × NR` micro-kernel
//! written so LLVM auto-vectorizes it. Small problems (all three operands
//! comfortably cache-resident) skip the packing machinery and run the plain
//! loops retained in [`mod@reference`], which also serve as the ground truth for
//! the parity test-suites and the `kernel_bench` before/after comparison.
//!
//! The blocking scheme and its performance model are documented in
//! `docs/performance.md` at the repository root.

use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Once;

/// Transposition flag for level-3 kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Which triangle of a triangular operand is referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Triangle {
    Lower,
    Upper,
}

/// Side of a triangular solve (`AX = B` vs `XA = B`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` for slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// General matrix-vector product `y = alpha * op(A) x + beta * y`.
pub fn gemv(trans: Trans, alpha: f64, a: &Matrix, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = a.shape();
    match trans {
        Trans::No => {
            assert_eq!(x.len(), n, "gemv: x length mismatch");
            assert_eq!(y.len(), m, "gemv: y length mismatch");
            for yi in y.iter_mut() {
                *yi *= beta;
            }
            for j in 0..n {
                let xj = alpha * x[j];
                if xj != 0.0 {
                    axpy(xj, a.col(j), y);
                }
            }
        }
        Trans::Yes => {
            assert_eq!(x.len(), m, "gemv^T: x length mismatch");
            assert_eq!(y.len(), n, "gemv^T: y length mismatch");
            for (j, yj) in y.iter_mut().enumerate() {
                *yj = beta * *yj + alpha * dot(a.col(j), x);
            }
        }
    }
}

/// Convenience: `A x` as a new vector.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    gemv(Trans::No, 1.0, a, x, 0.0, &mut y);
    y
}

/// Convenience: `A^T x` as a new vector.
pub fn matvec_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.ncols()];
    gemv(Trans::Yes, 1.0, a, x, 0.0, &mut y);
    y
}

// ---------------------------------------------------------------------------
// Cache-blocked level-3 engine.
// ---------------------------------------------------------------------------

/// Widest micro-tile rows any tier uses (the AVX-512 tile is 16×8); the
/// shared stack accumulator is sized for it, narrower tiers use a prefix.
const MAX_MR: usize = 16;
/// Widest micro-tile columns any tier uses.
const MAX_NR: usize = 8;
/// Length of the stack accumulator shared by every micro-kernel tier.
const ACC_LEN: usize = MAX_MR * MAX_NR;
/// Block size for the triangular kernels (`trsm` diagonal blocks, `potrf`
/// panels).
pub(crate) const TB: usize = 64;
/// Problems below this flop count (`m·n·k`) skip packing entirely: all three
/// operands are cache-resident and the plain loops win on overhead.
const NAIVE_MAX_FLOPS: usize = 32 * 32 * 32;

/// Instruction-set tier of the innermost register tile, selected at runtime.
///
/// The process-wide default is the widest tier the CPU supports;
/// `DALIA_KERNEL_TIER={portable,avx2,avx512}` forces a specific tier (falling
/// back, with a stderr warning, to the best supported tier when the requested
/// one is unavailable), and [`set_kernel_tier`] overrides it from code. All
/// tiers compute the same per-element operation sequence up to FMA
/// contraction (last-ulp differences), and every supported tier is pinned
/// against the reference loops by the forced-dispatch parity wall in
/// `crates/la/tests/proptest_kernels.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelTier {
    /// Auto-vectorized portable Rust, 8×4 tile — the only tier off x86-64.
    Portable,
    /// AVX2+FMA intrinsics, 8×4 tile (two 4-wide accumulator chains per column).
    Avx2,
    /// AVX-512F intrinsics, 16×8 tile (two 8-wide accumulator chains per column).
    Avx512,
}

impl KernelTier {
    /// Every tier, narrowest first.
    pub const ALL: [KernelTier; 3] = [KernelTier::Portable, KernelTier::Avx2, KernelTier::Avx512];

    /// Stable lowercase name: the `DALIA_KERNEL_TIER` value and the
    /// autotuner cache-file key (see [`crate::tune`]).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Portable => "portable",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    /// Parse a tier name as accepted by `DALIA_KERNEL_TIER` (case-insensitive).
    pub fn from_name(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "portable" => Some(KernelTier::Portable),
            "avx2" => Some(KernelTier::Avx2),
            "avx512" => Some(KernelTier::Avx512),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this tier.
    pub fn is_supported(self) -> bool {
        match self {
            KernelTier::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// The tiers the running CPU supports, narrowest first.
pub fn supported_kernel_tiers() -> Vec<KernelTier> {
    KernelTier::ALL.into_iter().filter(|t| t.is_supported()).collect()
}

fn best_supported_tier() -> KernelTier {
    if KernelTier::Avx512.is_supported() {
        KernelTier::Avx512
    } else if KernelTier::Avx2.is_supported() {
        KernelTier::Avx2
    } else {
        KernelTier::Portable
    }
}

/// Resolved micro-kernel tier (`KernelTier as u8`); `u8::MAX` = unresolved.
static KERNEL_TIER: AtomicU8 = AtomicU8::new(u8::MAX);

/// The micro-kernel tier every blocked kernel currently dispatches to.
///
/// Resolved on first use: the `DALIA_KERNEL_TIER` override if set and
/// supported, else the widest supported tier.
pub fn kernel_tier() -> KernelTier {
    match KERNEL_TIER.load(Ordering::Relaxed) {
        0 => KernelTier::Portable,
        1 => KernelTier::Avx2,
        2 => KernelTier::Avx512,
        _ => {
            let tier = resolve_tier_from_env();
            KERNEL_TIER.store(tier as u8, Ordering::Relaxed);
            tier
        }
    }
}

fn resolve_tier_from_env() -> KernelTier {
    let best = best_supported_tier();
    match std::env::var("DALIA_KERNEL_TIER") {
        Ok(v) if !v.trim().is_empty() => match KernelTier::from_name(&v) {
            Some(t) if t.is_supported() => t,
            Some(t) => {
                eprintln!(
                    "dalia-la: DALIA_KERNEL_TIER={} is not supported on this CPU; using {}",
                    t.name(),
                    best.name()
                );
                best
            }
            None => {
                eprintln!(
                    "dalia-la: unknown DALIA_KERNEL_TIER value {v:?} \
                     (expected portable|avx2|avx512); using {}",
                    best.name()
                );
                best
            }
        },
        _ => best,
    }
}

/// Force the micro-kernel tier for the whole process. Returns `false` (and
/// changes nothing) when the CPU does not support `tier` — which is how the
/// forced-dispatch parity tests self-skip unsupported tiers.
pub fn set_kernel_tier(tier: KernelTier) -> bool {
    if !tier.is_supported() {
        return false;
    }
    KERNEL_TIER.store(tier as u8, Ordering::Relaxed);
    true
}

/// Runtime cache-blocking parameters, seeded lazily from the persisted
/// autotuner cache (see [`crate::tune`]); `0` = unseeded.
static BLOCK_MC: AtomicUsize = AtomicUsize::new(0);
static BLOCK_KC: AtomicUsize = AtomicUsize::new(0);
static BLOCK_NC: AtomicUsize = AtomicUsize::new(0);
static BLOCK_SEED: Once = Once::new();

/// Current `(MC, KC, NC)` cache blocking of the packed engine: MC rows of
/// packed op(A) panel (sized for L2), KC panel depth, NC columns of packed
/// op(B) panel (sized for L3).
///
/// The first call seeds the values for the active [`kernel_tier`] from the
/// per-host autotuner cache file (see [`crate::tune`]); a missing, corrupt,
/// or stale-schema cache falls back to the built-in defaults.
/// [`set_blocking`] overrides the values for the whole process.
pub fn blocking() -> (usize, usize, usize) {
    BLOCK_SEED.call_once(|| {
        let cfg = crate::tune::initial_config(kernel_tier());
        store_blocking(cfg.mc, cfg.kc, cfg.nc);
    });
    (
        BLOCK_MC.load(Ordering::Relaxed),
        BLOCK_KC.load(Ordering::Relaxed),
        BLOCK_NC.load(Ordering::Relaxed),
    )
}

/// Override the `(MC, KC, NC)` cache blocking for the whole process; values
/// are clamped to `[32, 2048]`. Used by the autotuner sweep and the benches.
pub fn set_blocking(mc: usize, kc: usize, nc: usize) {
    BLOCK_SEED.call_once(|| {});
    store_blocking(mc, kc, nc);
}

/// Clamp a candidate `(MC, KC, NC)` triple to the sane range `[32, 2048]`.
fn clamp_blocking(mc: usize, kc: usize, nc: usize) -> (usize, usize, usize) {
    (mc.clamp(32, 2048), kc.clamp(32, 2048), nc.clamp(32, 2048))
}

fn store_blocking(mc: usize, kc: usize, nc: usize) {
    let (mc, kc, nc) = clamp_blocking(mc, kc, nc);
    BLOCK_MC.store(mc, Ordering::Relaxed);
    BLOCK_KC.store(kc, Ordering::Relaxed);
    BLOCK_NC.store(nc, Ordering::Relaxed);
}

/// Byte cap per packed-panel cache side (A panels / B panels); least
/// recently used entries are evicted past it.
const PANEL_CACHE_BYTES: usize = 64 << 20;

/// Maximum spare (evicted) panel buffers retained for recycling.
const PANEL_SPARE_MAX: usize = 32;

/// Identity of one cached packed panel: the absolute byte address of its
/// first source element plus the layout that produced it. Two fetches with
/// equal keys in the same epoch read the same bytes of a registered stable
/// region with the same strides, depth, width, and micro-tile grouping —
/// hence pack to bitwise identical buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PanelKey {
    addr: usize,
    rs: usize,
    cs: usize,
    kc: usize,
    nc: usize,
    tile: usize,
    epoch: u64,
}

#[derive(Debug)]
struct PanelEntry {
    key: PanelKey,
    /// Byte extent `[lo, hi)` of the source elements this panel reads.
    lo: usize,
    hi: usize,
    /// LRU stamp (monotone fetch clock).
    stamp: u64,
    /// Fingerprint of the source values at pack time, re-checked on every
    /// debug-build hit to catch stale-registration bugs.
    fp: u64,
    buf: Vec<f64>,
}

#[derive(Debug, Default)]
struct PanelStore {
    entries: Vec<PanelEntry>,
    bytes: usize,
    spare: Vec<Vec<f64>>,
}

impl PanelStore {
    fn recycle(&mut self, buf: Vec<f64>) {
        if self.spare.len() < PANEL_SPARE_MAX {
            self.spare.push(buf);
        }
    }

    fn clear(&mut self) {
        let drained: Vec<PanelEntry> = self.entries.drain(..).collect();
        for e in drained {
            self.recycle(e.buf);
        }
        self.bytes = 0;
    }

    fn evict_overlapping(&mut self, lo: usize, hi: usize) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].lo < hi && lo < self.entries[i].hi {
                let e = self.entries.swap_remove(i);
                self.bytes -= e.buf.len() * std::mem::size_of::<f64>();
                self.recycle(e.buf);
            } else {
                i += 1;
            }
        }
    }
}

/// Shared bookkeeping of the panel cache. The fetch path holds one panel
/// store mutably while this metadata is only read, so the clock and the
/// hit/miss counters are atomics bumped through a shared borrow.
#[derive(Debug, Default)]
struct CacheMeta {
    enabled: bool,
    epoch: u64,
    /// Byte ranges registered as stable (write-once-then-read per epoch).
    regions: Vec<(usize, usize)>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheMeta {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Reusable packing workspace for the blocked level-3 kernels.
///
/// Holds the contiguous buffers the blocked `gemm` / `syrk` / `trsm` /
/// `potrf` kernels pack operand panels into, so a hot loop that calls them
/// through the `*_with` entry points allocates nothing after the first
/// factorization warms the buffers up. The stateful solver sessions in
/// `dalia-core` own one `PackBuffer` per solver and thread it through
/// `serinv`'s `pobtaf_with` / `pobtasi_with`.
///
/// With [`PackBuffer::enable_panel_reuse`] the workspace additionally keeps a
/// keyed cache of packed panels: once a caller registers operand storage as
/// *stable* (written once, then only read, until the next registration or
/// [`PackBuffer::invalidate_panels`]), every panel packed from that storage
/// is cached and later fetches of the same panel skip re-packing — e.g. the
/// `L_ii` panels shared by the sub-diagonal and arrow `trsm`s of a BTA
/// factorization, or the factor panels shared by repeated `pobtas` /
/// `pobtasi` sweeps on an unchanged factor. See `docs/performance.md`.
#[derive(Debug, Default)]
pub struct PackBuffer {
    /// Packed `MC × KC` panel of op(A), micro-panels of `MR` rows.
    a_pack: Vec<f64>,
    /// Packed `KC × NC` panel of op(B), micro-panels of `NR` columns.
    b_pack: Vec<f64>,
    /// Dense scratch for triangular-block staging (trsm right-hand-side
    /// panels, potrf diagonal blocks).
    pub(crate) scratch: Vec<f64>,
    meta: CacheMeta,
    cache_a: PanelStore,
    cache_b: PanelStore,
}

impl PackBuffer {
    /// Empty workspace; buffers are grown lazily by the first blocked call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn the keyed packed-panel cache on or off (off by default, so plain
    /// entry points and transient workspaces carry zero overhead). Turning
    /// it off also drops all cached panels and registrations.
    pub fn enable_panel_reuse(&mut self, enabled: bool) {
        if self.meta.enabled && !enabled {
            self.invalidate_panels();
        }
        self.meta.enabled = enabled;
    }

    /// Whether the keyed packed-panel cache is on.
    pub fn panel_reuse_enabled(&self) -> bool {
        self.meta.enabled
    }

    /// Drop every cached panel and registered stable region. Callers that
    /// rewrite operand values in place (the solver workspaces on every
    /// re-assembly / re-weighting) invalidate before the rewrite.
    pub fn invalidate_panels(&mut self) {
        self.meta.epoch += 1;
        self.meta.regions.clear();
        self.cache_a.clear();
        self.cache_b.clear();
    }

    /// Register `data` as stable: from now until the next registration of an
    /// overlapping range or [`PackBuffer::invalidate_panels`], each element
    /// read by a kernel is promised final at the time it is first packed.
    /// Fresh registration drops cached panels overlapping the range (the
    /// caller is about to overwrite the values).
    pub fn register_stable(&mut self, data: &[f64]) {
        self.register_region(data, true);
    }

    /// Like [`PackBuffer::register_stable`], but when the exact byte range
    /// is already registered its cached panels survive — the caller promises
    /// the values have not changed since the last registration (the
    /// `pobtaf → pobtas → pobtasi` chain on one factor).
    pub fn register_stable_readonly(&mut self, data: &[f64]) {
        self.register_region(data, false);
    }

    fn register_region(&mut self, data: &[f64], fresh: bool) {
        if !self.meta.enabled || data.is_empty() {
            return;
        }
        let lo = data.as_ptr() as usize;
        let hi = lo + std::mem::size_of_val(data);
        let known = self.meta.regions.contains(&(lo, hi));
        if known && !fresh {
            return;
        }
        if !known {
            self.meta.regions.push((lo, hi));
        }
        self.cache_a.evict_overlapping(lo, hi);
        self.cache_b.evict_overlapping(lo, hi);
    }

    /// `(hits, misses)` of the panel cache. Only cache-eligible fetches
    /// (source inside a registered stable region) count, so a warm steady
    /// state shows a zero miss delta.
    pub fn panel_stats(&self) -> (u64, u64) {
        (self.meta.hits.load(Ordering::Relaxed), self.meta.misses.load(Ordering::Relaxed))
    }
}

/// Read-only strided view of `op(X)` for a column-major operand: element
/// `(i, j)` lives at `data[off + i * rs + j * cs]`. A transpose is just a
/// stride swap, which lets one packing routine serve all `Trans` cases.
#[derive(Clone, Copy)]
pub(crate) struct StridedRef<'a> {
    pub(crate) data: &'a [f64],
    pub(crate) off: usize,
    pub(crate) rs: usize,
    pub(crate) cs: usize,
}

impl<'a> StridedRef<'a> {
    #[inline(always)]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.off + i * self.rs + j * self.cs]
    }

    /// View shifted down by `di` rows and right by `dj` columns.
    fn shifted(mut self, di: usize, dj: usize) -> Self {
        self.off += di * self.rs + dj * self.cs;
        self
    }

    /// Transposed view (stride swap).
    fn transposed(mut self) -> Self {
        std::mem::swap(&mut self.rs, &mut self.cs);
        self
    }
}

/// Strided view of `op(a)`.
fn op_ref(a: &Matrix, trans: Trans) -> StridedRef<'_> {
    let ld = a.nrows();
    match trans {
        Trans::No => StridedRef { data: a.as_slice(), off: 0, rs: 1, cs: ld },
        Trans::Yes => StridedRef { data: a.as_slice(), off: 0, rs: ld, cs: 1 },
    }
}

/// Pack the `kc × nc` panel of `src` starting at `(p0, j0)` into `buf` as
/// depth-major micro-panels of `tile` columns (`buf[pj*tile*kc + p*tile + c]`),
/// zero-padded to a multiple of `tile` columns so the micro-kernel never
/// needs an edge case. The A side packs through a transposed view — an A
/// micro-panel of `MR` rows is exactly a B-style micro-panel of `MR` columns
/// of op(A)ᵀ — so this one routine serves both operands of every kernel.
fn pack_panel(
    src: StridedRef<'_>,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    tile: usize,
    buf: &mut Vec<f64>,
) {
    let panels = nc.div_ceil(tile);
    buf.clear();
    buf.resize(panels * tile * kc, 0.0);
    for pj in 0..panels {
        let jr = pj * tile;
        let cols = tile.min(nc - jr);
        let dst = &mut buf[pj * tile * kc..(pj + 1) * tile * kc];
        for p in 0..kc {
            for c in 0..cols {
                dst[p * tile + c] = src.at(p0 + p, j0 + jr + c);
            }
        }
    }
}

/// FNV-style fingerprint of a panel's source elements (debug-build guard
/// against packing-cache hits on mutated storage).
fn panel_fingerprint(src: StridedRef<'_>, p0: usize, j0: usize, kc: usize, nc: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in 0..kc {
        for c in 0..nc {
            h = (h ^ src.at(p0 + p, j0 + c).to_bits()).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Byte extent of the panel's source elements, if the panel lies entirely
/// inside a registered stable region (the only panels eligible for caching).
fn stable_extent(
    meta: &CacheMeta,
    src: StridedRef<'_>,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
) -> Option<(usize, usize)> {
    const SZ: usize = std::mem::size_of::<f64>();
    let base = src.data.as_ptr() as usize;
    let lo = base + (src.off + p0 * src.rs + j0 * src.cs) * SZ;
    let hi = lo + ((kc - 1) * src.rs + (nc - 1) * src.cs) * SZ + SZ;
    meta.regions.iter().any(|&(rlo, rhi)| rlo <= lo && hi <= rhi).then_some((lo, hi))
}

/// Produce the packed panel for `(src, p0, j0, kc, nc, tile)`: from the
/// keyed cache when the source lies in a registered stable region (packing
/// on the first fetch), else by packing into `fallback`. The cached and the
/// freshly packed buffer are bitwise identical — [`pack_panel`] is
/// deterministic in its inputs — so enabling reuse never changes results.
#[allow(clippy::too_many_arguments)]
fn fetch_panel<'p>(
    meta: &CacheMeta,
    store: &'p mut PanelStore,
    fallback: &'p mut Vec<f64>,
    src: StridedRef<'_>,
    p0: usize,
    j0: usize,
    kc: usize,
    nc: usize,
    tile: usize,
) -> &'p [f64] {
    if meta.enabled && kc > 0 && nc > 0 {
        if let Some((lo, hi)) = stable_extent(meta, src, p0, j0, kc, nc) {
            let key =
                PanelKey { addr: lo, rs: src.rs, cs: src.cs, kc, nc, tile, epoch: meta.epoch };
            if let Some(idx) = store.entries.iter().position(|e| e.key == key) {
                meta.hits.fetch_add(1, Ordering::Relaxed);
                store.entries[idx].stamp = meta.tick();
                debug_assert_eq!(
                    store.entries[idx].fp,
                    panel_fingerprint(src, p0, j0, kc, nc),
                    "panel cache hit on a mutated stable region (registration bug)"
                );
                return &store.entries[idx].buf;
            }
            meta.misses.fetch_add(1, Ordering::Relaxed);
            let mut buf = store.spare.pop().unwrap_or_default();
            pack_panel(src, p0, j0, kc, nc, tile, &mut buf);
            let bytes = buf.len() * std::mem::size_of::<f64>();
            while store.bytes + bytes > PANEL_CACHE_BYTES && !store.entries.is_empty() {
                let lru = store
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("entries is non-empty");
                let old = store.entries.swap_remove(lru);
                store.bytes -= old.buf.len() * std::mem::size_of::<f64>();
                store.recycle(old.buf);
            }
            let fp =
                if cfg!(debug_assertions) { panel_fingerprint(src, p0, j0, kc, nc) } else { 0 };
            store.bytes += bytes;
            store.entries.push(PanelEntry { key, lo, hi, stamp: meta.tick(), fp, buf });
            return &store.entries.last().expect("just pushed").buf;
        }
    }
    pack_panel(src, p0, j0, kc, nc, tile, fallback);
    fallback
}

/// One register-tile instantiation: computes an `MR × NR` block of C into
/// the shared stack accumulator (`acc[j * MR + i]`), consuming zero-padded
/// packed panels. Each [`KernelTier`] maps to one implementor.
trait MicroTile {
    /// Micro-tile rows (A-panel column-group width after transposition).
    const MR: usize;
    /// Micro-tile columns (B-panel column-group width).
    const NR: usize;
    fn kernel(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [f64; ACC_LEN]);
}

/// The register tile: `acc[j*MR + i] += sum_p apanel[p*MR + i] * bpanel[p*NR + j]`.
///
/// Both panels are contiguous and zero-padded, so the loop body is
/// branch-free with a fixed trip count over `MR × NR` — exactly the shape
/// LLVM turns into broadcast-and-multiply-accumulate vector code.
#[inline(always)]
fn micro_kernel_body<const MR: usize, const NR: usize>(
    kc: usize,
    apanel: &[f64],
    bpanel: &[f64],
    acc: &mut [f64; ACC_LEN],
) {
    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    for (ap, bp) in apanel.chunks_exact(MR).take(kc).zip(bpanel.chunks_exact(NR)) {
        for j in 0..NR {
            let bj = bp[j];
            for i in 0..MR {
                acc[j * MR + i] += ap[i] * bj;
            }
        }
    }
}

/// AVX2+FMA instantiation of the micro-kernel: eight 4-wide fused
/// multiply-add accumulator chains (`MR/4 × NR` ymm registers), B elements
/// broadcast from the packed panel. Numerically this fuses each
/// multiply-add (no intermediate rounding), so results can differ from the
/// portable kernel in the last ulp — well inside every tolerance the solver
/// stack uses, and deterministic on any given machine.
///
/// # Safety
/// Must only be called when the running CPU supports AVX2 and FMA (the tier
/// dispatch only selects [`Avx2Tile`] when [`KernelTier::is_supported`]
/// holds). The entry asserts keep every pointer dereference in bounds.
///
/// The workspace denies `unsafe_code`; the intrinsics micro-kernels and
/// their [`MicroTile`] callers are the single sanctioned exception:
/// `#[target_feature]` functions are inherently `unsafe` to declare and
/// call, and the FMA contraction requires explicit intrinsics.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_kernel_avx2(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [f64; ACC_LEN]) {
    use std::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 4;
    assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    let mut c: [__m256d; 2 * NR] = [_mm256_setzero_pd(); 2 * NR];
    let mut ap = apanel.as_ptr();
    let mut bp = bpanel.as_ptr();
    for _ in 0..kc {
        // SAFETY: the entry asserts bound ap/bp walks to kc*MR / kc*NR lanes.
        unsafe {
            let a0 = _mm256_loadu_pd(ap);
            let a1 = _mm256_loadu_pd(ap.add(4));
            for j in 0..NR {
                let bj = _mm256_broadcast_sd(&*bp.add(j));
                c[2 * j] = _mm256_fmadd_pd(a0, bj, c[2 * j]);
                c[2 * j + 1] = _mm256_fmadd_pd(a1, bj, c[2 * j + 1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
    }
    for j in 0..NR {
        // SAFETY: acc has ACC_LEN = 128 elements; j*MR + 8 <= 36 stays in bounds.
        unsafe {
            let dst = acc.as_mut_ptr().add(j * MR);
            _mm256_storeu_pd(dst, _mm256_add_pd(_mm256_loadu_pd(dst), c[2 * j]));
            _mm256_storeu_pd(dst.add(4), _mm256_add_pd(_mm256_loadu_pd(dst.add(4)), c[2 * j + 1]));
        }
    }
}

/// AVX-512F instantiation of the micro-kernel: a 16×8 register tile held in
/// sixteen zmm accumulators (two 8-wide fused multiply-add chains per B
/// column), B elements broadcast from the packed panel. Like the AVX2 kernel
/// this contracts each multiply-add, so it differs from the portable kernel
/// only in the last ulp.
///
/// # Safety
/// Must only be called when the running CPU supports AVX-512F (the tier
/// dispatch only selects [`Avx512Tile`] when [`KernelTier::is_supported`]
/// holds). The entry asserts keep every pointer dereference in bounds.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[target_feature(enable = "avx512f")]
unsafe fn micro_kernel_avx512(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [f64; ACC_LEN]) {
    use std::arch::x86_64::*;
    const MR: usize = 16;
    const NR: usize = 8;
    assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    let mut c: [__m512d; 2 * NR] = [_mm512_setzero_pd(); 2 * NR];
    let mut ap = apanel.as_ptr();
    let mut bp = bpanel.as_ptr();
    for _ in 0..kc {
        // SAFETY: the entry asserts bound ap/bp walks to kc*MR / kc*NR lanes.
        unsafe {
            let a0 = _mm512_loadu_pd(ap);
            let a1 = _mm512_loadu_pd(ap.add(8));
            for j in 0..NR {
                let bj = _mm512_set1_pd(*bp.add(j));
                c[2 * j] = _mm512_fmadd_pd(a0, bj, c[2 * j]);
                c[2 * j + 1] = _mm512_fmadd_pd(a1, bj, c[2 * j + 1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
    }
    for j in 0..NR {
        // SAFETY: acc has ACC_LEN = 16 * 8 elements; j*MR + 16 <= 128.
        unsafe {
            let dst = acc.as_mut_ptr().add(j * MR);
            _mm512_storeu_pd(dst, _mm512_add_pd(_mm512_loadu_pd(dst), c[2 * j]));
            _mm512_storeu_pd(dst.add(8), _mm512_add_pd(_mm512_loadu_pd(dst.add(8)), c[2 * j + 1]));
        }
    }
}

/// Portable tier: the auto-vectorized generic body at the 8×4 shape.
struct PortableTile;

impl MicroTile for PortableTile {
    const MR: usize = 8;
    const NR: usize = 4;

    #[inline(always)]
    fn kernel(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [f64; ACC_LEN]) {
        micro_kernel_body::<8, 4>(kc, apanel, bpanel, acc);
    }
}

/// AVX2+FMA tier (8×4); off x86-64 it degrades to the portable body so the
/// dispatch match stays total.
struct Avx2Tile;

impl MicroTile for Avx2Tile {
    const MR: usize = 8;
    const NR: usize = 4;

    #[inline(always)]
    #[allow(unsafe_code)]
    fn kernel(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [f64; ACC_LEN]) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier dispatch only selects Avx2Tile when
        // KernelTier::Avx2.is_supported() (AVX2 and FMA detected).
        unsafe {
            micro_kernel_avx2(kc, apanel, bpanel, acc)
        }
        #[cfg(not(target_arch = "x86_64"))]
        micro_kernel_body::<8, 4>(kc, apanel, bpanel, acc)
    }
}

/// AVX-512F tier (16×8); off x86-64 it degrades to the portable body.
struct Avx512Tile;

impl MicroTile for Avx512Tile {
    const MR: usize = 16;
    const NR: usize = 8;

    #[inline(always)]
    #[allow(unsafe_code)]
    fn kernel(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [f64; ACC_LEN]) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier dispatch only selects Avx512Tile when
        // KernelTier::Avx512.is_supported() (AVX-512F detected).
        unsafe {
            micro_kernel_avx512(kc, apanel, bpanel, acc)
        }
        #[cfg(not(target_arch = "x86_64"))]
        micro_kernel_body::<16, 8>(kc, apanel, bpanel, acc)
    }
}

/// Blocked `C += alpha * A · B` on raw storage: `A` and `B` are strided views
/// (already op-adjusted), the destination element `(i, j)` lives at
/// `c[c_off + i + j * ldc]`. Scaling by beta is the caller's responsibility.
///
/// Dispatches once per call to the active [`KernelTier`]'s register tile;
/// the blocked engine itself is generic over the tile shape.
#[allow(clippy::too_many_arguments)]
fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: StridedRef<'_>,
    b: StridedRef<'_>,
    c: &mut [f64],
    c_off: usize,
    ldc: usize,
    pack: &mut PackBuffer,
) {
    match kernel_tier() {
        KernelTier::Portable => {
            gemm_packed_impl::<PortableTile>(m, n, k, alpha, a, b, c, c_off, ldc, pack)
        }
        KernelTier::Avx2 => {
            gemm_packed_impl::<Avx2Tile>(m, n, k, alpha, a, b, c, c_off, ldc, pack)
        }
        KernelTier::Avx512 => {
            gemm_packed_impl::<Avx512Tile>(m, n, k, alpha, a, b, c, c_off, ldc, pack)
        }
    }
}

/// The tile-generic blocked gemm engine behind [`gemm_packed`].
///
/// Panels come out of [`fetch_panel`], so when the owning [`PackBuffer`] has
/// panel reuse enabled and the operand lives inside a registered stable
/// region, repeated calls on unchanged operands skip the packing copy
/// entirely and consume the cached panel.
#[allow(clippy::too_many_arguments)]
fn gemm_packed_impl<T: MicroTile>(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: StridedRef<'_>,
    b: StridedRef<'_>,
    c: &mut [f64],
    c_off: usize,
    ldc: usize,
    pack: &mut PackBuffer,
) {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let (mc_blk, kc_blk, nc_blk) = blocking();
    // A panels are packed column-major along k: the A micro-panel layout is
    // exactly the B layout applied to Aᵀ, so one packing routine serves both.
    let at = a.transposed();
    let PackBuffer { a_pack, b_pack, meta, cache_a, cache_b, .. } = pack;
    for jc in (0..n).step_by(nc_blk) {
        let nc = nc_blk.min(n - jc);
        for pc in (0..k).step_by(kc_blk) {
            let kc = kc_blk.min(k - pc);
            let bpanel_all = fetch_panel(meta, cache_b, b_pack, b, pc, jc, kc, nc, T::NR);
            for ic in (0..m).step_by(mc_blk) {
                let mc = mc_blk.min(m - ic);
                let apanel_all = fetch_panel(meta, cache_a, a_pack, at, pc, ic, kc, mc, T::MR);
                for jr in (0..nc).step_by(T::NR) {
                    let nr_eff = T::NR.min(nc - jr);
                    let bpanel = &bpanel_all[(jr / T::NR) * T::NR * kc..];
                    for ir in (0..mc).step_by(T::MR) {
                        let mr_eff = T::MR.min(mc - ir);
                        let apanel = &apanel_all[(ir / T::MR) * T::MR * kc..];
                        let mut acc = [0.0f64; ACC_LEN];
                        T::kernel(kc, apanel, bpanel, &mut acc);
                        for j in 0..nr_eff {
                            let base = c_off + (jc + jr + j) * ldc + ic + ir;
                            for (ci, av) in
                                c[base..base + mr_eff].iter_mut().zip(&acc[j * T::MR..])
                            {
                                *ci += alpha * av;
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel trailing-update path.
// ---------------------------------------------------------------------------

/// Minimum problem volume (`m·n·k`) for the parallel trailing-update path:
/// below this the fork/steal overhead outweighs the extra cores. Engages at
/// roughly the 128³ reduced-system blocks of the distributed BTA solver.
const PAR_MIN_FLOPS: usize = 1 << 21;

/// Minimum columns of C per parallel leaf task.
const PAR_MIN_COLS: usize = 64;

thread_local! {
    /// Per-thread packing workspace for the parallel gemm leaves: every pool
    /// worker packs into its own buffers, so parallel tasks never contend.
    static PAR_PACK: std::cell::RefCell<PackBuffer> =
        std::cell::RefCell::new(PackBuffer::new());
}

/// Whether [`gemm_with`] should take the parallel column-split path.
fn use_parallel_gemm(m: usize, n: usize, k: usize) -> bool {
    m * n * k >= PAR_MIN_FLOPS && n >= 2 * PAR_MIN_COLS && dalia_pool::current_num_threads() > 1
}

/// Parallel `C += alpha · op(A) op(B)`: the columns of C are split into
/// MAX_NR-aligned chunks executed as a fork-join tree on the work-stealing pool
/// (`dalia-pool`), each leaf running the sequential [`gemm_packed`] engine on
/// its disjoint column panel with a per-worker [`PackBuffer`].
///
/// Every element of C accumulates the exact same sequence of floating-point
/// operations as in a sequential [`gemm_packed`] call — column panels are
/// independent in the blocked engine, and the split points only regroup them
/// — so the result is **bitwise identical** to the single-threaded path (see
/// `parallel_gemm_is_bitwise_identical_to_sequential_packed`).
#[allow(clippy::too_many_arguments)]
fn gemm_packed_parallel(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: StridedRef<'_>,
    b: StridedRef<'_>,
    c: &mut [f64],
    ldc: usize,
) {
    let threads = dalia_pool::current_num_threads();
    // ~2 leaf tasks per worker, aligned to the widest tier's NR so every
    // tier's column grouping is preserved, never below the overhead floor.
    let chunk = n.div_ceil(threads * 2).next_multiple_of(MAX_NR).max(PAR_MIN_COLS);
    dalia_pool::install(|| split_columns(m, n, k, alpha, a, b, c, ldc, chunk));
}

/// Recursive MAX_NR-aligned halving of the C column range down to `chunk`.
#[allow(clippy::too_many_arguments)]
fn split_columns(
    m: usize,
    ncols: usize,
    k: usize,
    alpha: f64,
    a: StridedRef<'_>,
    b: StridedRef<'_>,
    c: &mut [f64],
    ldc: usize,
    chunk: usize,
) {
    if ncols <= chunk {
        PAR_PACK.with(|pack| {
            gemm_packed(m, ncols, k, alpha, a, b, c, 0, ldc, &mut pack.borrow_mut())
        });
        return;
    }
    let mid = (ncols / 2).next_multiple_of(MAX_NR);
    let (c_lo, c_hi) = c.split_at_mut(mid * ldc);
    let b_hi = b.shifted(0, mid);
    dalia_pool::join(
        || split_columns(m, mid, k, alpha, a, b, c_lo, ldc, chunk),
        || split_columns(m, ncols - mid, k, alpha, a, b_hi, c_hi, ldc, chunk),
    );
}

/// Apply the beta prefactor to a full dense C.
fn scale_matrix(beta: f64, c: &mut Matrix) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        c.fill_zero();
    } else {
        c.scale(beta);
    }
}

/// General matrix-matrix product `C = alpha * op(A) op(B) + beta * C`.
///
/// Large products are computed by the packed micro-kernel engine: panels of
/// `op(A)` / `op(B)` are copied into contiguous, zero-padded buffers and
/// consumed by an `MR × NR` register tile (see the module docs and
/// `docs/performance.md`); small products fall back to the plain loops in
/// [`mod@reference`]. All four transpose combinations are supported; in
/// particular `(Trans::Yes, Trans::Yes)` computes `C += alpha · AᵀBᵀ`
/// (equal to `alpha · (B A)ᵀ`), with `A` consumed along its rows and `B`
/// along its columns by the packing routines.
///
/// Products at reduced-system scale (`m·n·k ≥ 2²¹` with enough columns to
/// split) additionally fan their C column panels out across the
/// work-stealing pool; the parallel path is bitwise-identical to the
/// sequential one, so callers never observe thread-count-dependent results.
///
/// This entry point allocates a transient workspace for large inputs; hot
/// loops should hold a [`PackBuffer`] and call [`gemm_with`].
///
/// ```
/// use dalia_la::blas::{gemm, matmul, Trans};
/// use dalia_la::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// // C = 2·AᵀB + 1·C, starting from C = I.
/// let mut c = Matrix::identity(2);
/// gemm(Trans::Yes, Trans::No, 2.0, &a, &b, 1.0, &mut c);
/// let expected = &(&matmul(&a.transpose(), &b) * 2.0) + &Matrix::identity(2);
/// assert!(c.max_abs_diff(&expected) < 1e-14);
/// ```
pub fn gemm(
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let mut pack = PackBuffer::new();
    gemm_with(&mut pack, trans_a, trans_b, alpha, a, b, beta, c);
}

/// [`gemm`] with an explicit, reusable packing workspace.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with(
    pack: &mut PackBuffer,
    trans_a: Trans,
    trans_b: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) {
    let (am, an) = a.shape();
    let (bm, bn) = b.shape();
    let (opa_m, opa_k) = match trans_a {
        Trans::No => (am, an),
        Trans::Yes => (an, am),
    };
    let (opb_k, opb_n) = match trans_b {
        Trans::No => (bm, bn),
        Trans::Yes => (bn, bm),
    };
    assert_eq!(opa_k, opb_k, "gemm: inner dimension mismatch");
    assert_eq!(c.shape(), (opa_m, opb_n), "gemm: output shape mismatch");

    scale_matrix(beta, c);
    let (m, n, k) = (opa_m, opb_n, opa_k);
    if m * n * k < NAIVE_MAX_FLOPS {
        reference::gemm_acc(trans_a, trans_b, alpha, a, b, c);
        return;
    }
    let ldc = c.nrows();
    if use_parallel_gemm(m, n, k) {
        // Reduced-system-scale products split their C columns across the
        // work-stealing pool; bitwise-identical to the sequential engine.
        gemm_packed_parallel(
            m,
            n,
            k,
            alpha,
            op_ref(a, trans_a),
            op_ref(b, trans_b),
            c.as_mut_slice(),
            ldc,
        );
        return;
    }
    gemm_packed(
        m,
        n,
        k,
        alpha,
        op_ref(a, trans_a),
        op_ref(b, trans_b),
        c.as_mut_slice(),
        0,
        ldc,
        pack,
    );
}

/// `A * B` as a new matrix.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, &mut c);
    c
}

/// Blocked lower-triangle rank-k update on raw storage:
/// `C[lower] += alpha * S Sᵀ` where `S` is an `n × k` strided view and the
/// destination element `(i, j)` lives at `c[c_off + i + j * ldc]`. Only the
/// lower triangle of C is ever written: micro-tiles straddling the diagonal
/// clip their per-column store range, so no scratch staging is needed and
/// both operand panels flow through the same [`fetch_panel`] cache as
/// [`gemm_packed`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn syrk_lower_packed(
    n: usize,
    k: usize,
    alpha: f64,
    s: StridedRef<'_>,
    c: &mut [f64],
    c_off: usize,
    ldc: usize,
    pack: &mut PackBuffer,
) {
    match kernel_tier() {
        KernelTier::Portable => {
            syrk_lower_packed_impl::<PortableTile>(n, k, alpha, s, c, c_off, ldc, pack)
        }
        KernelTier::Avx2 => {
            syrk_lower_packed_impl::<Avx2Tile>(n, k, alpha, s, c, c_off, ldc, pack)
        }
        KernelTier::Avx512 => {
            syrk_lower_packed_impl::<Avx512Tile>(n, k, alpha, s, c, c_off, ldc, pack)
        }
    }
}

/// The tile-generic engine behind [`syrk_lower_packed`]: a gemm over
/// `S · Sᵀ` that skips macro/micro tiles strictly above the diagonal and
/// clips the C stores of straddling tiles to `i >= j`.
#[allow(clippy::too_many_arguments)]
fn syrk_lower_packed_impl<T: MicroTile>(
    n: usize,
    k: usize,
    alpha: f64,
    s: StridedRef<'_>,
    c: &mut [f64],
    c_off: usize,
    ldc: usize,
    pack: &mut PackBuffer,
) {
    if n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let (mc_blk, kc_blk, nc_blk) = blocking();
    // Both operands are views of S: B = Sᵀ directly, and the A-panel packing
    // consumes Aᵀ = Sᵀ too — so the two sides share panel keys whenever the
    // kc/width grids line up, and the cache serves both.
    let st = s.transposed();
    let PackBuffer { a_pack, b_pack, meta, cache_a, cache_b, .. } = pack;
    for jc in (0..n).step_by(nc_blk) {
        let nc = nc_blk.min(n - jc);
        for pc in (0..k).step_by(kc_blk) {
            let kc = kc_blk.min(k - pc);
            let bpanel_all = fetch_panel(meta, cache_b, b_pack, st, pc, jc, kc, nc, T::NR);
            for ic in (0..n).step_by(mc_blk) {
                let mc = mc_blk.min(n - ic);
                if ic + mc <= jc {
                    // Entire macro-tile strictly above the diagonal band.
                    continue;
                }
                let apanel_all = fetch_panel(meta, cache_a, a_pack, st, pc, ic, kc, mc, T::MR);
                for jr in (0..nc).step_by(T::NR) {
                    let nr_eff = T::NR.min(nc - jr);
                    let bpanel = &bpanel_all[(jr / T::NR) * T::NR * kc..];
                    for ir in (0..mc).step_by(T::MR) {
                        let mr_eff = T::MR.min(mc - ir);
                        let gi0 = ic + ir;
                        if gi0 + mr_eff <= jc + jr {
                            // Micro-tile strictly above the diagonal.
                            continue;
                        }
                        let apanel = &apanel_all[(ir / T::MR) * T::MR * kc..];
                        let mut acc = [0.0f64; ACC_LEN];
                        T::kernel(kc, apanel, bpanel, &mut acc);
                        for j in 0..nr_eff {
                            let gj = jc + jr + j;
                            // Clip the store to rows i >= gj: the strict
                            // upper triangle of C must never be touched.
                            let lo = gj.saturating_sub(gi0);
                            if lo >= mr_eff {
                                continue;
                            }
                            let base = c_off + gj * ldc + gi0 + lo;
                            for (ci, av) in c[base..base + (mr_eff - lo)]
                                .iter_mut()
                                .zip(&acc[j * T::MR + lo..])
                            {
                                *ci += alpha * av;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Symmetric rank-k update restricted to the lower triangle:
/// `C := alpha * op(A) op(A)^T + beta * C` (only the lower triangle of C is
/// written). Large updates run through the blocked engine, small ones through
/// [`mod@reference`].
pub fn syrk_lower(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let mut pack = PackBuffer::new();
    syrk_lower_with(&mut pack, trans, alpha, a, beta, c);
}

/// [`syrk_lower`] with an explicit, reusable packing workspace.
pub fn syrk_lower_with(pack: &mut PackBuffer, trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let (n, k) = match trans {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    };
    assert_eq!(c.shape(), (n, n), "syrk: output must be n x n");
    // Scale the lower triangle of C by beta.
    if beta != 1.0 {
        for j in 0..n {
            for v in &mut c.col_mut(j)[j..] {
                *v *= beta;
            }
        }
    }
    if n * n * k / 2 < NAIVE_MAX_FLOPS {
        reference::syrk_acc(trans, alpha, a, c);
        return;
    }
    let ldc = c.nrows();
    syrk_lower_packed(n, k, alpha, op_ref(a, trans), c.as_mut_slice(), 0, ldc, pack);
}

/// Full symmetric rank-k update (both triangles written), convenience wrapper.
pub fn syrk_full(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    syrk_lower(trans, alpha, a, beta, c);
    c.mirror_lower();
}

/// [`syrk_full`] with an explicit, reusable packing workspace.
pub fn syrk_full_with(pack: &mut PackBuffer, trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    syrk_lower_with(pack, trans, alpha, a, beta, c);
    c.mirror_lower();
}

/// `dst_col += alpha * src_col` over the row range `rows` of two distinct
/// columns of `b` (used by the blocked right-side triangular solves).
fn axpy_cols(b: &mut Matrix, src: usize, dst: usize, rows: std::ops::Range<usize>, alpha: f64) {
    debug_assert_ne!(src, dst);
    let m = b.nrows();
    let data = b.as_mut_slice();
    if src < dst {
        let (lo, hi) = data.split_at_mut(dst * m);
        axpy(alpha, &lo[src * m..][rows.clone()], &mut hi[rows]);
    } else {
        let (lo, hi) = data.split_at_mut(src * m);
        axpy(alpha, &hi[rows.clone()], &mut lo[dst * m..][rows]);
    }
}

/// Triangular solve with multiple right-hand sides.
///
/// Solves `op(A) X = B` (`Side::Left`) or `X op(A) = B` (`Side::Right`) in
/// place on `b`, where `A` is triangular (only the triangle indicated by
/// `uplo` is referenced; the other triangle is assumed zero).
///
/// Lower-triangular solves — the shapes the BTA factorization and solves hit —
/// are blocked: the diagonal `TB × TB` systems are solved by substitution and
/// the trailing updates are delegated to the packed [`gemm`] engine. Upper
/// solves and small systems use the substitution loops in [`mod@reference`].
///
/// ```
/// use dalia_la::blas::{matmul, trsm, Side, Trans, Triangle};
/// use dalia_la::Matrix;
///
/// let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
/// let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// // Build B = L·X, then recover X by solving L·X = B in place.
/// let mut b = matmul(&l, &x);
/// trsm(Side::Left, Triangle::Lower, Trans::No, &l, &mut b);
/// assert!(b.max_abs_diff(&x) < 1e-12);
/// ```
pub fn trsm(side: Side, uplo: Triangle, trans: Trans, a: &Matrix, b: &mut Matrix) {
    let mut pack = PackBuffer::new();
    trsm_with(&mut pack, side, uplo, trans, a, b);
}

/// [`trsm`] with an explicit, reusable packing workspace.
pub fn trsm_with(pack: &mut PackBuffer, side: Side, uplo: Triangle, trans: Trans, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square(), "trsm: A must be square");
    let n = a.nrows();
    match side {
        Side::Left => assert_eq!(b.nrows(), n, "trsm-left: dimension mismatch"),
        Side::Right => assert_eq!(b.ncols(), n, "trsm-right: dimension mismatch"),
    }
    let nrhs = match side {
        Side::Left => b.ncols(),
        Side::Right => b.nrows(),
    };
    if uplo == Triangle::Upper || n * n * nrhs < NAIVE_MAX_FLOPS {
        reference::trsm(side, uplo, trans, a, b);
        return;
    }
    match (side, trans) {
        (Side::Left, Trans::No) => trsm_blocked_left_lower_notrans(pack, a, b),
        (Side::Left, Trans::Yes) => trsm_blocked_left_lower_trans(pack, a, b),
        (Side::Right, Trans::No) => trsm_blocked_right_lower_notrans(pack, a, b),
        (Side::Right, Trans::Yes) => trsm_blocked_right_lower_trans(pack, a, b),
    }
}

/// Copy the block of rows `k0..k0+nb` of `b` into `pack.scratch`
/// (column-major, leading dimension `nb`) so trailing gemm updates can read
/// the solved panel while writing other rows of the same matrix.
fn stash_row_panel(pack: &mut PackBuffer, b: &Matrix, k0: usize, nb: usize) {
    let m = b.ncols();
    pack.scratch.clear();
    pack.scratch.resize(nb * m, 0.0);
    for j in 0..m {
        let col = &b.col(j)[k0..k0 + nb];
        pack.scratch[j * nb..(j + 1) * nb].copy_from_slice(col);
    }
}

/// Blocked forward substitution `L X = B`.
fn trsm_blocked_left_lower_notrans(pack: &mut PackBuffer, a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    let m = b.ncols();
    let ldb = b.nrows();
    for k0 in (0..n).step_by(TB) {
        let nb = TB.min(n - k0);
        // Solve the diagonal system L11 X1 = B1 by forward substitution.
        for j in 0..m {
            let col = b.col_mut(j);
            for i in 0..nb {
                let gi = k0 + i;
                let mut s = col[gi];
                for p in 0..i {
                    s -= a[(gi, k0 + p)] * col[k0 + p];
                }
                col[gi] = s / a[(gi, gi)];
            }
        }
        // Trailing update B2 -= L21 X1 through the packed engine.
        let rest = k0 + nb;
        if rest < n {
            stash_row_panel(pack, b, k0, nb);
            let scratch = std::mem::take(&mut pack.scratch);
            let x1 = StridedRef { data: &scratch, off: 0, rs: 1, cs: nb };
            gemm_packed(
                n - rest,
                m,
                nb,
                -1.0,
                op_ref(a, Trans::No).shifted(rest, k0),
                x1,
                b.as_mut_slice(),
                rest,
                ldb,
                pack,
            );
            pack.scratch = scratch;
        }
    }
}

/// Blocked backward substitution `Lᵀ X = B`.
fn trsm_blocked_left_lower_trans(pack: &mut PackBuffer, a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    let m = b.ncols();
    let ldb = b.nrows();
    let nblocks = n.div_ceil(TB);
    for bi in (0..nblocks).rev() {
        let k0 = bi * TB;
        let nb = TB.min(n - k0);
        // Solve L11ᵀ X1 = B1 by backward substitution.
        for j in 0..m {
            let col = b.col_mut(j);
            for i in (0..nb).rev() {
                let gi = k0 + i;
                let mut s = col[gi];
                for p in (i + 1)..nb {
                    s -= a[(k0 + p, gi)] * col[k0 + p];
                }
                col[gi] = s / a[(gi, gi)];
            }
        }
        // Leading update B0 -= L21ᵀ X1 (L21 couples rows k0.. to columns 0..k0).
        if k0 > 0 {
            stash_row_panel(pack, b, k0, nb);
            let scratch = std::mem::take(&mut pack.scratch);
            let x1 = StridedRef { data: &scratch, off: 0, rs: 1, cs: nb };
            gemm_packed(
                k0,
                m,
                nb,
                -1.0,
                op_ref(a, Trans::Yes).shifted(0, k0),
                x1,
                b.as_mut_slice(),
                0,
                ldb,
                pack,
            );
            pack.scratch = scratch;
        }
    }
}

/// Blocked `X L = B`, processed right-to-left over column blocks of X.
fn trsm_blocked_right_lower_notrans(pack: &mut PackBuffer, a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    let m = b.nrows();
    let nblocks = n.div_ceil(TB);
    for bi in (0..nblocks).rev() {
        let j0 = bi * TB;
        let nb = TB.min(n - j0);
        let end = j0 + nb;
        // B[:, J] -= X[:, end..] L[end.., J]; the solved columns live right of
        // the split point, the destination block left of it.
        if end < n {
            let (head, tail) = b.as_mut_slice().split_at_mut(end * m);
            let x_later = StridedRef { data: tail, off: 0, rs: 1, cs: m };
            gemm_packed(
                m,
                nb,
                n - end,
                -1.0,
                x_later,
                op_ref(a, Trans::No).shifted(end, j0),
                head,
                j0 * m,
                m,
                pack,
            );
        }
        // Solve X[:, J] L[J, J] = B[:, J] column by column (right to left).
        for jj in (0..nb).rev() {
            let jcol = j0 + jj;
            for p in (jj + 1)..nb {
                let l = a[(j0 + p, jcol)];
                if l != 0.0 {
                    axpy_cols(b, j0 + p, jcol, 0..m, -l);
                }
            }
            let d = a[(jcol, jcol)];
            for v in b.col_mut(jcol) {
                *v /= d;
            }
        }
    }
}

/// Blocked `X Lᵀ = B`, processed left-to-right over column blocks of X. This
/// is the factorization hot path (`B_i := B_i L_ii^{-T}` on every sub-diagonal
/// and arrow block of the BTA Cholesky).
fn trsm_blocked_right_lower_trans(pack: &mut PackBuffer, a: &Matrix, b: &mut Matrix) {
    let n = a.nrows();
    let m = b.nrows();
    for j0 in (0..n).step_by(TB) {
        let nb = TB.min(n - j0);
        // B[:, J] -= X[:, 0..j0] (Lᵀ)[0..j0, J]; solved columns live left of
        // the split point, the destination block right of it.
        if j0 > 0 {
            let (head, tail) = b.as_mut_slice().split_at_mut(j0 * m);
            let x_prev = StridedRef { data: head, off: 0, rs: 1, cs: m };
            gemm_packed(
                m,
                nb,
                j0,
                -1.0,
                x_prev,
                op_ref(a, Trans::Yes).shifted(0, j0),
                tail,
                0,
                m,
                pack,
            );
        }
        // Solve X[:, J] (Lᵀ)[J, J] = B[:, J] column by column (left to right).
        for jj in 0..nb {
            let jcol = j0 + jj;
            for p in 0..jj {
                let l = a[(jcol, j0 + p)];
                if l != 0.0 {
                    axpy_cols(b, j0 + p, jcol, 0..m, -l);
                }
            }
            let d = a[(jcol, jcol)];
            for v in b.col_mut(jcol) {
                *v /= d;
            }
        }
    }
}

/// Triangular solve for a single vector: solves `op(A) x = b` in place.
pub fn trsv_in_place(uplo: Triangle, trans: Trans, a: &Matrix, x: &mut [f64]) {
    let n = a.nrows();
    assert_eq!(x.len(), n, "trsv: dimension mismatch");
    match (uplo, trans) {
        (Triangle::Lower, Trans::No) => {
            // Forward substitution.
            for i in 0..n {
                let mut s = x[i];
                for k in 0..i {
                    s -= a[(i, k)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
        (Triangle::Lower, Trans::Yes) => {
            // Backward substitution with L^T (upper triangular).
            for i in (0..n).rev() {
                let mut s = x[i];
                for k in (i + 1)..n {
                    s -= a[(k, i)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
        (Triangle::Upper, Trans::No) => {
            for i in (0..n).rev() {
                let mut s = x[i];
                for k in (i + 1)..n {
                    s -= a[(i, k)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
        (Triangle::Upper, Trans::Yes) => {
            for i in 0..n {
                let mut s = x[i];
                for k in 0..i {
                    s -= a[(k, i)] * x[k];
                }
                x[i] = s / a[(i, i)];
            }
        }
    }
}

/// Triangular matrix-matrix multiply `B := op(A) B` with `A` triangular
/// (referenced triangle given by `uplo`). Only `Side::Left` is needed by the
/// solver stack, and only outside the hot path, so this stays a plain loop.
pub fn trmm_left(uplo: Triangle, trans: Trans, a: &Matrix, b: &mut Matrix) {
    assert!(a.is_square());
    let n = a.nrows();
    assert_eq!(b.nrows(), n);
    let mut tmp = vec![0.0; n];
    for j in 0..b.ncols() {
        {
            let col = b.col(j);
            for i in 0..n {
                let mut s = 0.0;
                match (uplo, trans) {
                    (Triangle::Lower, Trans::No) => {
                        for k in 0..=i {
                            s += a[(i, k)] * col[k];
                        }
                    }
                    (Triangle::Lower, Trans::Yes) => {
                        for k in i..n {
                            s += a[(k, i)] * col[k];
                        }
                    }
                    (Triangle::Upper, Trans::No) => {
                        for k in i..n {
                            s += a[(i, k)] * col[k];
                        }
                    }
                    (Triangle::Upper, Trans::Yes) => {
                        for k in 0..=i {
                            s += a[(k, i)] * col[k];
                        }
                    }
                }
                tmp[i] = s;
            }
        }
        b.col_mut(j).copy_from_slice(&tmp);
    }
}

/// Number of floating-point operations for a `m x k` by `k x n` GEMM.
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// Reference (naive-loop) level-3 kernels.
///
/// These are the pre-blocking implementations, retained forever as ground
/// truth: the parity suites (`crates/la/tests/proptest_kernels.rs`) check the
/// blocked kernels against them bit-for-bit-close (`1e-12`), the blocked
/// entry points fall back to them for cache-resident problems, and
/// `kernel_bench` reports the blocked kernels' speedup over them.
pub mod reference {
    use super::{axpy, dot, trsv_in_place, Matrix, Side, Trans, Triangle};

    /// `C += alpha * op(A) op(B)` with the historical loop orders (beta
    /// scaling is the caller's job). Shared by [`gemm`] and the small-problem
    /// fast path of the blocked kernel, so tiny products are bit-identical to
    /// the pre-blocking implementation.
    pub(crate) fn gemm_acc(trans_a: Trans, trans_b: Trans, alpha: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        let k = match trans_a {
            Trans::No => a.ncols(),
            Trans::Yes => a.nrows(),
        };
        let (opa_m, opb_n) = c.shape();
        match (trans_a, trans_b) {
            (Trans::No, Trans::No) => {
                // C[:, j] += alpha * A[:, l] * B[l, j]
                for j in 0..opb_n {
                    for l in 0..k {
                        let blj = alpha * b[(l, j)];
                        if blj != 0.0 {
                            axpy(blj, a.col(l), c.col_mut(j));
                        }
                    }
                }
            }
            (Trans::Yes, Trans::No) => {
                // C[i, j] += alpha * dot(A[:, i], B[:, j])
                for j in 0..opb_n {
                    let bcol = b.col(j);
                    for i in 0..opa_m {
                        c[(i, j)] += alpha * dot(a.col(i), bcol);
                    }
                }
            }
            (Trans::No, Trans::Yes) => {
                // C[:, j] += alpha * A[:, l] * B[j, l]
                for j in 0..opb_n {
                    for l in 0..k {
                        let bjl = alpha * b[(j, l)];
                        if bjl != 0.0 {
                            axpy(bjl, a.col(l), c.col_mut(j));
                        }
                    }
                }
            }
            (Trans::Yes, Trans::Yes) => {
                // C[i, j] += alpha * dot(A[:, i], B[j, :]) — explicit loop.
                for j in 0..opb_n {
                    for i in 0..opa_m {
                        let mut s = 0.0;
                        for l in 0..k {
                            s += a[(l, i)] * b[(j, l)];
                        }
                        c[(i, j)] += alpha * s;
                    }
                }
            }
        }
    }

    /// Reference `C = alpha * op(A) op(B) + beta * C` (naive loops).
    pub fn gemm(
        trans_a: Trans,
        trans_b: Trans,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &mut Matrix,
    ) {
        let (am, an) = a.shape();
        let (bm, bn) = b.shape();
        let (opa_m, opa_k) = match trans_a {
            Trans::No => (am, an),
            Trans::Yes => (an, am),
        };
        let (opb_k, opb_n) = match trans_b {
            Trans::No => (bm, bn),
            Trans::Yes => (bn, bm),
        };
        assert_eq!(opa_k, opb_k, "gemm: inner dimension mismatch");
        assert_eq!(c.shape(), (opa_m, opb_n), "gemm: output shape mismatch");
        super::scale_matrix(beta, c);
        gemm_acc(trans_a, trans_b, alpha, a, b, c);
    }

    /// Lower-triangle accumulation `C[lower] += alpha * op(A) op(A)ᵀ` with the
    /// historical loop orders.
    pub(crate) fn syrk_acc(trans: Trans, alpha: f64, a: &Matrix, c: &mut Matrix) {
        let n = c.nrows();
        let k = match trans {
            Trans::No => a.ncols(),
            Trans::Yes => a.nrows(),
        };
        match trans {
            Trans::No => {
                for l in 0..k {
                    let col = a.col(l);
                    for j in 0..n {
                        let ajl = alpha * col[j];
                        if ajl != 0.0 {
                            for i in j..n {
                                c[(i, j)] += ajl * col[i];
                            }
                        }
                    }
                }
            }
            Trans::Yes => {
                for j in 0..n {
                    for i in j..n {
                        c[(i, j)] += alpha * dot(a.col(i), a.col(j));
                    }
                }
            }
        }
    }

    /// Reference lower-triangle rank-k update (naive loops).
    pub fn syrk_lower(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
        let n = match trans {
            Trans::No => a.nrows(),
            Trans::Yes => a.ncols(),
        };
        assert_eq!(c.shape(), (n, n), "syrk: output must be n x n");
        for j in 0..n {
            for v in &mut c.col_mut(j)[j..] {
                *v *= beta;
            }
        }
        syrk_acc(trans, alpha, a, c);
    }

    /// Reference full rank-k update (both triangles written).
    pub fn syrk_full(trans: Trans, alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
        syrk_lower(trans, alpha, a, beta, c);
        c.mirror_lower();
    }

    /// Reference triangular solve: per-column (`Side::Left`) or per-row
    /// (`Side::Right`) substitution via [`trsv_in_place`].
    pub fn trsm(side: Side, uplo: Triangle, trans: Trans, a: &Matrix, b: &mut Matrix) {
        assert!(a.is_square(), "trsm: A must be square");
        let n = a.nrows();
        match side {
            Side::Left => {
                assert_eq!(b.nrows(), n, "trsm-left: dimension mismatch");
                for j in 0..b.ncols() {
                    trsv_in_place(uplo, trans, a, b.col_mut(j));
                }
            }
            Side::Right => {
                assert_eq!(b.ncols(), n, "trsm-right: dimension mismatch");
                // X op(A) = B  <=>  op(A)^T X^T = B^T; solve row by row.
                let flipped = match trans {
                    Trans::No => Trans::Yes,
                    Trans::Yes => Trans::No,
                };
                let m = b.nrows();
                let mut row = vec![0.0; n];
                for i in 0..m {
                    for (j, r) in row.iter_mut().enumerate() {
                        *r = b[(i, j)];
                    }
                    trsv_in_place(uplo, flipped, a, &mut row);
                    for (j, r) in row.iter().enumerate() {
                        b[(i, j)] = *r;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b) < tol
    }

    /// Deterministic dense test matrix.
    fn test_mat(m: usize, n: usize, seed: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| {
            let v = (i * 31 + j * 17 + seed * 7) % 23;
            (v as f64) / 11.5 - 1.0
        })
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn gemv_no_trans() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = matvec(&a, &[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn gemv_trans() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = matvec_t(&a, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![9.0, 12.0]);
    }

    #[test]
    fn gemm_all_transposes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]); // 2x3
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]); // 3x2
        let expected = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);

        let c = matmul(&a, &b);
        assert!(approx_eq(&c, &expected, 1e-12));

        // A^T variant: (A^T)^T B = A B.
        let at = a.transpose();
        let mut c2 = Matrix::zeros(2, 2);
        gemm(Trans::Yes, Trans::No, 1.0, &at, &b, 0.0, &mut c2);
        assert!(approx_eq(&c2, &expected, 1e-12));

        // B^T variant.
        let bt = b.transpose();
        let mut c3 = Matrix::zeros(2, 2);
        gemm(Trans::No, Trans::Yes, 1.0, &a, &bt, 0.0, &mut c3);
        assert!(approx_eq(&c3, &expected, 1e-12));

        // Both transposed.
        let mut c4 = Matrix::zeros(2, 2);
        gemm(Trans::Yes, Trans::Yes, 1.0, &at, &bt, 0.0, &mut c4);
        assert!(approx_eq(&c4, &expected, 1e-12));
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut c = Matrix::filled(2, 2, 10.0);
        gemm(Trans::No, Trans::No, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 7.0); // 2*1 + 0.5*10
        assert_eq!(c[(1, 1)], 13.0); // 2*4 + 0.5*10
    }

    #[test]
    fn blocked_gemm_matches_reference_above_threshold() {
        // Big enough to take the packed path in every transpose combination,
        // with tile-unaligned dimensions.
        let (m, n, k) = (70, 53, 41);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => test_mat(m, k, 1),
                Trans::Yes => test_mat(k, m, 1),
            };
            let b = match tb {
                Trans::No => test_mat(k, n, 2),
                Trans::Yes => test_mat(n, k, 2),
            };
            let mut c = test_mat(m, n, 3);
            let mut c_ref = c.clone();
            gemm(ta, tb, 1.3, &a, &b, -0.7, &mut c);
            reference::gemm(ta, tb, 1.3, &a, &b, -0.7, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-12), "mismatch for {ta:?}/{tb:?}");
        }
    }

    #[test]
    fn blocked_syrk_matches_reference_above_threshold() {
        for trans in [Trans::No, Trans::Yes] {
            let a = match trans {
                Trans::No => test_mat(90, 37, 4),
                Trans::Yes => test_mat(37, 90, 4),
            };
            let mut c = test_mat(90, 90, 5);
            let mut c_ref = c.clone();
            syrk_lower(trans, 0.9, &a, 0.4, &mut c);
            reference::syrk_lower(trans, 0.9, &a, 0.4, &mut c_ref);
            assert!(approx_eq(&c, &c_ref, 1e-12), "mismatch for {trans:?}");
        }
    }

    #[test]
    fn blocked_trsm_matches_reference_above_threshold() {
        let n = 100;
        let mut l = test_mat(n, n, 6);
        for j in 0..n {
            for i in 0..j {
                l[(i, j)] = 0.0;
            }
            l[(j, j)] = 2.0 + l[(j, j)].abs();
        }
        for (side, trans) in [
            (Side::Left, Trans::No),
            (Side::Left, Trans::Yes),
            (Side::Right, Trans::No),
            (Side::Right, Trans::Yes),
        ] {
            let mut b = match side {
                Side::Left => test_mat(n, 60, 7),
                Side::Right => test_mat(60, n, 7),
            };
            let mut b_ref = b.clone();
            trsm(side, Triangle::Lower, trans, &l, &mut b);
            reference::trsm(side, Triangle::Lower, trans, &l, &mut b_ref);
            assert!(approx_eq(&b, &b_ref, 1e-11), "mismatch for {side:?}/{trans:?}");
        }
    }

    #[test]
    fn micro_kernel_tiers_match_portable_body() {
        // Each intrinsics micro-kernel is pinned against the generic body at
        // its own (MR, NR) shape; differences come only from FMA contraction
        // (last-ulp). Unsupported tiers self-skip with a visible line.
        fn check<T: MicroTile>(name: &str) {
            for kc in [0usize, 1, 2, 7, 64, 256, 300] {
                let apanel: Vec<f64> =
                    (0..kc * T::MR).map(|i| ((i * 37 + 11) % 23) as f64 / 11.5 - 1.0).collect();
                let bpanel: Vec<f64> =
                    (0..kc * T::NR).map(|i| ((i * 29 + 5) % 19) as f64 / 9.5 - 1.0).collect();
                let mut acc_portable = [0.1f64; ACC_LEN];
                match (T::MR, T::NR) {
                    (8, 4) => micro_kernel_body::<8, 4>(kc, &apanel, &bpanel, &mut acc_portable),
                    (16, 8) => micro_kernel_body::<16, 8>(kc, &apanel, &bpanel, &mut acc_portable),
                    other => panic!("unexpected micro-tile shape {other:?}"),
                }
                let mut acc_tier = [0.1f64; ACC_LEN];
                T::kernel(kc, &apanel, &bpanel, &mut acc_tier);
                for (p, d) in acc_portable.iter().zip(&acc_tier) {
                    assert!((p - d).abs() < 1e-12, "{name} kc={kc}: {p} vs {d}");
                }
            }
        }
        check::<PortableTile>("portable");
        if KernelTier::Avx2.is_supported() {
            check::<Avx2Tile>("avx2");
        } else {
            println!("skipping avx2 micro-kernel parity: not supported on this host");
        }
        if KernelTier::Avx512.is_supported() {
            check::<Avx512Tile>("avx512");
        } else {
            println!("skipping avx512 micro-kernel parity: not supported on this host");
        }
    }

    #[test]
    fn kernel_tier_names_roundtrip() {
        for tier in KernelTier::ALL {
            assert_eq!(KernelTier::from_name(tier.name()), Some(tier));
        }
        assert_eq!(KernelTier::from_name(" AVX512 "), Some(KernelTier::Avx512));
        assert_eq!(KernelTier::from_name("sse9"), None);
        // The portable tier must be supported everywhere and always listed.
        assert!(KernelTier::Portable.is_supported());
        assert!(supported_kernel_tiers().contains(&KernelTier::Portable));
    }

    #[test]
    fn panel_cache_reuse_is_bitwise_and_counts_hits() {
        let a = test_mat(96, 80, 31);
        let b = test_mat(80, 96, 32);
        let mut pack = PackBuffer::new();
        // Cold pass, cache disabled: the baseline result.
        let mut c_cold = Matrix::zeros(96, 96);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c_cold);
        // Enable reuse over both operands and run twice.
        pack.enable_panel_reuse(true);
        pack.register_stable(a.as_slice());
        pack.register_stable(b.as_slice());
        let mut c1 = Matrix::zeros(96, 96);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c1);
        let (h1, m1) = pack.panel_stats();
        assert_eq!(h1, 0, "first eligible pass cannot hit");
        assert!(m1 > 0, "first eligible pass must record misses");
        let mut c2 = Matrix::zeros(96, 96);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c2);
        let (h2, m2) = pack.panel_stats();
        assert!(h2 > 0, "warm pass must hit the panel cache");
        assert_eq!(m2, m1, "warm pass must not repack any panel");
        for (x, y) in c_cold.as_slice().iter().zip(c1.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "cached pack drifted from cold pack");
        }
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "warm pass drifted from cold pass");
        }
    }

    #[test]
    fn panel_cache_re_registration_evicts_stale_panels() {
        let mut a = test_mat(96, 80, 33);
        let b = test_mat(80, 96, 34);
        let mut pack = PackBuffer::new();
        pack.enable_panel_reuse(true);
        pack.register_stable(a.as_slice());
        pack.register_stable(b.as_slice());
        let mut c1 = Matrix::zeros(96, 96);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c1);
        // Mutate A, re-register it fresh (the value-write path), recompute.
        a.as_mut_slice().iter_mut().for_each(|v| *v = 2.0 * *v + 0.25);
        pack.register_stable(a.as_slice());
        let mut c2 = Matrix::zeros(96, 96);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c2);
        let mut c_ref = Matrix::zeros(96, 96);
        reference::gemm_acc(Trans::No, Trans::No, 1.0, &a, &b, &mut c_ref);
        assert!(approx_eq(&c2, &c_ref, 1e-10), "stale panels survived re-registration");
        // Full invalidation drops every entry and the registered regions.
        pack.invalidate_panels();
        let (h, m) = pack.panel_stats();
        let mut c3 = Matrix::zeros(96, 96);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c3);
        let (h_after, m_after) = pack.panel_stats();
        assert_eq!(h_after, h, "unregistered operands must not hit");
        assert_eq!(m_after, m, "unregistered operands must not be cached");
        for (x, y) in c2.as_slice().iter().zip(c3.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocking_override_is_clamped() {
        // Only exercises the pure clamp helper: mutating the global blocking
        // here would race the bitwise/parity tests in this binary.
        assert_eq!(clamp_blocking(8, 100_000, 256), (32, 2048, 256));
    }

    #[test]
    fn gemm_with_reuses_workspace() {
        let mut pack = PackBuffer::new();
        let a = test_mat(64, 64, 8);
        let b = test_mat(64, 64, 9);
        let mut c1 = Matrix::zeros(64, 64);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c1);
        let mut c2 = Matrix::zeros(64, 64);
        gemm_with(&mut pack, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c2);
        assert_eq!(c1.as_slice(), c2.as_slice());
        assert!(approx_eq(&c1, &matmul(&a, &b), 1e-12));
    }

    #[test]
    fn parallel_gemm_is_bitwise_identical_to_sequential_packed() {
        // 160·144·150 = 3.46M > PAR_MIN_FLOPS with 144 ≥ 2·PAR_MIN_COLS
        // columns. The parallel side runs inside a pool pinned to 4 workers
        // so the column-split path is exercised even on a 1-core host (the
        // global pool would size itself to the hardware and fall back to the
        // sequential engine there).
        let (m, n, k) = (160, 144, 150);
        let pool = dalia_pool::ThreadPool::new(4);
        pool.install(|| assert!(use_parallel_gemm(m, n, k)));
        let a = test_mat(m, k, 21);
        let b = test_mat(k, n, 22);
        let mut c_par = Matrix::zeros(m, n);
        pool.install(|| gemm(Trans::No, Trans::No, 1.25, &a, &b, 0.0, &mut c_par));
        // Ground truth: the sequential packed engine, bypassing the split.
        let mut c_seq = Matrix::zeros(m, n);
        let mut pack = PackBuffer::new();
        gemm_packed(
            m,
            n,
            k,
            1.25,
            op_ref(&a, Trans::No),
            op_ref(&b, Trans::No),
            c_seq.as_mut_slice(),
            0,
            m,
            &mut pack,
        );
        for (x, y) in c_par.as_slice().iter().zip(c_seq.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "parallel gemm drifted from sequential");
        }
        // And the transposed variants route identically.
        let mut ct_par = Matrix::zeros(n, m);
        pool.install(|| gemm(Trans::Yes, Trans::Yes, -0.5, &b, &a, 0.0, &mut ct_par));
        let mut ct_seq = Matrix::zeros(n, m);
        gemm_packed(
            n,
            m,
            k,
            -0.5,
            op_ref(&b, Trans::Yes),
            op_ref(&a, Trans::Yes),
            ct_seq.as_mut_slice(),
            0,
            n,
            &mut pack,
        );
        for (x, y) in ct_par.as_slice().iter().zip(ct_seq.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "parallel gemm (transposed) drifted");
        }
    }

    #[test]
    fn syrk_matches_gemm() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut c = Matrix::zeros(3, 3);
        syrk_full(Trans::No, 1.0, &a, 0.0, &mut c);
        let expected = matmul(&a, &a.transpose());
        assert!(approx_eq(&c, &expected, 1e-12));

        let mut ct = Matrix::zeros(2, 2);
        syrk_full(Trans::Yes, 1.0, &a, 0.0, &mut ct);
        let expected_t = matmul(&a.transpose(), &a);
        assert!(approx_eq(&ct, &expected_t, 1e-12));
    }

    #[test]
    fn syrk_lower_leaves_upper_untouched() {
        let a = test_mat(80, 40, 10);
        let mut c = Matrix::filled(80, 80, 42.0);
        syrk_lower(Trans::No, 1.0, &a, 0.0, &mut c);
        for j in 1..80 {
            for i in 0..j {
                assert_eq!(c[(i, j)], 42.0, "upper triangle entry ({i},{j}) was written");
            }
        }
    }

    #[test]
    fn trsv_lower_and_upper() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let mut x = vec![4.0, 11.0];
        trsv_in_place(Triangle::Lower, Trans::No, &l, &mut x);
        assert!((x[0] - 2.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);

        // L^T x = b.
        let mut y = vec![7.0, 9.0];
        trsv_in_place(Triangle::Lower, Trans::Yes, &l, &mut y);
        // L^T = [[2,1],[0,3]]; solve: x1 = 3, x0 = (7-3)/2 = 2.
        assert!((y[0] - 2.0).abs() < 1e-14);
        assert!((y[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn trsm_left_lower() {
        let l = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut b = matmul(&l, &x_true);
        trsm(Side::Left, Triangle::Lower, Trans::No, &l, &mut b);
        assert!(approx_eq(&b, &x_true, 1e-12));
    }

    #[test]
    fn trsm_right_lower_transpose() {
        // Solve X L^T = B, the operation used in block Cholesky (B_i L_ii^{-T}).
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut b = matmul(&x_true, &l.transpose());
        trsm(Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b);
        assert!(approx_eq(&b, &x_true, 1e-12));
    }

    #[test]
    fn trmm_left_lower() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut b = x.clone();
        trmm_left(Triangle::Lower, Trans::No, &l, &mut b);
        let expected = matmul(&l, &x);
        assert!(approx_eq(&b, &expected, 1e-12));

        let mut bt = x.clone();
        trmm_left(Triangle::Lower, Trans::Yes, &l, &mut bt);
        let expected_t = matmul(&l.transpose(), &x);
        assert!(approx_eq(&bt, &expected_t, 1e-12));
    }

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    #[test]
    fn degenerate_dims_are_noops() {
        // k = 0: C = beta * C.
        let a = Matrix::zeros(5, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = Matrix::filled(5, 4, 2.0);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.5, &mut c);
        assert!(approx_eq(&c, &Matrix::filled(5, 4, 1.0), 1e-15));
        // Zero-sized outputs.
        let mut empty = Matrix::zeros(0, 0);
        gemm(Trans::No, Trans::No, 1.0, &Matrix::zeros(0, 3), &Matrix::zeros(3, 0), 0.0, &mut empty);
        let mut c0 = Matrix::zeros(0, 0);
        syrk_lower(Trans::No, 1.0, &Matrix::zeros(0, 3), 0.0, &mut c0);
        let mut b0 = Matrix::zeros(0, 2);
        trsm(Side::Left, Triangle::Lower, Trans::No, &Matrix::zeros(0, 0), &mut b0);
    }
}
