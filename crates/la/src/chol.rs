//! Dense Cholesky factorization and related solves.
//!
//! These kernels are the building blocks of the block-tridiagonal-arrowhead
//! (BTA) factorization in the `serinv` crate: `potrf` on the diagonal blocks,
//! `trsm` on the off-diagonal/arrow blocks and `syrk`/`gemm` on the Schur
//! updates.

use crate::blas::{self, PackBuffer, Side, Trans, Triangle};
use crate::matrix::Matrix;
use crate::LaError;

/// Panel width of the blocked factorization (shared with the `trsm` / `syrk`
/// diagonal-block size so the three kernels tile consistently).
const PB: usize = 64;

/// In-place lower Cholesky factorization `A = L L^T`.
///
/// On success the lower triangle (including the diagonal) of `a` contains `L`
/// and the strict upper triangle is zeroed. Fails with
/// [`LaError::NotPositiveDefinite`] when a non-positive pivot is encountered.
///
/// Matrices larger than one panel are factorized with the blocked
/// right-looking algorithm: an unblocked `PB × PB` diagonal factorization,
/// a triangular panel solve, and a trailing `syrk` update that runs through
/// the packed micro-kernel engine in [`crate::blas`]. Hot loops should hold a
/// [`PackBuffer`] and call [`potrf_with`]; the pre-blocking column-by-column
/// loop survives as [`potrf_reference`].
pub fn potrf(a: &mut Matrix) -> Result<(), LaError> {
    let mut pack = PackBuffer::new();
    potrf_with(&mut pack, a)
}

/// [`potrf`] with an explicit, reusable packing workspace.
pub fn potrf_with(pack: &mut PackBuffer, a: &mut Matrix) -> Result<(), LaError> {
    assert!(a.is_square(), "potrf requires a square matrix");
    let n = a.nrows();
    if n <= PB {
        potrf_unblocked(a, 0, n)?;
        a.zero_upper();
        return Ok(());
    }
    for k0 in (0..n).step_by(PB) {
        let nb = PB.min(n - k0);
        // Factor the (fully updated) diagonal block: A11 = L11 L11ᵀ.
        potrf_unblocked(a, k0, nb)?;
        let rest = k0 + nb;
        if rest == n {
            break;
        }
        // Panel solve: L21 := A21 L11⁻ᵀ, column by column. The L11 entries are
        // stashed in scratch so the column axpys can split-borrow `a`.
        let mut l11 = std::mem::take(&mut pack.scratch);
        l11.clear();
        l11.resize(nb * nb, 0.0);
        for p in 0..nb {
            let col = &a.col(k0 + p)[k0..k0 + nb];
            l11[p * nb..(p + 1) * nb].copy_from_slice(col);
        }
        let lda = n;
        for j in 0..nb {
            let data = a.as_mut_slice();
            let (lo, hi) = data.split_at_mut((k0 + j) * lda);
            let dst = &mut hi[rest..lda];
            for p in 0..j {
                let l = l11[p * nb + j];
                if l != 0.0 {
                    let src = &lo[(k0 + p) * lda + rest..(k0 + p + 1) * lda];
                    blas::axpy(-l, src, dst);
                }
            }
            let d = l11[j * nb + j];
            for v in dst.iter_mut() {
                *v /= d;
            }
        }
        pack.scratch = l11;
        // Trailing update: A22[lower] -= L21 L21ᵀ. The solved panel lives in
        // columns k0..rest, the trailing matrix in columns rest.., so a column
        // split separates the read panel from the written triangle.
        let (head, tail) = a.as_mut_slice().split_at_mut(rest * lda);
        let l21 = blas::StridedRef { data: head, off: k0 * lda + rest, rs: 1, cs: lda };
        blas::syrk_lower_packed(n - rest, nb, -1.0, l21, tail, rest, lda, pack);
    }
    a.zero_upper();
    Ok(())
}

/// Unblocked factorization of the diagonal block `a[k0.., k0..]` of size `nb`,
/// referencing (and overwriting) only entries inside the block.
fn potrf_unblocked(a: &mut Matrix, k0: usize, nb: usize) -> Result<(), LaError> {
    for j in 0..nb {
        let gj = k0 + j;
        let mut d = a[(gj, gj)];
        for p in 0..j {
            let l = a[(gj, k0 + p)];
            d -= l * l;
        }
        if !(d > 0.0) || !d.is_finite() {
            return Err(LaError::NotPositiveDefinite { pivot: gj, value: d });
        }
        let djj = d.sqrt();
        a[(gj, gj)] = djj;
        for i in (j + 1)..nb {
            let gi = k0 + i;
            let mut s = a[(gi, gj)];
            for p in 0..j {
                s -= a[(gi, k0 + p)] * a[(gj, k0 + p)];
            }
            a[(gi, gj)] = s / djj;
        }
    }
    Ok(())
}

/// Reference (pre-blocking) column-by-column Cholesky, retained as the ground
/// truth for the parity suites and the `kernel_bench` comparison.
pub fn potrf_reference(a: &mut Matrix) -> Result<(), LaError> {
    assert!(a.is_square(), "potrf requires a square matrix");
    let n = a.nrows();
    for j in 0..n {
        // Update diagonal entry.
        let mut d = a[(j, j)];
        for k in 0..j {
            let l = a[(j, k)];
            d -= l * l;
        }
        if !(d > 0.0) || !d.is_finite() {
            return Err(LaError::NotPositiveDefinite { pivot: j, value: d });
        }
        let djj = d.sqrt();
        a[(j, j)] = djj;
        // Update column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            a[(i, j)] = s / djj;
        }
    }
    a.zero_upper();
    Ok(())
}

/// Cholesky factorization returning a new matrix containing `L`.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LaError> {
    let mut l = a.clone();
    potrf(&mut l)?;
    Ok(l)
}

/// Log-determinant of the SPD matrix whose Cholesky factor is `l`:
/// `log |A| = 2 * sum_i log(L_ii)`.
pub fn logdet_from_cholesky(l: &Matrix) -> f64 {
    2.0 * l.diag().iter().map(|d| d.ln()).sum::<f64>()
}

/// Solve `A x = b` given the Cholesky factor `L` of `A` (vector RHS, in place).
pub fn potrs_vec(l: &Matrix, x: &mut [f64]) {
    blas::trsv_in_place(Triangle::Lower, Trans::No, l, x);
    blas::trsv_in_place(Triangle::Lower, Trans::Yes, l, x);
}

/// Solve `A X = B` given the Cholesky factor `L` of `A` (matrix RHS, in place).
pub fn potrs(l: &Matrix, b: &mut Matrix) {
    blas::trsm(Side::Left, Triangle::Lower, Trans::No, l, b);
    blas::trsm(Side::Left, Triangle::Lower, Trans::Yes, l, b);
}

/// Inverse of an SPD matrix via its Cholesky factorization.
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, LaError> {
    let l = cholesky(a)?;
    let mut inv = Matrix::identity(a.nrows());
    potrs(&l, &mut inv);
    Ok(inv)
}

/// Solve `A x = b` for SPD `A` (convenience, factorizes internally).
pub fn spd_solve_vec(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LaError> {
    let l = cholesky(a)?;
    let mut x = b.to_vec();
    potrs_vec(&l, &mut x);
    Ok(x)
}

/// General LU factorization with partial pivoting, returning `(lu, piv, sign)`.
///
/// Used for small non-symmetric systems (e.g. the coregionalization matrix Λ)
/// and for log-determinants of general matrices.
pub fn lu_factor(a: &Matrix) -> Result<(Matrix, Vec<usize>, f64), LaError> {
    assert!(a.is_square());
    let n = a.nrows();
    let mut lu = a.clone();
    let mut piv: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        // Pivot search.
        let mut p = k;
        let mut max = lu[(k, k)].abs();
        for i in (k + 1)..n {
            if lu[(i, k)].abs() > max {
                max = lu[(i, k)].abs();
                p = i;
            }
        }
        if max == 0.0 || !max.is_finite() {
            return Err(LaError::Singular { pivot: k });
        }
        if p != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(p, j)];
                lu[(p, j)] = tmp;
            }
            piv.swap(k, p);
            sign = -sign;
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let m = lu[(i, k)] / pivot;
            lu[(i, k)] = m;
            if m != 0.0 {
                for j in (k + 1)..n {
                    let v = lu[(k, j)];
                    lu[(i, j)] -= m * v;
                }
            }
        }
    }
    Ok((lu, piv, sign))
}

/// Solve `A x = b` using a precomputed LU factorization from [`lu_factor`].
pub fn lu_solve(lu: &Matrix, piv: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.nrows();
    assert_eq!(b.len(), n);
    // Apply the permutation.
    let mut x: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
    // Forward substitution with unit lower triangle.
    for i in 0..n {
        let mut s = x[i];
        for k in 0..i {
            s -= lu[(i, k)] * x[k];
        }
        x[i] = s;
    }
    // Backward substitution with upper triangle.
    for i in (0..n).rev() {
        let mut s = x[i];
        for k in (i + 1)..n {
            s -= lu[(i, k)] * x[k];
        }
        x[i] = s / lu[(i, i)];
    }
    x
}

/// Solve the general square system `A x = b`.
pub fn solve_vec(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LaError> {
    let (lu, piv, _) = lu_factor(a)?;
    Ok(lu_solve(&lu, &piv, b))
}

/// General matrix inverse via LU.
pub fn inverse(a: &Matrix) -> Result<Matrix, LaError> {
    let n = a.nrows();
    let (lu, piv, _) = lu_factor(a)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e.iter_mut().for_each(|x| *x = 0.0);
        e[j] = 1.0;
        let col = lu_solve(&lu, &piv, &e);
        inv.col_mut(j).copy_from_slice(&col);
    }
    Ok(inv)
}

/// Log |det(A)| and sign for a general square matrix.
pub fn logdet_general(a: &Matrix) -> Result<(f64, f64), LaError> {
    let (lu, _, mut sign) = lu_factor(a)?;
    let mut logdet = 0.0;
    for i in 0..a.nrows() {
        let d = lu[(i, i)];
        if d < 0.0 {
            sign = -sign;
        }
        logdet += d.abs().ln();
    }
    Ok((logdet, sign))
}

/// Flop count of an `n x n` Cholesky factorization (`n^3 / 3` leading term).
pub fn potrf_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3 + n * n / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;

    fn spd_test_matrix(n: usize) -> Matrix {
        // A = B B^T + n*I with a deterministic B.
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 11) as f64 / 11.0);
        let mut a = matmul(&b, &b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd_test_matrix(8);
        let l = cholesky(&a).unwrap();
        let rec = matmul(&l, &l.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10);
        // Upper triangle must be zero.
        for j in 0..8 {
            for i in 0..j {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(LaError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn logdet_matches_2x2_formula() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let expected = (4.0_f64 * 3.0 - 1.0).ln();
        assert!((logdet_from_cholesky(&l) - expected).abs() < 1e-12);
    }

    #[test]
    fn potrs_solves() {
        let a = spd_test_matrix(6);
        let x_true: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let b = blas::matvec(&a, &x_true);
        let x = spd_solve_vec(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn potrs_matrix_rhs() {
        let a = spd_test_matrix(5);
        let x_true = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let mut b = matmul(&a, &x_true);
        let l = cholesky(&a).unwrap();
        potrs(&l, &mut b);
        assert!(b.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn spd_inverse_is_inverse() {
        let a = spd_test_matrix(7);
        let inv = spd_inverse(&a).unwrap();
        let prod = matmul(&a, &inv);
        assert!(prod.max_abs_diff(&Matrix::identity(7)) < 1e-9);
    }

    #[test]
    fn lu_solve_general() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 3.0], &[4.0, 0.0, -2.0]]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = blas::matvec(&a, &x_true);
        let x = solve_vec(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(lu_factor(&a), Err(LaError::Singular { .. })));
    }

    #[test]
    fn general_inverse_and_logdet() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let inv = inverse(&a).unwrap();
        let prod = matmul(&a, &inv);
        assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-12);
        let (ld, sign) = logdet_general(&a).unwrap();
        assert!((ld - 5.0_f64.ln()).abs() < 1e-12);
        assert_eq!(sign, 1.0);
    }

    #[test]
    fn logdet_general_negative_det() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]); // det = -1
        let (ld, sign) = logdet_general(&a).unwrap();
        assert!(ld.abs() < 1e-12);
        assert_eq!(sign, -1.0);
    }
}
