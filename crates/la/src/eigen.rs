//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used by the INLA engine to analyse the Hessian of the objective at the
//! hyperparameter mode (Gaussian approximation of the hyperparameter
//! posterior, reparameterization along eigenvector directions) — these
//! matrices are tiny (dim(θ) ≤ ~20) so the Jacobi method is more than
//! adequate.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = V diag(λ) V^T`.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Column `k` of `vectors` is the eigenvector for `values[k]`.
    pub vectors: Matrix,
}

/// Compute all eigenvalues/eigenvectors of a symmetric matrix using cyclic
/// Jacobi rotations. The input is symmetrized first to be robust against tiny
/// asymmetries from finite-difference Hessians.
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    assert!(a.is_square(), "symmetric_eigen requires a square matrix");
    let n = a.nrows();
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Matrix::identity(n);

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for j in 0..n {
            for i in (j + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_col)] = v[(i, old_col)];
        }
    }
    SymmetricEigen { values, vectors }
}

/// Smallest eigenvalue of a symmetric matrix.
pub fn min_eigenvalue(a: &Matrix) -> f64 {
    symmetric_eigen(a).values[0]
}

/// `true` if a symmetric matrix is positive definite (all eigenvalues > tol).
pub fn is_positive_definite(a: &Matrix, tol: f64) -> bool {
    min_eigenvalue(a) > tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::matmul;

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5],
            &[1.0, 3.0, -0.2],
            &[0.5, -0.2, 2.0],
        ]);
        let e = symmetric_eigen(&a);
        // Reconstruct V diag(λ) V^T.
        let lam = Matrix::from_diag(&e.values);
        let rec = matmul(&matmul(&e.vectors, &lam), &e.vectors.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        let vtv = matmul(&e.vectors.transpose(), &e.vectors);
        assert!(vtv.max_abs_diff(&Matrix::identity(2)) < 1e-12);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn positive_definite_check() {
        let pd = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(is_positive_definite(&pd, 0.0));
        assert!(!is_positive_definite(&indef, 0.0));
        assert!((min_eigenvalue(&indef) + 1.0).abs() < 1e-12);
    }
}
