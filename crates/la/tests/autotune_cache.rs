//! Integration test for the blocking autotuner's persisted cache: the
//! `DALIA_TUNE_CACHE` path override, determinism given a fixed cache file,
//! an actual (small) sweep, and fallback on a corrupted cache.
//!
//! Everything lives in ONE `#[test]` because the sweep mutates the global
//! blocking configuration and the process environment; a single test per
//! binary means no intra-process races (and other integration binaries run
//! in their own processes).

use dalia_la::tune::{self, BlockConfig};
use dalia_la::KernelTier;

#[test]
fn tune_cache_override_sweep_and_fallback() {
    let dir = std::env::temp_dir().join(format!("dalia_tune_test_{}", std::process::id()));
    let path = dir.join("nested").join("tune.txt");

    // Env override redirects the cache path (read at call time, not startup).
    std::env::set_var("DALIA_TUNE_CACHE", &path);
    assert_eq!(tune::cache_path(), path);

    // A stored record round-trips through the overridden path, and repeated
    // loads of a fixed cache file are deterministic.
    let cfg = BlockConfig { mc: 64, kc: 512, nc: 128 };
    tune::store_at(&tune::cache_path(), &[(KernelTier::Portable, cfg)])
        .expect("store_at creates parent dirs and writes");
    let first = tune::load_from(&tune::cache_path(), KernelTier::Portable);
    let second = tune::load_from(&tune::cache_path(), KernelTier::Portable);
    assert_eq!(first, Some(cfg));
    assert_eq!(first, second, "fixed cache file must load deterministically");

    // A real (small) sweep on the best supported tier: returns a candidate
    // from the documented grid with a positive rate, and restores the global
    // blocking and tier it mutates while measuring.
    let tier = dalia_la::kernel_tier();
    let blocking_before = dalia_la::blocking();
    let (best, gflops) = tune::autotune_sized(tier, 96).expect("supported tier sweeps");
    assert!(tune::candidates().contains(&best), "winner {best:?} not in candidate grid");
    assert!(gflops.is_finite() && gflops > 0.0, "nonsensical rate {gflops}");
    assert_eq!(dalia_la::blocking(), blocking_before, "sweep must restore blocking");
    assert_eq!(dalia_la::kernel_tier(), tier, "sweep must restore the kernel tier");

    // Persisting the winner and loading it back agrees.
    tune::store_at(&tune::cache_path(), &[(tier, best)]).expect("persist winner");
    assert_eq!(tune::load_from(&tune::cache_path(), tier), Some(best));

    // Corrupt cache (binary garbage, then a truncated header): load falls
    // back to None without panicking, and the defaults still apply.
    std::fs::write(&path, [0u8, 159, 146, 150]).unwrap();
    assert_eq!(tune::load_from(&path, tier), None);
    std::fs::write(&path, "dalia-tu").unwrap();
    assert_eq!(tune::load_from(&path, tier), None);

    // Dropping the override falls back to the workspace-target default path.
    std::env::remove_var("DALIA_TUNE_CACHE");
    assert!(
        tune::cache_path().ends_with("target/dalia_tune_cache.txt"),
        "default cache path should live under target/, got {:?}",
        tune::cache_path()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
