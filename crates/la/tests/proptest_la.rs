//! Property-based tests for the dense kernels.

use dalia_la::blas::{self, Side, Trans, Triangle};
use dalia_la::chol;
use dalia_la::eigen;
use dalia_la::Matrix;
use proptest::prelude::*;

/// Strategy producing a random matrix with entries in [-1, 1].
fn matrix_strategy(nrows: usize, ncols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, nrows * ncols)
        .prop_map(move |data| Matrix::from_col_major(nrows, ncols, data))
}

/// Strategy producing a random SPD matrix of order `n` (B Bᵀ + n·I).
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |b| {
        let mut a = blas::matmul(&b, &b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_naive(a in matrix_strategy(5, 4), b in matrix_strategy(4, 6)) {
        let c = blas::matmul(&a, &b);
        for i in 0..5 {
            for j in 0..6 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += a[(i, k)] * b[(k, j)];
                }
                prop_assert!((c[(i, j)] - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_transpose_consistency(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5)) {
        // (A B)^T == B^T A^T
        let ab_t = blas::matmul(&a, &b).transpose();
        let bt_at = blas::matmul(&b.transpose(), &a.transpose());
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-12);
    }

    #[test]
    fn syrk_equals_gemm(a in matrix_strategy(5, 3)) {
        let mut c = Matrix::zeros(5, 5);
        blas::syrk_full(Trans::No, 1.0, &a, 0.0, &mut c);
        let expected = blas::matmul(&a, &a.transpose());
        prop_assert!(c.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn cholesky_reconstruction(a in spd_strategy(6)) {
        let l = chol::cholesky(&a).unwrap();
        let rec = blas::matmul(&l, &l.transpose());
        prop_assert!(rec.max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn cholesky_solve_residual(a in spd_strategy(6), x in proptest::collection::vec(-2.0f64..2.0, 6)) {
        let b = blas::matvec(&a, &x);
        let sol = chol::spd_solve_vec(&a, &b).unwrap();
        for (s, t) in sol.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-7);
        }
    }

    #[test]
    fn logdet_consistency_cholesky_vs_lu(a in spd_strategy(5)) {
        let l = chol::cholesky(&a).unwrap();
        let ld_chol = chol::logdet_from_cholesky(&l);
        let (ld_lu, sign) = chol::logdet_general(&a).unwrap();
        prop_assert_eq!(sign, 1.0);
        prop_assert!((ld_chol - ld_lu).abs() < 1e-8 * (1.0 + ld_chol.abs()));
    }

    #[test]
    fn trsm_left_inverse_of_trmm(l0 in matrix_strategy(5, 5), x in matrix_strategy(5, 3)) {
        // Build a well-conditioned lower-triangular matrix from l0.
        let n = 5;
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = l0[(i, j)];
            }
            l[(j, j)] = 1.5 + l0[(j, j)].abs();
        }
        let mut b = x.clone();
        blas::trmm_left(Triangle::Lower, Trans::No, &l, &mut b);
        blas::trsm(Side::Left, Triangle::Lower, Trans::No, &l, &mut b);
        prop_assert!(b.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn trsm_right_transpose_roundtrip(l0 in matrix_strategy(4, 4), x in matrix_strategy(3, 4)) {
        let n = 4;
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = l0[(i, j)];
            }
            l[(j, j)] = 1.5 + l0[(j, j)].abs();
        }
        // B = X L^T, then solve X = B L^{-T}.
        let mut b = blas::matmul(&x, &l.transpose());
        blas::trsm(Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b);
        prop_assert!(b.max_abs_diff(&x) < 1e-9);
    }

    #[test]
    fn spd_inverse_roundtrip(a in spd_strategy(5)) {
        let inv = chol::spd_inverse(&a).unwrap();
        let prod = blas::matmul(&a, &inv);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(5)) < 1e-7);
    }

    #[test]
    fn eigen_reconstruction(a0 in matrix_strategy(5, 5)) {
        let mut a = a0.clone();
        a.symmetrize();
        let e = eigen::symmetric_eigen(&a);
        let lam = Matrix::from_diag(&e.values);
        let rec = blas::matmul(&blas::matmul(&e.vectors, &lam), &e.vectors.transpose());
        prop_assert!(rec.max_abs_diff(&a) < 1e-9);
        // Eigenvalues sorted ascending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn eigen_trace_and_det_invariants(a in spd_strategy(4)) {
        let e = eigen::symmetric_eigen(&a);
        let trace_sum: f64 = e.values.iter().sum();
        prop_assert!((trace_sum - a.trace()).abs() < 1e-8 * (1.0 + a.trace().abs()));
        let logdet_eig: f64 = e.values.iter().map(|v| v.ln()).sum();
        let l = chol::cholesky(&a).unwrap();
        let logdet_chol = chol::logdet_from_cholesky(&l);
        prop_assert!((logdet_eig - logdet_chol).abs() < 1e-7 * (1.0 + logdet_chol.abs()));
    }

    #[test]
    fn matvec_linearity(a in matrix_strategy(4, 4), x in proptest::collection::vec(-1.0f64..1.0, 4), y in proptest::collection::vec(-1.0f64..1.0, 4)) {
        let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let ax = blas::matvec(&a, &x);
        let ay = blas::matvec(&a, &y);
        let asum = blas::matvec(&a, &sum);
        for i in 0..4 {
            prop_assert!((asum[i] - ax[i] - ay[i]).abs() < 1e-12);
        }
    }
}
