//! Parity suite: the cache-blocked, packed level-3 kernels and the blocked
//! Cholesky must match the retained naive reference kernels to 1e-12 across
//! random shapes, transposes, alpha/beta prefactors and degenerate dimensions
//! (0, 1, and sizes straddling the micro-tile and panel boundaries).

use dalia_la::blas::{self, reference, KernelTier, Side, Trans, Triangle};
use dalia_la::{chol, Matrix};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

fn rand_matrix(rng: &mut TestRng, m: usize, n: usize) -> Matrix {
    Matrix::from_fn(m, n, |_, _| rng.uniform_f64(-1.0, 1.0))
}

fn rand_trans(rng: &mut TestRng) -> Trans {
    if rng.uniform_usize(0, 2) == 0 {
        Trans::No
    } else {
        Trans::Yes
    }
}

/// Well-conditioned lower-triangular matrix with unit-order entries.
fn rand_lower(rng: &mut TestRng, n: usize) -> Matrix {
    let mut l = rand_matrix(rng, n, n);
    for j in 0..n {
        for i in 0..j {
            l[(i, j)] = 0.0;
        }
        l[(j, j)] = 1.5 + l[(j, j)].abs();
    }
    l
}

/// Random SPD matrix (scaled Gram matrix plus a diagonal shift).
fn rand_spd(rng: &mut TestRng, n: usize) -> Matrix {
    let b = rand_matrix(rng, n, n);
    let mut a = blas::matmul(&b, &b.transpose());
    a.scale(1.0 / (n.max(1) as f64));
    for i in 0..n {
        a[(i, i)] += 2.0;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_blocked_matches_reference(case in Just(()).prop_perturb(|_, mut rng| {
        let m = rng.uniform_usize(0, 70);
        let n = rng.uniform_usize(0, 70);
        let k = rng.uniform_usize(0, 70);
        let ta = rand_trans(&mut rng);
        let tb = rand_trans(&mut rng);
        let alpha = rng.uniform_f64(-2.0, 2.0);
        let beta = rng.uniform_f64(-2.0, 2.0);
        let a = match ta {
            Trans::No => rand_matrix(&mut rng, m, k),
            Trans::Yes => rand_matrix(&mut rng, k, m),
        };
        let b = match tb {
            Trans::No => rand_matrix(&mut rng, k, n),
            Trans::Yes => rand_matrix(&mut rng, n, k),
        };
        let c = rand_matrix(&mut rng, m, n);
        (ta, tb, alpha, beta, a, b, c)
    })) {
        let (ta, tb, alpha, beta, a, b, c0) = case;
        let mut c_blk = c0.clone();
        blas::gemm(ta, tb, alpha, &a, &b, beta, &mut c_blk);
        let mut c_ref = c0;
        reference::gemm(ta, tb, alpha, &a, &b, beta, &mut c_ref);
        prop_assert!(
            c_blk.max_abs_diff(&c_ref) < 1e-12,
            "gemm mismatch {:?}/{:?} shape {:?}: {}",
            ta, tb, c_blk.shape(), c_blk.max_abs_diff(&c_ref)
        );
    }

    #[test]
    fn syrk_blocked_matches_reference(case in Just(()).prop_perturb(|_, mut rng| {
        let n = rng.uniform_usize(0, 90);
        let k = rng.uniform_usize(0, 70);
        let trans = rand_trans(&mut rng);
        let alpha = rng.uniform_f64(-2.0, 2.0);
        let beta = rng.uniform_f64(-2.0, 2.0);
        let a = match trans {
            Trans::No => rand_matrix(&mut rng, n, k),
            Trans::Yes => rand_matrix(&mut rng, k, n),
        };
        let c = rand_matrix(&mut rng, n, n);
        let full = rng.uniform_usize(0, 2) == 0;
        (trans, alpha, beta, a, c, full)
    })) {
        let (trans, alpha, beta, a, c0, full) = case;
        let mut c_blk = c0.clone();
        let mut c_ref = c0;
        if full {
            blas::syrk_full(trans, alpha, &a, beta, &mut c_blk);
            reference::syrk_full(trans, alpha, &a, beta, &mut c_ref);
        } else {
            blas::syrk_lower(trans, alpha, &a, beta, &mut c_blk);
            reference::syrk_lower(trans, alpha, &a, beta, &mut c_ref);
        }
        // Comparing full matrices also proves the lower-only variant left the
        // strict upper triangle untouched.
        prop_assert!(
            c_blk.max_abs_diff(&c_ref) < 1e-12,
            "syrk mismatch {:?} n={} full={}: {}",
            trans, c_blk.nrows(), full, c_blk.max_abs_diff(&c_ref)
        );
    }

    #[test]
    fn trsm_blocked_matches_reference(case in Just(()).prop_perturb(|_, mut rng| {
        let n = rng.uniform_usize(0, 80);
        let nrhs = rng.uniform_usize(0, 60);
        let side = if rng.uniform_usize(0, 2) == 0 { Side::Left } else { Side::Right };
        let trans = rand_trans(&mut rng);
        let l = rand_lower(&mut rng, n);
        let b = match side {
            Side::Left => rand_matrix(&mut rng, n, nrhs),
            Side::Right => rand_matrix(&mut rng, nrhs, n),
        };
        (side, trans, l, b)
    })) {
        let (side, trans, l, b0) = case;
        let mut b_blk = b0.clone();
        blas::trsm(side, Triangle::Lower, trans, &l, &mut b_blk);
        let mut b_ref = b0;
        reference::trsm(side, Triangle::Lower, trans, &l, &mut b_ref);
        prop_assert!(
            b_blk.max_abs_diff(&b_ref) < 1e-12,
            "trsm mismatch {:?}/{:?} n={}: {}",
            side, trans, l.nrows(), b_blk.max_abs_diff(&b_ref)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn potrf_blocked_matches_reference(case in Just(()).prop_perturb(|_, mut rng| {
        let n = rng.uniform_usize(0, 150);
        rand_spd(&mut rng, n)
    })) {
        let mut a_blk = case.clone();
        let mut a_ref = case;
        chol::potrf(&mut a_blk).unwrap();
        chol::potrf_reference(&mut a_ref).unwrap();
        prop_assert!(
            a_blk.max_abs_diff(&a_ref) < 1e-12,
            "potrf mismatch n={}: {}",
            a_blk.nrows(), a_blk.max_abs_diff(&a_ref)
        );
    }

    #[test]
    fn potrf_blocked_rejects_indefinite_like_reference(case in Just(()).prop_perturb(|_, mut rng| {
        let n = rng.uniform_usize(2, 140);
        let bad = rng.uniform_usize(0, n);
        let mut a = rand_spd(&mut rng, n);
        a[(bad, bad)] = -5.0;
        a
    })) {
        let mut a_blk = case.clone();
        let mut a_ref = case;
        prop_assert!(chol::potrf(&mut a_blk).is_err());
        prop_assert!(chol::potrf_reference(&mut a_ref).is_err());
    }
}

/// Forced-dispatch parity wall: the full level-3 suite (gemm / syrk / trsm /
/// potrf, including degenerate and tile-edge dimensions) must match the
/// reference loops to 1e-12 under **every** kernel tier this host supports.
/// `blas::set_kernel_tier` forces each tier in turn — so CI runs under
/// `DALIA_KERNEL_TIER=portable` and `avx2` exercise the same wall through the
/// env override too — and unsupported tiers self-skip with a logged line.
/// The entry tier is restored afterwards.
#[test]
fn forced_dispatch_parity_wall() {
    let entry_tier = blas::kernel_tier();
    for tier in KernelTier::ALL {
        if !blas::set_kernel_tier(tier) {
            println!("skipping {} parity wall: tier not supported on this host", tier.name());
            continue;
        }
        assert_eq!(blas::kernel_tier(), tier);
        let mut rng = TestRng::deterministic(0x5125_0000 + tier as u64);
        // Dimensions straddling both micro-tile shapes (8×4 and 16×8), the
        // 64-wide triangular panel boundary, and the packed-path threshold.
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 33, 64, 65, 96, 130] {
            let k = 65 + (n % 3);
            // gemm, all four transpose combinations.
            for (ta, tb) in
                [(Trans::No, Trans::No), (Trans::No, Trans::Yes), (Trans::Yes, Trans::No), (Trans::Yes, Trans::Yes)]
            {
                let a = match ta {
                    Trans::No => rand_matrix(&mut rng, n, k),
                    Trans::Yes => rand_matrix(&mut rng, k, n),
                };
                let b = match tb {
                    Trans::No => rand_matrix(&mut rng, k, n.max(1)),
                    Trans::Yes => rand_matrix(&mut rng, n.max(1), k),
                };
                let c0 = rand_matrix(&mut rng, n, n.max(1));
                let mut c_blk = c0.clone();
                blas::gemm(ta, tb, 1.1, &a, &b, -0.3, &mut c_blk);
                let mut c_ref = c0;
                reference::gemm(ta, tb, 1.1, &a, &b, -0.3, &mut c_ref);
                assert!(
                    c_blk.max_abs_diff(&c_ref) < 1e-12,
                    "gemm tier={} {ta:?}/{tb:?} n={n}",
                    tier.name()
                );
            }

            // syrk, lower and full.
            let s = rand_matrix(&mut rng, n, k);
            let c0 = rand_matrix(&mut rng, n, n);
            let mut c_blk = c0.clone();
            let mut c_ref = c0.clone();
            blas::syrk_lower(Trans::No, -0.9, &s, 0.7, &mut c_blk);
            reference::syrk_lower(Trans::No, -0.9, &s, 0.7, &mut c_ref);
            assert!(c_blk.max_abs_diff(&c_ref) < 1e-12, "syrk_lower tier={} n={n}", tier.name());
            let mut f_blk = c0.clone();
            let mut f_ref = c0;
            blas::syrk_full(Trans::Yes, 1.2, &s.transpose(), -0.4, &mut f_blk);
            reference::syrk_full(Trans::Yes, 1.2, &s.transpose(), -0.4, &mut f_ref);
            assert!(f_blk.max_abs_diff(&f_ref) < 1e-12, "syrk_full tier={} n={n}", tier.name());

            // trsm, all side/trans combinations on the lower triangle.
            let l = rand_lower(&mut rng, n);
            for (side, trans) in [
                (Side::Left, Trans::No),
                (Side::Left, Trans::Yes),
                (Side::Right, Trans::No),
                (Side::Right, Trans::Yes),
            ] {
                let b0 = match side {
                    Side::Left => rand_matrix(&mut rng, n, k),
                    Side::Right => rand_matrix(&mut rng, k, n),
                };
                let mut b_blk = b0.clone();
                blas::trsm(side, Triangle::Lower, trans, &l, &mut b_blk);
                let mut b_ref = b0;
                reference::trsm(side, Triangle::Lower, trans, &l, &mut b_ref);
                assert!(
                    b_blk.max_abs_diff(&b_ref) < 1e-12,
                    "trsm tier={} {side:?}/{trans:?} n={n}",
                    tier.name()
                );
            }

            // potrf across the panel boundary.
            let spd = rand_spd(&mut rng, n);
            let mut p_blk = spd.clone();
            let mut p_ref = spd;
            chol::potrf(&mut p_blk).unwrap();
            chol::potrf_reference(&mut p_ref).unwrap();
            assert!(p_blk.max_abs_diff(&p_ref) < 1e-12, "potrf tier={} n={n}", tier.name());
        }
    }
    assert!(blas::set_kernel_tier(entry_tier), "restoring the entry tier cannot fail");
}

/// Deterministic sweep of the dimensions where tile and panel edge handling
/// changes: 0, 1, the 8×4 micro-tile edges, and the 64-wide panel boundary.
#[test]
fn tile_and_panel_boundary_parity() {
    let mut rng = TestRng::deterministic(0xDA11A);
    for n in [0usize, 1, 3, 7, 8, 9, 31, 33, 63, 64, 65, 96] {
        // gemm at a boundary-straddling shape.
        let a = rand_matrix(&mut rng, n, 65);
        let b = rand_matrix(&mut rng, 65, n.max(1));
        let c0 = rand_matrix(&mut rng, n, n.max(1));
        let mut c_blk = c0.clone();
        blas::gemm(Trans::No, Trans::No, 1.1, &a, &b, -0.3, &mut c_blk);
        let mut c_ref = c0;
        reference::gemm(Trans::No, Trans::No, 1.1, &a, &b, -0.3, &mut c_ref);
        assert!(c_blk.max_abs_diff(&c_ref) < 1e-12, "gemm n={n}");

        // potrf across the panel boundary.
        let spd = rand_spd(&mut rng, n);
        let mut p_blk = spd.clone();
        let mut p_ref = spd;
        chol::potrf(&mut p_blk).unwrap();
        chol::potrf_reference(&mut p_ref).unwrap();
        assert!(p_blk.max_abs_diff(&p_ref) < 1e-12, "potrf n={n}");

        // trsm (the factorization hot path shape) at the same sizes.
        let l = rand_lower(&mut rng, n);
        let b0 = rand_matrix(&mut rng, 65, n);
        let mut b_blk = b0.clone();
        blas::trsm(Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b_blk);
        let mut b_ref = b0;
        reference::trsm(Side::Right, Triangle::Lower, Trans::Yes, &l, &mut b_ref);
        assert!(b_blk.max_abs_diff(&b_ref) < 1e-12, "trsm n={n}");
    }
}
