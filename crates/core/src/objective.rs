//! The INLA objective function `f_obj(θ)` (Eq. 8 of the paper).
//!
//! For a Gaussian likelihood the Laplace approximation is exact and
//!
//! ```text
//! f_obj(θ) = log p(θ) + log ℓ(y | θ, μ) + log p(μ | θ) − log p_G(μ | θ, y)
//!          = log p(θ) + log ℓ(y | θ, μ)
//!            + ½ log|Q_p| − ½ μᵀ Q_p μ − ½ log|Q_c|
//! ```
//!
//! where `μ` solves `Q_c μ = Aᵀ D y`. One evaluation therefore costs two
//! structured factorizations (`Q_p`, `Q_c`, which can run concurrently — the
//! S2 layer) plus one triangular solve, exactly the bottleneck profile the
//! paper describes.

use crate::settings::{InlaSettings, SolverBackend};
use crate::CoreError;
use dalia_la::Matrix;
use dalia_model::{CoregionalModel, ModelHyper, ThetaPrior};
use dalia_sparse::SparseCholesky;
use serinv::{d_pobtaf, d_pobtas, pobtaf, pobtas, BtaMatrix, Partitioning};
use std::time::Instant;

/// Everything produced by one objective-function evaluation.
#[derive(Clone, Debug)]
pub struct FobjResult {
    /// The objective value `f_obj(θ)`.
    pub value: f64,
    /// Conditional mean `μ` of the latent field (permuted ordering).
    pub mean: Vec<f64>,
    /// `log |Q_p|`.
    pub logdet_qp: f64,
    /// `log |Q_c|`.
    pub logdet_qc: f64,
    /// Gaussian log-likelihood at `μ`.
    pub loglik: f64,
    /// Log prior density of θ.
    pub logprior: f64,
    /// Wall-clock seconds spent in the structured/sparse solver.
    pub solver_seconds: f64,
    /// Wall-clock seconds spent assembling matrices.
    pub assembly_seconds: f64,
}

/// Evaluate `f_obj` at the hyperparameter vector `theta`.
pub fn evaluate_fobj(
    model: &CoregionalModel,
    prior: &ThetaPrior,
    theta: &[f64],
    settings: &InlaSettings,
) -> Result<FobjResult, CoreError> {
    let hyper = ModelHyper::from_theta(model.dims.nv, theta);
    let logprior = prior.log_density(theta);

    match settings.backend {
        SolverBackend::Bta { partitions, load_balance } => {
            evaluate_bta(model, &hyper, logprior, partitions, load_balance)
        }
        SolverBackend::SparseGeneral => evaluate_sparse(model, &hyper, logprior),
    }
}

fn evaluate_bta(
    model: &CoregionalModel,
    hyper: &ModelHyper,
    logprior: f64,
    partitions: usize,
    load_balance: f64,
) -> Result<FobjResult, CoreError> {
    let t_assembly = Instant::now();
    let qp = model.assemble_qp_bta(hyper);
    let (qc, design) = model.assemble_qc_bta(hyper);
    let info = model.information_vector(hyper, &design);
    let assembly_seconds = t_assembly.elapsed().as_secs_f64();

    let t_solver = Instant::now();
    let nt = model.dims.nt;
    let p = partitions.clamp(1, nt);
    let (logdet_qp, logdet_qc, mean) = if p > 1 {
        let part = Partitioning::load_balanced(nt, p, load_balance);
        let fp = d_pobtaf(&qp, &part).map_err(CoreError::Solver)?;
        let fc = d_pobtaf(&qc, &part).map_err(CoreError::Solver)?;
        let mut rhs = Matrix::col_vector(&info);
        d_pobtas(&fc, &mut rhs);
        (fp.logdet(), fc.logdet(), rhs.col(0).to_vec())
    } else {
        let fp = pobtaf(&qp).map_err(CoreError::Solver)?;
        let fc = pobtaf(&qc).map_err(CoreError::Solver)?;
        let mut rhs = Matrix::col_vector(&info);
        pobtas(&fc, &mut rhs);
        (fp.logdet(), fc.logdet(), rhs.col(0).to_vec())
    };
    let solver_seconds = t_solver.elapsed().as_secs_f64();

    let quad = quadratic_form_bta(&qp, &mean);
    let loglik = model.log_likelihood(hyper, &design, &mean);
    let value = logprior + loglik + 0.5 * logdet_qp - 0.5 * quad - 0.5 * logdet_qc;
    if !value.is_finite() {
        return Err(CoreError::NonFiniteObjective);
    }
    Ok(FobjResult {
        value,
        mean,
        logdet_qp,
        logdet_qc,
        loglik,
        logprior,
        solver_seconds,
        assembly_seconds,
    })
}

fn evaluate_sparse(
    model: &CoregionalModel,
    hyper: &ModelHyper,
    logprior: f64,
) -> Result<FobjResult, CoreError> {
    let t_assembly = Instant::now();
    let qp = model.assemble_qp_csr(hyper, true);
    let qc = model.assemble_qc_csr(hyper, true);
    let design = model.joint_design(hyper);
    let info = model.information_vector(hyper, &design);
    let assembly_seconds = t_assembly.elapsed().as_secs_f64();

    let t_solver = Instant::now();
    let fp = SparseCholesky::factor(&qp).map_err(CoreError::SparseSolver)?;
    let fc = SparseCholesky::factor(&qc).map_err(CoreError::SparseSolver)?;
    let mean = fc.solve(&info);
    let logdet_qp = fp.logdet();
    let logdet_qc = fc.logdet();
    let solver_seconds = t_solver.elapsed().as_secs_f64();

    let quad = qp.quadratic_form(&mean);
    let loglik = model.log_likelihood(hyper, &design, &mean);
    let value = logprior + loglik + 0.5 * logdet_qp - 0.5 * quad - 0.5 * logdet_qc;
    if !value.is_finite() {
        return Err(CoreError::NonFiniteObjective);
    }
    Ok(FobjResult {
        value,
        mean,
        logdet_qp,
        logdet_qc,
        loglik,
        logprior,
        solver_seconds,
        assembly_seconds,
    })
}

/// Quadratic form `xᵀ A x` for a BTA matrix.
pub fn quadratic_form_bta(a: &BtaMatrix, x: &[f64]) -> f64 {
    let ax = a.matvec(x);
    x.iter().zip(&ax).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::InlaSettings;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    fn toy_model(nv: usize) -> (CoregionalModel, ThetaPrior, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let nr = 1;
        let mut obs = Vec::new();
        for v in 0..nv {
            for t in 0..nt {
                for &(x, y) in &[(0.25, 0.25), (0.75, 0.5), (0.4, 0.85)] {
                    obs.push(Observation {
                        var: v,
                        t,
                        loc: Point::new(x, y),
                        covariates: vec![1.0],
                        value: 0.3 * (v as f64) + 0.2 * (t as f64) + 0.1 * x,
                    });
                }
            }
        }
        let model = CoregionalModel::new(&mesh, nt, 1.0, nv, nr, obs).unwrap();
        let hyper = ModelHyper::default_for(nv, 0.7, 2.0);
        let theta = hyper.to_theta();
        let prior = ThetaPrior::weakly_informative(&theta, 2.0);
        (model, prior, theta)
    }

    #[test]
    fn bta_and_sparse_backends_agree() {
        for nv in [1usize, 2] {
            let (model, prior, theta) = toy_model(nv);
            let bta = evaluate_fobj(&model, &prior, &theta, &InlaSettings::dalia(1)).unwrap();
            let sparse = evaluate_fobj(&model, &prior, &theta, &InlaSettings::rinla_like()).unwrap();
            assert!(
                (bta.value - sparse.value).abs() < 1e-6 * (1.0 + bta.value.abs()),
                "nv={nv}: {} vs {}",
                bta.value,
                sparse.value
            );
            assert!((bta.logdet_qc - sparse.logdet_qc).abs() < 1e-6 * (1.0 + bta.logdet_qc.abs()));
            for (a, b) in bta.mean.iter().zip(&sparse.mean) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn distributed_solver_gives_same_objective() {
        let (model, prior, theta) = toy_model(2);
        let seq = evaluate_fobj(&model, &prior, &theta, &InlaSettings::dalia(1)).unwrap();
        let dist = evaluate_fobj(&model, &prior, &theta, &InlaSettings::dalia(3)).unwrap();
        assert!((seq.value - dist.value).abs() < 1e-7 * (1.0 + seq.value.abs()));
    }

    #[test]
    fn objective_components_have_expected_signs() {
        let (model, prior, theta) = toy_model(1);
        let r = evaluate_fobj(&model, &prior, &theta, &InlaSettings::dalia(1)).unwrap();
        // Conditional precision adds the likelihood information, so its
        // log-determinant is larger than the prior one.
        assert!(r.logdet_qc > r.logdet_qp);
        assert!(r.loglik.is_finite());
        assert!(r.value.is_finite());
    }

    #[test]
    fn objective_changes_with_theta() {
        let (model, prior, theta) = toy_model(1);
        let r0 = evaluate_fobj(&model, &prior, &theta, &InlaSettings::dalia(1)).unwrap();
        let mut theta2 = theta.clone();
        theta2[0] += 0.5;
        let r1 = evaluate_fobj(&model, &prior, &theta2, &InlaSettings::dalia(1)).unwrap();
        assert!((r0.value - r1.value).abs() > 1e-8);
    }
}
