//! The INLA objective function `f_obj(θ)` (Eq. 8 of the paper) and the inner
//! Newton loop that locates the conditional mode of the latent field.
//!
//! ```text
//! f_obj(θ) = log p(θ) + log ℓ(y | θ, x*) + log p(x* | θ) − log p_G(x* | θ, y)
//!          = log p(θ) + log ℓ(y | θ, x*)
//!            + ½ log|Q_p| − ½ x*ᵀ Q_p x* − ½ log|Q_c(x*)|
//! ```
//!
//! where `x*` maximizes the conditional log-posterior
//! `ψ(x) = −½ xᵀ Q_p x + Σ_i ℓ_i(η_i)`, `η = A x`. For the Gaussian
//! likelihood ψ is quadratic, the Laplace approximation is exact, and a single
//! Newton step `Q_c x* = Aᵀ D y` lands on the mode — one evaluation costs two
//! structured factorizations (`Q_p`, `Q_c`) plus one triangular solve, exactly
//! the bottleneck profile the paper describes. Non-Gaussian families
//! ([`conditional_mode`]) iterate the same step with working weights
//! `W(η) = −diag(ℓ″)` and working right-hand side `Aᵀ(Wη + g)`; only the
//! diagonal perturbation `AᵀWA` of `Q_c` changes between iterations, so each
//! one reuses the assembled `Q_p` and warm factor storage through
//! [`LatentSolver::refactorize_conditional`]. All operations go through the
//! [`LatentSolver`] trait, so the evaluation is backend-agnostic and benefits
//! from whatever workspaces the solver amortizes across calls.

use crate::settings::InlaSettings;
use crate::solver::{LatentSolver, PhaseTimers};
use crate::CoreError;
use dalia_model::{CoregionalModel, ModelHyper, ThetaPrior};
use std::time::Instant;

/// Configuration of the inner Newton loop, extracted from
/// [`InlaSettings`] (or built directly for standalone
/// [`conditional_mode`] calls).
#[derive(Clone, Copy, Debug)]
pub struct InnerSettings {
    /// Convergence tolerance on `‖Δx‖∞` of the (damped) Newton update.
    pub tol: f64,
    /// Maximum Newton iterations per objective evaluation.
    pub max_iter: usize,
}

impl Default for InnerSettings {
    fn default() -> Self {
        Self { tol: 1e-8, max_iter: 50 }
    }
}

impl From<&InlaSettings> for InnerSettings {
    fn from(s: &InlaSettings) -> Self {
        Self { tol: s.inner_tol, max_iter: s.inner_max_iter }
    }
}

/// Outcome of one inner-Newton mode search ([`conditional_mode`]).
#[derive(Clone, Debug)]
pub struct InnerModeResult {
    /// The conditional mode `x*` (permuted ordering).
    pub mode: Vec<f64>,
    /// Newton iterations performed (1 for the Gaussian likelihood).
    pub iterations: usize,
    /// Whether `‖Δx‖∞ ≤ tol` was reached within `max_iter` iterations.
    pub converged: bool,
    /// Conditional log-posterior ψ after the start and each accepted step
    /// (non-decreasing up to an O(ε) relative line-search slack; empty for
    /// the Gaussian one-step path).
    pub psi_trace: Vec<f64>,
    /// Out-of-solver assembly work (right-hand sides, weights, line-search
    /// evaluations) in seconds, to be folded into the assembly phase.
    pub assembly_seconds: f64,
}

/// Everything produced by one objective-function evaluation.
#[derive(Clone, Debug)]
pub struct FobjResult {
    /// The objective value `f_obj(θ)`.
    pub value: f64,
    /// Conditional mode `x*` of the latent field (the conditional mean for
    /// the Gaussian likelihood), permuted ordering.
    pub mean: Vec<f64>,
    /// `log |Q_p|`.
    pub logdet_qp: f64,
    /// `log |Q_c|` at the mode's working weights.
    pub logdet_qc: f64,
    /// Log-likelihood at the mode.
    pub loglik: f64,
    /// Log prior density of θ.
    pub logprior: f64,
    /// Inner Newton iterations spent locating the mode (1 for Gaussian).
    pub inner_iterations: usize,
    /// Whether the inner loop met its tolerance (always true for Gaussian).
    pub inner_converged: bool,
    /// Phase timings of this evaluation (assembly, factorization, solve).
    pub timers: PhaseTimers,
}

impl FobjResult {
    /// Wall-clock seconds spent in the structured/sparse solver.
    pub fn solver_seconds(&self) -> f64 {
        self.timers.solver_seconds()
    }

    /// Wall-clock seconds spent assembling matrices.
    pub fn assembly_seconds(&self) -> f64 {
        self.timers.assembly_seconds
    }
}

/// Conditional log-posterior `ψ(x) = −½ xᵀ Q_p x + Σ_i ℓ_i(η_i)` at an
/// already-computed linear predictor (the line-search merit function; the
/// additive `log p(θ)` and normalization constants drop out of comparisons).
fn psi_at(solver: &dyn LatentSolver, hyper: &ModelHyper, x: &[f64], eta: &[f64]) -> f64 {
    -0.5 * solver.quadratic_form_qp(x) + solver.model().log_likelihood_at_eta(hyper, eta)
}

/// Locate the conditional mode `x* = argmax ψ(x)` by damped Newton iteration.
///
/// The solver must already be factorized at `hyper` (so `Q_p` is assembled and
/// `Q_c` holds the η = 0 working weights). Each iteration solves
/// `Q_c(w) x⁺ = Aᵀ(Wη + g)`, backtracks along `x⁺ − x` until ψ does not
/// decrease, then moves the conditional factorization to the new weights via
/// [`LatentSolver::refactorize_conditional`] — only the diagonal perturbation
/// `AᵀWA` is re-assembled; `Q_p`, the design product pattern and the factor
/// storage are all reused. On return the solver's conditional factorization is
/// at the mode's working weights, so `logdet_qc`, selected inversion and
/// snapshots all refer to the Gaussian approximation at `x*`.
///
/// For the quadratic (Gaussian) ψ the first Newton target is the exact mode,
/// so the loop accepts it and stops after one iteration without a line search
/// or refactorization; with `x0 = None` the first right-hand side is bitwise
/// the historical information vector `Aᵀ D y`, keeping the Gaussian hot path
/// unchanged.
pub fn conditional_mode(
    solver: &mut dyn LatentSolver,
    hyper: &ModelHyper,
    x0: Option<&[f64]>,
    inner: InnerSettings,
) -> Result<InnerModeResult, CoreError> {
    let quadratic = solver.model().likelihood().is_quadratic();
    let n_latent = solver.design().ncols();
    let n_obs = solver.design().nrows();
    let mut assembly = 0.0f64;

    let mut x: Vec<f64>;
    let mut eta: Vec<f64>;
    let mut at_zero_start;
    match x0 {
        Some(v) => {
            assert_eq!(v.len(), n_latent, "conditional_mode: x0 dimension mismatch");
            x = v.to_vec();
            at_zero_start = false;
            let t = Instant::now();
            eta = solver.design().spmv(&x);
            let warm_w =
                (!quadratic).then(|| solver.model().working_weights(hyper, &eta));
            assembly += t.elapsed().as_secs_f64();
            // factorize() left Q_c at the η = 0 weights; a warm start needs
            // the factorization moved to w(η(x0)) before the first solve.
            if let Some(w) = warm_w {
                solver.refactorize_conditional(&w)?;
            }
        }
        None => {
            x = vec![0.0; n_latent];
            eta = vec![0.0; n_obs];
            at_zero_start = true;
        }
    }

    let mut psi_trace: Vec<f64> = Vec::new();
    let mut psi_x = 0.0;
    if !quadratic {
        let t = Instant::now();
        psi_x = psi_at(solver, hyper, &x, &eta);
        assembly += t.elapsed().as_secs_f64();
        psi_trace.push(psi_x);
    }

    let mut iterations = 0usize;
    let mut converged = false;

    while iterations < inner.max_iter {
        iterations += 1;

        // Working right-hand side Aᵀ(Wη + g). At x = 0 the weighted term
        // vanishes and g reduces to the Gaussian D·y bitwise, reproducing
        // the historical information vector exactly.
        let t = Instant::now();
        let rhs = {
            let model = solver.model();
            let g = model.likelihood_scores(hyper, &eta);
            if at_zero_start {
                solver.design().spmv_t(&g)
            } else {
                let w = model.working_weights(hyper, &eta);
                let work: Vec<f64> = eta
                    .iter()
                    .zip(&w)
                    .zip(&g)
                    .map(|((&e, &wi), &gi)| wi * e + gi)
                    .collect();
                solver.design().spmv_t(&work)
            }
        };
        assembly += t.elapsed().as_secs_f64();
        let target = solver.solve_mean(&rhs);
        at_zero_start = false;

        if quadratic {
            // ψ is quadratic: the Newton target IS the mode. No line search,
            // no reweighting (W is constant for Gaussian).
            x = target;
            converged = true;
            break;
        }

        let t = Instant::now();
        let delta: Vec<f64> = target.iter().zip(&x).map(|(&ti, &xi)| ti - xi).collect();
        let step_inf = delta.iter().fold(0.0f64, |m, d| m.max(d.abs()));
        if step_inf <= inner.tol {
            // Full step already under tolerance: take it and stop.
            x = target;
            eta = solver.design().spmv(&x);
            psi_trace.push(psi_at(solver, hyper, &x, &eta));
            assembly += t.elapsed().as_secs_f64();
            converged = true;
            break;
        }

        // Backtracking line search on ψ along the Newton direction: halve the
        // step until the conditional log-posterior is finite and no worse.
        // The comparison carries an O(ε) relative slack: near the mode the
        // ψ-increase of a full Newton step sinks below the rounding noise of
        // evaluating ψ itself, and a strict comparison would damp the step on
        // noise — stalling convergence at a backend-dependent mode estimate.
        // Convergence is only ever declared on the FULL Newton step norm (the
        // `step_inf <= tol` branch above), never on a damped step.
        let psi_slack = 1e-13 * (1.0 + psi_x.abs());
        let mut accepted = false;
        let mut s = 1.0f64;
        for _ in 0..30 {
            let cand: Vec<f64> =
                x.iter().zip(&delta).map(|(&xi, &di)| xi + s * di).collect();
            let cand_eta = solver.design().spmv(&cand);
            let psi_c = psi_at(solver, hyper, &cand, &cand_eta);
            if psi_c.is_finite() && psi_c >= psi_x - psi_slack {
                x = cand;
                eta = cand_eta;
                psi_x = psi_c;
                psi_trace.push(psi_c);
                accepted = true;
                break;
            }
            s *= 0.5;
        }
        assembly += t.elapsed().as_secs_f64();
        if !accepted {
            // No admissible step: ψ is locally flat to working precision, so
            // the current x is the best available mode estimate.
            break;
        }

        // Move the conditional factorization to the new working weights for
        // the next Newton solve. Only the diagonal perturbation AᵀWA changes.
        let t = Instant::now();
        let w = solver.model().working_weights(hyper, &eta);
        assembly += t.elapsed().as_secs_f64();
        solver.refactorize_conditional(&w)?;
    }

    if !quadratic {
        // Contract: leave the factorization at the mode's weights so the
        // caller's logdet_qc / selected inversion / snapshot describe the
        // Gaussian approximation at x*.
        let t = Instant::now();
        let w = solver.model().working_weights(hyper, &eta);
        assembly += t.elapsed().as_secs_f64();
        solver.refactorize_conditional(&w)?;
    }

    Ok(InnerModeResult { mode: x, iterations, converged, psi_trace, assembly_seconds: assembly })
}

/// Evaluate `f_obj` at `theta` through a stateful solver backend, locating the
/// conditional mode with the inner Newton loop configured by `inner`.
///
/// The solver's workspaces are re-filled in place, so repeated calls on one
/// solver skip per-evaluation allocation and symbolic-analysis costs. The
/// solver's phase timers are reset at entry; the accumulated phase times of
/// this evaluation are returned in [`FobjResult::timers`].
pub fn evaluate_fobj_with_inner(
    solver: &mut dyn LatentSolver,
    prior: &ThetaPrior,
    theta: &[f64],
    inner: InnerSettings,
) -> Result<FobjResult, CoreError> {
    let hyper = ModelHyper::from_theta(solver.model().dims.nv, theta);
    let logprior = prior.log_density(theta);

    solver.reset_timers();
    solver.factorize(&hyper)?;
    let inner_result = conditional_mode(solver, &hyper, None, inner)?;
    let mean = inner_result.mode;
    let logdet_qp = solver.logdet_qp();
    let logdet_qc = solver.logdet_qc();
    let quad = solver.quadratic_form_qp(&mean);
    let loglik = solver.model().log_likelihood(&hyper, solver.design(), &mean);

    let value = logprior + loglik + 0.5 * logdet_qp - 0.5 * quad - 0.5 * logdet_qc;
    if !value.is_finite() {
        return Err(CoreError::NonFiniteObjective);
    }
    // Mode-search work performed outside the solver (right-hand sides,
    // weights, line search) is assembly work; fold it into the assembly phase
    // so totals match the pre-redesign accounting.
    let mut timers = solver.timers();
    timers.assembly_seconds += inner_result.assembly_seconds;
    Ok(FobjResult {
        value,
        mean,
        logdet_qp,
        logdet_qc,
        loglik,
        logprior,
        inner_iterations: inner_result.iterations,
        inner_converged: inner_result.converged,
        timers,
    })
}

/// Evaluate `f_obj` at `theta` with the default inner-loop settings.
///
/// Equivalent to [`evaluate_fobj_with_inner`] with [`InnerSettings::default`];
/// for the Gaussian likelihood the inner loop reduces to the single
/// information-vector solve, bit-for-bit.
pub fn evaluate_fobj_with(
    solver: &mut dyn LatentSolver,
    prior: &ThetaPrior,
    theta: &[f64],
) -> Result<FobjResult, CoreError> {
    evaluate_fobj_with_inner(solver, prior, theta, InnerSettings::default())
}

/// Evaluate `f_obj` at the hyperparameter vector `theta` with a one-shot
/// solver.
#[deprecated(
    since = "0.2.0",
    note = "build an `InlaSession` via `InlaEngine::builder(..)` and call `session.evaluate(theta)`; \
            a session reuses solver workspaces across evaluations instead of rebuilding them per call"
)]
pub fn evaluate_fobj(
    model: &std::sync::Arc<CoregionalModel>,
    prior: &ThetaPrior,
    theta: &[f64],
    settings: &InlaSettings,
) -> Result<FobjResult, CoreError> {
    settings.validate()?;
    let mut solver = settings.backend.build(model);
    evaluate_fobj_with(solver.as_mut(), prior, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InlaEngine;
    use crate::settings::InlaSettings;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    fn toy_model(nv: usize) -> (std::sync::Arc<CoregionalModel>, ThetaPrior, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let nr = 1;
        let mut obs = Vec::new();
        for v in 0..nv {
            for t in 0..nt {
                for &(x, y) in &[(0.25, 0.25), (0.75, 0.5), (0.4, 0.85)] {
                    obs.push(Observation {
                        var: v,
                        t,
                        loc: Point::new(x, y),
                        covariates: vec![1.0],
                        value: 0.3 * (v as f64) + 0.2 * (t as f64) + 0.1 * x,
                    });
                }
            }
        }
        let model = std::sync::Arc::new(CoregionalModel::new(&mesh, nt, 1.0, nv, nr, obs).unwrap());
        let hyper = ModelHyper::default_for(nv, 0.7, 2.0);
        let theta = hyper.to_theta();
        let prior = ThetaPrior::weakly_informative(&theta, 2.0);
        (model, prior, theta)
    }

    fn evaluate(
        model: &std::sync::Arc<CoregionalModel>,
        prior: &ThetaPrior,
        theta: &[f64],
        settings: InlaSettings,
    ) -> FobjResult {
        let session = InlaEngine::builder(model)
            .prior(prior.clone())
            .settings(settings)
            .build()
            .unwrap();
        session.evaluate(theta).unwrap()
    }

    #[test]
    fn bta_and_sparse_backends_agree() {
        for nv in [1usize, 2] {
            let (model, prior, theta) = toy_model(nv);
            let bta = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
            let sparse = evaluate(&model, &prior, &theta, InlaSettings::rinla_like());
            assert!(
                (bta.value - sparse.value).abs() < 1e-6 * (1.0 + bta.value.abs()),
                "nv={nv}: {} vs {}",
                bta.value,
                sparse.value
            );
            assert!((bta.logdet_qc - sparse.logdet_qc).abs() < 1e-6 * (1.0 + bta.logdet_qc.abs()));
            for (a, b) in bta.mean.iter().zip(&sparse.mean) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn distributed_solver_gives_same_objective() {
        let (model, prior, theta) = toy_model(2);
        let seq = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        let dist = evaluate(&model, &prior, &theta, InlaSettings::dalia(3));
        assert!((seq.value - dist.value).abs() < 1e-7 * (1.0 + seq.value.abs()));
    }

    #[test]
    fn objective_components_have_expected_signs() {
        let (model, prior, theta) = toy_model(1);
        let r = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        // Conditional precision adds the likelihood information, so its
        // log-determinant is larger than the prior one.
        assert!(r.logdet_qc > r.logdet_qp);
        assert!(r.loglik.is_finite());
        assert!(r.value.is_finite());
        assert!(r.solver_seconds() > 0.0);
        assert!(r.assembly_seconds() > 0.0);
    }

    #[test]
    fn objective_changes_with_theta() {
        let (model, prior, theta) = toy_model(1);
        let r0 = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        let mut theta2 = theta.clone();
        theta2[0] += 0.5;
        let r1 = evaluate(&model, &prior, &theta2, InlaSettings::dalia(1));
        assert!((r0.value - r1.value).abs() > 1e-8);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_session_evaluation() {
        let (model, prior, theta) = toy_model(1);
        let via_shim = evaluate_fobj(&model, &prior, &theta, &InlaSettings::dalia(1)).unwrap();
        let via_session = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        assert_eq!(via_shim.value.to_bits(), via_session.value.to_bits());
    }
}
