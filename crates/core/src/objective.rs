//! The INLA objective function `f_obj(θ)` (Eq. 8 of the paper).
//!
//! For a Gaussian likelihood the Laplace approximation is exact and
//!
//! ```text
//! f_obj(θ) = log p(θ) + log ℓ(y | θ, μ) + log p(μ | θ) − log p_G(μ | θ, y)
//!          = log p(θ) + log ℓ(y | θ, μ)
//!            + ½ log|Q_p| − ½ μᵀ Q_p μ − ½ log|Q_c|
//! ```
//!
//! where `μ` solves `Q_c μ = Aᵀ D y`. One evaluation therefore costs two
//! structured factorizations (`Q_p`, `Q_c`) plus one triangular solve, exactly
//! the bottleneck profile the paper describes. All of those operations go
//! through the [`LatentSolver`] trait, so the evaluation is backend-agnostic
//! and benefits from whatever workspaces the solver amortizes across calls.

use crate::settings::InlaSettings;
use crate::solver::{LatentSolver, PhaseTimers};
use crate::CoreError;
use dalia_model::{CoregionalModel, ModelHyper, ThetaPrior};

/// Everything produced by one objective-function evaluation.
#[derive(Clone, Debug)]
pub struct FobjResult {
    /// The objective value `f_obj(θ)`.
    pub value: f64,
    /// Conditional mean `μ` of the latent field (permuted ordering).
    pub mean: Vec<f64>,
    /// `log |Q_p|`.
    pub logdet_qp: f64,
    /// `log |Q_c|`.
    pub logdet_qc: f64,
    /// Gaussian log-likelihood at `μ`.
    pub loglik: f64,
    /// Log prior density of θ.
    pub logprior: f64,
    /// Phase timings of this evaluation (assembly, factorization, solve).
    pub timers: PhaseTimers,
}

impl FobjResult {
    /// Wall-clock seconds spent in the structured/sparse solver.
    pub fn solver_seconds(&self) -> f64 {
        self.timers.solver_seconds()
    }

    /// Wall-clock seconds spent assembling matrices.
    pub fn assembly_seconds(&self) -> f64 {
        self.timers.assembly_seconds
    }
}

/// Evaluate `f_obj` at `theta` through a stateful solver backend.
///
/// The solver's workspaces are re-filled in place, so repeated calls on one
/// solver skip per-evaluation allocation and symbolic-analysis costs. The
/// solver's phase timers are reset at entry; the accumulated phase times of
/// this evaluation are returned in [`FobjResult::timers`].
pub fn evaluate_fobj_with(
    solver: &mut dyn LatentSolver,
    prior: &ThetaPrior,
    theta: &[f64],
) -> Result<FobjResult, CoreError> {
    let hyper = ModelHyper::from_theta(solver.model().dims.nv, theta);
    let logprior = prior.log_density(theta);

    solver.reset_timers();
    solver.factorize(&hyper)?;
    let t_info = std::time::Instant::now();
    let info = solver.model().information_vector(&hyper, solver.design());
    let info_seconds = t_info.elapsed().as_secs_f64();
    let mean = solver.solve_mean(&info);
    let logdet_qp = solver.logdet_qp();
    let logdet_qc = solver.logdet_qc();
    let quad = solver.quadratic_form_qp(&mean);
    let loglik = solver.model().log_likelihood(&hyper, solver.design(), &mean);

    let value = logprior + loglik + 0.5 * logdet_qp - 0.5 * quad - 0.5 * logdet_qc;
    if !value.is_finite() {
        return Err(CoreError::NonFiniteObjective);
    }
    // The information vector is assembly work performed outside the solver;
    // fold it into the assembly phase so totals match the pre-redesign
    // accounting.
    let mut timers = solver.timers();
    timers.assembly_seconds += info_seconds;
    Ok(FobjResult { value, mean, logdet_qp, logdet_qc, loglik, logprior, timers })
}

/// Evaluate `f_obj` at the hyperparameter vector `theta` with a one-shot
/// solver.
#[deprecated(
    since = "0.2.0",
    note = "build an `InlaSession` via `InlaEngine::builder(..)` and call `session.evaluate(theta)`; \
            a session reuses solver workspaces across evaluations instead of rebuilding them per call"
)]
pub fn evaluate_fobj(
    model: &CoregionalModel,
    prior: &ThetaPrior,
    theta: &[f64],
    settings: &InlaSettings,
) -> Result<FobjResult, CoreError> {
    settings.validate()?;
    let mut solver = settings.backend.build(model);
    evaluate_fobj_with(solver.as_mut(), prior, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InlaEngine;
    use crate::settings::InlaSettings;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    fn toy_model(nv: usize) -> (CoregionalModel, ThetaPrior, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let nr = 1;
        let mut obs = Vec::new();
        for v in 0..nv {
            for t in 0..nt {
                for &(x, y) in &[(0.25, 0.25), (0.75, 0.5), (0.4, 0.85)] {
                    obs.push(Observation {
                        var: v,
                        t,
                        loc: Point::new(x, y),
                        covariates: vec![1.0],
                        value: 0.3 * (v as f64) + 0.2 * (t as f64) + 0.1 * x,
                    });
                }
            }
        }
        let model = CoregionalModel::new(&mesh, nt, 1.0, nv, nr, obs).unwrap();
        let hyper = ModelHyper::default_for(nv, 0.7, 2.0);
        let theta = hyper.to_theta();
        let prior = ThetaPrior::weakly_informative(&theta, 2.0);
        (model, prior, theta)
    }

    fn evaluate(
        model: &CoregionalModel,
        prior: &ThetaPrior,
        theta: &[f64],
        settings: InlaSettings,
    ) -> FobjResult {
        let session = InlaEngine::builder(model)
            .prior(prior.clone())
            .settings(settings)
            .build()
            .unwrap();
        session.evaluate(theta).unwrap()
    }

    #[test]
    fn bta_and_sparse_backends_agree() {
        for nv in [1usize, 2] {
            let (model, prior, theta) = toy_model(nv);
            let bta = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
            let sparse = evaluate(&model, &prior, &theta, InlaSettings::rinla_like());
            assert!(
                (bta.value - sparse.value).abs() < 1e-6 * (1.0 + bta.value.abs()),
                "nv={nv}: {} vs {}",
                bta.value,
                sparse.value
            );
            assert!((bta.logdet_qc - sparse.logdet_qc).abs() < 1e-6 * (1.0 + bta.logdet_qc.abs()));
            for (a, b) in bta.mean.iter().zip(&sparse.mean) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn distributed_solver_gives_same_objective() {
        let (model, prior, theta) = toy_model(2);
        let seq = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        let dist = evaluate(&model, &prior, &theta, InlaSettings::dalia(3));
        assert!((seq.value - dist.value).abs() < 1e-7 * (1.0 + seq.value.abs()));
    }

    #[test]
    fn objective_components_have_expected_signs() {
        let (model, prior, theta) = toy_model(1);
        let r = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        // Conditional precision adds the likelihood information, so its
        // log-determinant is larger than the prior one.
        assert!(r.logdet_qc > r.logdet_qp);
        assert!(r.loglik.is_finite());
        assert!(r.value.is_finite());
        assert!(r.solver_seconds() > 0.0);
        assert!(r.assembly_seconds() > 0.0);
    }

    #[test]
    fn objective_changes_with_theta() {
        let (model, prior, theta) = toy_model(1);
        let r0 = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        let mut theta2 = theta.clone();
        theta2[0] += 0.5;
        let r1 = evaluate(&model, &prior, &theta2, InlaSettings::dalia(1));
        assert!((r0.value - r1.value).abs() > 1e-8);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_session_evaluation() {
        let (model, prior, theta) = toy_model(1);
        let via_shim = evaluate_fobj(&model, &prior, &theta, &InlaSettings::dalia(1)).unwrap();
        let via_session = evaluate(&model, &prior, &theta, InlaSettings::dalia(1));
        assert_eq!(via_shim.value.to_bits(), via_session.value.to_bits());
    }
}
