//! # dalia-core — the DALIA INLA engine
//!
//! The paper's primary contribution: integrated nested Laplace approximations
//! for multivariate spatio-temporal Gaussian processes on top of the
//! structured BTA solver stack, with the three nested parallelization
//! strategies and the R-INLA / INLA_DIST baseline configurations.
//!
//! * [`settings`] — solver backends and framework presets (Table I),
//! * [`solver`] — the [`solver::LatentSolver`] backend trait with three
//!   stateful implementations (sequential BTA, distributed BTA, general
//!   sparse Cholesky) whose workspaces are amortized across evaluations,
//! * [`objective`] — the objective `f_obj(θ)` of Eq. 8 and the inner Newton
//!   loop [`objective::conditional_mode`] locating the latent conditional
//!   mode under non-Gaussian likelihoods,
//! * [`optimizer`] — parallel central-difference gradients (Eq. 10, S1) and
//!   BFGS, plus the finite-difference Hessian at the mode,
//! * [`posterior`] — hyperparameter marginals, latent marginals via selected
//!   inversion, fixed-effect summaries, response correlations and prediction,
//! * [`engine`] — the end-to-end [`engine::InlaSession`], built via
//!   [`engine::InlaEngine::builder`],
//! * [`snapshot`] — the immutable, `Arc`-shareable
//!   [`snapshot::PosteriorSnapshot`] extracted from a completed fit, the
//!   read-only artifact the `dalia-serve` crate serves concurrent predictive
//!   queries from.

pub mod engine;
pub mod objective;
pub mod optimizer;
pub mod posterior;
pub mod settings;
pub mod snapshot;
pub mod solver;

pub use engine::{InlaEngine, InlaResult, InlaSession, InlaSessionBuilder, StreamingWindow};
pub use objective::{
    conditional_mode, evaluate_fobj_with, evaluate_fobj_with_inner, FobjResult, InnerModeResult,
    InnerSettings,
};
#[allow(deprecated)]
pub use objective::evaluate_fobj;
pub use optimizer::{evaluate_gradient, maximize_fobj, negative_hessian, OptimizationResult};
pub use posterior::{
    fixed_effect_summaries, latent_marginals, normal_quantile, predict, response_correlations,
    FixedEffectSummary, HyperMarginals, LatentMarginals, Prediction,
};
pub use settings::{feature_table, InlaSettings, SolverBackend};
pub use snapshot::{PosteriorSnapshot, SnapshotFactor, VarianceMode};
pub use solver::{
    DistributedBtaSolver, LatentSolver, PhaseTimers, SequentialBtaSolver, SparseCholeskySolver,
};

/// Errors produced by the INLA engine.
#[derive(Clone, Debug)]
pub enum CoreError {
    /// The structured solver failed (matrix not positive definite).
    Solver(serinv::SerinvError),
    /// The general sparse solver failed.
    SparseSolver(dalia_sparse::SparseError),
    /// A model-building error (bad observations, locations outside the mesh).
    Model(dalia_model::ModelError),
    /// The objective evaluated to a non-finite value.
    NonFiniteObjective,
    /// The Hessian at the mode could not be inverted.
    HessianNotPositiveDefinite,
    /// The engine settings failed validation (see [`InlaSettings::validate`]).
    InvalidSettings(String),
    /// A streaming window update was rejected before touching the solver
    /// (wrong observation time indices, non-Gaussian likelihood, window
    /// shrunk to nothing — see [`engine::StreamingWindow`]).
    InvalidWindowUpdate(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Solver(e) => write!(f, "structured solver error: {e}"),
            CoreError::SparseSolver(e) => write!(f, "sparse solver error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::NonFiniteObjective => write!(f, "objective evaluated to a non-finite value"),
            CoreError::HessianNotPositiveDefinite => {
                write!(f, "negative Hessian at the mode is not positive definite")
            }
            CoreError::InvalidSettings(reason) => write!(f, "invalid engine settings: {reason}"),
            CoreError::InvalidWindowUpdate(reason) => {
                write!(f, "invalid streaming window update: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<serinv::SerinvError> for CoreError {
    fn from(e: serinv::SerinvError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<dalia_sparse::SparseError> for CoreError {
    fn from(e: dalia_sparse::SparseError) -> Self {
        CoreError::SparseSolver(e)
    }
}

impl From<dalia_model::ModelError> for CoreError {
    fn from(e: dalia_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_from() {
        let e: CoreError = serinv::SerinvError::Factorization {
            block: 0,
            source: dalia_la::LaError::NotPositiveDefinite { pivot: 0, value: -1.0 },
        }
        .into();
        assert!(e.to_string().contains("structured solver"));
        assert!(CoreError::NonFiniteObjective.to_string().contains("non-finite"));
    }
}
