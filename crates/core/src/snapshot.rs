//! Immutable posterior snapshots: the read-only serving artifact extracted
//! from a completed fit.
//!
//! Everything a predictive query needs — the Cholesky factor of the
//! conditional precision `Q_c(θ*)`, the conditional mean, the
//! selected-inverse marginal standard deviations, the hyperparameter
//! posterior, and the model's prediction-design machinery — is frozen into a
//! [`PosteriorSnapshot`], which is `Send + Sync` and takes `&self`
//! everywhere. Wrap one in an `Arc` and any number of threads can answer
//! predictions, latent-marginal lookups and posterior draws concurrently
//! without touching the fit-time [`InlaSession`](crate::engine::InlaSession)
//! again. The `dalia-serve` crate builds its batching front-end on exactly
//! this type.
//!
//! Snapshots are produced by
//! [`InlaSession::snapshot`](crate::engine::InlaSession::snapshot) (cloning
//! the result's summaries) or
//! [`InlaResult::into_snapshot`](crate::engine::InlaResult::into_snapshot)
//! (consuming them).

use crate::posterior::{FixedEffectSummary, HyperMarginals, LatentMarginals, Prediction};
use crate::CoreError;
use dalia_la::Matrix;
use dalia_model::{CoregionalModel, ModelHyper, PredictionPlan, PredictionTarget};
use dalia_sparse::SparseCholesky;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serinv::{pobtas, pobtas_lt, BtaCholesky};
use std::sync::Arc;

/// An owned, backend-independent Cholesky factor of the conditional precision
/// `Q_c`, extracted by [`LatentSolver::snapshot_factor`](crate::solver::LatentSolver::snapshot_factor).
///
/// Both variants answer solves through `&self`, so one factor can serve any
/// number of concurrent readers.
#[derive(Clone)]
pub enum SnapshotFactor {
    /// Block-tridiagonal-arrowhead factor (the structured DALIA path). The
    /// distributed backend also lands here: its partitioned factor is
    /// re-factored into this portable monolithic form at snapshot time.
    Bta(BtaCholesky),
    /// General sparse factor (the R-INLA-like baseline path).
    Sparse(SparseCholesky),
}

impl SnapshotFactor {
    /// Latent dimension `N` of the factored system.
    pub fn dim(&self) -> usize {
        match self {
            SnapshotFactor::Bta(f) => f.blocks.dim(),
            SnapshotFactor::Sparse(f) => f.factor_l().nrows(),
        }
    }

    /// `log |Q_c|`.
    ///
    /// BTA factors entering a snapshot had their diagonals validated at
    /// factorization time (see [`serinv::SerinvError::IndefiniteLogdet`]), so
    /// the structured check cannot fire here.
    pub fn logdet(&self) -> f64 {
        match self {
            SnapshotFactor::Bta(f) => {
                f.logdet().expect("factor diagonal validated at factorization")
            }
            SnapshotFactor::Sparse(f) => f.logdet(),
        }
    }

    /// Blocked multi-RHS solve `Q_c X = B`, overwriting `rhs` (one right-hand
    /// side per column) with the solution.
    pub fn solve_many(&self, rhs: &mut Matrix) {
        if rhs.ncols() == 0 {
            return;
        }
        match self {
            SnapshotFactor::Bta(f) => pobtas(f, rhs),
            SnapshotFactor::Sparse(f) => {
                for j in 0..rhs.ncols() {
                    let col = rhs.col_mut(j);
                    f.forward_solve_in_place(col);
                    f.backward_solve_in_place(col);
                }
            }
        }
    }

    /// Backward-only solve `Lᵀ X = B` against the transposed factor,
    /// overwriting `rhs`. Since `Q_c = L Lᵀ`, applying this to i.i.d.
    /// standard-normal columns produces draws with covariance `Q_c⁻¹` — the
    /// factor-backed sampling path of [`PosteriorSnapshot::sample`].
    pub fn half_solve_t(&self, rhs: &mut Matrix) {
        if rhs.ncols() == 0 {
            return;
        }
        match self {
            SnapshotFactor::Bta(f) => pobtas_lt(f, rhs),
            SnapshotFactor::Sparse(f) => {
                for j in 0..rhs.ncols() {
                    f.backward_solve_in_place(rhs.col_mut(j));
                }
            }
        }
    }
}

/// How a predictive query computes its standard deviations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarianceMode {
    /// `Var(aᵀx) ≈ Σ_j a_j² Var(x_j)`: the selected-inverse diagonal
    /// approximation — no solve, cross-covariances outside the diagonal are
    /// dropped (historically the only mode, see
    /// [`predict`](crate::posterior::predict)).
    Diagonal,
    /// `Var(aᵀx) = aᵀ Q_c⁻¹ a` via a blocked multi-RHS solve `Q_c Z = Aᵀ`:
    /// exact (up to factorization accuracy), one triangular-solve column per
    /// target.
    Exact,
}

/// Immutable, `Arc`-shareable posterior artifact of a completed INLA fit.
///
/// All methods take `&self`; the type is `Send + Sync` (asserted by test).
/// See the [module docs](self) for the lifecycle.
pub struct PosteriorSnapshot {
    model: Arc<CoregionalModel>,
    hyper_mode: ModelHyper,
    factor: SnapshotFactor,
    latent: LatentMarginals,
    hyper: HyperMarginals,
    fixed_effects: Vec<FixedEffectSummary>,
    backend_name: &'static str,
}

impl PosteriorSnapshot {
    pub(crate) fn from_parts(
        model: Arc<CoregionalModel>,
        hyper_mode: ModelHyper,
        latent: LatentMarginals,
        hyper: HyperMarginals,
        fixed_effects: Vec<FixedEffectSummary>,
        factor: SnapshotFactor,
        backend_name: &'static str,
    ) -> Self {
        debug_assert_eq!(factor.dim(), latent.mean.len());
        Self { model, hyper_mode, factor, latent, hyper, fixed_effects, backend_name }
    }

    /// The model the snapshot was fitted on.
    pub fn model(&self) -> &CoregionalModel {
        &self.model
    }

    /// The hyperparameters at the posterior mode, in structured form.
    pub fn hyper_mode(&self) -> &ModelHyper {
        &self.hyper_mode
    }

    /// Latent marginals (conditional mean + selected-inverse sd) at the mode.
    pub fn latent(&self) -> &LatentMarginals {
        &self.latent
    }

    /// Gaussian approximation of the hyperparameter posterior.
    pub fn hyper(&self) -> &HyperMarginals {
        &self.hyper
    }

    /// Fixed-effect posterior summaries.
    pub fn fixed_effects(&self) -> &[FixedEffectSummary] {
        &self.fixed_effects
    }

    /// The frozen conditional factor.
    pub fn factor(&self) -> &SnapshotFactor {
        &self.factor
    }

    /// Name of the solver backend the snapshot was extracted from.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// Latent dimension `N`.
    pub fn latent_dim(&self) -> usize {
        self.latent.mean.len()
    }

    /// `log |Q_c(θ*)|` of the frozen factor.
    pub fn logdet_qc(&self) -> f64 {
        self.factor.logdet()
    }

    /// `(mean, sd)` of latent component `i`.
    pub fn latent_marginal(&self, i: usize) -> (f64, f64) {
        (self.latent.mean[i], self.latent.sd[i])
    }

    /// Blocked multi-RHS solve `Q_c X = B` against the frozen factor.
    pub fn solve_many(&self, rhs: &mut Matrix) {
        self.factor.solve_many(rhs);
    }

    /// Resolve prediction targets against the mesh once, for reuse across
    /// repeated [`predict_planned`](Self::predict_planned) calls.
    pub fn plan(&self, targets: &[PredictionTarget]) -> Result<PredictionPlan, CoreError> {
        self.model.prediction_plan(targets).map_err(CoreError::Model)
    }

    /// Predict at `targets` with the diagonal variance approximation
    /// (bitwise identical to [`predict`](crate::posterior::predict) on the
    /// snapshot's marginals).
    pub fn predict(&self, targets: &[PredictionTarget]) -> Result<Prediction, CoreError> {
        Ok(self.predict_planned(&self.plan(targets)?, VarianceMode::Diagonal))
    }

    /// Predict at `targets` with exact variances `aᵀ Q_c⁻¹ a` (one blocked
    /// multi-RHS solve over all targets).
    pub fn predict_exact(&self, targets: &[PredictionTarget]) -> Result<Prediction, CoreError> {
        Ok(self.predict_planned(&self.plan(targets)?, VarianceMode::Exact))
    }

    /// Predict for an already-resolved [`PredictionPlan`] in the requested
    /// variance mode. This is the hot serving entry point: the mesh walk was
    /// paid at plan time, and the whole plan becomes one design application
    /// (plus, in [`VarianceMode::Exact`], one blocked multi-RHS solve).
    pub fn predict_planned(&self, plan: &PredictionPlan, mode: VarianceMode) -> Prediction {
        let design = plan.design(&self.hyper_mode);
        let mean = design.spmv(&self.latent.mean);
        let k = design.nrows();
        let sd = match mode {
            VarianceMode::Diagonal => (0..k)
                .map(|r| {
                    let v: f64 = design
                        .row_iter(r)
                        .map(|(c, w)| w * w * self.latent.sd[c] * self.latent.sd[c])
                        .sum();
                    v.sqrt()
                })
                .collect(),
            VarianceMode::Exact => {
                // Z = Q_c⁻¹ Aᵀ in one blocked solve, then Var_j = a_jᵀ z_j.
                let n = self.latent_dim();
                let mut rhs = Matrix::zeros(n, k);
                for r in 0..k {
                    for (c, w) in design.row_iter(r) {
                        rhs[(c, r)] = w;
                    }
                }
                self.factor.solve_many(&mut rhs);
                (0..k)
                    .map(|r| {
                        let z = rhs.col(r);
                        let v: f64 = design.row_iter(r).map(|(c, w)| w * z[c]).sum();
                        v.max(0.0).sqrt()
                    })
                    .collect()
            }
        };
        Prediction { mean, sd }
    }

    /// Predict at `targets` on the **response scale** with the diagonal
    /// variance approximation — see
    /// [`predict_response_planned`](Self::predict_response_planned).
    pub fn predict_response(&self, targets: &[PredictionTarget]) -> Result<Prediction, CoreError> {
        Ok(self.predict_response_planned(&self.plan(targets)?, VarianceMode::Diagonal))
    }

    /// Predict for an already-resolved plan on the **response scale**: the
    /// latent prediction `η ± sd` pushed through the likelihood's inverse
    /// link at unit scale (rate per unit exposure for Poisson, success
    /// probability for Bernoulli, identity for Gaussian), with the delta
    /// method `sd_resp = |h′(η)| · sd_η` for the standard deviations.
    pub fn predict_response_planned(&self, plan: &PredictionPlan, mode: VarianceMode) -> Prediction {
        let linear = self.predict_planned(plan, mode);
        let lik = self.model.likelihood();
        let mean = linear.mean.iter().map(|&e| lik.mean_response(e, 1.0)).collect();
        let sd = linear
            .mean
            .iter()
            .zip(&linear.sd)
            .map(|(&e, &s)| lik.mean_response_deriv(e, 1.0).abs() * s)
            .collect();
        Prediction { mean, sd }
    }

    /// Draw `n_draws` joint samples from the Gaussian approximation
    /// `x | y, θ* ~ N(μ_c, Q_c⁻¹)`, one draw per column.
    ///
    /// Factor-backed: i.i.d. standard normals (Box–Muller over the seeded
    /// deterministic generator) are pushed through `Lᵀ x = z`, giving
    /// covariance `L⁻ᵀ L⁻¹ = Q_c⁻¹`, then shifted by the conditional mean.
    /// Deterministic per `(snapshot, n_draws, seed)`.
    pub fn sample(&self, n_draws: usize, seed: u64) -> Matrix {
        let n = self.latent_dim();
        let mut draws = Matrix::zeros(n, n_draws);
        let mut rng = StdRng::seed_from_u64(seed);
        for j in 0..n_draws {
            let col = draws.col_mut(j);
            for x in col.iter_mut() {
                *x = standard_normal(&mut rng);
            }
        }
        self.factor.half_solve_t(&mut draws);
        for j in 0..n_draws {
            let col = draws.col_mut(j);
            for (x, m) in col.iter_mut().zip(&self.latent.mean) {
                *x += m;
            }
        }
        draws
    }
}

/// One standard-normal variate via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    normal_from_uniforms(rng.random(), rng.random())
}

/// Box–Muller transform of two uniforms. The log argument is `1 - u1`, which
/// for a `[0, 1)` uniform lies in `(0, 1]` — but any generator (or caller)
/// that can yield `u1 == 1.0` exactly would produce `ln(0) = -∞` and an
/// infinite draw, so the argument is clamped into `(0, 1]` at the smallest
/// positive double, turning the degenerate input into an extreme but finite
/// tail draw (|z| ≈ 37.6) instead of poisoning the sample with ±∞.
fn normal_from_uniforms(u1: f64, u2: f64) -> f64 {
    let log_arg = (1.0 - u1).clamp(f64::MIN_POSITIVE, 1.0);
    (-2.0 * log_arg.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InlaEngine;
    use crate::posterior::predict;
    use crate::settings::{InlaSettings, SolverBackend};
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    fn toy_model() -> (std::sync::Arc<CoregionalModel>, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let mut obs = Vec::new();
        let locs = [(0.2, 0.3), (0.7, 0.6), (0.5, 0.9), (0.9, 0.2), (0.1, 0.8)];
        for t in 0..nt {
            for (i, &(x, y)) in locs.iter().enumerate() {
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: 0.2 * i as f64 - 0.1 * t as f64,
                });
            }
        }
        let model = std::sync::Arc::new(CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap());
        let theta0 = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
        (model, theta0)
    }

    fn snapshot_for(
        model: &std::sync::Arc<CoregionalModel>,
        theta0: &[f64],
        settings: InlaSettings,
    ) -> PosteriorSnapshot {
        let session = InlaEngine::builder(model).settings(settings).max_iter(2).build().unwrap();
        let result = session.run(theta0).unwrap();
        result.into_snapshot(&session).unwrap()
    }

    fn backends() -> Vec<InlaSettings> {
        let mut dist = InlaSettings::dalia(2);
        dist.max_iter = 2;
        vec![InlaSettings::dalia(1), dist, InlaSettings::rinla_like()]
    }

    #[test]
    fn degenerate_uniform_yields_finite_normal_draw() {
        // Regression: `u1 == 1.0` used to reach `ln(0) = -∞` and emit an
        // infinite posterior draw. The clamped transform turns it into the
        // most extreme finite tail draw the doubles support instead.
        let z = normal_from_uniforms(1.0, 0.0);
        assert!(z.is_finite(), "degenerate u1 produced {z}");
        assert!(z > 37.0 && z < 38.5, "expected the documented ≈37.6 tail, got {z}");
        // The other boundary and an interior point stay well-behaved too.
        assert_eq!(normal_from_uniforms(0.0, 0.25), 0.0);
        let mid = normal_from_uniforms(0.5, 0.3);
        assert!(mid.is_finite() && mid.abs() < 38.5);
        // And no (u1, u2) pair on a coarse sweep of the closed square can
        // produce a non-finite draw.
        for i in 0..=20 {
            for j in 0..=20 {
                let z = normal_from_uniforms(i as f64 / 20.0, j as f64 / 20.0);
                assert!(z.is_finite(), "({i}, {j}) -> {z}");
            }
        }
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn require_send_sync<T: Send + Sync>() {}
        require_send_sync::<PosteriorSnapshot>();
        require_send_sync::<SnapshotFactor>();
    }

    #[test]
    fn snapshot_solve_matches_session_solve_mean() {
        let (model, theta0) = toy_model();
        for settings in backends() {
            let mut solver = settings.backend.build(&model);
            let hyper = ModelHyper::from_theta(1, &theta0);
            solver.factorize_conditional(&hyper).unwrap();
            let info = model.information_vector(&hyper, solver.design());
            let mean = solver.solve_mean(&info);

            let factor = solver.snapshot_factor().unwrap();
            let mut rhs = Matrix::col_vector(&info);
            factor.solve_many(&mut rhs);
            let name = solver.backend_name();
            for (a, b) in mean.iter().zip(rhs.col(0)) {
                assert!((a - b).abs() < 1e-10, "{name}: snapshot solve drift {a} vs {b}");
            }
            assert_eq!(factor.dim(), model.dims.latent_dim());
            assert!((factor.logdet() - solver.logdet_qc()).abs() < 1e-8);
        }
    }

    #[test]
    fn distributed_snapshot_factor_is_bitwise_sequential() {
        // The distributed backend re-factors its assembled Q_c sequentially at
        // snapshot time, so its portable factor must be bitwise identical to
        // the sequential backend's (same assembly, same kernel).
        let (model, theta0) = toy_model();
        let hyper = ModelHyper::from_theta(1, &theta0);
        let mut seq = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
        let mut dist = SolverBackend::Bta { partitions: 3, load_balance: 1.0 }.build(&model);
        seq.factorize_conditional(&hyper).unwrap();
        dist.factorize_conditional(&hyper).unwrap();
        let fs = seq.snapshot_factor().unwrap();
        let fd = dist.snapshot_factor().unwrap();
        assert_eq!(fs.logdet().to_bits(), fd.logdet().to_bits());
    }

    #[test]
    fn snapshot_predict_matches_posterior_predict_bitwise() {
        let (model, theta0) = toy_model();
        let snap = snapshot_for(&model, &theta0, InlaSettings::dalia(1));
        let targets: Vec<PredictionTarget> = (0..7)
            .map(|i| PredictionTarget {
                var: 0,
                t: i % 3,
                loc: Point::new(0.1 + 0.1 * i as f64, 0.85 - 0.08 * i as f64),
                covariates: vec![1.0],
            })
            .collect();
        let via_snap = snap.predict(&targets).unwrap();
        let direct = predict(&model, snap.hyper_mode(), snap.latent(), &targets).unwrap();
        for (a, b) in via_snap.mean.iter().zip(&direct.mean) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in via_snap.sd.iter().zip(&direct.sd) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn exact_variances_dominate_where_diagonal_underestimates() {
        // Both modes agree on the mean; exact sd differs from the diagonal
        // approximation (which drops off-diagonal covariance) but stays
        // finite and positive for in-domain targets.
        let (model, theta0) = toy_model();
        for settings in backends() {
            let snap = snapshot_for(&model, &theta0, settings);
            let targets = vec![
                PredictionTarget {
                    var: 0,
                    t: 1,
                    loc: Point::new(0.45, 0.55),
                    covariates: vec![1.0],
                },
                PredictionTarget { var: 0, t: 2, loc: Point::new(0.8, 0.3), covariates: vec![0.0] },
            ];
            let diag = snap.predict(&targets).unwrap();
            let exact = snap.predict_exact(&targets).unwrap();
            let name = snap.backend_name();
            for (a, b) in diag.mean.iter().zip(&exact.mean) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: mean must not depend on mode");
            }
            for s in &exact.sd {
                assert!(s.is_finite() && *s > 0.0, "{name}: bad exact sd {s}");
            }
        }
    }

    #[test]
    fn backends_agree_on_exact_variances() {
        let (model, theta0) = toy_model();
        let targets = vec![PredictionTarget {
            var: 0,
            t: 0,
            loc: Point::new(0.33, 0.66),
            covariates: vec![1.0],
        }];
        let mut reference: Option<f64> = None;
        for settings in backends() {
            let snap = snapshot_for(&model, &theta0, settings);
            let sd = snap.predict_exact(&targets).unwrap().sd[0];
            match reference {
                None => reference = Some(sd),
                Some(r) => assert!(
                    (sd - r).abs() < 1e-7 * (1.0 + r),
                    "{}: exact sd {sd} vs reference {r}",
                    snap.backend_name()
                ),
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_and_centered() {
        let (model, theta0) = toy_model();
        let snap = snapshot_for(&model, &theta0, InlaSettings::dalia(1));
        let a = snap.sample(4, 42);
        let b = snap.sample(4, 42);
        assert_eq!(a.max_abs_diff(&b), 0.0, "same seed must give identical draws");
        let c = snap.sample(4, 43);
        assert!(a.max_abs_diff(&c) > 0.0, "different seeds must differ");

        // Empirical mean over many draws approaches the conditional mean; the
        // tolerance is generous (this is a smoke test, not a statistics one).
        let n_draws = 400;
        let draws = snap.sample(n_draws, 7);
        let idx = model.fixed_effect_index(0, 0);
        let emp: f64 =
            (0..n_draws).map(|j| draws.col(j)[idx]).sum::<f64>() / n_draws as f64;
        let (mu, sd) = snap.latent_marginal(idx);
        assert!(
            (emp - mu).abs() < 5.0 * sd / (n_draws as f64).sqrt() + 1e-3,
            "empirical mean {emp} too far from conditional mean {mu} (sd {sd})"
        );
    }

    #[test]
    fn session_snapshot_and_into_snapshot_agree() {
        let (model, theta0) = toy_model();
        let session =
            InlaEngine::builder(&model).settings(InlaSettings::dalia(1)).max_iter(2).build().unwrap();
        let result = session.run(&theta0).unwrap();
        let borrowed = session.snapshot(&result).unwrap();
        let consumed = result.into_snapshot(&session).unwrap();
        assert_eq!(borrowed.logdet_qc().to_bits(), consumed.logdet_qc().to_bits());
        assert_eq!(borrowed.latent().mean, consumed.latent().mean);
        assert_eq!(borrowed.backend_name(), consumed.backend_name());
    }

    #[test]
    fn snapshot_rejects_out_of_domain_targets() {
        let (model, theta0) = toy_model();
        let snap = snapshot_for(&model, &theta0, InlaSettings::dalia(1));
        let bad = vec![PredictionTarget {
            var: 0,
            t: 0,
            loc: Point::new(7.0, 7.0),
            covariates: vec![1.0],
        }];
        assert!(matches!(snap.predict(&bad), Err(CoreError::Model(_))));
    }
}
