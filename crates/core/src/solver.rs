//! The solver backend abstraction: a trait-based API over the bottleneck
//! linear-algebra operations of one INLA objective evaluation, with *stateful*
//! implementations that amortize structure across evaluations.
//!
//! The paper's bottleneck profile is "two structured factorizations + one
//! solve per objective evaluation", repeated dozens-to-hundreds of times by a
//! BFGS run. Everything that depends only on the model *structure* — the
//! time-domain [`Partitioning`], the block-dense BTA storage, the sparse
//! symbolic analysis (elimination tree + factor pattern) — is computed once
//! per [`LatentSolver`] and reused for every θ, the same separation
//! INLA_DIST/Serinv draw between symbolic setup and numeric factorization.
//!
//! A backend is obtained from the [`SolverBackend`] enum via
//! [`SolverBackend::build`], which returns a boxed trait object; the
//! [`InlaSession`](crate::engine::InlaSession) keeps a pool of them (one per
//! concurrent S1 gradient lane) and reuses them across `objective`, `run`,
//! `time_one_iteration` and posterior extraction. Adding a new backend (a
//! GPU-style batched or mixed-precision solver, say) means implementing this
//! trait in one file and extending the factory.
//!
//! Each trait method corresponds to a paper quantity of one evaluation of the
//! objective `f(θ)` (Eq. 8): [`LatentSolver::logdet_qp`] and
//! [`LatentSolver::logdet_qc`] are `log |Q_p(θ)|` and `log |Q_c(θ)|`,
//! [`LatentSolver::solve_mean`] produces the conditional mean
//! `μ_c = Q_c⁻¹ Aᵀ D y` (Eq. 7), [`LatentSolver::quadratic_form_qp`] the
//! prior term `μᵀ Q_p μ`, and [`LatentSolver::selected_inverse_diag`] the
//! latent marginal variances `diag(Q_c⁻¹)` used by the posterior extraction.
//!
//! The BTA workspaces also own a [`PackBuffer`] — the panel-packing scratch
//! of the blocked dense kernels in `dalia_la::blas` — which is threaded
//! through `serinv`'s `pobtaf_with`/`pobtasi_with`, so the factorize /
//! selected-inversion hot loop of a warmed-up solver performs no heap
//! allocation at all (see `docs/performance.md`).

use crate::settings::SolverBackend;
use crate::snapshot::SnapshotFactor;
use crate::CoreError;
use dalia_la::{Matrix, PackBuffer};
use dalia_model::{CoregionalModel, ModelHyper};
use dalia_sparse::{ops, CholeskySymbolic, CsrMatrix, SparseCholesky, SparseError};
use serinv::{
    d_pobtaf, d_pobtas, d_pobtasi, pobtaf, pobtaf_extend_scheduled, pobtaf_retire_scheduled,
    pobtaf_with, pobtas, pobtas_with, pobtasi_with, BtaCholesky, BtaMatrix, DistBtaCholesky,
    InteriorSchedule,
    Partitioning, StreamPacks,
};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock seconds spent in each phase of the solver pipeline, centralized
/// so the objective, the optimizer trace and [`InlaResult`](crate::InlaResult)
/// all report timings from one source instead of hand-threading pairs of
/// floats through every code path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimers {
    /// Matrix / design assembly (`Q_p`, `Q_c`, `Λ·A`).
    pub assembly_seconds: f64,
    /// Numeric factorizations of `Q_p` and `Q_c`.
    pub factorize_seconds: f64,
    /// Triangular solves for the conditional mean.
    pub solve_seconds: f64,
    /// Selected inversion for the latent marginal variances.
    pub selinv_seconds: f64,
}

impl PhaseTimers {
    /// Total time in the solver proper (everything but assembly).
    pub fn solver_seconds(&self) -> f64 {
        self.factorize_seconds + self.solve_seconds + self.selinv_seconds
    }

    /// Total time across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.assembly_seconds + self.solver_seconds()
    }

    /// Reset all phases to zero.
    pub fn reset(&mut self) {
        *self = PhaseTimers::default();
    }

    /// Accumulate another timer set into this one.
    pub fn merge(&mut self, other: &PhaseTimers) {
        self.assembly_seconds += other.assembly_seconds;
        self.factorize_seconds += other.factorize_seconds;
        self.solve_seconds += other.solve_seconds;
        self.selinv_seconds += other.selinv_seconds;
    }

    /// The increment from an `earlier` snapshot of the same accumulator to
    /// this one (phases clamp at zero).
    pub fn delta_since(&self, earlier: &PhaseTimers) -> PhaseTimers {
        PhaseTimers {
            assembly_seconds: (self.assembly_seconds - earlier.assembly_seconds).max(0.0),
            factorize_seconds: (self.factorize_seconds - earlier.factorize_seconds).max(0.0),
            solve_seconds: (self.solve_seconds - earlier.solve_seconds).max(0.0),
            selinv_seconds: (self.selinv_seconds - earlier.selinv_seconds).max(0.0),
        }
    }
}

/// The solver backend API: assemble-and-factorize the prior and conditional
/// precisions for one hyperparameter value, then answer the queries an INLA
/// evaluation needs (log-determinants, conditional mean, quadratic form,
/// selected-inverse variances).
///
/// Implementations are *stateful*: they own pre-allocated workspaces that
/// [`factorize`](Self::factorize) re-fills in place, so repeated calls on one
/// solver skip the per-evaluation allocation and symbolic-analysis cost.
/// All query methods refer to the most recent successful `factorize` call and
/// panic if none has happened yet.
///
/// The trait is `Send + Sync`: the mutable entry points (`factorize`,
/// `solve_mean`, `selected_inverse_diag`) naturally serialize through `&mut`,
/// while the read-only [`solve_many`](Self::solve_many) path can be shared
/// across threads once a factorization exists — the property the serving
/// layer's [`PosteriorSnapshot`](crate::snapshot::PosteriorSnapshot) builds on.
pub trait LatentSolver: Send + Sync {
    /// Short backend name for reports and diagnostics.
    fn backend_name(&self) -> &'static str;

    /// The model this solver was built for.
    fn model(&self) -> &CoregionalModel;

    /// Assemble `Q_p(θ)` and `Q_c(θ)` into the reusable workspaces and
    /// factorize both.
    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError>;

    /// Like [`factorize`](Self::factorize) but skips the numeric factorization
    /// of `Q_p` (posterior extraction only needs `Q_c`). After this call
    /// [`logdet_qp`](Self::logdet_qp) is unavailable until the next full
    /// `factorize`; everything else refers to the given `hyper`.
    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.factorize(hyper)
    }

    /// Re-assemble and re-factorize *only* the conditional precision for new
    /// per-observation working weights:
    /// `Q_c = Q_p + Aᵀ diag(weights) A`.
    ///
    /// This is the inner Newton loop's per-iteration step for non-Gaussian
    /// likelihoods — the likelihood only perturbs the diagonal congruence
    /// term, so the already-assembled `Q_p`, the design matrix and the warm
    /// factor storage of the last `factorize`/`factorize_conditional` (which
    /// must precede this call, at the same hyperparameters) are all reused;
    /// neither `Q_p` nor its factorization is touched.
    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError>;

    /// Advance this solver to `model`, whose temporal window **grew** by
    /// trailing time slices, re-factorizing only the affected trailing block
    /// columns of the conditional factor where the representation permits
    /// (the BTA backends; the sparse backend falls back to a full
    /// refactorization with a fresh symbolic analysis).
    ///
    /// Requirements: `model` shares the mesh and `(nv, nr)` of the current
    /// model (same block structure), keeps the current observations as a
    /// prefix (appended observations may only reference the new slices), and
    /// the conditional factor must be at the initial working weights for the
    /// **same** `hyper` — i.e. a `factorize`/`factorize_conditional` at
    /// `hyper` precedes this call, with no intervening
    /// [`refactorize_conditional`](Self::refactorize_conditional). Afterwards
    /// the solver is in conditional-only state on the new window (as after
    /// `factorize_conditional`): [`logdet_qp`](Self::logdet_qp) is
    /// unavailable until the next full `factorize`.
    ///
    /// For the BTA backends the advanced factor is **bitwise identical** to a
    /// cold sequential factorization of the new window at any thread count.
    fn extend_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError>;

    /// Advance this solver to `model`, whose temporal window **shrank** by
    /// retiring leading time slices (with the surviving observations
    /// re-indexed to the new window). Retiring the head invalidates every
    /// factor column — column 0's Schur complement cascades through the whole
    /// elimination — so all backends refactorize fully, but the BTA backends
    /// recycle the factor storage and warm pack lanes in place. Same
    /// preconditions and post-state as [`extend_window`](Self::extend_window)
    /// otherwise.
    fn retire_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError>;

    /// The joint design matrix `Λ·A` assembled by the last `factorize`.
    fn design(&self) -> &CsrMatrix;

    /// `log |Q_p|` of the last factorization.
    fn logdet_qp(&self) -> f64;

    /// `log |Q_c|` of the last factorization.
    fn logdet_qc(&self) -> f64;

    /// Solve `Q_c μ = rhs` (the conditional-mean system).
    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64>;

    /// Read-only blocked multi-RHS solve `Q_c X = B` against the conditional
    /// factor of the last `factorize`/`factorize_conditional`, overwriting
    /// `rhs` (one right-hand side per column) with the solution.
    ///
    /// Takes `&self`, so any number of threads may solve concurrently against
    /// one factorization. Because of that it does not touch the (mutably
    /// accumulated) phase timers; read-heavy callers time themselves.
    fn solve_many(&self, rhs: &mut Matrix);

    /// Extract an owned, backend-independent copy of the conditional factor
    /// (and nothing else) for read-only serving — the factor half of a
    /// [`PosteriorSnapshot`](crate::snapshot::PosteriorSnapshot).
    ///
    /// Like the other query methods this refers to the most recent successful
    /// `factorize`/`factorize_conditional` and panics if none has happened;
    /// the `Result` covers backends that must re-factor into the portable
    /// representation (the distributed BTA solver).
    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError>;

    /// Quadratic form `xᵀ Q_p x` for the currently assembled `Q_p`.
    fn quadratic_form_qp(&self, x: &[f64]) -> f64;

    /// Diagonal of `Q_c⁻¹` via selected inversion (latent marginal variances).
    fn selected_inverse_diag(&mut self) -> Vec<f64>;

    /// Phase timings accumulated since the last [`reset_timers`](Self::reset_timers).
    fn timers(&self) -> PhaseTimers;

    /// Reset the accumulated phase timings.
    fn reset_timers(&mut self);
}

impl SolverBackend {
    /// Build a stateful solver for `model`.
    ///
    /// This is the single dispatch point for backend selection; everything
    /// downstream works through the [`LatentSolver`] trait. For the BTA
    /// backend the partition count is capped at the number of time steps
    /// (a BTA matrix cannot be split into more partitions than it has
    /// diagonal blocks); nonsense configurations such as `partitions == 0`
    /// are rejected earlier by [`InlaSettings::validate`](crate::InlaSettings::validate).
    ///
    /// ```
    /// use dalia_core::settings::SolverBackend;
    /// use dalia_mesh::{Domain, Point, TriangleMesh};
    /// use dalia_model::{CoregionalModel, ModelHyper, Observation};
    /// use std::sync::Arc;
    ///
    /// let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
    /// let obs: Vec<Observation> = (0..3)
    ///     .map(|t| Observation {
    ///         var: 0,
    ///         t,
    ///         loc: Point::new(0.25, 0.5),
    ///         covariates: vec![1.0],
    ///         value: 0.1 * t as f64,
    ///     })
    ///     .collect();
    /// let model = Arc::new(CoregionalModel::new(&mesh, 3, 1.0, 1, 1, obs).unwrap());
    ///
    /// // One dispatch point for every backend; the session layer does this
    /// // once per S1 lane and reuses the solver for every θ.
    /// let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
    /// assert_eq!(solver.backend_name(), "bta-sequential");
    /// solver.factorize(&ModelHyper::default_for(1, 0.7, 2.0)).unwrap();
    /// // Q_c = Q_p + AᵀDA ⪰ Q_p, so the conditional log-determinant dominates.
    /// assert!(solver.logdet_qc() > solver.logdet_qp());
    /// ```
    pub fn build(&self, model: &Arc<CoregionalModel>) -> Box<dyn LatentSolver> {
        match *self {
            SolverBackend::Bta { partitions, load_balance } => {
                let p = partitions.clamp(1, model.dims.nt);
                if p > 1 {
                    Box::new(DistributedBtaSolver::new(model.clone(), p, load_balance))
                } else {
                    Box::new(SequentialBtaSolver::new(model.clone()))
                }
            }
            SolverBackend::SparseGeneral => Box::new(SparseCholeskySolver::new(model.clone())),
        }
    }
}

/// Shared BTA workspace: assembled `Q_p` / `Q_c` block storage (re-filled in
/// place per θ), the panel-packing scratch of the blocked dense kernels, and
/// the design matrix of the last assembly.
struct BtaWorkspace {
    model: Arc<CoregionalModel>,
    qp: BtaMatrix,
    qc: BtaMatrix,
    pack: PackBuffer,
    design: Option<CsrMatrix>,
    timers: PhaseTimers,
}

impl BtaWorkspace {
    fn new(model: Arc<CoregionalModel>) -> Self {
        let d = model.dims;
        // The session-owned pack keeps a keyed cache of packed factor panels:
        // within one θ evaluation the `Q_p`/`Q_c` factorizations, solves and
        // selected inversions re-read the same factor blocks, and the cache
        // lets them pack each panel exactly once. Every value-write path
        // (assemble / reweight) invalidates it below.
        let mut pack = PackBuffer::new();
        pack.enable_panel_reuse(true);
        Self {
            qp: BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size()),
            qc: BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size()),
            pack,
            design: None,
            timers: PhaseTimers::default(),
            model,
        }
    }

    /// Swap in a model whose temporal window differs from the current one but
    /// whose block structure (mesh, `nv`, `nr`) matches, resizing the `qp` /
    /// `qc` block storage to the new number of time steps in place. The cached
    /// design is cleared; the next [`assemble`](Self::assemble) refills
    /// everything for the new window.
    fn set_window_model(&mut self, model: Arc<CoregionalModel>) {
        let d = model.dims;
        assert_eq!(
            (self.qp.b, self.qp.a),
            (d.block_size(), d.arrow_size()),
            "window update must preserve the block structure (mesh, nv, nr)"
        );
        resize_window(&mut self.qp, d.nt);
        resize_window(&mut self.qc, d.nt);
        self.design = None;
        self.model = model;
    }

    /// Re-fill `qp` and `qc` in place for `hyper`; records assembly time.
    fn assemble(&mut self, hyper: &ModelHyper) {
        let t0 = Instant::now();
        // New θ, new values: cached packed panels from the previous
        // evaluation's factors must not survive the rewrite.
        self.pack.invalidate_panels();
        self.model.assemble_qp_bta_into(hyper, &mut self.qp);
        self.qc.copy_values_from(&self.qp);
        let design = self.model.extend_qp_to_qc(hyper, &mut self.qc);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
        self.design = Some(design);
    }

    fn design(&self) -> &CsrMatrix {
        self.design.as_ref().expect("LatentSolver: factorize must be called first")
    }

    /// Rebuild `qc = qp + Aᵀ diag(weights) A` in place from the assembled
    /// `qp` and the design of the last [`assemble`](Self::assemble); records
    /// assembly time.
    fn reweight_qc(&mut self, weights: &[f64]) {
        let t0 = Instant::now();
        let design =
            self.design.as_ref().expect("LatentSolver: factorize must be called first");
        // The conditional factor's storage is about to be re-filled with new
        // values (inner Newton re-weighting): drop its cached panels.
        self.pack.invalidate_panels();
        self.qc.copy_values_from(&self.qp);
        let congruence = ops::congruence_diag(design, weights);
        self.model.add_congruence_to_bta(&congruence, &mut self.qc);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
    }
}

/// Resize a BTA matrix's block storage to `nt` time steps in place, keeping
/// the existing block allocations where possible (growth appends zero blocks,
/// shrinkage truncates). Values are not meaningful afterwards — callers
/// re-assemble into the resized storage.
fn resize_window(m: &mut BtaMatrix, nt: usize) {
    let (b, a) = (m.b, m.a);
    m.diag.resize_with(nt, || Matrix::zeros(b, b));
    m.sub.resize_with(nt.saturating_sub(1), || Matrix::zeros(b, b));
    m.arrow.resize_with(nt, || Matrix::zeros(a, b));
    m.n = nt;
}

/// Validate a freshly produced BTA factor's diagonal eagerly (via the
/// structured [`logdet`](BtaCholesky::logdet) check) so that indefinite or
/// NaN-contaminated factorizations surface as a typed error at factorize time
/// rather than as a poisoned log-determinant later.
fn validated(f: BtaCholesky) -> Result<BtaCholesky, CoreError> {
    f.logdet().map_err(CoreError::Solver)?;
    Ok(f)
}

/// [`validated`] for the distributed factor representation.
fn validated_dist(f: DistBtaCholesky) -> Result<DistBtaCholesky, CoreError> {
    f.logdet().map_err(CoreError::Solver)?;
    Ok(f)
}

/// Sequential BTA solver (`pobtaf`/`pobtas`/`pobtasi`): the single-device
/// DALIA / INLA_DIST path. Factor storage is recycled between factorizations,
/// and [`extend_window`](LatentSolver::extend_window) /
/// [`retire_window`](LatentSolver::retire_window) advance the conditional
/// factor in place through the incremental streaming kernels.
pub struct SequentialBtaSolver {
    ws: BtaWorkspace,
    stream: StreamPacks,
    fp: Option<BtaCholesky>,
    fc: Option<BtaCholesky>,
}

impl SequentialBtaSolver {
    /// Create a solver with freshly allocated workspaces for `model`.
    pub fn new(model: Arc<CoregionalModel>) -> Self {
        Self { ws: BtaWorkspace::new(model), stream: StreamPacks::new(), fp: None, fc: None }
    }
}

impl LatentSolver for SequentialBtaSolver {
    fn backend_name(&self) -> &'static str {
        "bta-sequential"
    }

    fn model(&self) -> &CoregionalModel {
        &self.ws.model
    }

    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        // Recycle the previous factors' block storage for the new factors and
        // reuse the kernel pack buffers: zero allocations once warm.
        let fp_store = self.fp.take().map(|f| f.blocks);
        self.fp = Some(validated(
            pobtaf_with(&self.ws.qp, fp_store, &mut self.ws.pack).map_err(CoreError::Solver)?,
        )?);
        let fc_store = self.fc.take().map(|f| f.blocks);
        self.fc = Some(validated(
            pobtaf_with(&self.ws.qc, fc_store, &mut self.ws.pack).map_err(CoreError::Solver)?,
        )?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        self.fp = None;
        let fc_store = self.fc.take().map(|f| f.blocks);
        self.fc = Some(validated(
            pobtaf_with(&self.ws.qc, fc_store, &mut self.ws.pack).map_err(CoreError::Solver)?,
        )?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError> {
        self.ws.reweight_qc(weights);
        let t0 = Instant::now();
        let fc_store = self.fc.take().map(|f| f.blocks);
        self.fc = Some(validated(
            pobtaf_with(&self.ws.qc, fc_store, &mut self.ws.pack).map_err(CoreError::Solver)?,
        )?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn extend_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError> {
        assert!(
            model.dims.nt > self.ws.model.dims.nt,
            "extend_window: the new window must have more time steps"
        );
        let mut fc =
            self.fc.take().expect("LatentSolver: factorize must be called before extend_window");
        self.fp = None;
        self.ws.set_window_model(model);
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        pobtaf_extend_scheduled(&mut fc, &self.ws.qc, &mut self.stream, InteriorSchedule::Stealable)
            .map_err(CoreError::Solver)?;
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        self.fc = Some(validated(fc)?);
        Ok(())
    }

    fn retire_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError> {
        assert!(
            model.dims.nt < self.ws.model.dims.nt,
            "retire_window: the new window must have fewer time steps"
        );
        let mut fc =
            self.fc.take().expect("LatentSolver: factorize must be called before retire_window");
        self.fp = None;
        self.ws.set_window_model(model);
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        pobtaf_retire_scheduled(&mut fc, &self.ws.qc, &mut self.stream, InteriorSchedule::Stealable)
            .map_err(CoreError::Solver)?;
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        self.fc = Some(validated(fc)?);
        Ok(())
    }

    fn design(&self) -> &CsrMatrix {
        self.ws.design()
    }

    fn logdet_qp(&self) -> f64 {
        self.fp
            .as_ref()
            .expect("LatentSolver: factorize must be called first")
            .logdet()
            .expect("factor diagonal validated at factorization")
    }

    fn logdet_qc(&self) -> f64 {
        self.fc
            .as_ref()
            .expect("LatentSolver: factorize must be called first")
            .logdet()
            .expect("factor diagonal validated at factorization")
    }

    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let mut m = dalia_la::Matrix::col_vector(rhs);
        // The session pack serves the factor panels cached at factorization
        // time, so repeated mean solves re-pack nothing.
        pobtas_with(fc, &mut m, &mut self.ws.pack);
        let out = m.col(0).to_vec();
        self.ws.timers.solve_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn solve_many(&self, rhs: &mut Matrix) {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        pobtas(fc, rhs);
    }

    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        Ok(SnapshotFactor::Bta(fc.clone()))
    }

    fn quadratic_form_qp(&self, x: &[f64]) -> f64 {
        quadratic_form_bta(&self.ws.qp, x)
    }

    fn selected_inverse_diag(&mut self) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let diag = pobtasi_with(fc, &mut self.ws.pack).diagonal();
        self.ws.timers.selinv_seconds += t0.elapsed().as_secs_f64();
        diag
    }

    fn timers(&self) -> PhaseTimers {
        self.ws.timers
    }

    fn reset_timers(&mut self) {
        self.ws.timers.reset();
    }
}

/// Distributed (time-domain partitioned) BTA solver
/// (`d_pobtaf`/`d_pobtas`/`d_pobtasi`): the multi-device DALIA path. The
/// load-balanced [`Partitioning`] is derived once at construction and reused
/// for every factorization; window updates rebuild it for the new number of
/// time steps.
///
/// Streaming window updates switch the conditional factor to the *monolithic*
/// (`DistBtaCholesky::Sequential`) representation: the nested-dissection
/// partitioned factor interleaves permuted interiors with a reduced system,
/// so trailing-block reuse does not apply to it. The first window update
/// after a partitioned factorization pays one cold sequential factorization;
/// subsequent extends are incremental. The next full
/// `factorize`/`factorize_conditional` returns to the partitioned scheme.
pub struct DistributedBtaSolver {
    ws: BtaWorkspace,
    part: Partitioning,
    partitions: usize,
    load_balance: f64,
    stream: StreamPacks,
    fp: Option<DistBtaCholesky>,
    fc: Option<DistBtaCholesky>,
}

impl DistributedBtaSolver {
    /// Create a solver with `partitions` time-domain partitions and the given
    /// load-balancing factor. `partitions` must lie in `[1, nt]`.
    pub fn new(model: Arc<CoregionalModel>, partitions: usize, load_balance: f64) -> Self {
        let part = Partitioning::load_balanced(model.dims.nt, partitions, load_balance);
        Self {
            ws: BtaWorkspace::new(model),
            part,
            partitions,
            load_balance,
            stream: StreamPacks::new(),
            fp: None,
            fc: None,
        }
    }

    /// The cached time-domain partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.part
    }

    /// Shared tail of `extend_window` / `retire_window`: swap in the new
    /// window model, rebuild the partitioning for the new `nt` (used by the
    /// next full factorization), re-assemble, and advance the conditional
    /// factor in the monolithic representation via `advance`.
    fn advance_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
        advance: impl FnOnce(
            &mut BtaCholesky,
            &BtaMatrix,
            &mut StreamPacks,
        ) -> Result<(), serinv::SerinvError>,
    ) -> Result<(), CoreError> {
        let fc =
            self.fc.take().expect("LatentSolver: factorize must be called before a window update");
        self.fp = None;
        self.part = Partitioning::load_balanced(
            model.dims.nt,
            self.partitions.clamp(1, model.dims.nt),
            self.load_balance,
        );
        self.ws.set_window_model(model);
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        let mono = match fc {
            // Already monolithic (a previous window update): advance in place.
            DistBtaCholesky::Sequential(mut f) => {
                advance(&mut f, &self.ws.qc, &mut self.stream).map_err(CoreError::Solver)?;
                f
            }
            // Partitioned: the nested-dissection layout cannot be advanced by
            // trailing columns — pay one cold sequential factorization of the
            // new window (warm pack lanes, no reusable storage to recycle).
            DistBtaCholesky::Partitioned { .. } => {
                pobtaf_with(&self.ws.qc, None, &mut self.ws.pack).map_err(CoreError::Solver)?
            }
        };
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        let mono = validated(mono)?;
        self.fc = Some(DistBtaCholesky::Sequential(mono));
        Ok(())
    }
}

impl LatentSolver for DistributedBtaSolver {
    fn backend_name(&self) -> &'static str {
        "bta-distributed"
    }

    fn model(&self) -> &CoregionalModel {
        &self.ws.model
    }

    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        self.fp =
            Some(validated_dist(d_pobtaf(&self.ws.qp, &self.part).map_err(CoreError::Solver)?)?);
        self.fc =
            Some(validated_dist(d_pobtaf(&self.ws.qc, &self.part).map_err(CoreError::Solver)?)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        self.fp = None;
        self.fc =
            Some(validated_dist(d_pobtaf(&self.ws.qc, &self.part).map_err(CoreError::Solver)?)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError> {
        self.ws.reweight_qc(weights);
        let t0 = Instant::now();
        self.fc =
            Some(validated_dist(d_pobtaf(&self.ws.qc, &self.part).map_err(CoreError::Solver)?)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn extend_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError> {
        assert!(
            model.dims.nt > self.ws.model.dims.nt,
            "extend_window: the new window must have more time steps"
        );
        self.advance_window(model, hyper, |f, qc, packs| {
            pobtaf_extend_scheduled(f, qc, packs, InteriorSchedule::Stealable)
        })
    }

    fn retire_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError> {
        assert!(
            model.dims.nt < self.ws.model.dims.nt,
            "retire_window: the new window must have fewer time steps"
        );
        self.advance_window(model, hyper, |f, qc, packs| {
            pobtaf_retire_scheduled(f, qc, packs, InteriorSchedule::Stealable)
        })
    }

    fn design(&self) -> &CsrMatrix {
        self.ws.design()
    }

    fn logdet_qp(&self) -> f64 {
        self.fp
            .as_ref()
            .expect("LatentSolver: factorize must be called first")
            .logdet()
            .expect("factor diagonal validated at factorization")
    }

    fn logdet_qc(&self) -> f64 {
        self.fc
            .as_ref()
            .expect("LatentSolver: factorize must be called first")
            .logdet()
            .expect("factor diagonal validated at factorization")
    }

    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let mut m = dalia_la::Matrix::col_vector(rhs);
        d_pobtas(fc, &mut m);
        let out = m.col(0).to_vec();
        self.ws.timers.solve_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn solve_many(&self, rhs: &mut Matrix) {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        d_pobtas(fc, rhs);
    }

    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError> {
        // The distributed factor's nested-dissection representation is tied to
        // the partitioning (permuted interiors + reduced system), so it cannot
        // be handed out as-is. Re-factor the assembled `Q_c` sequentially into
        // the portable monolithic form — a one-time cost paid at snapshot
        // extraction, not per query.
        assert!(self.fc.is_some(), "LatentSolver: factorize must be called first");
        // A window update already holds the monolithic factor — clone it
        // instead of re-factorizing.
        if let Some(DistBtaCholesky::Sequential(f)) = self.fc.as_ref() {
            return Ok(SnapshotFactor::Bta(f.clone()));
        }
        let fc = validated(pobtaf(&self.ws.qc).map_err(CoreError::Solver)?)?;
        Ok(SnapshotFactor::Bta(fc))
    }

    fn quadratic_form_qp(&self, x: &[f64]) -> f64 {
        quadratic_form_bta(&self.ws.qp, x)
    }

    fn selected_inverse_diag(&mut self) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let diag = d_pobtasi(fc).diagonal();
        self.ws.timers.selinv_seconds += t0.elapsed().as_secs_f64();
        diag
    }

    fn timers(&self) -> PhaseTimers {
        self.ws.timers
    }

    fn reset_timers(&mut self) {
        self.ws.timers.reset();
    }
}

/// General sparse Cholesky solver (the R-INLA / PARDISO-like baseline). The
/// symbolic analyses of `Q_p` and `Q_c` are cached per sparsity pattern, so
/// repeat factorizations run the numeric phase only.
pub struct SparseCholeskySolver {
    model: Arc<CoregionalModel>,
    sym_qp: Option<CholeskySymbolic>,
    sym_qc: Option<CholeskySymbolic>,
    qp: Option<CsrMatrix>,
    fp: Option<SparseCholesky>,
    fc: Option<SparseCholesky>,
    design: Option<CsrMatrix>,
    timers: PhaseTimers,
}

impl SparseCholeskySolver {
    /// Create a solver with empty symbolic caches for `model`.
    pub fn new(model: Arc<CoregionalModel>) -> Self {
        Self {
            model,
            sym_qp: None,
            sym_qc: None,
            qp: None,
            fp: None,
            fc: None,
            design: None,
            timers: PhaseTimers::default(),
        }
    }

    /// Assemble `(Q_p, Q_c, design)` for `hyper`, recording assembly time.
    fn assemble(&mut self, hyper: &ModelHyper) -> (CsrMatrix, CsrMatrix, CsrMatrix) {
        let t0 = Instant::now();
        let qp = self.model.assemble_qp_csr(hyper, true);
        let design = self.model.joint_design(hyper);
        let d_diag = self.model.initial_working_weights(hyper);
        let congruence = ops::congruence_diag(&design, &d_diag);
        let qc = ops::add(1.0, &qp, 1.0, &congruence);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
        (qp, qc, design)
    }
}

/// Factorize `a`, reusing the cached symbolic analysis when the sparsity
/// pattern still matches and re-analyzing (updating the cache) when it does
/// not.
fn factor_with_cached_symbolic(
    cache: &mut Option<CholeskySymbolic>,
    a: &CsrMatrix,
) -> Result<SparseCholesky, SparseError> {
    if let Some(sym) = cache.as_ref() {
        match SparseCholesky::factor_with(sym, a) {
            Err(SparseError::PatternMismatch) => {}
            other => return other,
        }
    }
    let sym = SparseCholesky::analyze(a)?;
    let f = SparseCholesky::factor_with(&sym, a)?;
    *cache = Some(sym);
    Ok(f)
}

impl LatentSolver for SparseCholeskySolver {
    fn backend_name(&self) -> &'static str {
        "sparse-general"
    }

    fn model(&self) -> &CoregionalModel {
        &self.model
    }

    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        let (qp, qc, design) = self.assemble(hyper);
        let t0 = Instant::now();
        self.fp =
            Some(factor_with_cached_symbolic(&mut self.sym_qp, &qp).map_err(CoreError::SparseSolver)?);
        self.fc =
            Some(factor_with_cached_symbolic(&mut self.sym_qc, &qc).map_err(CoreError::SparseSolver)?);
        self.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        self.qp = Some(qp);
        self.design = Some(design);
        Ok(())
    }

    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        let (qp, qc, design) = self.assemble(hyper);
        let t0 = Instant::now();
        self.fp = None;
        self.fc =
            Some(factor_with_cached_symbolic(&mut self.sym_qc, &qc).map_err(CoreError::SparseSolver)?);
        self.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        self.qp = Some(qp);
        self.design = Some(design);
        Ok(())
    }

    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let qp = self.qp.as_ref().expect("LatentSolver: factorize must be called first");
        let design =
            self.design.as_ref().expect("LatentSolver: factorize must be called first");
        let congruence = ops::congruence_diag(design, weights);
        let qc = ops::add(1.0, qp, 1.0, &congruence);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        self.fc =
            Some(factor_with_cached_symbolic(&mut self.sym_qc, &qc).map_err(CoreError::SparseSolver)?);
        self.timers.factorize_seconds += t1.elapsed().as_secs_f64();
        Ok(())
    }

    fn extend_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError> {
        // The general sparse factor has no trailing-block structure to reuse —
        // fall back to a full conditional refactorization of the new window.
        // The window change alters the sparsity pattern, so the symbolic cache
        // re-analyzes automatically (PatternMismatch path).
        assert!(
            model.dims.nt > self.model.dims.nt,
            "extend_window: the new window must have more time steps"
        );
        assert_eq!(
            (model.dims.block_size(), model.dims.arrow_size()),
            (self.model.dims.block_size(), self.model.dims.arrow_size()),
            "window update must preserve the block structure (mesh, nv, nr)"
        );
        self.model = model;
        self.factorize_conditional(hyper)
    }

    fn retire_window(
        &mut self,
        model: Arc<CoregionalModel>,
        hyper: &ModelHyper,
    ) -> Result<(), CoreError> {
        assert!(
            model.dims.nt < self.model.dims.nt,
            "retire_window: the new window must have fewer time steps"
        );
        assert_eq!(
            (model.dims.block_size(), model.dims.arrow_size()),
            (self.model.dims.block_size(), self.model.dims.arrow_size()),
            "window update must preserve the block structure (mesh, nv, nr)"
        );
        self.model = model;
        self.factorize_conditional(hyper)
    }

    fn design(&self) -> &CsrMatrix {
        self.design.as_ref().expect("LatentSolver: factorize must be called first")
    }

    fn logdet_qp(&self) -> f64 {
        self.fp.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn logdet_qc(&self) -> f64 {
        self.fc.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let out = fc.solve(rhs);
        self.timers.solve_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn solve_many(&self, rhs: &mut Matrix) {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        // The sparse backend's triangular solves are vector-shaped; apply them
        // column by column (the blocked path is the BTA backends' specialty).
        for j in 0..rhs.ncols() {
            let x = fc.solve(rhs.col(j));
            rhs.col_mut(j).copy_from_slice(&x);
        }
    }

    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        Ok(SnapshotFactor::Sparse(fc.clone()))
    }

    fn quadratic_form_qp(&self, x: &[f64]) -> f64 {
        self.qp
            .as_ref()
            .expect("LatentSolver: factorize must be called first")
            .quadratic_form(x)
    }

    fn selected_inverse_diag(&mut self) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let diag = fc.marginal_variances();
        self.timers.selinv_seconds += t0.elapsed().as_secs_f64();
        diag
    }

    fn timers(&self) -> PhaseTimers {
        self.timers
    }

    fn reset_timers(&mut self) {
        self.timers.reset();
    }
}

/// Quadratic form `xᵀ A x` for a BTA matrix.
pub fn quadratic_form_bta(a: &BtaMatrix, x: &[f64]) -> f64 {
    let ax = a.matvec(x);
    x.iter().zip(&ax).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    fn window_obs(nv: usize, t_range: std::ops::Range<usize>) -> Vec<Observation> {
        let mut obs = Vec::new();
        for v in 0..nv {
            for t in t_range.clone() {
                for &(x, y) in &[(0.25, 0.25), (0.75, 0.5), (0.4, 0.85)] {
                    obs.push(Observation {
                        var: v,
                        t,
                        loc: Point::new(x, y),
                        covariates: vec![1.0],
                        value: 0.3 * (v as f64) + 0.2 * (t as f64) + 0.1 * x,
                    });
                }
            }
        }
        obs
    }

    fn windowed_model(nv: usize, nt: usize) -> Arc<CoregionalModel> {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        Arc::new(CoregionalModel::new(&mesh, nt, 1.0, nv, 1, window_obs(nv, 0..nt)).unwrap())
    }

    fn toy_model(nv: usize) -> (Arc<CoregionalModel>, ModelHyper) {
        let hyper = ModelHyper::default_for(nv, 0.7, 2.0);
        (windowed_model(nv, 3), hyper)
    }

    fn backends() -> Vec<SolverBackend> {
        vec![
            SolverBackend::Bta { partitions: 1, load_balance: 1.0 },
            SolverBackend::Bta { partitions: 3, load_balance: 1.3 },
            SolverBackend::SparseGeneral,
        ]
    }

    #[test]
    fn factory_dispatches_to_the_right_implementation() {
        let (model, _) = toy_model(1);
        let names: Vec<&str> =
            backends().iter().map(|b| b.build(&model).backend_name()).collect();
        assert_eq!(names, vec!["bta-sequential", "bta-distributed", "sparse-general"]);
        // Partition counts beyond nt are capped, not panicked on.
        let capped = SolverBackend::Bta { partitions: 99, load_balance: 1.0 }.build(&model);
        assert_eq!(capped.backend_name(), "bta-distributed");
    }

    #[test]
    fn all_backends_agree_on_the_same_theta() {
        let (model, hyper) = toy_model(2);
        let mut reference: Option<(f64, f64, Vec<f64>, Vec<f64>)> = None;
        for backend in backends() {
            let mut solver = backend.build(&model);
            solver.factorize(&hyper).unwrap();
            let info = model.information_vector(&hyper, solver.design());
            let mean = solver.solve_mean(&info);
            let vars = solver.selected_inverse_diag();
            let (ldp, ldc) = (solver.logdet_qp(), solver.logdet_qc());
            match &reference {
                None => reference = Some((ldp, ldc, mean, vars)),
                Some((rp, rc, rmean, rvars)) => {
                    assert!((ldp - rp).abs() < 1e-8 * (1.0 + rp.abs()));
                    assert!((ldc - rc).abs() < 1e-8 * (1.0 + rc.abs()));
                    for (a, b) in mean.iter().zip(rmean) {
                        assert!((a - b).abs() < 1e-8);
                    }
                    for (a, b) in vars.iter().zip(rvars) {
                        assert!((a - b).abs() < 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn refactorization_reuses_workspaces_without_contamination() {
        let (model, hyper) = toy_model(1);
        let mut theta2 = hyper.to_theta();
        theta2[0] += 0.4;
        theta2[2] -= 0.3;
        let hyper2 = ModelHyper::from_theta(1, &theta2);

        for backend in backends() {
            // Reused solver: factorize at θ₁, then θ₂.
            let mut reused = backend.build(&model);
            reused.factorize(&hyper).unwrap();
            reused.factorize(&hyper2).unwrap();
            // Fresh solver: factorize at θ₂ only.
            let mut fresh = backend.build(&model);
            fresh.factorize(&hyper2).unwrap();

            assert_eq!(reused.logdet_qp().to_bits(), fresh.logdet_qp().to_bits());
            assert_eq!(reused.logdet_qc().to_bits(), fresh.logdet_qc().to_bits());
            let info = model.information_vector(&hyper2, fresh.design());
            let m1 = reused.solve_mean(&info);
            let m2 = fresh.solve_mean(&info);
            for (a, b) in m1.iter().zip(&m2) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} mean drift", reused.backend_name());
            }
        }
    }

    #[test]
    fn factorize_conditional_matches_full_factorization_for_qc() {
        let (model, hyper) = toy_model(2);
        for backend in backends() {
            let mut full = backend.build(&model);
            full.factorize(&hyper).unwrap();
            let mut cond = backend.build(&model);
            cond.factorize_conditional(&hyper).unwrap();
            let tag = cond.backend_name();
            assert_eq!(cond.logdet_qc().to_bits(), full.logdet_qc().to_bits(), "{tag}");
            let info = model.information_vector(&hyper, full.design());
            let m_full = full.solve_mean(&info);
            let m_cond = cond.solve_mean(&info);
            for (a, b) in m_full.iter().zip(&m_cond) {
                assert_eq!(a.to_bits(), b.to_bits(), "{tag}: mean");
            }
            let v_full = full.selected_inverse_diag();
            let v_cond = cond.selected_inverse_diag();
            for (a, b) in v_full.iter().zip(&v_cond) {
                assert_eq!(a.to_bits(), b.to_bits(), "{tag}: variances");
            }
            // Q_p stays assembled (quadratic form valid), just not factorized.
            assert_eq!(
                cond.quadratic_form_qp(&m_cond).to_bits(),
                full.quadratic_form_qp(&m_full).to_bits(),
                "{tag}: quadratic form"
            );
        }
    }

    #[test]
    fn timers_record_each_phase() {
        let (model, hyper) = toy_model(1);
        let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
        solver.factorize(&hyper).unwrap();
        let info = model.information_vector(&hyper, solver.design());
        let _ = solver.solve_mean(&info);
        let _ = solver.selected_inverse_diag();
        let t = solver.timers();
        assert!(t.assembly_seconds > 0.0);
        assert!(t.factorize_seconds > 0.0);
        assert!(t.solver_seconds() >= t.factorize_seconds);
        assert!(t.total_seconds() >= t.solver_seconds());
        solver.reset_timers();
        assert_eq!(solver.timers(), PhaseTimers::default());
    }

    /// Observations ordered time-outer so that a window extension appends to
    /// the list (old observations stay a prefix — the streaming precondition).
    fn stream_obs(nv: usize, t_range: std::ops::Range<usize>) -> Vec<Observation> {
        let mut obs = Vec::new();
        for t in t_range {
            for v in 0..nv {
                for &(x, y) in &[(0.25, 0.25), (0.75, 0.5), (0.4, 0.85)] {
                    obs.push(Observation {
                        var: v,
                        t,
                        loc: Point::new(x, y),
                        covariates: vec![1.0],
                        value: 0.3 * (v as f64) + 0.2 * (t as f64) + 0.1 * x,
                    });
                }
            }
        }
        obs
    }

    fn stream_models(
        nv: usize,
        nt_old: usize,
        nt_new: usize,
    ) -> (Arc<CoregionalModel>, Arc<CoregionalModel>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let old_obs = stream_obs(nv, 0..nt_old);
        let mut all_obs = old_obs.clone();
        all_obs.extend(stream_obs(nv, nt_old..nt_new));
        let old = Arc::new(CoregionalModel::new(&mesh, nt_old, 1.0, nv, 1, old_obs).unwrap());
        let new = Arc::new(CoregionalModel::new(&mesh, nt_new, 1.0, nv, 1, all_obs).unwrap());
        (old, new)
    }

    /// Conditional-only results of a solver: `(logdet_qc, mean, variances)`.
    fn conditional_results(
        solver: &mut Box<dyn LatentSolver>,
        model: &CoregionalModel,
        hyper: &ModelHyper,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let info = model.information_vector(hyper, solver.design());
        let mean = solver.solve_mean(&info);
        let vars = solver.selected_inverse_diag();
        (solver.logdet_qc(), mean, vars)
    }

    fn assert_bitwise_eq(a: &(f64, Vec<f64>, Vec<f64>), b: &(f64, Vec<f64>, Vec<f64>), tag: &str) {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "{tag}: logdet_qc");
        for (x, y) in a.1.iter().zip(&b.1) {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: mean");
        }
        for (x, y) in a.2.iter().zip(&b.2) {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: variances");
        }
    }

    fn extended_results(
        backend: SolverBackend,
        hyper: &ModelHyper,
        old: &Arc<CoregionalModel>,
        new: &Arc<CoregionalModel>,
    ) -> (f64, Vec<f64>, Vec<f64>) {
        let mut solver = backend.build(old);
        solver.factorize(hyper).unwrap();
        solver.extend_window(new.clone(), hyper).unwrap();
        conditional_results(&mut solver, new, hyper)
    }

    #[test]
    fn extend_window_matches_cold_factorization_bitwise() {
        let hyper = ModelHyper::default_for(2, 0.7, 2.0);
        let (old, new) = stream_models(2, 4, 6);

        // Cold sequential reference on the full new window. The distributed
        // backend's window mode holds a monolithic sequential factor, so the
        // sequential cold factorization is the reference for both.
        let seq = SolverBackend::Bta { partitions: 1, load_balance: 1.0 };
        let mut cold = seq.build(&new);
        cold.factorize_conditional(&hyper).unwrap();
        let reference = conditional_results(&mut cold, &new, &hyper);

        for backend in [seq, SolverBackend::Bta { partitions: 3, load_balance: 1.3 }] {
            let got = extended_results(backend, &hyper, &old, &new);
            assert_bitwise_eq(&got, &reference, "extend(1 thread)");

            let got4 = dalia_pool::ThreadPool::new(4)
                .install(|| extended_results(backend, &hyper, &old, &new));
            assert_bitwise_eq(&got4, &reference, "extend(4 threads)");
        }

        // The sparse fallback refactorizes fully — identical to a cold sparse
        // conditional factorization of the new window.
        let mut cold_sp = SolverBackend::SparseGeneral.build(&new);
        cold_sp.factorize_conditional(&hyper).unwrap();
        let ref_sp = conditional_results(&mut cold_sp, &new, &hyper);
        let got_sp = extended_results(SolverBackend::SparseGeneral, &hyper, &old, &new);
        assert_bitwise_eq(&got_sp, &ref_sp, "extend(sparse fallback)");
    }

    #[test]
    fn retire_window_matches_cold_factorization_bitwise() {
        let hyper = ModelHyper::default_for(1, 0.7, 2.0);
        let (retired, full) = stream_models(1, 4, 6);

        let seq = SolverBackend::Bta { partitions: 1, load_balance: 1.0 };
        let mut cold = seq.build(&retired);
        cold.factorize_conditional(&hyper).unwrap();
        let reference = conditional_results(&mut cold, &retired, &hyper);

        for backend in [seq, SolverBackend::Bta { partitions: 3, load_balance: 1.3 }] {
            let mut solver = backend.build(&full);
            solver.factorize(&hyper).unwrap();
            solver.retire_window(retired.clone(), &hyper).unwrap();
            let got = conditional_results(&mut solver, &retired, &hyper);
            assert_bitwise_eq(&got, &reference, "retire");
        }
    }

    #[test]
    fn distributed_returns_to_partitioned_scheme_after_window_update() {
        let hyper = ModelHyper::default_for(1, 0.7, 2.0);
        let (old, new) = stream_models(1, 4, 6);
        let backend = SolverBackend::Bta { partitions: 3, load_balance: 1.3 };

        let mut streamed = backend.build(&old);
        streamed.factorize(&hyper).unwrap();
        streamed.extend_window(new.clone(), &hyper).unwrap();
        // A subsequent full factorization rebuilds the partitioned scheme for
        // the new window and matches a cold distributed solver bitwise.
        streamed.factorize(&hyper).unwrap();
        let mut cold = backend.build(&new);
        cold.factorize(&hyper).unwrap();
        assert_eq!(streamed.logdet_qp().to_bits(), cold.logdet_qp().to_bits());
        assert_eq!(streamed.logdet_qc().to_bits(), cold.logdet_qc().to_bits());
    }

    #[test]
    fn extend_window_leaves_solver_in_conditional_only_state() {
        let hyper = ModelHyper::default_for(1, 0.7, 2.0);
        let (old, new) = stream_models(1, 3, 4);
        let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&old);
        solver.factorize(&hyper).unwrap();
        solver.extend_window(new.clone(), &hyper).unwrap();
        assert_eq!(solver.model().dims.nt, 4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| solver.logdet_qp()));
        assert!(err.is_err(), "logdet_qp must be unavailable after a window update");
    }

    #[test]
    fn timers_merge_accumulates() {
        let mut a = PhaseTimers {
            assembly_seconds: 1.0,
            factorize_seconds: 2.0,
            solve_seconds: 0.5,
            selinv_seconds: 0.25,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.assembly_seconds, 2.0);
        assert_eq!(a.solver_seconds(), 5.5);
    }
}
