//! The solver backend abstraction: a trait-based API over the bottleneck
//! linear-algebra operations of one INLA objective evaluation, with *stateful*
//! implementations that amortize structure across evaluations.
//!
//! The paper's bottleneck profile is "two structured factorizations + one
//! solve per objective evaluation", repeated dozens-to-hundreds of times by a
//! BFGS run. Everything that depends only on the model *structure* — the
//! time-domain [`Partitioning`], the block-dense BTA storage, the sparse
//! symbolic analysis (elimination tree + factor pattern) — is computed once
//! per [`LatentSolver`] and reused for every θ, the same separation
//! INLA_DIST/Serinv draw between symbolic setup and numeric factorization.
//!
//! A backend is obtained from the [`SolverBackend`] enum via
//! [`SolverBackend::build`], which returns a boxed trait object; the
//! [`InlaSession`](crate::engine::InlaSession) keeps a pool of them (one per
//! concurrent S1 gradient lane) and reuses them across `objective`, `run`,
//! `time_one_iteration` and posterior extraction. Adding a new backend (a
//! GPU-style batched or mixed-precision solver, say) means implementing this
//! trait in one file and extending the factory.
//!
//! Each trait method corresponds to a paper quantity of one evaluation of the
//! objective `f(θ)` (Eq. 8): [`LatentSolver::logdet_qp`] and
//! [`LatentSolver::logdet_qc`] are `log |Q_p(θ)|` and `log |Q_c(θ)|`,
//! [`LatentSolver::solve_mean`] produces the conditional mean
//! `μ_c = Q_c⁻¹ Aᵀ D y` (Eq. 7), [`LatentSolver::quadratic_form_qp`] the
//! prior term `μᵀ Q_p μ`, and [`LatentSolver::selected_inverse_diag`] the
//! latent marginal variances `diag(Q_c⁻¹)` used by the posterior extraction.
//!
//! The BTA workspaces also own a [`PackBuffer`] — the panel-packing scratch
//! of the blocked dense kernels in `dalia_la::blas` — which is threaded
//! through `serinv`'s `pobtaf_with`/`pobtasi_with`, so the factorize /
//! selected-inversion hot loop of a warmed-up solver performs no heap
//! allocation at all (see `docs/performance.md`).

use crate::settings::SolverBackend;
use crate::snapshot::SnapshotFactor;
use crate::CoreError;
use dalia_la::{Matrix, PackBuffer};
use dalia_model::{CoregionalModel, ModelHyper};
use dalia_sparse::{ops, CholeskySymbolic, CsrMatrix, SparseCholesky, SparseError};
use serinv::{
    d_pobtaf, d_pobtas, d_pobtasi, pobtaf, pobtaf_with, pobtas, pobtasi_with, BtaCholesky,
    BtaMatrix, DistBtaCholesky, Partitioning,
};
use std::time::Instant;

/// Wall-clock seconds spent in each phase of the solver pipeline, centralized
/// so the objective, the optimizer trace and [`InlaResult`](crate::InlaResult)
/// all report timings from one source instead of hand-threading pairs of
/// floats through every code path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimers {
    /// Matrix / design assembly (`Q_p`, `Q_c`, `Λ·A`).
    pub assembly_seconds: f64,
    /// Numeric factorizations of `Q_p` and `Q_c`.
    pub factorize_seconds: f64,
    /// Triangular solves for the conditional mean.
    pub solve_seconds: f64,
    /// Selected inversion for the latent marginal variances.
    pub selinv_seconds: f64,
}

impl PhaseTimers {
    /// Total time in the solver proper (everything but assembly).
    pub fn solver_seconds(&self) -> f64 {
        self.factorize_seconds + self.solve_seconds + self.selinv_seconds
    }

    /// Total time across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.assembly_seconds + self.solver_seconds()
    }

    /// Reset all phases to zero.
    pub fn reset(&mut self) {
        *self = PhaseTimers::default();
    }

    /// Accumulate another timer set into this one.
    pub fn merge(&mut self, other: &PhaseTimers) {
        self.assembly_seconds += other.assembly_seconds;
        self.factorize_seconds += other.factorize_seconds;
        self.solve_seconds += other.solve_seconds;
        self.selinv_seconds += other.selinv_seconds;
    }

    /// The increment from an `earlier` snapshot of the same accumulator to
    /// this one (phases clamp at zero).
    pub fn delta_since(&self, earlier: &PhaseTimers) -> PhaseTimers {
        PhaseTimers {
            assembly_seconds: (self.assembly_seconds - earlier.assembly_seconds).max(0.0),
            factorize_seconds: (self.factorize_seconds - earlier.factorize_seconds).max(0.0),
            solve_seconds: (self.solve_seconds - earlier.solve_seconds).max(0.0),
            selinv_seconds: (self.selinv_seconds - earlier.selinv_seconds).max(0.0),
        }
    }
}

/// The solver backend API: assemble-and-factorize the prior and conditional
/// precisions for one hyperparameter value, then answer the queries an INLA
/// evaluation needs (log-determinants, conditional mean, quadratic form,
/// selected-inverse variances).
///
/// Implementations are *stateful*: they own pre-allocated workspaces that
/// [`factorize`](Self::factorize) re-fills in place, so repeated calls on one
/// solver skip the per-evaluation allocation and symbolic-analysis cost.
/// All query methods refer to the most recent successful `factorize` call and
/// panic if none has happened yet.
///
/// The trait is `Send + Sync`: the mutable entry points (`factorize`,
/// `solve_mean`, `selected_inverse_diag`) naturally serialize through `&mut`,
/// while the read-only [`solve_many`](Self::solve_many) path can be shared
/// across threads once a factorization exists — the property the serving
/// layer's [`PosteriorSnapshot`](crate::snapshot::PosteriorSnapshot) builds on.
pub trait LatentSolver: Send + Sync {
    /// Short backend name for reports and diagnostics.
    fn backend_name(&self) -> &'static str;

    /// The model this solver was built for.
    fn model(&self) -> &CoregionalModel;

    /// Assemble `Q_p(θ)` and `Q_c(θ)` into the reusable workspaces and
    /// factorize both.
    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError>;

    /// Like [`factorize`](Self::factorize) but skips the numeric factorization
    /// of `Q_p` (posterior extraction only needs `Q_c`). After this call
    /// [`logdet_qp`](Self::logdet_qp) is unavailable until the next full
    /// `factorize`; everything else refers to the given `hyper`.
    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.factorize(hyper)
    }

    /// Re-assemble and re-factorize *only* the conditional precision for new
    /// per-observation working weights:
    /// `Q_c = Q_p + Aᵀ diag(weights) A`.
    ///
    /// This is the inner Newton loop's per-iteration step for non-Gaussian
    /// likelihoods — the likelihood only perturbs the diagonal congruence
    /// term, so the already-assembled `Q_p`, the design matrix and the warm
    /// factor storage of the last `factorize`/`factorize_conditional` (which
    /// must precede this call, at the same hyperparameters) are all reused;
    /// neither `Q_p` nor its factorization is touched.
    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError>;

    /// The joint design matrix `Λ·A` assembled by the last `factorize`.
    fn design(&self) -> &CsrMatrix;

    /// `log |Q_p|` of the last factorization.
    fn logdet_qp(&self) -> f64;

    /// `log |Q_c|` of the last factorization.
    fn logdet_qc(&self) -> f64;

    /// Solve `Q_c μ = rhs` (the conditional-mean system).
    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64>;

    /// Read-only blocked multi-RHS solve `Q_c X = B` against the conditional
    /// factor of the last `factorize`/`factorize_conditional`, overwriting
    /// `rhs` (one right-hand side per column) with the solution.
    ///
    /// Takes `&self`, so any number of threads may solve concurrently against
    /// one factorization. Because of that it does not touch the (mutably
    /// accumulated) phase timers; read-heavy callers time themselves.
    fn solve_many(&self, rhs: &mut Matrix);

    /// Extract an owned, backend-independent copy of the conditional factor
    /// (and nothing else) for read-only serving — the factor half of a
    /// [`PosteriorSnapshot`](crate::snapshot::PosteriorSnapshot).
    ///
    /// Like the other query methods this refers to the most recent successful
    /// `factorize`/`factorize_conditional` and panics if none has happened;
    /// the `Result` covers backends that must re-factor into the portable
    /// representation (the distributed BTA solver).
    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError>;

    /// Quadratic form `xᵀ Q_p x` for the currently assembled `Q_p`.
    fn quadratic_form_qp(&self, x: &[f64]) -> f64;

    /// Diagonal of `Q_c⁻¹` via selected inversion (latent marginal variances).
    fn selected_inverse_diag(&mut self) -> Vec<f64>;

    /// Phase timings accumulated since the last [`reset_timers`](Self::reset_timers).
    fn timers(&self) -> PhaseTimers;

    /// Reset the accumulated phase timings.
    fn reset_timers(&mut self);
}

impl SolverBackend {
    /// Build a stateful solver for `model`.
    ///
    /// This is the single dispatch point for backend selection; everything
    /// downstream works through the [`LatentSolver`] trait. For the BTA
    /// backend the partition count is capped at the number of time steps
    /// (a BTA matrix cannot be split into more partitions than it has
    /// diagonal blocks); nonsense configurations such as `partitions == 0`
    /// are rejected earlier by [`InlaSettings::validate`](crate::InlaSettings::validate).
    ///
    /// ```
    /// use dalia_core::settings::SolverBackend;
    /// use dalia_mesh::{Domain, Point, TriangleMesh};
    /// use dalia_model::{CoregionalModel, ModelHyper, Observation};
    ///
    /// let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
    /// let obs: Vec<Observation> = (0..3)
    ///     .map(|t| Observation {
    ///         var: 0,
    ///         t,
    ///         loc: Point::new(0.25, 0.5),
    ///         covariates: vec![1.0],
    ///         value: 0.1 * t as f64,
    ///     })
    ///     .collect();
    /// let model = CoregionalModel::new(&mesh, 3, 1.0, 1, 1, obs).unwrap();
    ///
    /// // One dispatch point for every backend; the session layer does this
    /// // once per S1 lane and reuses the solver for every θ.
    /// let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
    /// assert_eq!(solver.backend_name(), "bta-sequential");
    /// solver.factorize(&ModelHyper::default_for(1, 0.7, 2.0)).unwrap();
    /// // Q_c = Q_p + AᵀDA ⪰ Q_p, so the conditional log-determinant dominates.
    /// assert!(solver.logdet_qc() > solver.logdet_qp());
    /// ```
    pub fn build<'m>(&self, model: &'m CoregionalModel) -> Box<dyn LatentSolver + 'm> {
        match *self {
            SolverBackend::Bta { partitions, load_balance } => {
                let p = partitions.clamp(1, model.dims.nt);
                if p > 1 {
                    Box::new(DistributedBtaSolver::new(model, p, load_balance))
                } else {
                    Box::new(SequentialBtaSolver::new(model))
                }
            }
            SolverBackend::SparseGeneral => Box::new(SparseCholeskySolver::new(model)),
        }
    }
}

/// Shared BTA workspace: assembled `Q_p` / `Q_c` block storage (re-filled in
/// place per θ), the panel-packing scratch of the blocked dense kernels, and
/// the design matrix of the last assembly.
struct BtaWorkspace<'m> {
    model: &'m CoregionalModel,
    qp: BtaMatrix,
    qc: BtaMatrix,
    pack: PackBuffer,
    design: Option<CsrMatrix>,
    timers: PhaseTimers,
}

impl<'m> BtaWorkspace<'m> {
    fn new(model: &'m CoregionalModel) -> Self {
        let d = &model.dims;
        Self {
            model,
            qp: BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size()),
            qc: BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size()),
            pack: PackBuffer::new(),
            design: None,
            timers: PhaseTimers::default(),
        }
    }

    /// Re-fill `qp` and `qc` in place for `hyper`; records assembly time.
    fn assemble(&mut self, hyper: &ModelHyper) {
        let t0 = Instant::now();
        self.model.assemble_qp_bta_into(hyper, &mut self.qp);
        self.qc.copy_values_from(&self.qp);
        let design = self.model.extend_qp_to_qc(hyper, &mut self.qc);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
        self.design = Some(design);
    }

    fn design(&self) -> &CsrMatrix {
        self.design.as_ref().expect("LatentSolver: factorize must be called first")
    }

    /// Rebuild `qc = qp + Aᵀ diag(weights) A` in place from the assembled
    /// `qp` and the design of the last [`assemble`](Self::assemble); records
    /// assembly time.
    fn reweight_qc(&mut self, weights: &[f64]) {
        let t0 = Instant::now();
        let design =
            self.design.as_ref().expect("LatentSolver: factorize must be called first");
        self.qc.copy_values_from(&self.qp);
        let congruence = ops::congruence_diag(design, weights);
        self.model.add_congruence_to_bta(&congruence, &mut self.qc);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
    }
}

/// Sequential BTA solver (`pobtaf`/`pobtas`/`pobtasi`): the single-device
/// DALIA / INLA_DIST path. Factor storage is recycled between factorizations.
pub struct SequentialBtaSolver<'m> {
    ws: BtaWorkspace<'m>,
    fp: Option<BtaCholesky>,
    fc: Option<BtaCholesky>,
}

impl<'m> SequentialBtaSolver<'m> {
    /// Create a solver with freshly allocated workspaces for `model`.
    pub fn new(model: &'m CoregionalModel) -> Self {
        Self { ws: BtaWorkspace::new(model), fp: None, fc: None }
    }
}

impl LatentSolver for SequentialBtaSolver<'_> {
    fn backend_name(&self) -> &'static str {
        "bta-sequential"
    }

    fn model(&self) -> &CoregionalModel {
        self.ws.model
    }

    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        // Recycle the previous factors' block storage for the new factors and
        // reuse the kernel pack buffers: zero allocations once warm.
        let fp_store = self.fp.take().map(|f| f.blocks);
        self.fp =
            Some(pobtaf_with(&self.ws.qp, fp_store, &mut self.ws.pack).map_err(CoreError::Solver)?);
        let fc_store = self.fc.take().map(|f| f.blocks);
        self.fc =
            Some(pobtaf_with(&self.ws.qc, fc_store, &mut self.ws.pack).map_err(CoreError::Solver)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        self.fp = None;
        let fc_store = self.fc.take().map(|f| f.blocks);
        self.fc =
            Some(pobtaf_with(&self.ws.qc, fc_store, &mut self.ws.pack).map_err(CoreError::Solver)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError> {
        self.ws.reweight_qc(weights);
        let t0 = Instant::now();
        let fc_store = self.fc.take().map(|f| f.blocks);
        self.fc =
            Some(pobtaf_with(&self.ws.qc, fc_store, &mut self.ws.pack).map_err(CoreError::Solver)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn design(&self) -> &CsrMatrix {
        self.ws.design()
    }

    fn logdet_qp(&self) -> f64 {
        self.fp.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn logdet_qc(&self) -> f64 {
        self.fc.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let mut m = dalia_la::Matrix::col_vector(rhs);
        pobtas(fc, &mut m);
        let out = m.col(0).to_vec();
        self.ws.timers.solve_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn solve_many(&self, rhs: &mut Matrix) {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        pobtas(fc, rhs);
    }

    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        Ok(SnapshotFactor::Bta(fc.clone()))
    }

    fn quadratic_form_qp(&self, x: &[f64]) -> f64 {
        quadratic_form_bta(&self.ws.qp, x)
    }

    fn selected_inverse_diag(&mut self) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let diag = pobtasi_with(fc, &mut self.ws.pack).diagonal();
        self.ws.timers.selinv_seconds += t0.elapsed().as_secs_f64();
        diag
    }

    fn timers(&self) -> PhaseTimers {
        self.ws.timers
    }

    fn reset_timers(&mut self) {
        self.ws.timers.reset();
    }
}

/// Distributed (time-domain partitioned) BTA solver
/// (`d_pobtaf`/`d_pobtas`/`d_pobtasi`): the multi-device DALIA path. The
/// load-balanced [`Partitioning`] is derived once at construction and reused
/// for every factorization.
pub struct DistributedBtaSolver<'m> {
    ws: BtaWorkspace<'m>,
    part: Partitioning,
    fp: Option<DistBtaCholesky>,
    fc: Option<DistBtaCholesky>,
}

impl<'m> DistributedBtaSolver<'m> {
    /// Create a solver with `partitions` time-domain partitions and the given
    /// load-balancing factor. `partitions` must lie in `[1, nt]`.
    pub fn new(model: &'m CoregionalModel, partitions: usize, load_balance: f64) -> Self {
        let part = Partitioning::load_balanced(model.dims.nt, partitions, load_balance);
        Self { ws: BtaWorkspace::new(model), part, fp: None, fc: None }
    }

    /// The cached time-domain partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.part
    }
}

impl LatentSolver for DistributedBtaSolver<'_> {
    fn backend_name(&self) -> &'static str {
        "bta-distributed"
    }

    fn model(&self) -> &CoregionalModel {
        self.ws.model
    }

    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        self.fp = Some(d_pobtaf(&self.ws.qp, &self.part).map_err(CoreError::Solver)?);
        self.fc = Some(d_pobtaf(&self.ws.qc, &self.part).map_err(CoreError::Solver)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        self.ws.assemble(hyper);
        let t0 = Instant::now();
        self.fp = None;
        self.fc = Some(d_pobtaf(&self.ws.qc, &self.part).map_err(CoreError::Solver)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError> {
        self.ws.reweight_qc(weights);
        let t0 = Instant::now();
        self.fc = Some(d_pobtaf(&self.ws.qc, &self.part).map_err(CoreError::Solver)?);
        self.ws.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        Ok(())
    }

    fn design(&self) -> &CsrMatrix {
        self.ws.design()
    }

    fn logdet_qp(&self) -> f64 {
        self.fp.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn logdet_qc(&self) -> f64 {
        self.fc.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let mut m = dalia_la::Matrix::col_vector(rhs);
        d_pobtas(fc, &mut m);
        let out = m.col(0).to_vec();
        self.ws.timers.solve_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn solve_many(&self, rhs: &mut Matrix) {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        d_pobtas(fc, rhs);
    }

    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError> {
        // The distributed factor's nested-dissection representation is tied to
        // the partitioning (permuted interiors + reduced system), so it cannot
        // be handed out as-is. Re-factor the assembled `Q_c` sequentially into
        // the portable monolithic form — a one-time cost paid at snapshot
        // extraction, not per query.
        assert!(self.fc.is_some(), "LatentSolver: factorize must be called first");
        let fc = pobtaf(&self.ws.qc).map_err(CoreError::Solver)?;
        Ok(SnapshotFactor::Bta(fc))
    }

    fn quadratic_form_qp(&self, x: &[f64]) -> f64 {
        quadratic_form_bta(&self.ws.qp, x)
    }

    fn selected_inverse_diag(&mut self) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let diag = d_pobtasi(fc).diagonal();
        self.ws.timers.selinv_seconds += t0.elapsed().as_secs_f64();
        diag
    }

    fn timers(&self) -> PhaseTimers {
        self.ws.timers
    }

    fn reset_timers(&mut self) {
        self.ws.timers.reset();
    }
}

/// General sparse Cholesky solver (the R-INLA / PARDISO-like baseline). The
/// symbolic analyses of `Q_p` and `Q_c` are cached per sparsity pattern, so
/// repeat factorizations run the numeric phase only.
pub struct SparseCholeskySolver<'m> {
    model: &'m CoregionalModel,
    sym_qp: Option<CholeskySymbolic>,
    sym_qc: Option<CholeskySymbolic>,
    qp: Option<CsrMatrix>,
    fp: Option<SparseCholesky>,
    fc: Option<SparseCholesky>,
    design: Option<CsrMatrix>,
    timers: PhaseTimers,
}

impl<'m> SparseCholeskySolver<'m> {
    /// Create a solver with empty symbolic caches for `model`.
    pub fn new(model: &'m CoregionalModel) -> Self {
        Self {
            model,
            sym_qp: None,
            sym_qc: None,
            qp: None,
            fp: None,
            fc: None,
            design: None,
            timers: PhaseTimers::default(),
        }
    }

    /// Assemble `(Q_p, Q_c, design)` for `hyper`, recording assembly time.
    fn assemble(&mut self, hyper: &ModelHyper) -> (CsrMatrix, CsrMatrix, CsrMatrix) {
        let t0 = Instant::now();
        let qp = self.model.assemble_qp_csr(hyper, true);
        let design = self.model.joint_design(hyper);
        let d_diag = self.model.initial_working_weights(hyper);
        let congruence = ops::congruence_diag(&design, &d_diag);
        let qc = ops::add(1.0, &qp, 1.0, &congruence);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
        (qp, qc, design)
    }
}

/// Factorize `a`, reusing the cached symbolic analysis when the sparsity
/// pattern still matches and re-analyzing (updating the cache) when it does
/// not.
fn factor_with_cached_symbolic(
    cache: &mut Option<CholeskySymbolic>,
    a: &CsrMatrix,
) -> Result<SparseCholesky, SparseError> {
    if let Some(sym) = cache.as_ref() {
        match SparseCholesky::factor_with(sym, a) {
            Err(SparseError::PatternMismatch) => {}
            other => return other,
        }
    }
    let sym = SparseCholesky::analyze(a)?;
    let f = SparseCholesky::factor_with(&sym, a)?;
    *cache = Some(sym);
    Ok(f)
}

impl LatentSolver for SparseCholeskySolver<'_> {
    fn backend_name(&self) -> &'static str {
        "sparse-general"
    }

    fn model(&self) -> &CoregionalModel {
        self.model
    }

    fn factorize(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        let (qp, qc, design) = self.assemble(hyper);
        let t0 = Instant::now();
        self.fp =
            Some(factor_with_cached_symbolic(&mut self.sym_qp, &qp).map_err(CoreError::SparseSolver)?);
        self.fc =
            Some(factor_with_cached_symbolic(&mut self.sym_qc, &qc).map_err(CoreError::SparseSolver)?);
        self.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        self.qp = Some(qp);
        self.design = Some(design);
        Ok(())
    }

    fn factorize_conditional(&mut self, hyper: &ModelHyper) -> Result<(), CoreError> {
        let (qp, qc, design) = self.assemble(hyper);
        let t0 = Instant::now();
        self.fp = None;
        self.fc =
            Some(factor_with_cached_symbolic(&mut self.sym_qc, &qc).map_err(CoreError::SparseSolver)?);
        self.timers.factorize_seconds += t0.elapsed().as_secs_f64();
        self.qp = Some(qp);
        self.design = Some(design);
        Ok(())
    }

    fn refactorize_conditional(&mut self, weights: &[f64]) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let qp = self.qp.as_ref().expect("LatentSolver: factorize must be called first");
        let design =
            self.design.as_ref().expect("LatentSolver: factorize must be called first");
        let congruence = ops::congruence_diag(design, weights);
        let qc = ops::add(1.0, qp, 1.0, &congruence);
        self.timers.assembly_seconds += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        self.fc =
            Some(factor_with_cached_symbolic(&mut self.sym_qc, &qc).map_err(CoreError::SparseSolver)?);
        self.timers.factorize_seconds += t1.elapsed().as_secs_f64();
        Ok(())
    }

    fn design(&self) -> &CsrMatrix {
        self.design.as_ref().expect("LatentSolver: factorize must be called first")
    }

    fn logdet_qp(&self) -> f64 {
        self.fp.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn logdet_qc(&self) -> f64 {
        self.fc.as_ref().expect("LatentSolver: factorize must be called first").logdet()
    }

    fn solve_mean(&mut self, rhs: &[f64]) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let out = fc.solve(rhs);
        self.timers.solve_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn solve_many(&self, rhs: &mut Matrix) {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        // The sparse backend's triangular solves are vector-shaped; apply them
        // column by column (the blocked path is the BTA backends' specialty).
        for j in 0..rhs.ncols() {
            let x = fc.solve(rhs.col(j));
            rhs.col_mut(j).copy_from_slice(&x);
        }
    }

    fn snapshot_factor(&self) -> Result<SnapshotFactor, CoreError> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        Ok(SnapshotFactor::Sparse(fc.clone()))
    }

    fn quadratic_form_qp(&self, x: &[f64]) -> f64 {
        self.qp
            .as_ref()
            .expect("LatentSolver: factorize must be called first")
            .quadratic_form(x)
    }

    fn selected_inverse_diag(&mut self) -> Vec<f64> {
        let fc = self.fc.as_ref().expect("LatentSolver: factorize must be called first");
        let t0 = Instant::now();
        let diag = fc.marginal_variances();
        self.timers.selinv_seconds += t0.elapsed().as_secs_f64();
        diag
    }

    fn timers(&self) -> PhaseTimers {
        self.timers
    }

    fn reset_timers(&mut self) {
        self.timers.reset();
    }
}

/// Quadratic form `xᵀ A x` for a BTA matrix.
pub fn quadratic_form_bta(a: &BtaMatrix, x: &[f64]) -> f64 {
    let ax = a.matvec(x);
    x.iter().zip(&ax).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    fn toy_model(nv: usize) -> (CoregionalModel, ModelHyper) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let mut obs = Vec::new();
        for v in 0..nv {
            for t in 0..nt {
                for &(x, y) in &[(0.25, 0.25), (0.75, 0.5), (0.4, 0.85)] {
                    obs.push(Observation {
                        var: v,
                        t,
                        loc: Point::new(x, y),
                        covariates: vec![1.0],
                        value: 0.3 * (v as f64) + 0.2 * (t as f64) + 0.1 * x,
                    });
                }
            }
        }
        let model = CoregionalModel::new(&mesh, nt, 1.0, nv, 1, obs).unwrap();
        let hyper = ModelHyper::default_for(nv, 0.7, 2.0);
        (model, hyper)
    }

    fn backends() -> Vec<SolverBackend> {
        vec![
            SolverBackend::Bta { partitions: 1, load_balance: 1.0 },
            SolverBackend::Bta { partitions: 3, load_balance: 1.3 },
            SolverBackend::SparseGeneral,
        ]
    }

    #[test]
    fn factory_dispatches_to_the_right_implementation() {
        let (model, _) = toy_model(1);
        let names: Vec<&str> =
            backends().iter().map(|b| b.build(&model).backend_name()).collect();
        assert_eq!(names, vec!["bta-sequential", "bta-distributed", "sparse-general"]);
        // Partition counts beyond nt are capped, not panicked on.
        let capped = SolverBackend::Bta { partitions: 99, load_balance: 1.0 }.build(&model);
        assert_eq!(capped.backend_name(), "bta-distributed");
    }

    #[test]
    fn all_backends_agree_on_the_same_theta() {
        let (model, hyper) = toy_model(2);
        let mut reference: Option<(f64, f64, Vec<f64>, Vec<f64>)> = None;
        for backend in backends() {
            let mut solver = backend.build(&model);
            solver.factorize(&hyper).unwrap();
            let info = model.information_vector(&hyper, solver.design());
            let mean = solver.solve_mean(&info);
            let vars = solver.selected_inverse_diag();
            let (ldp, ldc) = (solver.logdet_qp(), solver.logdet_qc());
            match &reference {
                None => reference = Some((ldp, ldc, mean, vars)),
                Some((rp, rc, rmean, rvars)) => {
                    assert!((ldp - rp).abs() < 1e-8 * (1.0 + rp.abs()));
                    assert!((ldc - rc).abs() < 1e-8 * (1.0 + rc.abs()));
                    for (a, b) in mean.iter().zip(rmean) {
                        assert!((a - b).abs() < 1e-8);
                    }
                    for (a, b) in vars.iter().zip(rvars) {
                        assert!((a - b).abs() < 1e-8);
                    }
                }
            }
        }
    }

    #[test]
    fn refactorization_reuses_workspaces_without_contamination() {
        let (model, hyper) = toy_model(1);
        let mut theta2 = hyper.to_theta();
        theta2[0] += 0.4;
        theta2[2] -= 0.3;
        let hyper2 = ModelHyper::from_theta(1, &theta2);

        for backend in backends() {
            // Reused solver: factorize at θ₁, then θ₂.
            let mut reused = backend.build(&model);
            reused.factorize(&hyper).unwrap();
            reused.factorize(&hyper2).unwrap();
            // Fresh solver: factorize at θ₂ only.
            let mut fresh = backend.build(&model);
            fresh.factorize(&hyper2).unwrap();

            assert_eq!(reused.logdet_qp().to_bits(), fresh.logdet_qp().to_bits());
            assert_eq!(reused.logdet_qc().to_bits(), fresh.logdet_qc().to_bits());
            let info = model.information_vector(&hyper2, fresh.design());
            let m1 = reused.solve_mean(&info);
            let m2 = fresh.solve_mean(&info);
            for (a, b) in m1.iter().zip(&m2) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} mean drift", reused.backend_name());
            }
        }
    }

    #[test]
    fn factorize_conditional_matches_full_factorization_for_qc() {
        let (model, hyper) = toy_model(2);
        for backend in backends() {
            let mut full = backend.build(&model);
            full.factorize(&hyper).unwrap();
            let mut cond = backend.build(&model);
            cond.factorize_conditional(&hyper).unwrap();
            let tag = cond.backend_name();
            assert_eq!(cond.logdet_qc().to_bits(), full.logdet_qc().to_bits(), "{tag}");
            let info = model.information_vector(&hyper, full.design());
            let m_full = full.solve_mean(&info);
            let m_cond = cond.solve_mean(&info);
            for (a, b) in m_full.iter().zip(&m_cond) {
                assert_eq!(a.to_bits(), b.to_bits(), "{tag}: mean");
            }
            let v_full = full.selected_inverse_diag();
            let v_cond = cond.selected_inverse_diag();
            for (a, b) in v_full.iter().zip(&v_cond) {
                assert_eq!(a.to_bits(), b.to_bits(), "{tag}: variances");
            }
            // Q_p stays assembled (quadratic form valid), just not factorized.
            assert_eq!(
                cond.quadratic_form_qp(&m_cond).to_bits(),
                full.quadratic_form_qp(&m_full).to_bits(),
                "{tag}: quadratic form"
            );
        }
    }

    #[test]
    fn timers_record_each_phase() {
        let (model, hyper) = toy_model(1);
        let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
        solver.factorize(&hyper).unwrap();
        let info = model.information_vector(&hyper, solver.design());
        let _ = solver.solve_mean(&info);
        let _ = solver.selected_inverse_diag();
        let t = solver.timers();
        assert!(t.assembly_seconds > 0.0);
        assert!(t.factorize_seconds > 0.0);
        assert!(t.solver_seconds() >= t.factorize_seconds);
        assert!(t.total_seconds() >= t.solver_seconds());
        solver.reset_timers();
        assert_eq!(solver.timers(), PhaseTimers::default());
    }

    #[test]
    fn timers_merge_accumulates() {
        let mut a = PhaseTimers {
            assembly_seconds: 1.0,
            factorize_seconds: 2.0,
            solve_seconds: 0.5,
            selinv_seconds: 0.25,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.assembly_seconds, 2.0);
        assert_eq!(a.solver_seconds(), 5.5);
    }
}
