//! Posterior summaries: hyperparameter marginals from the Hessian at the mode
//! (Sec. III.3), latent marginals from the conditional mean and the selected
//! inverse of `Q_c` (Sec. III.4), and posterior prediction / downscaling.

use crate::solver::LatentSolver;
use crate::CoreError;
use dalia_la::{chol, eigen, Matrix};
use dalia_model::{CoregionalModel, ModelHyper, PredictionTarget};

/// Gaussian approximation of the hyperparameter posterior.
#[derive(Clone, Debug)]
pub struct HyperMarginals {
    /// Posterior mode θ*.
    pub mode: Vec<f64>,
    /// Posterior covariance (inverse of the negative Hessian at the mode).
    pub covariance: Matrix,
    /// Marginal standard deviations.
    pub sd: Vec<f64>,
}

impl HyperMarginals {
    /// Build from the mode and the negative Hessian of `f_obj`.
    pub fn from_hessian(mode: Vec<f64>, neg_hessian: &Matrix) -> Result<Self, CoreError> {
        let dim = mode.len();
        // Regularize if needed: the finite-difference Hessian can have small
        // negative eigenvalues away from the exact mode.
        let mut h = neg_hessian.clone();
        h.symmetrize();
        let min_eig = eigen::min_eigenvalue(&h);
        if min_eig <= 1e-10 {
            let shift = 1e-6 + min_eig.abs();
            for i in 0..dim {
                h[(i, i)] += shift;
            }
        }
        let covariance = chol::spd_inverse(&h).map_err(|_| CoreError::HessianNotPositiveDefinite)?;
        let sd = (0..dim).map(|i| covariance[(i, i)].max(0.0).sqrt()).collect();
        Ok(Self { mode, covariance, sd })
    }

    /// `(lower, upper)` quantiles of component `i` at the ±1.96 sd level.
    pub fn credible_interval(&self, i: usize) -> (f64, f64) {
        (self.mode[i] - 1.96 * self.sd[i], self.mode[i] + 1.96 * self.sd[i])
    }
}

/// Marginal posterior summaries of the latent field.
#[derive(Clone, Debug)]
pub struct LatentMarginals {
    /// Posterior means (permuted latent ordering).
    pub mean: Vec<f64>,
    /// Posterior standard deviations (permuted latent ordering).
    pub sd: Vec<f64>,
}

/// Compute the latent marginals at the hyperparameter mode: the conditional
/// mean is provided by the final objective evaluation, the variances come from
/// the selected inversion of `Q_c` through the solver backend (which reuses
/// whatever factorization workspaces it has already built).
pub fn latent_marginals(
    solver: &mut dyn LatentSolver,
    hyper: &ModelHyper,
    mean: Vec<f64>,
) -> Result<LatentMarginals, CoreError> {
    // Only Q_c is needed here; skip the Q_p factorization.
    solver.factorize_conditional(hyper)?;
    let variances = solver.selected_inverse_diag();
    let sd = variances.iter().map(|v| v.max(0.0).sqrt()).collect();
    Ok(LatentMarginals { mean, sd })
}

/// Posterior summary of one fixed effect.
#[derive(Clone, Debug)]
pub struct FixedEffectSummary {
    /// Latent process index.
    pub process: usize,
    /// Fixed-effect index within the process.
    pub effect: usize,
    /// Posterior mean.
    pub mean: f64,
    /// Posterior standard deviation.
    pub sd: f64,
    /// 2.5% quantile.
    pub q025: f64,
    /// 97.5% quantile.
    pub q975: f64,
}

/// Extract the fixed-effect summaries from the latent marginals.
pub fn fixed_effect_summaries(
    model: &CoregionalModel,
    marginals: &LatentMarginals,
) -> Vec<FixedEffectSummary> {
    let mut out = Vec::new();
    for l in 0..model.dims.nv {
        for r in 0..model.dims.nr {
            let idx = model.fixed_effect_index(l, r);
            let mean = marginals.mean[idx];
            let sd = marginals.sd[idx];
            out.push(FixedEffectSummary {
                process: l,
                effect: r,
                mean,
                sd,
                q025: mean - 1.96 * sd,
                q975: mean + 1.96 * sd,
            });
        }
    }
    out
}

/// Posterior correlations between the response variables implied by the
/// coregionalization matrix at the hyperparameter mode (the quantities the
/// paper reports for the air-pollution application: 0.97 between PM2.5 and
/// PM10, ≈ −0.6 with O3).
pub fn response_correlations(hyper: &ModelHyper) -> Matrix {
    let lambda = hyper.lambda_matrix();
    let cov = dalia_la::blas::matmul(&lambda, &lambda.transpose());
    let nv = hyper.nv();
    Matrix::from_fn(nv, nv, |i, j| cov[(i, j)] / (cov[(i, i)] * cov[(j, j)]).sqrt())
}

/// Posterior predictive summary at arbitrary space-time targets
/// (used for the spatial downscaling of Fig. 8).
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predictive means, one per target.
    pub mean: Vec<f64>,
    /// Approximate predictive standard deviations (latent contribution only,
    /// computed from the selected-inverse variances; cross-covariances outside
    /// the BTA pattern are not included).
    pub sd: Vec<f64>,
}

/// Predict the latent response surface at `targets` given the latent
/// marginals.
pub fn predict(
    model: &CoregionalModel,
    hyper: &ModelHyper,
    marginals: &LatentMarginals,
    targets: &[PredictionTarget],
) -> Result<Prediction, CoreError> {
    let design = model.prediction_design(hyper, targets).map_err(CoreError::Model)?;
    let mean = design.spmv(&marginals.mean);
    // Variance approximation: Var(aᵀx) ≈ Σ_j a_j² Var(x_j) (diagonal part).
    let mut sd = Vec::with_capacity(targets.len());
    for r in 0..design.nrows() {
        let mut v = 0.0;
        for (c, w) in design.row_iter(r) {
            v += w * w * marginals.sd[c] * marginals.sd[c];
        }
        sd.push(v.sqrt());
    }
    Ok(Prediction { mean, sd })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::{InlaSettings, SolverBackend};
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::{ModelHyper, Observation};
    use serinv::{pobtaf, pobtasi};

    fn toy_model() -> (CoregionalModel, ModelHyper) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 2;
        let mut obs = Vec::new();
        for t in 0..nt {
            for &(x, y, v) in &[(0.2, 0.3, 0.5), (0.7, 0.6, -0.2), (0.5, 0.9, 0.1)] {
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: v,
                });
            }
        }
        let model = CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap();
        let hyper = ModelHyper::default_for(1, 0.7, 2.0);
        (model, hyper)
    }

    #[test]
    fn hyper_marginals_from_spd_hessian() {
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let m = HyperMarginals::from_hessian(vec![0.5, -0.2], &h).unwrap();
        assert_eq!(m.sd.len(), 2);
        assert!(m.sd[0] > 0.0);
        let (lo, hi) = m.credible_interval(0);
        assert!(lo < 0.5 && hi > 0.5);
    }

    #[test]
    fn hyper_marginals_regularizes_indefinite_hessian() {
        let h = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        let m = HyperMarginals::from_hessian(vec![0.0, 0.0], &h).unwrap();
        assert!(m.sd.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    fn marginals_for(
        model: &CoregionalModel,
        hyper: &ModelHyper,
        settings: &InlaSettings,
    ) -> LatentMarginals {
        let mut solver = settings.backend.build(model);
        latent_marginals(solver.as_mut(), hyper, vec![0.0; model.dims.latent_dim()]).unwrap()
    }

    #[test]
    fn latent_marginals_bta_and_sparse_agree() {
        let (model, hyper) = toy_model();
        let bta = marginals_for(&model, &hyper, &InlaSettings::dalia(1));
        let sparse = marginals_for(&model, &hyper, &InlaSettings::rinla_like());
        for (a, b) in bta.sd.iter().zip(&sparse.sd) {
            assert!((a - b).abs() < 1e-7, "sd mismatch {a} vs {b}");
        }
        // Distributed solver agrees too.
        let dist = marginals_for(&model, &hyper, &InlaSettings::dalia(2));
        for (a, b) in bta.sd.iter().zip(&dist.sd) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn observed_locations_have_reduced_uncertainty() {
        let (model, hyper) = toy_model();
        let marg = marginals_for(&model, &hyper, &InlaSettings::dalia(1));
        // The prior marginal sd (without data) is larger on average.
        let qp = model.assemble_qp_bta(&hyper);
        let fp = pobtaf(&qp).unwrap();
        let prior_sd: Vec<f64> = pobtasi(&fp).diagonal().iter().map(|v| v.sqrt()).collect();
        let ns = model.dims.ns;
        let avg_post: f64 = marg.sd[..ns].iter().sum::<f64>() / ns as f64;
        let avg_prior: f64 = prior_sd[..ns].iter().sum::<f64>() / ns as f64;
        assert!(avg_post < avg_prior, "data did not reduce uncertainty ({avg_post} vs {avg_prior})");
    }

    #[test]
    fn fixed_effect_summaries_cover_all_processes() {
        let (model, hyper) = toy_model();
        let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
        let marg =
            latent_marginals(solver.as_mut(), &hyper, vec![0.1; model.dims.latent_dim()]).unwrap();
        let fx = fixed_effect_summaries(&model, &marg);
        assert_eq!(fx.len(), model.dims.nv * model.dims.nr);
        assert!(fx[0].q025 < fx[0].mean && fx[0].mean < fx[0].q975);
    }

    #[test]
    fn response_correlations_match_lambda() {
        let hyper = ModelHyper {
            range_s: vec![1.0; 3],
            range_t: vec![1.0; 3],
            sigmas: vec![1.0, 1.0, 1.0],
            lambdas: vec![0.95, -0.5, -0.3],
            noise_prec: vec![1.0; 3],
        };
        let corr = response_correlations(&hyper);
        assert!((corr[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(corr[(1, 0)] > 0.6, "strong positive coupling expected");
        assert!(corr[(2, 0)] < 0.0, "negative coupling expected");
        assert!(corr.max_abs_diff(&corr.transpose()) < 1e-12);
    }

    #[test]
    fn prediction_at_observed_location_tracks_mean_field() {
        let (model, hyper) = toy_model();
        let mean: Vec<f64> = (0..model.dims.latent_dim()).map(|i| 0.01 * i as f64).collect();
        let marg = LatentMarginals { sd: vec![0.1; mean.len()], mean };
        let targets = vec![PredictionTarget {
            var: 0,
            t: 1,
            loc: Point::new(0.5, 0.5),
            covariates: vec![0.0],
        }];
        let pred = predict(&model, &hyper, &marg, &targets).unwrap();
        assert_eq!(pred.mean.len(), 1);
        assert!(pred.sd[0] > 0.0);
        assert!(pred.mean[0].is_finite());
    }
}
