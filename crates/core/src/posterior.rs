//! Posterior summaries: hyperparameter marginals from the Hessian at the mode
//! (Sec. III.3), latent marginals from the conditional mean and the selected
//! inverse of `Q_c` (Sec. III.4), and posterior prediction / downscaling.

use crate::solver::LatentSolver;
use crate::CoreError;
use dalia_la::{chol, eigen, Matrix};
use dalia_model::{CoregionalModel, ModelHyper, PredictionTarget};

/// Inverse standard-normal CDF `Φ⁻¹(p)` (Acklam's rational approximation,
/// absolute error below `1.2e-9` across `(0, 1)`).
///
/// This is the single source of normal quantiles for every credible interval
/// in the crate — `normal_quantile(0.975) ≈ 1.95996` replaces the hard-coded
/// `1.96` the summaries used historically.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile: p={p} outside (0, 1)");
    // Acklam's coefficients for the central and tail rational approximants.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p > 1.0 - P_LOW {
        -normal_quantile(1.0 - p)
    } else {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    }
}

/// The ± multiplier of a central Gaussian credible interval at `level`
/// (e.g. `credible_z(0.95) ≈ 1.96`).
///
/// The level is clamped into the open interval `(0, 1)` before the quantile
/// is evaluated, so the boundary levels stay finite instead of silently
/// producing ±inf/NaN interval bounds: `level = 0.0` collapses to a
/// zero-width interval at the center, `level = 1.0` saturates at the widest
/// interval the quantile approximation supports (`z ≈ 8.2`).
///
/// # Panics
///
/// Panics on a non-finite level (NaN survives the clamp and is rejected by
/// [`normal_quantile`]'s domain check).
fn credible_z(level: f64) -> f64 {
    // Largest representable level strictly below 1: the matching quantile
    // argument 0.5 * (1 + level) still rounds to a double < 1.0.
    let level = level.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
    normal_quantile(0.5 * (1.0 + level))
}

/// Gaussian approximation of the hyperparameter posterior.
#[derive(Clone, Debug)]
pub struct HyperMarginals {
    /// Posterior mode θ*.
    pub mode: Vec<f64>,
    /// Posterior covariance (inverse of the negative Hessian at the mode).
    pub covariance: Matrix,
    /// Marginal standard deviations.
    pub sd: Vec<f64>,
    /// Number of covariance diagonal entries that were negative (numerically
    /// indefinite inverse) and clamped to zero when forming `sd`. Zero for a
    /// healthy fit; a nonzero count is the signal the old silent
    /// `max(0.0)` swallowed.
    pub clamped: usize,
}

impl HyperMarginals {
    /// Build from the mode and the negative Hessian of `f_obj`.
    pub fn from_hessian(mode: Vec<f64>, neg_hessian: &Matrix) -> Result<Self, CoreError> {
        let dim = mode.len();
        // Regularize if needed: the finite-difference Hessian can have small
        // negative eigenvalues away from the exact mode.
        let mut h = neg_hessian.clone();
        h.symmetrize();
        let min_eig = eigen::min_eigenvalue(&h);
        if min_eig <= 1e-10 {
            let shift = 1e-6 + min_eig.abs();
            for i in 0..dim {
                h[(i, i)] += shift;
            }
        }
        let covariance = chol::spd_inverse(&h).map_err(|_| CoreError::HessianNotPositiveDefinite)?;
        let clamped = (0..dim).filter(|&i| covariance[(i, i)] < 0.0).count();
        let sd = (0..dim).map(|i| covariance[(i, i)].max(0.0).sqrt()).collect();
        Ok(Self { mode, covariance, sd, clamped })
    }

    /// `(lower, upper)` central credible interval of component `i` at the 95%
    /// level — [`credible_interval_at`](Self::credible_interval_at) with
    /// `level = 0.95`.
    pub fn credible_interval(&self, i: usize) -> (f64, f64) {
        self.credible_interval_at(i, 0.95)
    }

    /// `(lower, upper)` central credible interval of component `i` at `level`
    /// (e.g. `0.95`, `0.99`) under the Gaussian approximation.
    pub fn credible_interval_at(&self, i: usize, level: f64) -> (f64, f64) {
        let z = credible_z(level);
        (self.mode[i] - z * self.sd[i], self.mode[i] + z * self.sd[i])
    }
}

/// Marginal posterior summaries of the latent field.
#[derive(Clone, Debug)]
pub struct LatentMarginals {
    /// Posterior means (permuted latent ordering).
    pub mean: Vec<f64>,
    /// Posterior standard deviations (permuted latent ordering).
    pub sd: Vec<f64>,
    /// Number of selected-inverse variances that were negative (numerical
    /// noise around zero, or a failing factorization) and clamped to zero
    /// when forming `sd`. Zero for a healthy fit; previously these were
    /// swallowed silently by `v.max(0.0)`.
    pub clamped: usize,
}

/// Compute the latent marginals at the hyperparameter mode: the conditional
/// mean is provided by the final objective evaluation, the variances come from
/// the selected inversion of `Q_c` through the solver backend (which reuses
/// whatever factorization workspaces it has already built).
pub fn latent_marginals(
    solver: &mut dyn LatentSolver,
    hyper: &ModelHyper,
    mean: Vec<f64>,
) -> Result<LatentMarginals, CoreError> {
    // Only Q_c is needed here; skip the Q_p factorization.
    solver.factorize_conditional(hyper)?;
    // Non-Gaussian families: re-weight Q_c at the mode's working weights so
    // the selected inverse describes the Gaussian approximation at the mode
    // (`mean`), not at the η = 0 seed weights.
    if !solver.model().likelihood().is_quadratic() {
        let eta = solver.design().spmv(&mean);
        let w = solver.model().working_weights(hyper, &eta);
        solver.refactorize_conditional(&w)?;
    }
    let variances = solver.selected_inverse_diag();
    let clamped = variances.iter().filter(|v| **v < 0.0).count();
    let sd = variances.iter().map(|v| v.max(0.0).sqrt()).collect();
    Ok(LatentMarginals { mean, sd, clamped })
}

/// Posterior summary of one fixed effect.
#[derive(Clone, Debug)]
pub struct FixedEffectSummary {
    /// Latent process index.
    pub process: usize,
    /// Fixed-effect index within the process.
    pub effect: usize,
    /// Posterior mean.
    pub mean: f64,
    /// Posterior standard deviation.
    pub sd: f64,
    /// 2.5% quantile.
    pub q025: f64,
    /// 97.5% quantile.
    pub q975: f64,
}

/// Extract the fixed-effect summaries from the latent marginals.
pub fn fixed_effect_summaries(
    model: &CoregionalModel,
    marginals: &LatentMarginals,
) -> Vec<FixedEffectSummary> {
    let z = credible_z(0.95);
    let mut out = Vec::new();
    for l in 0..model.dims.nv {
        for r in 0..model.dims.nr {
            let idx = model.fixed_effect_index(l, r);
            let mean = marginals.mean[idx];
            let sd = marginals.sd[idx];
            out.push(FixedEffectSummary {
                process: l,
                effect: r,
                mean,
                sd,
                q025: mean - z * sd,
                q975: mean + z * sd,
            });
        }
    }
    out
}

/// Posterior correlations between the response variables implied by the
/// coregionalization matrix at the hyperparameter mode (the quantities the
/// paper reports for the air-pollution application: 0.97 between PM2.5 and
/// PM10, ≈ −0.6 with O3).
pub fn response_correlations(hyper: &ModelHyper) -> Matrix {
    let lambda = hyper.lambda_matrix();
    let cov = dalia_la::blas::matmul(&lambda, &lambda.transpose());
    let nv = hyper.nv();
    Matrix::from_fn(nv, nv, |i, j| cov[(i, j)] / (cov[(i, i)] * cov[(j, j)]).sqrt())
}

/// Posterior predictive summary at arbitrary space-time targets
/// (used for the spatial downscaling of Fig. 8).
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Predictive means, one per target.
    pub mean: Vec<f64>,
    /// Approximate predictive standard deviations (latent contribution only,
    /// computed from the selected-inverse variances; cross-covariances outside
    /// the BTA pattern are not included).
    pub sd: Vec<f64>,
}

impl Prediction {
    /// `(lower, upper)` central predictive interval of target `i` at `level`
    /// (e.g. `0.95`), using the same normal-quantile helper as the
    /// hyperparameter and fixed-effect summaries.
    pub fn credible_interval_at(&self, i: usize, level: f64) -> (f64, f64) {
        let z = credible_z(level);
        (self.mean[i] - z * self.sd[i], self.mean[i] + z * self.sd[i])
    }
}

/// Predict the latent response surface at `targets` given the latent
/// marginals, with the diagonal variance approximation (see
/// [`Prediction::sd`]). For exact predictive variances through the frozen
/// conditional factor, use
/// [`PosteriorSnapshot::predict_exact`](crate::snapshot::PosteriorSnapshot::predict_exact).
pub fn predict(
    model: &CoregionalModel,
    hyper: &ModelHyper,
    marginals: &LatentMarginals,
    targets: &[PredictionTarget],
) -> Result<Prediction, CoreError> {
    let design = model.prediction_design(hyper, targets).map_err(CoreError::Model)?;
    let mean = design.spmv(&marginals.mean);
    // Variance approximation: Var(aᵀx) ≈ Σ_j a_j² Var(x_j) (diagonal part).
    let mut sd = Vec::with_capacity(targets.len());
    for r in 0..design.nrows() {
        let mut v = 0.0;
        for (c, w) in design.row_iter(r) {
            v += w * w * marginals.sd[c] * marginals.sd[c];
        }
        sd.push(v.sqrt());
    }
    Ok(Prediction { mean, sd })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::{InlaSettings, SolverBackend};
    use dalia_la::blas;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::{ModelHyper, Observation};
    use serinv::{pobtaf, pobtasi};

    fn toy_model() -> (std::sync::Arc<CoregionalModel>, ModelHyper) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 2;
        let mut obs = Vec::new();
        for t in 0..nt {
            for &(x, y, v) in &[(0.2, 0.3, 0.5), (0.7, 0.6, -0.2), (0.5, 0.9, 0.1)] {
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: v,
                });
            }
        }
        let model = std::sync::Arc::new(CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap());
        let hyper = ModelHyper::default_for(1, 0.7, 2.0);
        (model, hyper)
    }

    #[test]
    fn hyper_marginals_from_spd_hessian() {
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let m = HyperMarginals::from_hessian(vec![0.5, -0.2], &h).unwrap();
        assert_eq!(m.sd.len(), 2);
        assert!(m.sd[0] > 0.0);
        assert_eq!(m.clamped, 0, "SPD Hessian must not clamp any variance");
        let (lo, hi) = m.credible_interval(0);
        assert!(lo < 0.5 && hi > 0.5);
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-12);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
        assert!((normal_quantile(0.999) - 3.090232).abs() < 1e-5);
        assert!((normal_quantile(1e-6) + 4.753424).abs() < 1e-4);
        // Antisymmetry across the median, and monotonicity.
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.49] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9, "p={p}");
        }
        let mut last = f64::NEG_INFINITY;
        for i in 1..100 {
            let q = normal_quantile(i as f64 / 100.0);
            assert!(q > last);
            last = q;
        }
    }

    #[test]
    fn credible_intervals_widen_with_level() {
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let m = HyperMarginals::from_hessian(vec![0.5, -0.2], &h).unwrap();
        let (l95, u95) = m.credible_interval_at(0, 0.95);
        let (l99, u99) = m.credible_interval_at(0, 0.99);
        assert!(l99 < l95 && u95 < u99, "99% interval must contain the 95% one");
        assert_eq!(m.credible_interval(0), m.credible_interval_at(0, 0.95));
        // The default level reproduces the classic 1.96 multiplier (to the
        // approximation's accuracy — the old code hard-coded the rounding).
        let z = (u95 - m.mode[0]) / m.sd[0];
        assert!((z - 1.96).abs() < 1e-3, "default z {z}");
    }

    #[test]
    fn boundary_credible_levels_stay_finite() {
        // Regression: levels 0.0 and 1.0 used to reach `(-2 p.ln()).sqrt()`
        // unguarded and return ±inf/NaN interval bounds. They now clamp into
        // the open interval: 0.0 collapses onto the mode, 1.0 saturates at
        // the approximation's widest finite interval.
        let h = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let m = HyperMarginals::from_hessian(vec![0.5, -0.2], &h).unwrap();
        let (l0, u0) = m.credible_interval_at(0, 0.0);
        assert!(l0.is_finite() && u0.is_finite());
        assert!((u0 - l0).abs() < 1e-12, "level 0 must collapse to the mode");
        assert!((l0 - m.mode[0]).abs() < 1e-12);
        let (l1, u1) = m.credible_interval_at(0, 1.0);
        assert!(l1.is_finite() && u1.is_finite(), "level 1 produced ({l1}, {u1})");
        let (l99, u99) = m.credible_interval_at(0, 0.99);
        assert!(l1 < l99 && u99 < u1, "saturated interval must contain the 99% one");
        // The saturated multiplier is the documented ≈8.2 ceiling.
        let z = (u1 - m.mode[0]) / m.sd[0];
        assert!(z > 8.0 && z < 8.5, "saturated z {z}");
    }

    #[test]
    fn hyper_marginals_regularizes_indefinite_hessian() {
        let h = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        let m = HyperMarginals::from_hessian(vec![0.0, 0.0], &h).unwrap();
        assert!(m.sd.iter().all(|s| s.is_finite() && *s > 0.0));
    }

    fn marginals_for(
        model: &std::sync::Arc<CoregionalModel>,
        hyper: &ModelHyper,
        settings: &InlaSettings,
    ) -> LatentMarginals {
        let mut solver = settings.backend.build(model);
        latent_marginals(solver.as_mut(), hyper, vec![0.0; model.dims.latent_dim()]).unwrap()
    }

    #[test]
    fn latent_marginals_bta_and_sparse_agree() {
        let (model, hyper) = toy_model();
        let bta = marginals_for(&model, &hyper, &InlaSettings::dalia(1));
        let sparse = marginals_for(&model, &hyper, &InlaSettings::rinla_like());
        for (a, b) in bta.sd.iter().zip(&sparse.sd) {
            assert!((a - b).abs() < 1e-7, "sd mismatch {a} vs {b}");
        }
        // Distributed solver agrees too.
        let dist = marginals_for(&model, &hyper, &InlaSettings::dalia(2));
        for (a, b) in bta.sd.iter().zip(&dist.sd) {
            assert!((a - b).abs() < 1e-7);
        }
        // A healthy SPD conditional precision clamps nothing, on any backend.
        for m in [&bta, &sparse, &dist] {
            debug_assert_eq!(m.clamped, 0);
            assert_eq!(m.clamped, 0, "selected inverse clamped {} variances", m.clamped);
        }
    }

    #[test]
    fn diagonal_variance_approximation_vs_dense_truth() {
        // Pin down the semantics of `predict`'s diagonal variance
        // approximation: compare against the brute-force dense truth
        // Var = diag(A Q_c⁻¹ Aᵀ), and show that the factor-backed exact mode
        // (a blocked multi-RHS solve, see `SnapshotFactor::solve_many`)
        // reproduces the truth while the diagonal shortcut carries a real,
        // documented gap — the gap the serving layer's
        // `VarianceMode::Exact` closes.
        let (model, hyper) = toy_model();
        let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
        let marg = latent_marginals(solver.as_mut(), &hyper, vec![0.0; model.dims.latent_dim()])
            .unwrap();

        let targets: Vec<PredictionTarget> = (0..8)
            .map(|i| PredictionTarget {
                var: 0,
                t: i % 2,
                loc: Point::new(0.1 + 0.09 * i as f64, 0.2 + 0.08 * i as f64),
                covariates: vec![1.0],
            })
            .collect();
        let pred = predict(&model, &hyper, &marg, &targets).unwrap();

        // Brute-force dense truth.
        let (qc, _) = model.assemble_qc_bta(&hyper);
        let sigma = chol::spd_inverse(&qc.to_dense()).unwrap();
        let a = model.prediction_design(&hyper, &targets).unwrap().to_dense();
        let asat = blas::matmul(&blas::matmul(&a, &sigma), &a.transpose());
        let truth: Vec<f64> = (0..targets.len()).map(|j| asat[(j, j)].sqrt()).collect();

        // Exact mode: Z = Q_c⁻¹ Aᵀ through the frozen factor.
        let factor = solver.snapshot_factor().unwrap();
        let n = model.dims.latent_dim();
        let mut rhs = Matrix::from_fn(n, targets.len(), |i, j| a[(j, i)]);
        factor.solve_many(&mut rhs);
        for j in 0..targets.len() {
            let v: f64 = (0..n).map(|i| a[(j, i)] * rhs.col(j)[i]).sum();
            let exact_sd = v.max(0.0).sqrt();
            assert!(
                (exact_sd - truth[j]).abs() < 1e-8 * (1.0 + truth[j]),
                "target {j}: exact-mode sd {exact_sd} vs dense truth {}",
                truth[j]
            );
        }

        // The diagonal approximation is in the right ballpark but NOT exact:
        // it drops every off-diagonal covariance a prediction functional
        // mixes in. Document the gap instead of hiding it.
        let mut max_rel_gap: f64 = 0.0;
        for j in 0..targets.len() {
            let rel = (pred.sd[j] - truth[j]).abs() / truth[j];
            // Same order of magnitude (on this toy model it overestimates by
            // up to ~2.5×, because the dropped cross-covariances of a smooth
            // field are what cancel neighboring nodes' variance contributions).
            assert!(rel < 5.0, "target {j}: diagonal sd {} vs truth {}", pred.sd[j], truth[j]);
            max_rel_gap = max_rel_gap.max(rel);
        }
        assert!(
            max_rel_gap > 1e-3,
            "diagonal approximation unexpectedly matched the dense truth \
             (max relative gap {max_rel_gap:.2e}); if cross-covariances are \
             now included, retire this documented gap"
        );
    }

    #[test]
    fn observed_locations_have_reduced_uncertainty() {
        let (model, hyper) = toy_model();
        let marg = marginals_for(&model, &hyper, &InlaSettings::dalia(1));
        // The prior marginal sd (without data) is larger on average.
        let qp = model.assemble_qp_bta(&hyper);
        let fp = pobtaf(&qp).unwrap();
        let prior_sd: Vec<f64> = pobtasi(&fp).diagonal().iter().map(|v| v.sqrt()).collect();
        let ns = model.dims.ns;
        let avg_post: f64 = marg.sd[..ns].iter().sum::<f64>() / ns as f64;
        let avg_prior: f64 = prior_sd[..ns].iter().sum::<f64>() / ns as f64;
        assert!(avg_post < avg_prior, "data did not reduce uncertainty ({avg_post} vs {avg_prior})");
    }

    #[test]
    fn fixed_effect_summaries_cover_all_processes() {
        let (model, hyper) = toy_model();
        let mut solver = SolverBackend::Bta { partitions: 1, load_balance: 1.0 }.build(&model);
        let marg =
            latent_marginals(solver.as_mut(), &hyper, vec![0.1; model.dims.latent_dim()]).unwrap();
        let fx = fixed_effect_summaries(&model, &marg);
        assert_eq!(fx.len(), model.dims.nv * model.dims.nr);
        assert!(fx[0].q025 < fx[0].mean && fx[0].mean < fx[0].q975);
    }

    #[test]
    fn response_correlations_match_lambda() {
        let hyper = ModelHyper {
            range_s: vec![1.0; 3],
            range_t: vec![1.0; 3],
            sigmas: vec![1.0, 1.0, 1.0],
            lambdas: vec![0.95, -0.5, -0.3],
            noise_prec: vec![1.0; 3],
        };
        let corr = response_correlations(&hyper);
        assert!((corr[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(corr[(1, 0)] > 0.6, "strong positive coupling expected");
        assert!(corr[(2, 0)] < 0.0, "negative coupling expected");
        assert!(corr.max_abs_diff(&corr.transpose()) < 1e-12);
    }

    #[test]
    fn prediction_at_observed_location_tracks_mean_field() {
        let (model, hyper) = toy_model();
        let mean: Vec<f64> = (0..model.dims.latent_dim()).map(|i| 0.01 * i as f64).collect();
        let marg = LatentMarginals { sd: vec![0.1; mean.len()], mean, clamped: 0 };
        let targets = vec![PredictionTarget {
            var: 0,
            t: 1,
            loc: Point::new(0.5, 0.5),
            covariates: vec![0.0],
        }];
        let pred = predict(&model, &hyper, &marg, &targets).unwrap();
        assert_eq!(pred.mean.len(), 1);
        assert!(pred.sd[0] > 0.0);
        assert!(pred.mean[0].is_finite());
    }
}
