//! Hyperparameter optimization: central-difference gradients evaluated in
//! parallel (strategy S1) and a BFGS quasi-Newton loop (Sec. III.2).
//!
//! All objective evaluations go through an [`InlaSession`], whose pooled
//! stateful solvers amortize assembly workspaces and symbolic analysis across
//! the `2·dim(θ) + 1` evaluations of every gradient and the dozens of
//! gradients of a BFGS run.
//!
//! The S1 fan-out (`par_iter` over the evaluation points) executes on the
//! work-stealing pool (`dalia-pool`): lanes have non-uniform costs — line
//! searches and ±h shifts hit different factorization difficulty — so idle
//! workers steal queued lanes instead of waiting on a fixed chunk. Lane
//! placement never changes results: the `session_reuse` suite pins parallel
//! and sequential gradients to be bitwise-identical.

use crate::engine::InlaSession;
use crate::objective::FobjResult;
use crate::solver::PhaseTimers;
use crate::CoreError;
use dalia_la::{blas, Matrix};
use rayon::prelude::*;

/// Result of one gradient evaluation.
#[derive(Clone, Debug)]
pub struct GradientResult {
    /// Objective value at the central point.
    pub value: f64,
    /// Central-difference gradient of `f_obj`.
    pub gradient: Vec<f64>,
    /// The central-point evaluation (kept for the conditional mean).
    pub central: FobjResult,
    /// Number of objective evaluations performed (`2·dim(θ) + 1`).
    pub n_evaluations: usize,
    /// Phase timings accumulated over all evaluations.
    pub timers: PhaseTimers,
}

impl GradientResult {
    /// Total solver seconds accumulated over all evaluations.
    pub fn solver_seconds(&self) -> f64 {
        self.timers.solver_seconds()
    }
}

/// Evaluate `f_obj` and its central-difference gradient (Eq. 10). When
/// `settings.parallel_feval` is set, the `2·dim(θ) + 1` evaluations run in
/// parallel — this is the S1 layer of the paper, with one pooled solver per
/// concurrent lane.
pub fn evaluate_gradient(session: &InlaSession, theta: &[f64]) -> Result<GradientResult, CoreError> {
    let dim = theta.len();
    let h = session.settings().fd_step;
    // Build the list of evaluation points: central, then ±h per component.
    let mut points: Vec<Vec<f64>> = Vec::with_capacity(2 * dim + 1);
    points.push(theta.to_vec());
    for i in 0..dim {
        let mut plus = theta.to_vec();
        plus[i] += h;
        points.push(plus);
        let mut minus = theta.to_vec();
        minus[i] -= h;
        points.push(minus);
    }

    let evaluate = |p: &Vec<f64>| session.evaluate(p);
    let results: Vec<Result<FobjResult, CoreError>> = if session.settings().parallel_feval {
        points.par_iter().map(evaluate).collect()
    } else {
        points.iter().map(evaluate).collect()
    };

    let mut iter = results.into_iter();
    let central = iter.next().unwrap()?;
    let mut gradient = vec![0.0; dim];
    let mut timers = central.timers;
    let mut collected: Vec<FobjResult> = Vec::with_capacity(2 * dim);
    for r in iter {
        let r = r?;
        timers.merge(&r.timers);
        collected.push(r);
    }
    for i in 0..dim {
        let plus = &collected[2 * i];
        let minus = &collected[2 * i + 1];
        gradient[i] = (plus.value - minus.value) / (2.0 * h);
    }
    Ok(GradientResult {
        value: central.value,
        gradient,
        central,
        n_evaluations: 2 * dim + 1,
        timers,
    })
}

/// One BFGS iteration record.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// Iteration index.
    pub iter: usize,
    /// Objective value.
    pub value: f64,
    /// Gradient norm.
    pub grad_norm: f64,
    /// Step length accepted by the line search.
    pub step: f64,
    /// Wall-clock seconds of this iteration.
    pub seconds: f64,
    /// Solver seconds of this iteration.
    pub solver_seconds: f64,
}

/// Result of the BFGS optimization of `-f_obj`.
#[derive(Clone, Debug)]
pub struct OptimizationResult {
    /// The hyperparameter mode θ*.
    pub theta: Vec<f64>,
    /// Objective value at the mode.
    pub value: f64,
    /// The final central evaluation (conditional mean at the mode).
    pub central: FobjResult,
    /// Per-iteration records.
    pub trace: Vec<IterationRecord>,
    /// Whether the gradient tolerance was reached.
    pub converged: bool,
}

/// Maximize `f_obj(θ)` with BFGS + backtracking line search.
pub fn maximize_fobj(session: &InlaSession, theta0: &[f64]) -> Result<OptimizationResult, CoreError> {
    let settings = session.settings();
    let dim = theta0.len();
    let mut theta = theta0.to_vec();
    let mut h_inv = Matrix::identity(dim);
    let mut trace = Vec::new();

    let mut grad_res = evaluate_gradient(session, &theta)?;
    let mut converged = false;

    for iter in 0..settings.max_iter {
        let t0 = std::time::Instant::now();
        let grad_norm = blas::nrm2(&grad_res.gradient);
        if grad_norm < settings.grad_tol {
            converged = true;
            trace.push(IterationRecord {
                iter,
                value: grad_res.value,
                grad_norm,
                step: 0.0,
                seconds: t0.elapsed().as_secs_f64(),
                solver_seconds: grad_res.solver_seconds(),
            });
            break;
        }

        // Ascent direction d = H⁻¹ ∇f (we are maximizing).
        let direction = blas::matvec(&h_inv, &grad_res.gradient);

        // Backtracking line search on f_obj along `direction`.
        let mut step = 1.0;
        let mut accepted: Option<(Vec<f64>, GradientResult)> = None;
        for _ in 0..12 {
            let candidate: Vec<f64> =
                theta.iter().zip(&direction).map(|(t, d)| t + step * d).collect();
            match evaluate_gradient(session, &candidate) {
                Ok(res) if res.value > grad_res.value + 1e-10 => {
                    accepted = Some((candidate, res));
                    break;
                }
                _ => {
                    step *= 0.5;
                }
            }
        }

        let Some((new_theta, new_grad)) = accepted else {
            // No improving step: treat the current point as (locally) optimal.
            converged = grad_norm < 10.0 * settings.grad_tol;
            trace.push(IterationRecord {
                iter,
                value: grad_res.value,
                grad_norm,
                step: 0.0,
                seconds: t0.elapsed().as_secs_f64(),
                solver_seconds: grad_res.solver_seconds(),
            });
            break;
        };

        // BFGS inverse-Hessian update (on the maximization problem, using the
        // negative gradients so the usual minimization formulas apply).
        let s: Vec<f64> = new_theta.iter().zip(&theta).map(|(a, b)| a - b).collect();
        let yk: Vec<f64> = new_grad
            .gradient
            .iter()
            .zip(&grad_res.gradient)
            .map(|(a, b)| -(a - b))
            .collect();
        let sy = blas::dot(&s, &yk);
        if sy > 1e-12 {
            let rho = 1.0 / sy;
            // H ← (I − ρ s yᵀ) H (I − ρ y sᵀ) + ρ s sᵀ.
            let mut i_rho_sy = Matrix::identity(dim);
            for r in 0..dim {
                for c in 0..dim {
                    i_rho_sy[(r, c)] -= rho * s[r] * yk[c];
                }
            }
            let left = blas::matmul(&i_rho_sy, &h_inv);
            let mut h_new = blas::matmul(&left, &i_rho_sy.transpose());
            for r in 0..dim {
                for c in 0..dim {
                    h_new[(r, c)] += rho * s[r] * s[c];
                }
            }
            h_inv = h_new;
        }

        trace.push(IterationRecord {
            iter,
            value: new_grad.value,
            grad_norm,
            step,
            seconds: t0.elapsed().as_secs_f64(),
            solver_seconds: new_grad.solver_seconds(),
        });
        theta = new_theta;
        grad_res = new_grad;
    }

    Ok(OptimizationResult {
        theta,
        value: grad_res.value,
        central: grad_res.central,
        trace,
        converged,
    })
}

/// Negative Hessian of `f_obj` at `theta` via second-order central differences
/// (used for the Gaussian approximation of the hyperparameter posterior).
pub fn negative_hessian(session: &InlaSession, theta: &[f64]) -> Result<Matrix, CoreError> {
    let settings = session.settings();
    let dim = theta.len();
    let h = settings.fd_step.max(1e-4) * 5.0;
    let f0 = session.objective(theta)?;

    // All shifted evaluation points (±h e_i, ±h e_i ± h e_j).
    let eval = |p: &[f64]| -> Result<f64, CoreError> { session.objective(p) };

    // Diagonal terms.
    let diag_points: Vec<(usize, Vec<f64>, Vec<f64>)> = (0..dim)
        .map(|i| {
            let mut p = theta.to_vec();
            let mut m = theta.to_vec();
            p[i] += h;
            m[i] -= h;
            (i, p, m)
        })
        .collect();
    let diag_results: Vec<Result<(usize, f64, f64), CoreError>> = if settings.parallel_feval {
        diag_points
            .par_iter()
            .map(|(i, p, m)| Ok((*i, eval(p)?, eval(m)?)))
            .collect()
    } else {
        diag_points.iter().map(|(i, p, m)| Ok((*i, eval(p)?, eval(m)?))).collect()
    };

    let mut f_plus = vec![0.0; dim];
    let mut f_minus = vec![0.0; dim];
    let mut hess = Matrix::zeros(dim, dim);
    for r in diag_results {
        let (i, fp, fm) = r?;
        f_plus[i] = fp;
        f_minus[i] = fm;
        hess[(i, i)] = -((fp - 2.0 * f0 + fm) / (h * h));
    }

    // Off-diagonal terms.
    let mut pairs = Vec::new();
    for i in 0..dim {
        for j in (i + 1)..dim {
            pairs.push((i, j));
        }
    }
    let off_results: Vec<Result<(usize, usize, f64), CoreError>> = if settings.parallel_feval {
        pairs
            .par_iter()
            .map(|&(i, j)| {
                let mut pp = theta.to_vec();
                pp[i] += h;
                pp[j] += h;
                let mut mm = theta.to_vec();
                mm[i] -= h;
                mm[j] -= h;
                let fpp = eval(&pp)?;
                let fmm = eval(&mm)?;
                let val = (fpp - f_plus[i] - f_plus[j] + 2.0 * f0 - f_minus[i] - f_minus[j] + fmm)
                    / (2.0 * h * h);
                Ok((i, j, -val))
            })
            .collect()
    } else {
        pairs
            .iter()
            .map(|&(i, j)| {
                let mut pp = theta.to_vec();
                pp[i] += h;
                pp[j] += h;
                let mut mm = theta.to_vec();
                mm[i] -= h;
                mm[j] -= h;
                let fpp = eval(&pp)?;
                let fmm = eval(&mm)?;
                let val = (fpp - f_plus[i] - f_plus[j] + 2.0 * f0 - f_minus[i] - f_minus[j] + fmm)
                    / (2.0 * h * h);
                Ok((i, j, -val))
            })
            .collect()
    };
    for r in off_results {
        let (i, j, v) = r?;
        hess[(i, j)] = v;
        hess[(j, i)] = v;
    }
    Ok(hess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::InlaEngine;
    use crate::settings::InlaSettings;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::{CoregionalModel, ModelHyper, Observation, ThetaPrior};

    fn toy() -> (std::sync::Arc<CoregionalModel>, ThetaPrior, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 2;
        let mut obs = Vec::new();
        for t in 0..nt {
            for &(x, y, v) in &[(0.2, 0.3, 0.5), (0.7, 0.6, -0.2), (0.5, 0.9, 0.1), (0.9, 0.2, 0.3)] {
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![1.0],
                    value: v + 0.1 * t as f64,
                });
            }
        }
        let model = std::sync::Arc::new(CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap());
        let theta = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
        let prior = ThetaPrior::weakly_informative(&theta, 1.5);
        (model, prior, theta)
    }

    fn session(
        model: &std::sync::Arc<CoregionalModel>,
        prior: &ThetaPrior,
        settings: InlaSettings,
    ) -> InlaSession {
        InlaEngine::builder(model).prior(prior.clone()).settings(settings).build().unwrap()
    }

    #[test]
    fn gradient_matches_serial_and_parallel() {
        let (model, prior, theta) = toy();
        let mut s_par = InlaSettings::dalia(1);
        s_par.parallel_feval = true;
        let mut s_seq = InlaSettings::dalia(1);
        s_seq.parallel_feval = false;
        let g_par = evaluate_gradient(&session(&model, &prior, s_par), &theta).unwrap();
        let g_seq = evaluate_gradient(&session(&model, &prior, s_seq), &theta).unwrap();
        assert_eq!(g_par.n_evaluations, 2 * theta.len() + 1);
        for (a, b) in g_par.gradient.iter().zip(&g_seq.gradient) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn gradient_is_consistent_with_objective_differences() {
        let (model, prior, theta) = toy();
        let s = session(&model, &prior, InlaSettings::dalia(1));
        let g = evaluate_gradient(&s, &theta).unwrap();
        // Compare component 0 against a wider finite difference.
        let h = 0.01;
        let mut plus = theta.clone();
        plus[0] += h;
        let mut minus = theta.clone();
        minus[0] -= h;
        let fp = s.objective(&plus).unwrap();
        let fm = s.objective(&minus).unwrap();
        let wide = (fp - fm) / (2.0 * h);
        assert!(
            (g.gradient[0] - wide).abs() < 0.05 * (1.0 + wide.abs()),
            "gradient {} vs wide difference {wide}",
            g.gradient[0]
        );
    }

    #[test]
    fn bfgs_improves_objective() {
        let (model, prior, theta) = toy();
        // Start away from the prior center.
        let mut start = theta.clone();
        start[0] -= 0.8;
        start[3] += 0.8;
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 5;
        let s = session(&model, &prior, settings);
        let f_start = s.objective(&start).unwrap();
        let result = maximize_fobj(&s, &start).unwrap();
        assert!(result.value >= f_start, "BFGS decreased the objective");
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn negative_hessian_is_symmetric_and_spd_near_mode() {
        let (model, prior, theta) = toy();
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 8;
        let s = session(&model, &prior, settings);
        let result = maximize_fobj(&s, &theta).unwrap();
        let hess = negative_hessian(&s, &result.theta).unwrap();
        // Symmetric by construction; near the mode it should be (close to)
        // positive definite: all diagonal entries positive.
        for i in 0..hess.nrows() {
            assert!(hess[(i, i)] > 0.0, "H[{i},{i}] = {}", hess[(i, i)]);
        }
    }
}
