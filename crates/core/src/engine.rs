//! The end-to-end INLA engine: optimization of the hyperparameters, Gaussian
//! approximation of their posterior, latent marginals and prediction — the
//! full pipeline that the DALIA framework (and its baselines) run per model.

use crate::objective::evaluate_fobj;
use crate::optimizer::{evaluate_gradient, maximize_fobj, negative_hessian, IterationRecord};
use crate::posterior::{
    fixed_effect_summaries, latent_marginals, FixedEffectSummary, HyperMarginals, LatentMarginals,
};
use crate::settings::InlaSettings;
use crate::CoreError;
use dalia_model::{CoregionalModel, ModelHyper, ThetaPrior};
use std::time::Instant;

/// Complete result of an INLA run.
#[derive(Clone, Debug)]
pub struct InlaResult {
    /// Hyperparameter posterior (mode + Gaussian approximation).
    pub hyper: HyperMarginals,
    /// The hyperparameters at the mode in structured form.
    pub hyper_mode: ModelHyper,
    /// Latent field marginals at the mode.
    pub latent: LatentMarginals,
    /// Fixed-effect summaries.
    pub fixed_effects: Vec<FixedEffectSummary>,
    /// Objective value at the mode.
    pub fobj_at_mode: f64,
    /// Per-iteration optimizer trace.
    pub trace: Vec<IterationRecord>,
    /// Whether the optimizer converged within its iteration budget.
    pub converged: bool,
    /// Total wall-clock seconds of the run.
    pub total_seconds: f64,
    /// Average wall-clock seconds per BFGS iteration (the quantity the paper
    /// reports in its scaling figures).
    pub seconds_per_iteration: f64,
}

/// The INLA engine: a model, a prior on θ and the framework settings.
pub struct InlaEngine<'m> {
    /// The latent Gaussian model.
    pub model: &'m CoregionalModel,
    /// Prior on the hyperparameter vector.
    pub prior: ThetaPrior,
    /// Framework settings (solver backend, parallelism, tolerances).
    pub settings: InlaSettings,
}

impl<'m> InlaEngine<'m> {
    /// Create an engine with a weakly-informative prior centred at `theta0`.
    pub fn new(model: &'m CoregionalModel, theta0: &[f64], settings: InlaSettings) -> Self {
        Self { model, prior: ThetaPrior::weakly_informative(theta0, 3.0), settings }
    }

    /// Evaluate the objective at a single θ (used by the benchmark harnesses
    /// to time one function evaluation without running the full pipeline).
    pub fn objective(&self, theta: &[f64]) -> Result<f64, CoreError> {
        Ok(evaluate_fobj(self.model, &self.prior, theta, &self.settings)?.value)
    }

    /// Time one full gradient evaluation (one BFGS iteration's worth of
    /// objective evaluations). Returns `(seconds, solver_seconds)`.
    pub fn time_one_iteration(&self, theta: &[f64]) -> Result<(f64, f64), CoreError> {
        let t0 = Instant::now();
        let g = evaluate_gradient(self.model, &self.prior, theta, &self.settings)?;
        Ok((t0.elapsed().as_secs_f64(), g.solver_seconds))
    }

    /// Run the full INLA pipeline starting from `theta0`.
    pub fn run(&self, theta0: &[f64]) -> Result<InlaResult, CoreError> {
        let t0 = Instant::now();
        // 1. Find the hyperparameter mode.
        let opt = maximize_fobj(self.model, &self.prior, theta0, &self.settings)?;

        // 2. Gaussian approximation of the hyperparameter posterior.
        let hess = negative_hessian(self.model, &self.prior, &opt.theta, &self.settings)?;
        let hyper = HyperMarginals::from_hessian(opt.theta.clone(), &hess)?;

        // 3. Latent marginals at the mode (selected inversion of Q_c).
        let hyper_mode = ModelHyper::from_theta(self.model.dims.nv, &opt.theta);
        let latent =
            latent_marginals(self.model, &hyper_mode, opt.central.mean.clone(), &self.settings)?;
        let fixed_effects = fixed_effect_summaries(self.model, &latent);

        let total_seconds = t0.elapsed().as_secs_f64();
        let n_iter = opt.trace.len().max(1);
        Ok(InlaResult {
            hyper,
            hyper_mode,
            latent,
            fixed_effects,
            fobj_at_mode: opt.value,
            trace: opt.trace,
            converged: opt.converged,
            total_seconds,
            seconds_per_iteration: total_seconds / n_iter as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    /// A univariate model with data simulated from known fixed effect and
    /// noise so the engine has something meaningful to recover.
    fn toy_model() -> (CoregionalModel, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let beta_true = 1.5;
        let mut obs = Vec::new();
        let locs = [(0.2, 0.3), (0.7, 0.6), (0.5, 0.9), (0.9, 0.2), (0.1, 0.8), (0.6, 0.15)];
        for t in 0..nt {
            for (i, &(x, y)) in locs.iter().enumerate() {
                // Deterministic pseudo-noise.
                let noise = 0.05 * (((i * 7 + t * 13) % 11) as f64 / 11.0 - 0.5);
                // Covariate varying across both space and time so that the
                // smooth latent field cannot absorb the regression effect.
                let covariate = ((i * 5 + t * 7) % 13) as f64 / 13.0 - 0.5;
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![covariate],
                    value: beta_true * covariate + noise,
                });
            }
        }
        let model = CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap();
        let theta0 = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
        (model, theta0)
    }

    #[test]
    fn full_pipeline_produces_complete_summaries() {
        let (model, theta0) = toy_model();
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 4;
        let engine = InlaEngine::new(&model, &theta0, settings);
        let result = engine.run(&theta0).unwrap();
        assert!(result.fobj_at_mode.is_finite());
        assert_eq!(result.latent.mean.len(), model.dims.latent_dim());
        assert_eq!(result.latent.sd.len(), model.dims.latent_dim());
        assert!(result.latent.sd.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert_eq!(result.fixed_effects.len(), 1);
        assert_eq!(result.hyper.mode.len(), theta0.len());
        assert!(result.hyper.sd.iter().all(|s| *s > 0.0));
        assert!(!result.trace.is_empty());
        assert!(result.seconds_per_iteration > 0.0);
        // The optimizer must not have decreased the objective.
        let f0 = engine.objective(&theta0).unwrap();
        assert!(result.fobj_at_mode >= f0 - 1e-9);
    }

    #[test]
    fn conditional_mean_recovers_fixed_effect_at_informative_theta() {
        // At a well-specified θ (precise observations, unit-variance field),
        // the conditional mean should attribute the covariate signal to the
        // fixed effect (true coefficient 1.5).
        let (model, _) = toy_model();
        let mut hyper = ModelHyper::default_for(1, 0.7, 2.0);
        hyper.noise_prec = vec![200.0];
        let theta = hyper.to_theta();
        let prior = ThetaPrior::weakly_informative(&theta, 3.0);
        let settings = InlaSettings::dalia(1);
        let res = crate::objective::evaluate_fobj(&model, &prior, &theta, &settings).unwrap();
        let idx = model.fixed_effect_index(0, 0);
        let beta_hat = res.mean[idx];
        assert!(
            (beta_hat - 1.5).abs() < 0.75,
            "conditional-mean fixed effect {beta_hat} too far from the true 1.5"
        );
    }

    #[test]
    fn dalia_and_rinla_paths_agree_at_the_same_theta() {
        let (model, theta0) = toy_model();
        let dalia = InlaEngine::new(&model, &theta0, InlaSettings::dalia(1));
        let rinla = InlaEngine::new(&model, &theta0, InlaSettings::rinla_like());
        let fd = dalia.objective(&theta0).unwrap();
        let fr = rinla.objective(&theta0).unwrap();
        assert!((fd - fr).abs() < 1e-6 * (1.0 + fd.abs()));
    }

    #[test]
    fn timing_helper_reports_positive_durations() {
        let (model, theta0) = toy_model();
        let engine = InlaEngine::new(&model, &theta0, InlaSettings::dalia(1));
        let (total, solver) = engine.time_one_iteration(&theta0).unwrap();
        assert!(total > 0.0);
        assert!(solver > 0.0);
        assert!(solver <= total * 1.5);
    }
}
