//! The end-to-end INLA engine: a stateful [`InlaSession`] built once per
//! (model, prior, settings) triple that owns a pool of reusable
//! [`LatentSolver`] workspaces and runs the full pipeline — hyperparameter
//! optimization, Gaussian approximation of their posterior, latent marginals
//! and prediction.
//!
//! Sessions are constructed through [`InlaEngine::builder`]:
//!
//! ```
//! use dalia_core::{InlaEngine, InlaSettings, SolverBackend};
//! use dalia_mesh::{Domain, Point, TriangleMesh};
//! use dalia_model::{CoregionalModel, ModelHyper, Observation, ThetaPrior};
//! use std::sync::Arc;
//!
//! let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
//! let obs = vec![Observation {
//!     var: 0,
//!     t: 0,
//!     loc: Point::new(0.4, 0.6),
//!     covariates: vec![1.0],
//!     value: 0.3,
//! }];
//! let model = Arc::new(CoregionalModel::new(&mesh, 2, 1.0, 1, 1, obs).unwrap());
//! let theta0 = ModelHyper::default_for(1, 0.5, 2.0).to_theta();
//!
//! let session = InlaEngine::builder(&model)
//!     .prior(ThetaPrior::weakly_informative(&theta0, 3.0))
//!     .settings(InlaSettings::dalia(1))
//!     .backend(SolverBackend::Bta { partitions: 1, load_balance: 1.0 })
//!     .build()
//!     .unwrap();
//! assert!(session.objective(&theta0).unwrap().is_finite());
//! // Repeat evaluations reuse the same solver workspaces.
//! assert!(session.objective(&theta0).unwrap().is_finite());
//! ```

use crate::objective::{evaluate_fobj_with_inner, FobjResult, InnerSettings};
use crate::optimizer::{evaluate_gradient, maximize_fobj, negative_hessian, IterationRecord};
use crate::posterior::{
    fixed_effect_summaries, latent_marginals, FixedEffectSummary, HyperMarginals, LatentMarginals,
};
use crate::settings::InlaSettings;
use crate::snapshot::PosteriorSnapshot;
use crate::solver::{LatentSolver, PhaseTimers};
use crate::CoreError;
use dalia_model::{CoregionalModel, ModelHyper, Observation, ThetaPrior};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Complete result of an INLA run.
#[derive(Clone, Debug)]
pub struct InlaResult {
    /// Hyperparameter posterior (mode + Gaussian approximation).
    pub hyper: HyperMarginals,
    /// The hyperparameters at the mode in structured form.
    pub hyper_mode: ModelHyper,
    /// Latent field marginals at the mode.
    pub latent: LatentMarginals,
    /// Fixed-effect summaries.
    pub fixed_effects: Vec<FixedEffectSummary>,
    /// Objective value at the mode.
    pub fobj_at_mode: f64,
    /// Per-iteration optimizer trace.
    pub trace: Vec<IterationRecord>,
    /// Whether the optimizer converged within its iteration budget.
    pub converged: bool,
    /// Total wall-clock seconds of the run.
    pub total_seconds: f64,
    /// Average wall-clock seconds per BFGS iteration (the quantity the paper
    /// reports in its scaling figures).
    pub seconds_per_iteration: f64,
    /// Solver-phase timings accumulated over every evaluation of the run,
    /// measured as the increment of the session accumulator across the run.
    /// If other threads evaluate through the same session concurrently, their
    /// phase times are included in the delta.
    pub timers: PhaseTimers,
}

impl InlaResult {
    /// Freeze this result into an immutable, `Arc`-shareable
    /// [`PosteriorSnapshot`], consuming the result's summaries (the
    /// non-cloning counterpart of [`InlaSession::snapshot`]).
    ///
    /// Re-factorizes `Q_c` at the result's mode on a pooled solver (one-time
    /// cost, recorded in the session timers) and extracts the portable
    /// read-only factor; the optimizer trace and timing fields are dropped —
    /// a snapshot is a serving artifact, not a fit report.
    pub fn into_snapshot(self, session: &InlaSession) -> Result<PosteriorSnapshot, CoreError> {
        let mut solver = session.pool.acquire();
        solver.reset_timers();
        let factor = solver.factorize_conditional(&self.hyper_mode).and_then(|()| {
            // Non-Gaussian families: the Gaussian approximation lives at the
            // conditional mode's working weights, not the η = 0 seed weights.
            if !session.model.likelihood().is_quadratic() {
                let eta = solver.design().spmv(&self.latent.mean);
                let w = solver.model().working_weights(&self.hyper_mode, &eta);
                solver.refactorize_conditional(&w)?;
            }
            solver.snapshot_factor()
        });
        let backend = solver.backend_name();
        session.accum.lock().expect("timer accumulator poisoned").merge(&solver.timers());
        session.pool.release(solver);
        Ok(PosteriorSnapshot::from_parts(
            session.model.clone(),
            self.hyper_mode,
            self.latent,
            self.hyper,
            self.fixed_effects,
            factor?,
            backend,
        ))
    }
}

/// A pool of stateful solvers, one per concurrent evaluation lane. The S1
/// parallel gradient checks solvers out of the pool, so the pool grows to the
/// actual parallelism of the run and every solver keeps its workspaces
/// (pre-allocated BTA blocks, cached symbolic analysis, partitioning) warm
/// across evaluations.
struct SolverPool {
    model: Arc<CoregionalModel>,
    settings: InlaSettings,
    idle: Mutex<Vec<Box<dyn LatentSolver>>>,
}

impl SolverPool {
    fn new(model: Arc<CoregionalModel>, settings: InlaSettings) -> Self {
        // Construct the first solver eagerly so the session pays structure
        // setup once at build time, not inside the first timed evaluation.
        let first = settings.backend.build(&model);
        Self { model, settings, idle: Mutex::new(vec![first]) }
    }

    fn acquire(&self) -> Box<dyn LatentSolver> {
        let recycled = self.idle.lock().expect("solver pool poisoned").pop();
        recycled.unwrap_or_else(|| self.settings.backend.build(&self.model))
    }

    fn release(&self, solver: Box<dyn LatentSolver>) {
        self.idle.lock().expect("solver pool poisoned").push(solver);
    }

    fn size(&self) -> usize {
        self.idle.lock().expect("solver pool poisoned").len()
    }
}

/// A stateful INLA session: one model, one prior, one solver backend, and a
/// pool of reusable solver workspaces shared by every evaluation the session
/// performs.
///
/// Built via [`InlaEngine::builder`]. All methods take `&self`; the session is
/// `Sync` and the S1 gradient layer evaluates through it from parallel worker
/// threads.
pub struct InlaSession {
    model: Arc<CoregionalModel>,
    prior: ThetaPrior,
    settings: InlaSettings,
    pool: SolverPool,
    accum: Mutex<PhaseTimers>,
}

impl InlaSession {
    /// The latent Gaussian model.
    pub fn model(&self) -> &CoregionalModel {
        &self.model
    }

    /// Prior on the hyperparameter vector.
    pub fn prior(&self) -> &ThetaPrior {
        &self.prior
    }

    /// Framework settings (solver backend, parallelism, tolerances).
    pub fn settings(&self) -> &InlaSettings {
        &self.settings
    }

    /// Number of solver workspaces currently held by the session (grows to the
    /// S1 parallelism actually observed).
    pub fn solver_pool_size(&self) -> usize {
        self.pool.size()
    }

    /// Evaluate the objective at `theta`, returning the full result.
    pub fn evaluate(&self, theta: &[f64]) -> Result<FobjResult, CoreError> {
        let mut solver = self.pool.acquire();
        let result = evaluate_fobj_with_inner(
            solver.as_mut(),
            &self.prior,
            theta,
            InnerSettings::from(&self.settings),
        );
        self.pool.release(solver);
        if let Ok(r) = &result {
            self.accum.lock().expect("timer accumulator poisoned").merge(&r.timers);
        }
        result
    }

    /// Evaluate the objective at a single θ (used by the benchmark harnesses
    /// to time one function evaluation without running the full pipeline).
    pub fn objective(&self, theta: &[f64]) -> Result<f64, CoreError> {
        Ok(self.evaluate(theta)?.value)
    }

    /// Time one full gradient evaluation (one BFGS iteration's worth of
    /// objective evaluations). Returns `(seconds, solver_seconds)`.
    pub fn time_one_iteration(&self, theta: &[f64]) -> Result<(f64, f64), CoreError> {
        let t0 = Instant::now();
        let g = evaluate_gradient(self, theta)?;
        Ok((t0.elapsed().as_secs_f64(), g.solver_seconds()))
    }

    /// Latent marginals at `hyper` around the given conditional mean, using a
    /// pooled solver.
    pub fn latent_marginals(
        &self,
        hyper: &ModelHyper,
        mean: Vec<f64>,
    ) -> Result<LatentMarginals, CoreError> {
        let mut solver = self.pool.acquire();
        solver.reset_timers();
        let result = latent_marginals(solver.as_mut(), hyper, mean);
        self.accum.lock().expect("timer accumulator poisoned").merge(&solver.timers());
        self.pool.release(solver);
        result
    }

    /// Freeze `result` into an immutable, `Arc`-shareable
    /// [`PosteriorSnapshot`] for read-only serving, cloning the result's
    /// posterior summaries (see [`InlaResult::into_snapshot`] for the
    /// consuming variant).
    pub fn snapshot(&self, result: &InlaResult) -> Result<PosteriorSnapshot, CoreError> {
        result.clone().into_snapshot(self)
    }

    /// Open a [`StreamingWindow`] at `result`'s mode: a session mode that
    /// advances the fitted temporal window slice-by-slice
    /// ([`append_slices`](StreamingWindow::append_slices) /
    /// [`retire_slices`](StreamingWindow::retire_slices)) with incremental
    /// trailing-block refactorization instead of full refits.
    ///
    /// The window owns a dedicated solver (built fresh from the session's
    /// backend, leaving the session pool untouched) pinned at the result's
    /// hyperparameter mode. Only Gaussian likelihoods stream: the incremental
    /// kernels advance the conditional factor at the initial working weights,
    /// which for non-Gaussian families would discard the inner Newton loop's
    /// mode-dependent reweighting.
    pub fn streaming_window(&self, result: &InlaResult) -> Result<StreamingWindow, CoreError> {
        if !self.model.likelihood().is_quadratic() {
            return Err(CoreError::InvalidWindowUpdate(
                "streaming windows require a Gaussian likelihood: incremental refactorization \
                 advances the conditional factor at the initial working weights"
                    .into(),
            ));
        }
        let mut solver = self.settings.backend.build(&self.model);
        solver.factorize_conditional(&result.hyper_mode)?;
        let mut window = StreamingWindow {
            model: self.model.clone(),
            hyper_mode: result.hyper_mode.clone(),
            hyper: result.hyper.clone(),
            solver,
            latent: result.latent.clone(),
            fixed_effects: result.fixed_effects.clone(),
        };
        window.repin()?;
        Ok(window)
    }

    /// Phase timings accumulated over every evaluation since the session was
    /// built (or since [`reset_timers`](Self::reset_timers)).
    pub fn timers(&self) -> PhaseTimers {
        *self.accum.lock().expect("timer accumulator poisoned")
    }

    /// Reset the session-level timing accumulator.
    pub fn reset_timers(&self) {
        self.accum.lock().expect("timer accumulator poisoned").reset();
    }

    /// Run the full INLA pipeline starting from `theta0`.
    pub fn run(&self, theta0: &[f64]) -> Result<InlaResult, CoreError> {
        let t0 = Instant::now();
        // Snapshot instead of resetting, so `run` does not clobber the
        // session-level accumulator other callers may be reading.
        let timers_before = self.timers();
        // 1. Find the hyperparameter mode.
        let opt = maximize_fobj(self, theta0)?;

        // 2. Gaussian approximation of the hyperparameter posterior.
        let hess = negative_hessian(self, &opt.theta)?;
        let hyper = HyperMarginals::from_hessian(opt.theta.clone(), &hess)?;

        // 3. Latent marginals at the mode (selected inversion of Q_c).
        let hyper_mode = ModelHyper::from_theta(self.model.dims.nv, &opt.theta);
        let latent = self.latent_marginals(&hyper_mode, opt.central.mean.clone())?;
        let fixed_effects = fixed_effect_summaries(&self.model, &latent);

        let total_seconds = t0.elapsed().as_secs_f64();
        let n_iter = opt.trace.len().max(1);
        Ok(InlaResult {
            hyper,
            hyper_mode,
            latent,
            fixed_effects,
            fobj_at_mode: opt.value,
            trace: opt.trace,
            converged: opt.converged,
            total_seconds,
            seconds_per_iteration: total_seconds / n_iter as f64,
            timers: self.timers().delta_since(&timers_before),
        })
    }
}

/// Builder for an [`InlaSession`]. Obtained from [`InlaEngine::builder`].
pub struct InlaSessionBuilder {
    model: Arc<CoregionalModel>,
    prior: Option<ThetaPrior>,
    settings: InlaSettings,
}

impl InlaSessionBuilder {
    /// Set the prior on the hyperparameter vector. Defaults to a weakly
    /// informative prior centered at the model's default hyperparameters.
    pub fn prior(mut self, prior: ThetaPrior) -> Self {
        self.prior = Some(prior);
        self
    }

    /// Set the full framework settings (defaults to [`InlaSettings::dalia`]
    /// with a single partition).
    pub fn settings(mut self, settings: InlaSettings) -> Self {
        self.settings = settings;
        self
    }

    /// Override just the solver backend of the current settings.
    pub fn backend(mut self, backend: crate::settings::SolverBackend) -> Self {
        self.settings.backend = backend;
        self
    }

    /// Override the maximum number of BFGS iterations.
    pub fn max_iter(mut self, max_iter: usize) -> Self {
        self.settings.max_iter = max_iter;
        self
    }

    /// Validate the configuration and construct the session (including its
    /// first solver workspace).
    pub fn build(self) -> Result<InlaSession, CoreError> {
        self.settings.validate()?;
        let prior = self.prior.unwrap_or_else(|| {
            let theta0 = ModelHyper::default_for(self.model.dims.nv, 0.7, 2.0).to_theta();
            ThetaPrior::weakly_informative(&theta0, 3.0)
        });
        Ok(InlaSession {
            model: self.model.clone(),
            prior,
            settings: self.settings.clone(),
            pool: SolverPool::new(self.model, self.settings),
            accum: Mutex::new(PhaseTimers::default()),
        })
    }
}

/// Entry point to the INLA engine: construct an [`InlaSession`] through
/// [`InlaEngine::builder`].
pub struct InlaEngine;

impl InlaEngine {
    /// Start building a session for `model`. The session clones the `Arc`,
    /// so one model is shared by any number of sessions, solvers, snapshots
    /// and streaming windows without copying.
    pub fn builder(model: &Arc<CoregionalModel>) -> InlaSessionBuilder {
        InlaSessionBuilder { model: model.clone(), prior: None, settings: InlaSettings::dalia(1) }
    }

    /// Create a session with a weakly-informative prior centred at `theta0`.
    ///
    /// # Panics
    ///
    /// Unlike the pre-0.2 engine, which silently clamped nonsense
    /// configurations, this shim panics when `settings` fails
    /// [`InlaSettings::validate`] (e.g. `partitions == 0`); use the builder's
    /// fallible `build()` to handle invalid settings gracefully.
    // `InlaEngine` is a namespace struct; its legacy constructor intentionally
    // returns the session type that replaced it.
    #[allow(clippy::new_ret_no_self)]
    #[deprecated(
        since = "0.2.0",
        note = "use `InlaEngine::builder(model).prior(..).settings(..).build()`"
    )]
    pub fn new(
        model: &Arc<CoregionalModel>,
        theta0: &[f64],
        settings: InlaSettings,
    ) -> InlaSession {
        InlaEngine::builder(model)
            .prior(ThetaPrior::weakly_informative(theta0, 3.0))
            .settings(settings)
            .build()
            .expect("invalid InlaSettings passed to the deprecated InlaEngine::new")
    }
}

/// A fitted system advancing through time: the streaming session mode opened
/// by [`InlaSession::streaming_window`].
///
/// The window owns a dedicated [`LatentSolver`] pinned at the hyperparameter
/// mode of the originating fit. [`append_slices`](Self::append_slices) grows
/// the temporal window by `k` new time slices (with their observations) and
/// [`retire_slices`](Self::retire_slices) drops the `k` oldest; both advance
/// the conditional BTA factor through the incremental streaming kernels
/// (`pobtaf_extend` / `pobtaf_retire`) instead of refitting, then re-pin the
/// latent mean, marginal standard deviations and fixed-effect summaries on
/// the new window. The hyperparameter posterior stays pinned at the original
/// fit — streaming updates the latent field conditional on θ̂, which is the
/// serving-time trade-off: re-estimate θ with a full refit when the window
/// has drifted far enough.
///
/// [`snapshot`](Self::snapshot) freezes the current window into a fresh
/// [`PosteriorSnapshot`] without a refit, so a serving layer can follow the
/// advancing window by swapping snapshots.
pub struct StreamingWindow {
    model: Arc<CoregionalModel>,
    hyper_mode: ModelHyper,
    hyper: HyperMarginals,
    solver: Box<dyn LatentSolver>,
    latent: LatentMarginals,
    fixed_effects: Vec<FixedEffectSummary>,
}

impl StreamingWindow {
    /// The model of the current window.
    pub fn model(&self) -> &CoregionalModel {
        &self.model
    }

    /// The pinned hyperparameters (the originating fit's mode).
    pub fn hyper_mode(&self) -> &ModelHyper {
        &self.hyper_mode
    }

    /// Latent marginals re-pinned on the current window.
    pub fn latent(&self) -> &LatentMarginals {
        &self.latent
    }

    /// Fixed-effect summaries re-pinned on the current window.
    pub fn fixed_effects(&self) -> &[FixedEffectSummary] {
        &self.fixed_effects
    }

    /// The backend driving the incremental updates.
    pub fn backend_name(&self) -> &'static str {
        self.solver.backend_name()
    }

    /// Number of time slices in the current window.
    pub fn nt(&self) -> usize {
        self.model.dims.nt
    }

    /// Append `k` new time slices carrying `new_obs` to the trailing end of
    /// the window and advance the factorization incrementally (only the
    /// trailing block columns are re-eliminated).
    ///
    /// Every new observation must reference one of the appended slices
    /// (`t ∈ [nt, nt+k)`); the existing observations are kept verbatim as a
    /// prefix, which is what makes the retained factor columns valid. New
    /// observations get unit scale; per-observation scales of the original
    /// fit are preserved.
    pub fn append_slices(&mut self, k: usize, new_obs: Vec<Observation>) -> Result<(), CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidWindowUpdate(
                "append_slices: must append at least one slice".into(),
            ));
        }
        let nt_old = self.model.dims.nt;
        let nt_new = nt_old + k;
        for o in &new_obs {
            if o.t < nt_old || o.t >= nt_new {
                return Err(CoreError::InvalidWindowUpdate(format!(
                    "append_slices: new observation at t = {} lies outside the appended \
                     slices [{nt_old}, {nt_new})",
                    o.t
                )));
            }
        }
        let mut obs = self.model.observations.clone();
        let mut scales = self.model.observation_scales().to_vec();
        scales.resize(obs.len() + new_obs.len(), 1.0);
        obs.extend(new_obs);
        let model = Arc::new(
            CoregionalModel::new(
                &self.model.mesh,
                nt_new,
                self.model.spde.temporal.dt,
                self.model.dims.nv,
                self.model.dims.nr,
                obs,
            )?
            .with_observation_scales(scales)?,
        );
        self.solver.extend_window(model.clone(), &self.hyper_mode)?;
        self.model = model;
        self.repin()
    }

    /// Retire the `k` oldest time slices: observations on them are dropped,
    /// the surviving observations are re-indexed (`t -= k`), and the factor
    /// storage is refilled in place (retiring the head invalidates every
    /// factor column, so this is a full — but allocation-free — refactor).
    pub fn retire_slices(&mut self, k: usize) -> Result<(), CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidWindowUpdate(
                "retire_slices: must retire at least one slice".into(),
            ));
        }
        let nt_old = self.model.dims.nt;
        if k >= nt_old {
            return Err(CoreError::InvalidWindowUpdate(format!(
                "retire_slices: retiring {k} of {nt_old} slices would empty the window"
            )));
        }
        let mut obs = Vec::with_capacity(self.model.observations.len());
        let mut scales = Vec::with_capacity(obs.capacity());
        for (o, &s) in self.model.observations.iter().zip(self.model.observation_scales()) {
            if o.t >= k {
                let mut o = o.clone();
                o.t -= k;
                obs.push(o);
                scales.push(s);
            }
        }
        let model = Arc::new(
            CoregionalModel::new(
                &self.model.mesh,
                nt_old - k,
                self.model.spde.temporal.dt,
                self.model.dims.nv,
                self.model.dims.nr,
                obs,
            )?
            .with_observation_scales(scales)?,
        );
        self.solver.retire_window(model.clone(), &self.hyper_mode)?;
        self.model = model;
        self.repin()
    }

    /// Freeze the current window into an immutable [`PosteriorSnapshot`]
    /// without refitting — the cheap re-snapshot path a serving layer uses to
    /// follow the advancing window.
    pub fn snapshot(&self) -> Result<PosteriorSnapshot, CoreError> {
        let factor = self.solver.snapshot_factor()?;
        Ok(PosteriorSnapshot::from_parts(
            self.model.clone(),
            self.hyper_mode.clone(),
            self.latent.clone(),
            self.hyper.clone(),
            self.fixed_effects.clone(),
            factor,
            self.solver.backend_name(),
        ))
    }

    /// Re-pin the latent mean, marginal variances and fixed-effect summaries
    /// on the current window's conditional factor (Gaussian likelihood: the
    /// conditional mode is the single linear solve `Q_c μ = Aᵀ D y`).
    fn repin(&mut self) -> Result<(), CoreError> {
        let info = self.model.information_vector(&self.hyper_mode, self.solver.design());
        let mean = self.solver.solve_mean(&info);
        let vars = self.solver.selected_inverse_diag();
        let mut clamped = 0usize;
        let sd = vars
            .iter()
            .map(|&v| {
                if v < 0.0 {
                    clamped += 1;
                }
                v.max(0.0).sqrt()
            })
            .collect();
        self.latent = LatentMarginals { mean, sd, clamped };
        self.fixed_effects = fixed_effect_summaries(&self.model, &self.latent);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_mesh::{Domain, Point, TriangleMesh};
    use dalia_model::Observation;

    /// A univariate model with data simulated from known fixed effect and
    /// noise so the engine has something meaningful to recover.
    fn toy_model() -> (Arc<CoregionalModel>, Vec<f64>) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let beta_true = 1.5;
        let mut obs = Vec::new();
        let locs = [(0.2, 0.3), (0.7, 0.6), (0.5, 0.9), (0.9, 0.2), (0.1, 0.8), (0.6, 0.15)];
        for t in 0..nt {
            for (i, &(x, y)) in locs.iter().enumerate() {
                // Deterministic pseudo-noise.
                let noise = 0.05 * (((i * 7 + t * 13) % 11) as f64 / 11.0 - 0.5);
                // Covariate varying across both space and time so that the
                // smooth latent field cannot absorb the regression effect.
                let covariate = ((i * 5 + t * 7) % 13) as f64 / 13.0 - 0.5;
                obs.push(Observation {
                    var: 0,
                    t,
                    loc: Point::new(x, y),
                    covariates: vec![covariate],
                    value: beta_true * covariate + noise,
                });
            }
        }
        let model = Arc::new(CoregionalModel::new(&mesh, nt, 1.0, 1, 1, obs).unwrap());
        let theta0 = ModelHyper::default_for(1, 0.7, 2.0).to_theta();
        (model, theta0)
    }

    fn session(model: &Arc<CoregionalModel>, theta0: &[f64], settings: InlaSettings) -> InlaSession {
        InlaEngine::builder(model)
            .prior(ThetaPrior::weakly_informative(theta0, 3.0))
            .settings(settings)
            .build()
            .unwrap()
    }

    #[test]
    fn full_pipeline_produces_complete_summaries() {
        let (model, theta0) = toy_model();
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 4;
        let engine = session(&model, &theta0, settings);
        let result = engine.run(&theta0).unwrap();
        assert!(result.fobj_at_mode.is_finite());
        assert_eq!(result.latent.mean.len(), model.dims.latent_dim());
        assert_eq!(result.latent.sd.len(), model.dims.latent_dim());
        assert!(result.latent.sd.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert_eq!(result.fixed_effects.len(), 1);
        assert_eq!(result.hyper.mode.len(), theta0.len());
        assert!(result.hyper.sd.iter().all(|s| *s > 0.0));
        assert!(!result.trace.is_empty());
        assert!(result.seconds_per_iteration > 0.0);
        // The session-level timers cover all phases of the run.
        assert!(result.timers.solver_seconds() > 0.0);
        assert!(result.timers.assembly_seconds > 0.0);
        assert!(result.timers.selinv_seconds > 0.0);
        // The optimizer must not have decreased the objective.
        let f0 = engine.objective(&theta0).unwrap();
        assert!(result.fobj_at_mode >= f0 - 1e-9);
    }

    #[test]
    fn conditional_mean_recovers_fixed_effect_at_informative_theta() {
        // At a well-specified θ (precise observations, unit-variance field),
        // the conditional mean should attribute the covariate signal to the
        // fixed effect (true coefficient 1.5).
        let (model, _) = toy_model();
        let mut hyper = ModelHyper::default_for(1, 0.7, 2.0);
        hyper.noise_prec = vec![200.0];
        let theta = hyper.to_theta();
        let engine = session(&model, &theta, InlaSettings::dalia(1));
        let res = engine.evaluate(&theta).unwrap();
        let idx = model.fixed_effect_index(0, 0);
        let beta_hat = res.mean[idx];
        assert!(
            (beta_hat - 1.5).abs() < 0.75,
            "conditional-mean fixed effect {beta_hat} too far from the true 1.5"
        );
    }

    #[test]
    fn dalia_and_rinla_paths_agree_at_the_same_theta() {
        let (model, theta0) = toy_model();
        let dalia = session(&model, &theta0, InlaSettings::dalia(1));
        let rinla = session(&model, &theta0, InlaSettings::rinla_like());
        let fd = dalia.objective(&theta0).unwrap();
        let fr = rinla.objective(&theta0).unwrap();
        assert!((fd - fr).abs() < 1e-6 * (1.0 + fd.abs()));
    }

    #[test]
    fn timing_helper_reports_positive_durations() {
        let (model, theta0) = toy_model();
        let engine = session(&model, &theta0, InlaSettings::dalia(1));
        let (total, solver) = engine.time_one_iteration(&theta0).unwrap();
        assert!(total > 0.0);
        assert!(solver > 0.0);
        assert!(solver <= total * 1.5);
    }

    #[test]
    fn builder_rejects_invalid_settings() {
        let (model, _) = toy_model();
        assert!(matches!(
            InlaEngine::builder(&model).settings(InlaSettings::dalia(0)).build(),
            Err(CoreError::InvalidSettings(_))
        ));
        let mut bad = InlaSettings::dalia(1);
        bad.fd_step = -1.0;
        assert!(InlaEngine::builder(&model).settings(bad).build().is_err());
    }

    #[test]
    fn builder_defaults_and_overrides_compose() {
        let (model, theta0) = toy_model();
        let s = InlaEngine::builder(&model)
            .backend(crate::settings::SolverBackend::SparseGeneral)
            .max_iter(3)
            .build()
            .unwrap();
        assert_eq!(s.settings().max_iter, 3);
        assert!(matches!(s.settings().backend, crate::settings::SolverBackend::SparseGeneral));
        // Default prior is proper: the objective is finite.
        assert!(s.objective(&theta0).unwrap().is_finite());
    }

    #[test]
    fn session_reuses_pooled_solvers_across_evaluations() {
        let (model, theta0) = toy_model();
        let mut settings = InlaSettings::dalia(1);
        settings.parallel_feval = false;
        let s = session(&model, &theta0, settings);
        assert_eq!(s.solver_pool_size(), 1);
        for _ in 0..3 {
            s.objective(&theta0).unwrap();
        }
        // Sequential evaluations never need more than the one pooled solver.
        assert_eq!(s.solver_pool_size(), 1);
    }

    #[test]
    fn run_reports_its_own_timers_without_clobbering_the_accumulator() {
        let (model, theta0) = toy_model();
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 2;
        let s = session(&model, &theta0, settings);
        s.objective(&theta0).unwrap();
        let before = s.timers();
        assert!(before.solver_seconds() > 0.0);
        let result = s.run(&theta0).unwrap();
        // The pre-run evaluation is still in the session accumulator, and the
        // run's own timers are the increment on top of it.
        let after = s.timers();
        assert!(after.solver_seconds() >= before.solver_seconds());
        assert!(
            after.solver_seconds()
                >= before.solver_seconds() + result.timers.solver_seconds() - 1e-9
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_engine_new_still_works() {
        let (model, theta0) = toy_model();
        let engine = InlaEngine::new(&model, &theta0, InlaSettings::dalia(1));
        assert!(engine.objective(&theta0).unwrap().is_finite());
    }

    fn fresh_obs(t: usize) -> Vec<Observation> {
        vec![
            Observation {
                var: 0,
                t,
                loc: Point::new(0.3, 0.4),
                covariates: vec![0.2],
                value: 0.5,
            },
            Observation {
                var: 0,
                t,
                loc: Point::new(0.8, 0.7),
                covariates: vec![-0.1],
                value: -0.2,
            },
        ]
    }

    #[test]
    fn streaming_window_appends_and_retires_slices() {
        let (model, theta0) = toy_model();
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 2;
        let s = session(&model, &theta0, settings);
        let result = s.run(&theta0).unwrap();
        let n_obs_fitted = model.n_obs();

        let mut w = s.streaming_window(&result).unwrap();
        assert_eq!(w.nt(), 3);
        // The re-pinned state at construction matches the fit itself.
        for (a, b) in w.latent().mean.iter().zip(&result.latent.mean) {
            assert_eq!(a.to_bits(), b.to_bits(), "window construction must not move the mean");
        }

        w.append_slices(1, fresh_obs(3)).unwrap();
        assert_eq!(w.nt(), 4);
        assert_eq!(w.model().n_obs(), n_obs_fitted + 2);
        assert_eq!(w.latent().mean.len(), w.model().dims.latent_dim());
        assert!(w.latent().sd.iter().all(|s| s.is_finite() && *s >= 0.0));

        w.retire_slices(2).unwrap();
        assert_eq!(w.nt(), 2);
        assert!(w.model().observations.iter().all(|o| o.t < 2));
        assert_eq!(w.latent().mean.len(), w.model().dims.latent_dim());

        // The cheap re-snapshot path serves the advanced window.
        let snap = w.snapshot().unwrap();
        assert_eq!(snap.latent_dim(), w.model().dims.latent_dim());
        assert_eq!(snap.model().dims.nt, 2);
    }

    #[test]
    fn streaming_window_rejects_invalid_updates() {
        let (model, theta0) = toy_model();
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 2;
        let s = session(&model, &theta0, settings);
        let result = s.run(&theta0).unwrap();
        let mut w = s.streaming_window(&result).unwrap();

        // k = 0 on either side.
        assert!(matches!(
            w.append_slices(0, vec![]),
            Err(CoreError::InvalidWindowUpdate(_))
        ));
        assert!(matches!(w.retire_slices(0), Err(CoreError::InvalidWindowUpdate(_))));
        // New observations must live on the appended slices.
        assert!(matches!(
            w.append_slices(1, fresh_obs(0)),
            Err(CoreError::InvalidWindowUpdate(_))
        ));
        // The window must stay non-empty.
        assert!(matches!(w.retire_slices(3), Err(CoreError::InvalidWindowUpdate(_))));
        // The rejected updates left the window untouched and functional.
        assert_eq!(w.nt(), 3);
        w.append_slices(1, fresh_obs(3)).unwrap();
        assert_eq!(w.nt(), 4);
    }

    #[test]
    fn streaming_window_requires_gaussian_likelihood() {
        let (model, theta0) = toy_model();
        let poisson = Arc::new(
            CoregionalModel::new(
                &model.mesh,
                model.dims.nt,
                model.spde.temporal.dt,
                model.dims.nv,
                model.dims.nr,
                model
                    .observations
                    .iter()
                    .cloned()
                    .map(|mut o| {
                        o.value = o.value.abs().round();
                        o
                    })
                    .collect(),
            )
            .unwrap()
            .with_likelihood(dalia_model::Likelihood::Poisson)
            .unwrap(),
        );
        let mut settings = InlaSettings::dalia(1);
        settings.max_iter = 2;
        let s = session(&poisson, &theta0, settings);
        let result = s.run(&theta0).unwrap();
        assert!(matches!(
            s.streaming_window(&result),
            Err(CoreError::InvalidWindowUpdate(_))
        ));
    }
}
