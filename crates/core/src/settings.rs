//! Engine configuration: solver backends, parallelism switches and the
//! framework presets (DALIA / INLA_DIST-like / R-INLA-like) compared in the
//! paper's Table I and evaluation section.

use crate::CoreError;

/// Which linear solver handles the factorization / solve / selected-inversion
/// bottleneck operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolverBackend {
    /// Structured BTA solver (sequential when `partitions == 1`, otherwise the
    /// distributed nested-dissection variant with the given time-domain
    /// partition count and load-balancing factor). This is the DALIA /
    /// INLA_DIST path.
    Bta {
        /// Number of time-domain partitions (the S3 degree).
        partitions: usize,
        /// Load-balancing factor for the boundary partitions.
        load_balance: f64,
    },
    /// General simplicial sparse Cholesky (the PARDISO-like path used by the
    /// R-INLA baseline). Does not exploit the BTA structure.
    SparseGeneral,
}

/// Engine settings.
#[derive(Clone, Debug)]
pub struct InlaSettings {
    /// Human-readable framework name (shown in reports).
    pub name: String,
    /// Solver backend for the bottleneck operations.
    pub backend: SolverBackend,
    /// Evaluate the central-difference gradient components in parallel (S1).
    pub parallel_feval: bool,
    /// Factorize `Q_p` and `Q_c` concurrently inside one evaluation (S2).
    pub parallel_pc: bool,
    /// Maximum number of BFGS iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the gradient norm.
    pub grad_tol: f64,
    /// Finite-difference step for gradients and Hessians.
    pub fd_step: f64,
    /// Convergence tolerance of the inner Newton loop (‖Δx‖∞ on the latent
    /// mode update). Irrelevant for the Gaussian likelihood, which converges
    /// in one step.
    pub inner_tol: f64,
    /// Maximum inner Newton iterations per objective evaluation.
    pub inner_max_iter: usize,
}

impl InlaSettings {
    /// DALIA preset: structured solver, all three parallel layers.
    pub fn dalia(partitions: usize) -> Self {
        Self {
            name: format!("DALIA (S3={partitions})"),
            backend: SolverBackend::Bta { partitions, load_balance: 1.6 },
            parallel_feval: true,
            parallel_pc: true,
            max_iter: 50,
            grad_tol: 1e-3,
            fd_step: 1e-3,
            inner_tol: 1e-8,
            inner_max_iter: 50,
        }
    }

    /// INLA_DIST-like preset: sequential BTA solver, S1 + S2 only.
    pub fn inladist_like() -> Self {
        Self {
            name: "INLA_DIST-like".to_string(),
            backend: SolverBackend::Bta { partitions: 1, load_balance: 1.0 },
            parallel_feval: true,
            parallel_pc: true,
            max_iter: 50,
            grad_tol: 1e-3,
            fd_step: 1e-3,
            inner_tol: 1e-8,
            inner_max_iter: 50,
        }
    }

    /// R-INLA-like preset: general sparse solver, shared-memory nested
    /// parallelism over function evaluations only.
    pub fn rinla_like() -> Self {
        Self {
            name: "R-INLA-like".to_string(),
            backend: SolverBackend::SparseGeneral,
            parallel_feval: true,
            parallel_pc: false,
            max_iter: 50,
            grad_tol: 1e-3,
            fd_step: 1e-3,
            inner_tol: 1e-8,
            inner_max_iter: 50,
        }
    }

    /// Number of BTA partitions used by the backend (1 for the sparse path).
    pub fn partitions(&self) -> usize {
        match self.backend {
            SolverBackend::Bta { partitions, .. } => partitions,
            SolverBackend::SparseGeneral => 1,
        }
    }

    /// Validate the configuration, rejecting nonsense values instead of
    /// silently rewriting them. Called by
    /// [`InlaSessionBuilder::build`](crate::engine::InlaSessionBuilder::build).
    pub fn validate(&self) -> Result<(), CoreError> {
        if let SolverBackend::Bta { partitions, load_balance } = self.backend {
            if partitions == 0 {
                return Err(CoreError::InvalidSettings(
                    "backend partitions must be >= 1".to_string(),
                ));
            }
            if !load_balance.is_finite() || load_balance < 1.0 {
                return Err(CoreError::InvalidSettings(format!(
                    "load_balance must be finite and >= 1 (got {load_balance})"
                )));
            }
        }
        if !(self.fd_step > 0.0) || !self.fd_step.is_finite() {
            return Err(CoreError::InvalidSettings(format!(
                "fd_step must be a positive finite number (got {})",
                self.fd_step
            )));
        }
        if !(self.grad_tol > 0.0) || !self.grad_tol.is_finite() {
            return Err(CoreError::InvalidSettings(format!(
                "grad_tol must be a positive finite number (got {})",
                self.grad_tol
            )));
        }
        if !(self.inner_tol > 0.0) || !self.inner_tol.is_finite() {
            return Err(CoreError::InvalidSettings(format!(
                "inner_tol must be a positive finite number (got {})",
                self.inner_tol
            )));
        }
        if self.inner_max_iter == 0 {
            return Err(CoreError::InvalidSettings(
                "inner_max_iter must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Qualitative feature matrix of the three frameworks (the paper's Table I).
pub fn feature_table() -> Vec<[String; 5]> {
    let rows = [
        ["Framework", "Modeling", "Parallelism", "Solver", "Scaling"],
        ["R-INLA", "Extensive (SM)", "Shared memory", "PARDISO-like sparse (SM)", "Single node"],
        ["INLA_DIST", "Spatio-temporal", "DM over evaluations", "BTA solver (SM)", "O(10) GPUs"],
        [
            "DALIA",
            "Spatio-temporal + coregional",
            "DM: S1 + S2 + S3 (nested)",
            "BTA solver (DM) + distributed triangular solve",
            "O(100) GPUs",
        ],
    ];
    rows.iter().map(|r| r.map(|s| s.to_string())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_table1() {
        let dalia = InlaSettings::dalia(4);
        assert_eq!(dalia.partitions(), 4);
        assert!(dalia.parallel_feval && dalia.parallel_pc);

        let inladist = InlaSettings::inladist_like();
        assert_eq!(inladist.partitions(), 1);
        assert!(matches!(inladist.backend, SolverBackend::Bta { .. }));

        let rinla = InlaSettings::rinla_like();
        assert!(matches!(rinla.backend, SolverBackend::SparseGeneral));
        assert!(!rinla.parallel_pc);
    }

    #[test]
    fn validate_accepts_presets_and_rejects_nonsense() {
        assert!(InlaSettings::dalia(1).validate().is_ok());
        assert!(InlaSettings::dalia(8).validate().is_ok());
        assert!(InlaSettings::inladist_like().validate().is_ok());
        assert!(InlaSettings::rinla_like().validate().is_ok());

        let mut s = InlaSettings::dalia(0);
        assert!(matches!(s.validate(), Err(CoreError::InvalidSettings(_))));
        s = InlaSettings::dalia(2);
        s.backend = SolverBackend::Bta { partitions: 2, load_balance: f64::NAN };
        assert!(s.validate().is_err());
        s.backend = SolverBackend::Bta { partitions: 2, load_balance: 0.5 };
        assert!(s.validate().is_err());
        s = InlaSettings::dalia(1);
        s.fd_step = 0.0;
        assert!(s.validate().is_err());
        s.fd_step = -1e-3;
        assert!(s.validate().is_err());
        s.fd_step = f64::NAN;
        assert!(s.validate().is_err());
        s = InlaSettings::rinla_like();
        s.grad_tol = 0.0;
        assert!(s.validate().is_err());
        s = InlaSettings::dalia(1);
        s.inner_tol = 0.0;
        assert!(s.validate().is_err());
        s.inner_tol = f64::INFINITY;
        assert!(s.validate().is_err());
        s = InlaSettings::dalia(1);
        s.inner_max_iter = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn feature_table_has_three_frameworks() {
        let t = feature_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t[3][0], "DALIA");
    }
}
