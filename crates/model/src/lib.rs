//! # dalia-model — the multivariate spatio-temporal latent Gaussian model
//!
//! Statistical model layer of DALIA-RS:
//!
//! * [`hyper`] — the hyperparameter vector θ, its packing/unpacking, the
//!   coregionalization matrix Λ and Gaussian priors on θ,
//! * [`observations`] — observations, prediction targets and the joint design
//!   matrix `Λ·A` of Eq. (5),
//! * [`likelihood`] — the observation [`likelihood::Likelihood`] families
//!   (Gaussian, Poisson/log, Bernoulli/logit) with the per-observation scores
//!   and working weights the INLA inner Newton loop consumes,
//! * [`assembly`] — the [`assembly::CoregionalModel`] assembling the joint
//!   prior precision (Eq. 11) and conditional precision `Q_c = Q_p + AᵀDA`
//!   either as block-dense BTA matrices (the DALIA solver path) or as general
//!   CSR matrices (the R-INLA baseline path), in the permuted time-major
//!   ordering of Fig. 2c.

pub mod assembly;
pub mod hyper;
pub mod likelihood;
pub mod observations;

pub use assembly::{CoregionalModel, ModelDims, PredictionPlan};
pub use hyper::{theta_dim, ModelHyper, ThetaPrior};
pub use likelihood::Likelihood;
pub use observations::{Observation, PredictionTarget};

/// Errors produced while building or evaluating a model.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// An observation or prediction location falls outside the mesh domain.
    LocationOutsideDomain {
        /// x-coordinate of the offending location.
        x: f64,
        /// y-coordinate of the offending location.
        y: f64,
    },
    /// An observation has inconsistent metadata.
    InvalidObservation {
        /// Index of the observation in the input list.
        index: usize,
        /// Explanation of the problem.
        reason: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::LocationOutsideDomain { x, y } => {
                write!(f, "location ({x}, {y}) is outside the mesh domain")
            }
            ModelError::InvalidObservation { index, reason } => {
                write!(f, "invalid observation {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ModelError::LocationOutsideDomain { x: 1.0, y: 2.0 };
        assert!(e.to_string().contains("(1, 2)"));
        let e = ModelError::InvalidObservation { index: 4, reason: "bad".into() };
        assert!(e.to_string().contains("observation 4"));
    }
}
