//! Observations and design matrices of the multivariate spatio-temporal model.
//!
//! Each observation belongs to one response variable, one time step and one
//! spatial location, and carries the covariate values of the fixed effects.
//! The joint design matrix implements `Λ·A` of Eq. (5): a row for an
//! observation of response variable `k` touches the latent processes
//! `l ≤ k` with weight `Λ[k,l]`, at the three mesh nodes of the containing
//! triangle (P1 interpolation) and at the fixed-effect columns.

use crate::hyper::ModelHyper;
use crate::ModelError;
use dalia_mesh::{Point, TriangleMesh};
use dalia_sparse::{CooMatrix, CsrMatrix};

/// One observation of one response variable at one space-time location.
#[derive(Clone, Debug)]
pub struct Observation {
    /// Response-variable index (`0 .. nv`).
    pub var: usize,
    /// Time-step index (`0 .. nt`).
    pub t: usize,
    /// Spatial location.
    pub loc: Point,
    /// Covariate values of the fixed effects (length `nr`).
    pub covariates: Vec<f64>,
    /// Observed value.
    pub value: f64,
}

/// A prediction target: like an observation but without a value.
#[derive(Clone, Debug)]
pub struct PredictionTarget {
    /// Response-variable index.
    pub var: usize,
    /// Time-step index.
    pub t: usize,
    /// Spatial location.
    pub loc: Point,
    /// Covariate values of the fixed effects.
    pub covariates: Vec<f64>,
}

/// Cached P1 projection of a spatial location onto the mesh.
#[derive(Clone, Debug)]
pub(crate) struct Projection {
    pub nodes: [usize; 3],
    pub weights: [f64; 3],
}

/// Locate a point on the mesh, returning its P1 projection.
pub(crate) fn project_point(mesh: &TriangleMesh, loc: &Point) -> Result<Projection, ModelError> {
    let (tri, bary) = mesh
        .locate(loc)
        .ok_or(ModelError::LocationOutsideDomain { x: loc.x, y: loc.y })?;
    Ok(Projection { nodes: mesh.triangles[tri].v, weights: bary })
}

/// Column index of latent process `l`, time step `t`, mesh node `s` in the
/// permuted (time-major) joint ordering.
#[inline]
pub fn st_column(nv: usize, ns: usize, l: usize, t: usize, s: usize) -> usize {
    t * nv * ns + l * ns + s
}

/// Column index of fixed effect `r` of latent process `l` in the permuted
/// joint ordering.
#[inline]
pub fn fixed_column(nv: usize, ns: usize, nt: usize, nr: usize, l: usize, r: usize) -> usize {
    debug_assert!(r < nr);
    nt * nv * ns + l * nr + r
}

/// Build the joint design matrix `Λ·A` (rows = entries of `rows`, columns =
/// permuted latent ordering) for the given hyperparameters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_design(
    hyper: &ModelHyper,
    projections: &[Projection],
    vars: &[usize],
    times: &[usize],
    covariates: &[Vec<f64>],
    nv: usize,
    ns: usize,
    nt: usize,
    nr: usize,
) -> CsrMatrix {
    let lambda = hyper.lambda_matrix();
    let n_rows = projections.len();
    let n_cols = nv * (ns * nt + nr);
    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, n_rows * nv * (3 + nr));
    for (row, proj) in projections.iter().enumerate() {
        let k = vars[row];
        let t = times[row];
        for l in 0..=k {
            let w = lambda[(k, l)];
            if w == 0.0 {
                continue;
            }
            for (node, bary) in proj.nodes.iter().zip(proj.weights.iter()) {
                coo.push(row, st_column(nv, ns, l, t, *node), w * bary);
            }
            for (r, z) in covariates[row].iter().enumerate() {
                coo.push(row, fixed_column(nv, ns, nt, nr, l, r), w * z);
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_mesh::Domain;

    #[test]
    fn column_index_layout() {
        // nv=2, ns=3, nt=2, nr=1.
        assert_eq!(st_column(2, 3, 0, 0, 0), 0);
        assert_eq!(st_column(2, 3, 1, 0, 0), 3);
        assert_eq!(st_column(2, 3, 0, 1, 2), 8);
        assert_eq!(fixed_column(2, 3, 2, 1, 0, 0), 12);
        assert_eq!(fixed_column(2, 3, 2, 1, 1, 0), 13);
    }

    #[test]
    fn projection_of_interior_point() {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 4, 4);
        let p = project_point(&mesh, &Point::new(0.4, 0.6)).unwrap();
        let wsum: f64 = p.weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-12);
        assert!(p.nodes.iter().all(|&n| n < mesh.n_nodes()));
    }

    #[test]
    fn projection_outside_fails() {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 4, 4);
        assert!(matches!(
            project_point(&mesh, &Point::new(2.0, 0.5)),
            Err(ModelError::LocationOutsideDomain { .. })
        ));
    }

    #[test]
    fn design_rows_apply_lambda_weights() {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let ns = mesh.n_nodes();
        let (nv, nt, nr) = (2usize, 2usize, 1usize);
        let hyper = ModelHyper {
            range_s: vec![0.5; 2],
            range_t: vec![1.0; 2],
            sigmas: vec![2.0, 3.0],
            lambdas: vec![0.5],
            noise_prec: vec![1.0; 2],
        };
        let proj = vec![
            project_point(&mesh, &Point::new(0.3, 0.3)).unwrap(),
            project_point(&mesh, &Point::new(0.3, 0.3)).unwrap(),
        ];
        let design = build_design(
            &hyper,
            &proj,
            &[0, 1],
            &[1, 1],
            &[vec![2.0], vec![2.0]],
            nv,
            ns,
            nt,
            nr,
        );
        assert_eq!(design.shape(), (2, nv * (ns * nt + nr)));
        // Row 0 (variable 0) only touches process 0 with weight σ1 = 2.
        let row0_sum: f64 = design.row_iter(0).map(|(_, v)| v).sum();
        // 3 barycentric weights summing to 1 times 2, plus covariate 2*2.
        assert!((row0_sum - (2.0 + 4.0)).abs() < 1e-12);
        // Row 1 (variable 1) touches processes 0 and 1: λ1σ1 = 1 and σ2 = 3.
        let row1_sum: f64 = design.row_iter(1).map(|(_, v)| v).sum();
        assert!((row1_sum - ((1.0 + 2.0 * 1.0) + (3.0 + 2.0 * 3.0))).abs() < 1e-12);
        // Variable-0 row has no entries in process-1 columns.
        for (c, _) in design.row_iter(0) {
            let in_proc1_st = c < nv * ns * nt && (c % (nv * ns)) >= ns;
            let in_proc1_fixed = c >= nv * ns * nt + nr;
            assert!(!in_proc1_st && !in_proc1_fixed, "column {c} belongs to process 1");
        }
    }
}
