//! The multivariate (coregional) spatio-temporal latent Gaussian model and the
//! assembly of its prior and conditional precision matrices.
//!
//! The model follows Sec. II and Sec. IV-B of the paper:
//!
//! * `nv` latent spatio-temporal processes, each an SPDE-based GMRF with unit
//!   marginal variance and its own spatial/temporal range,
//! * a linear model of coregionalization `y = Λ A x + ε` with lower-triangular
//!   Λ carrying the scales σ_i and couplings λ_j,
//! * `nr` fixed effects per process with a vague Gaussian prior,
//! * Gaussian observation noise with per-variable precision τ_i.
//!
//! The joint precision (Eq. 11) is assembled directly in the *permuted*
//! time-major ordering (Fig. 2c), either into the block-dense BTA workspace of
//! the structured solver (the DALIA path) or into a general CSR matrix (the
//! R-INLA baseline path).

use crate::hyper::ModelHyper;
use crate::likelihood::Likelihood;
use crate::observations::{
    build_design, fixed_column, project_point, Observation, PredictionTarget, Projection,
};
use crate::ModelError;
use dalia_mesh::TriangleMesh;
use dalia_sparse::{coregional_permutation, ops, CooMatrix, CsrMatrix};
use dalia_spde::SpatioTemporalSpde;
use serinv::BtaMatrix;

/// Dimensions of the latent field and its BTA representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelDims {
    /// Number of response variables.
    pub nv: usize,
    /// Spatial mesh size.
    pub ns: usize,
    /// Number of time steps.
    pub nt: usize,
    /// Number of fixed effects per process.
    pub nr: usize,
}

impl ModelDims {
    /// Diagonal block size `b = nv·ns`.
    pub fn block_size(&self) -> usize {
        self.nv * self.ns
    }

    /// Arrow tip size `a = nv·nr`.
    pub fn arrow_size(&self) -> usize {
        self.nv * self.nr
    }

    /// Total latent dimension `N = nv(ns·nt + nr)`.
    pub fn latent_dim(&self) -> usize {
        self.nv * (self.ns * self.nt + self.nr)
    }
}

/// The coregional spatio-temporal latent Gaussian model.
pub struct CoregionalModel {
    /// Shared spatio-temporal SPDE operators (same mesh and time grid for all
    /// processes, as in the paper).
    pub spde: SpatioTemporalSpde,
    /// Model dimensions.
    pub dims: ModelDims,
    /// Prior precision of the fixed effects (vague).
    pub fixed_prior_prec: f64,
    /// The observations.
    pub observations: Vec<Observation>,
    /// Observed values, in observation order.
    pub y: Vec<f64>,
    /// The spatial mesh (kept for prediction-time projections).
    pub mesh: TriangleMesh,
    projections: Vec<Projection>,
    vars: Vec<usize>,
    times: Vec<usize>,
    covariates: Vec<Vec<f64>>,
    likelihood: Likelihood,
    obs_scale: Vec<f64>,
}

impl CoregionalModel {
    /// Build a model on `mesh` with `nt` time steps of length `dt`, `nv`
    /// response variables and `nr` fixed effects per process.
    pub fn new(
        mesh: &TriangleMesh,
        nt: usize,
        dt: f64,
        nv: usize,
        nr: usize,
        observations: Vec<Observation>,
    ) -> Result<Self, ModelError> {
        assert!(nv >= 1, "need at least one response variable");
        let spde = SpatioTemporalSpde::new(mesh, nt, dt);
        let dims = ModelDims { nv, ns: spde.ns, nt, nr };
        let mut projections = Vec::with_capacity(observations.len());
        let mut vars = Vec::with_capacity(observations.len());
        let mut times = Vec::with_capacity(observations.len());
        let mut covariates = Vec::with_capacity(observations.len());
        let mut y = Vec::with_capacity(observations.len());
        for (i, obs) in observations.iter().enumerate() {
            if obs.var >= nv {
                return Err(ModelError::InvalidObservation { index: i, reason: "response-variable index out of range".into() });
            }
            if obs.t >= nt {
                return Err(ModelError::InvalidObservation { index: i, reason: "time index out of range".into() });
            }
            if obs.covariates.len() != nr {
                return Err(ModelError::InvalidObservation { index: i, reason: "covariate length mismatch".into() });
            }
            projections.push(project_point(mesh, &obs.loc)?);
            vars.push(obs.var);
            times.push(obs.t);
            covariates.push(obs.covariates.clone());
            y.push(obs.value);
        }
        let n_obs = y.len();
        Ok(Self {
            spde,
            dims,
            fixed_prior_prec: 1e-3,
            observations,
            y,
            mesh: mesh.clone(),
            projections,
            vars,
            times,
            covariates,
            likelihood: Likelihood::Gaussian,
            obs_scale: vec![1.0; n_obs],
        })
    }

    /// Switch the observation likelihood family, validating every observed
    /// value against the family's support (counts nonnegative for Poisson,
    /// `0 ≤ y ≤ trials` for binomial data). Gaussian remains the default of
    /// [`CoregionalModel::new`].
    pub fn with_likelihood(mut self, likelihood: Likelihood) -> Result<Self, ModelError> {
        for (i, (&y, &s)) in self.y.iter().zip(&self.obs_scale).enumerate() {
            likelihood.validate_value(y, s).map_err(|reason| {
                ModelError::InvalidObservation { index: i, reason }
            })?;
        }
        self.likelihood = likelihood;
        Ok(self)
    }

    /// Attach per-observation scales — the Poisson exposure `E_i` or binomial
    /// trial count `n_i` (unused by the Gaussian family). Must be positive and
    /// match the observation count; the observed values are re-validated
    /// against the current likelihood under the new scales.
    pub fn with_observation_scales(mut self, scales: Vec<f64>) -> Result<Self, ModelError> {
        if scales.len() != self.y.len() {
            return Err(ModelError::InvalidObservation {
                index: scales.len().min(self.y.len()),
                reason: format!(
                    "scale count {} does not match observation count {}",
                    scales.len(),
                    self.y.len()
                ),
            });
        }
        for (i, &s) in scales.iter().enumerate() {
            if !s.is_finite() || s <= 0.0 {
                return Err(ModelError::InvalidObservation {
                    index: i,
                    reason: format!("observation scale {s} must be positive and finite"),
                });
            }
        }
        self.obs_scale = scales;
        for (i, (&y, &s)) in self.y.iter().zip(&self.obs_scale).enumerate() {
            self.likelihood.validate_value(y, s).map_err(|reason| {
                ModelError::InvalidObservation { index: i, reason }
            })?;
        }
        Ok(self)
    }

    /// The observation likelihood family.
    pub fn likelihood(&self) -> Likelihood {
        self.likelihood
    }

    /// Per-observation scales (exposure / trials; all `1.0` by default).
    pub fn observation_scales(&self) -> &[f64] {
        &self.obs_scale
    }

    /// Number of observations.
    pub fn n_obs(&self) -> usize {
        self.y.len()
    }

    /// The joint design matrix `Λ·A` in permuted ordering for the given
    /// hyperparameters.
    pub fn joint_design(&self, hyper: &ModelHyper) -> CsrMatrix {
        build_design(
            hyper,
            &self.projections,
            &self.vars,
            &self.times,
            &self.covariates,
            self.dims.nv,
            self.dims.ns,
            self.dims.nt,
            self.dims.nr,
        )
    }

    /// Design matrix for arbitrary prediction targets (posterior prediction /
    /// downscaling). Equivalent to [`prediction_plan`](Self::prediction_plan)
    /// followed by [`PredictionPlan::design`]; callers that evaluate the same
    /// targets more than once (mean and variance passes of a serving query,
    /// several hyperparameter values) should build the plan once instead.
    pub fn prediction_design(
        &self,
        hyper: &ModelHyper,
        targets: &[PredictionTarget],
    ) -> Result<CsrMatrix, ModelError> {
        Ok(self.prediction_plan(targets)?.design(hyper))
    }

    /// Resolve prediction targets against the mesh once, producing a reusable
    /// [`PredictionPlan`].
    ///
    /// The mesh walk (point location + P1 barycentric weights) is the
    /// hyperparameter-independent part of prediction-design assembly; a plan
    /// performs it once per target set and then stamps out design matrices for
    /// any `θ`. The plan also validates the targets' variable/time indices and
    /// covariate lengths up front, with the same diagnostics the constructor
    /// applies to observations, instead of silently assembling an
    /// inconsistent design.
    pub fn prediction_plan(
        &self,
        targets: &[PredictionTarget],
    ) -> Result<PredictionPlan, ModelError> {
        let d = self.dims;
        let mut projections = Vec::with_capacity(targets.len());
        let mut vars = Vec::with_capacity(targets.len());
        let mut times = Vec::with_capacity(targets.len());
        let mut covariates = Vec::with_capacity(targets.len());
        for (i, t) in targets.iter().enumerate() {
            if t.var >= d.nv {
                return Err(ModelError::InvalidObservation {
                    index: i,
                    reason: "prediction target response-variable index out of range".into(),
                });
            }
            if t.t >= d.nt {
                return Err(ModelError::InvalidObservation {
                    index: i,
                    reason: "prediction target time index out of range".into(),
                });
            }
            if t.covariates.len() != d.nr {
                return Err(ModelError::InvalidObservation {
                    index: i,
                    reason: "prediction target covariate length mismatch".into(),
                });
            }
            projections.push(project_point(&self.mesh, &t.loc)?);
            vars.push(t.var);
            times.push(t.t);
            covariates.push(t.covariates.clone());
        }
        Ok(PredictionPlan { dims: d, projections, vars, times, covariates })
    }

    /// Observation noise precisions per observation row (the diagonal of `D`
    /// under the Gaussian likelihood).
    pub fn noise_diag(&self, hyper: &ModelHyper) -> Vec<f64> {
        self.vars.iter().map(|&v| hyper.noise_prec[v]).collect()
    }

    /// Working weights `w_i(η) = −∂²ℓ_i/∂η²` at the linear predictor `eta`
    /// (one entry per observation). For the Gaussian family this is
    /// `noise_diag` independently of `eta`; for Poisson/Bernoulli it is the
    /// diagonal perturbation the inner Newton loop re-assembles `Q_c` from.
    pub fn working_weights(&self, hyper: &ModelHyper, eta: &[f64]) -> Vec<f64> {
        match self.likelihood {
            Likelihood::Gaussian => self.noise_diag(hyper),
            lik => eta
                .iter()
                .zip(&self.obs_scale)
                .map(|(&e, &s)| lik.working_weight(e, s, 0.0))
                .collect(),
        }
    }

    /// Working weights at `η = 0` — the weights `extend_qp_to_qc` seeds the
    /// first conditional factorization with. Gaussian: `τ_v` per observation
    /// (bitwise [`noise_diag`](Self::noise_diag)); Poisson: the exposures
    /// `E_i`; binomial: `n_i/4`.
    pub fn initial_working_weights(&self, hyper: &ModelHyper) -> Vec<f64> {
        match self.likelihood {
            Likelihood::Gaussian => self.noise_diag(hyper),
            lik => self.obs_scale.iter().map(|&s| lik.working_weight(0.0, s, 0.0)).collect(),
        }
    }

    /// Per-observation scores `g_i(η) = ∂ℓ_i/∂η` at the linear predictor
    /// `eta`.
    pub fn likelihood_scores(&self, hyper: &ModelHyper, eta: &[f64]) -> Vec<f64> {
        match self.likelihood {
            Likelihood::Gaussian => {
                let d_diag = self.noise_diag(hyper);
                self.y
                    .iter()
                    .zip(eta)
                    .zip(&d_diag)
                    .map(|((y, e), tau)| tau * (y - e))
                    .collect()
            }
            lik => self
                .y
                .iter()
                .zip(eta)
                .zip(&self.obs_scale)
                .map(|((&y, &e), &s)| lik.score(y, e, s, 0.0))
                .collect(),
        }
    }

    /// Assemble the joint prior precision `Q_p` (Eq. 11) as a BTA matrix in
    /// the permuted time-major ordering.
    pub fn assemble_qp_bta(&self, hyper: &ModelHyper) -> BtaMatrix {
        let d = &self.dims;
        let mut bta = BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size());
        self.assemble_qp_bta_into(hyper, &mut bta);
        bta
    }

    /// Assemble `Q_p` into pre-allocated BTA block storage (zeroed and
    /// re-filled in place). `bta` must have the model's block structure
    /// `(nt, nv·ns, nv·nr)`. Stateful solver sessions use this to amortize the
    /// block allocation across the many θ evaluations of an INLA run.
    pub fn assemble_qp_bta_into(&self, hyper: &ModelHyper, bta: &mut BtaMatrix) {
        let d = &self.dims;
        let (b, a) = (d.block_size(), d.arrow_size());
        assert_eq!(
            (bta.n, bta.b, bta.a),
            (d.nt, b, a),
            "assemble_qp_bta_into: workspace block structure mismatch"
        );
        bta.set_zero();
        let coefs = hyper.coregional_coefficients();

        for i in 0..d.nv {
            let gamma = hyper.internal(i);
            let q1 = self.spde.spatial.q1(gamma.gamma_s);
            let q2 = self.spde.spatial.q2(gamma.gamma_s);
            let q3 = self.spde.spatial.q3(gamma.gamma_s);
            let ge2 = gamma.gamma_e * gamma.gamma_e;
            let gt = gamma.gamma_t;
            let temporal = &self.spde.temporal;

            for t in 0..d.nt {
                // Diagonal block coefficients of process i at time (t, t).
                let c2 = ge2 * gt * gt * temporal.m2.get(t, t);
                let c1 = ge2 * 2.0 * gt * temporal.m1.get(t, t);
                let c0 = ge2 * temporal.m0.get(t, t);
                for k in 0..d.nv {
                    for l in 0..d.nv {
                        let w = coefs[i][(k, l)];
                        if w == 0.0 {
                            continue;
                        }
                        q1.add_dense_block_into(0, 0, w * c2, &mut bta.diag[t], k * d.ns, l * d.ns);
                        q2.add_dense_block_into(0, 0, w * c1, &mut bta.diag[t], k * d.ns, l * d.ns);
                        q3.add_dense_block_into(0, 0, w * c0, &mut bta.diag[t], k * d.ns, l * d.ns);
                    }
                }
                if t + 1 < d.nt {
                    // Sub-diagonal block at (t+1, t).
                    let s2 = ge2 * gt * gt * temporal.m2.get(t + 1, t);
                    let s1 = ge2 * 2.0 * gt * temporal.m1.get(t + 1, t);
                    let s0 = ge2 * temporal.m0.get(t + 1, t);
                    if s2 != 0.0 || s1 != 0.0 || s0 != 0.0 {
                        for k in 0..d.nv {
                            for l in 0..d.nv {
                                let w = coefs[i][(k, l)];
                                if w == 0.0 {
                                    continue;
                                }
                                q1.add_dense_block_into(0, 0, w * s2, &mut bta.sub[t], k * d.ns, l * d.ns);
                                q2.add_dense_block_into(0, 0, w * s1, &mut bta.sub[t], k * d.ns, l * d.ns);
                                q3.add_dense_block_into(0, 0, w * s0, &mut bta.sub[t], k * d.ns, l * d.ns);
                            }
                        }
                    }
                }
            }

            // Fixed-effect prior: ε·I per process, mixed by the coregional
            // coefficients.
            for k in 0..d.nv {
                for l in 0..d.nv {
                    let w = coefs[i][(k, l)];
                    if w == 0.0 {
                        continue;
                    }
                    for r in 0..d.nr {
                        bta.tip[(k * d.nr + r, l * d.nr + r)] += w * self.fixed_prior_prec;
                    }
                }
            }
        }
    }

    /// Assemble the conditional precision `Q_c = Q_p + Aᵀ D A` (Eq. 4) as a
    /// BTA matrix, together with the joint design matrix used.
    pub fn assemble_qc_bta(&self, hyper: &ModelHyper) -> (BtaMatrix, CsrMatrix) {
        let d = &self.dims;
        let mut bta = BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size());
        let design = self.assemble_qc_bta_into(hyper, &mut bta);
        (bta, design)
    }

    /// Assemble `Q_c` into pre-allocated BTA block storage, returning the
    /// joint design matrix used. See [`Self::assemble_qp_bta_into`] for the
    /// workspace contract.
    pub fn assemble_qc_bta_into(&self, hyper: &ModelHyper, bta: &mut BtaMatrix) -> CsrMatrix {
        self.assemble_qp_bta_into(hyper, bta);
        self.extend_qp_to_qc(hyper, bta)
    }

    /// Turn a workspace currently holding `Q_p` values into `Q_c` by adding
    /// the observation information `Aᵀ W A`, returning the joint design
    /// matrix. Lets callers that need *both* matrices assemble `Q_p` once,
    /// copy it, and extend the copy. `W` is the Gaussian noise-precision
    /// diagonal, or for non-Gaussian families the working weights at `η = 0`
    /// (the inner Newton loop's starting point; the loop re-assembles the
    /// perturbation from updated weights as it iterates).
    pub fn extend_qp_to_qc(&self, hyper: &ModelHyper, bta: &mut BtaMatrix) -> CsrMatrix {
        let design = self.joint_design(hyper);
        let d_diag = self.initial_working_weights(hyper);
        let congruence = ops::congruence_diag(&design, &d_diag);
        self.add_congruence_to_bta(&congruence, bta);
        design
    }

    /// Map a congruence matrix `AᵀDA` (in permuted ordering) onto the BTA
    /// pattern: the observation structure only populates diagonal blocks,
    /// arrow blocks and the tip (Sec. IV-F's sparse→block-dense mapping).
    pub fn add_congruence_to_bta(&self, congruence: &CsrMatrix, bta: &mut BtaMatrix) {
        let d = &self.dims;
        let b = d.block_size();
        let a = d.arrow_size();
        let a0 = d.nt * b;
        for t in 0..d.nt {
            congruence.add_dense_block_into(t * b, t * b, 1.0, &mut bta.diag[t], 0, 0);
            if a > 0 {
                congruence.add_dense_block_into(a0, t * b, 1.0, &mut bta.arrow[t], 0, 0);
            }
        }
        if a > 0 {
            congruence.add_dense_block_into(a0, a0, 1.0, &mut bta.tip, 0, 0);
        }
    }

    /// Assemble the joint prior precision as a general CSR matrix.
    ///
    /// With `permuted = true` the time-major (BTA-patterned) ordering is used;
    /// with `permuted = false` the natural by-process ordering of Eq. 11 is
    /// returned (the ordering a general-purpose solver would be handed).
    pub fn assemble_qp_csr(&self, hyper: &ModelHyper, permuted: bool) -> CsrMatrix {
        let d = &self.dims;
        let per_process = d.ns * d.nt + d.nr;
        let total = d.nv * per_process;
        let coefs = hyper.coregional_coefficients();
        let mut coo = CooMatrix::new(total, total);
        for i in 0..d.nv {
            let gamma = hyper.internal(i);
            let q_st = self.spde.precision_internal(&gamma);
            for k in 0..d.nv {
                for l in 0..d.nv {
                    let w = coefs[i][(k, l)];
                    if w == 0.0 {
                        continue;
                    }
                    for r in 0..q_st.nrows() {
                        for (c, v) in q_st.row_iter(r) {
                            coo.push(k * per_process + r, l * per_process + c, w * v);
                        }
                    }
                    for r in 0..d.nr {
                        coo.push(
                            k * per_process + d.ns * d.nt + r,
                            l * per_process + d.ns * d.nt + r,
                            w * self.fixed_prior_prec,
                        );
                    }
                }
            }
        }
        let q = coo.to_csr();
        if permuted {
            let perm = coregional_permutation(d.nv, d.ns, d.nt, d.nr);
            perm.apply_sym(&q)
        } else {
            q
        }
    }

    /// Assemble the conditional precision as a general CSR matrix (baseline
    /// path). The design matrix is built in permuted ordering and un-permuted
    /// when `permuted = false`.
    pub fn assemble_qc_csr(&self, hyper: &ModelHyper, permuted: bool) -> CsrMatrix {
        let qp = self.assemble_qp_csr(hyper, permuted);
        let design_perm = self.joint_design(hyper);
        let d_diag = self.initial_working_weights(hyper);
        let design = if permuted {
            design_perm
        } else {
            let perm = coregional_permutation(self.dims.nv, self.dims.ns, self.dims.nt, self.dims.nr);
            // Columns of the permuted design correspond to permuted latent
            // indices; map them back to the natural ordering.
            perm.inverse().apply_cols(&design_perm)
        };
        let congruence = ops::congruence_diag(&design, &d_diag);
        ops::add(1.0, &qp, 1.0, &congruence)
    }

    /// Information vector `Aᵀ D y` (the right-hand side of the *Gaussian*
    /// conditional mean equation `Q_c μ = Aᵀ D y`), in permuted ordering. For
    /// non-Gaussian families the inner Newton loop builds the analogous
    /// working right-hand side `Aᵀ(W η + g)` per iteration instead.
    pub fn information_vector(&self, hyper: &ModelHyper, design: &CsrMatrix) -> Vec<f64> {
        let d_diag = self.noise_diag(hyper);
        let weighted: Vec<f64> = self.y.iter().zip(&d_diag).map(|(y, d)| y * d).collect();
        design.spmv_t(&weighted)
    }

    /// Log-likelihood `log ℓ(y | θ, x)` at the latent configuration `x`
    /// (permuted ordering), under the model's likelihood family.
    pub fn log_likelihood(&self, hyper: &ModelHyper, design: &CsrMatrix, x: &[f64]) -> f64 {
        let fitted = design.spmv(x);
        self.log_likelihood_at_eta(hyper, &fitted)
    }

    /// Log-likelihood `Σ_i ℓ_i(η_i)` at an already-computed linear predictor
    /// `eta` (what the inner loop's line search evaluates without repeating
    /// the design product).
    pub fn log_likelihood_at_eta(&self, hyper: &ModelHyper, eta: &[f64]) -> f64 {
        match self.likelihood {
            Likelihood::Gaussian => {
                let d_diag = self.noise_diag(hyper);
                let ln2pi = (2.0 * std::f64::consts::PI).ln();
                let mut ll = 0.0;
                for ((y, f), tau) in self.y.iter().zip(eta).zip(&d_diag) {
                    let r = y - f;
                    ll += 0.5 * (tau.ln() - ln2pi) - 0.5 * tau * r * r;
                }
                ll
            }
            lik => self
                .y
                .iter()
                .zip(eta)
                .zip(&self.obs_scale)
                .map(|((&y, &e), &s)| lik.log_density(y, e, s, 0.0))
                .sum(),
        }
    }

    /// Index of the fixed-effect coefficient `r` of process `l` in the
    /// permuted latent vector.
    pub fn fixed_effect_index(&self, l: usize, r: usize) -> usize {
        fixed_column(self.dims.nv, self.dims.ns, self.dims.nt, self.dims.nr, l, r)
    }
}

/// Mesh-resolved prediction targets, ready to stamp out design matrices.
///
/// Produced by [`CoregionalModel::prediction_plan`]. The plan owns the
/// targets' barycentric projections, variable/time indices, and covariates —
/// everything about prediction design that does *not* depend on the
/// hyperparameters — so the mesh walk is paid once per target set no matter
/// how many designs are built from it. It holds no reference to the model, so
/// snapshots can carry a plan independently of the fit-time session.
#[derive(Clone, Debug)]
pub struct PredictionPlan {
    dims: ModelDims,
    projections: Vec<Projection>,
    vars: Vec<usize>,
    times: Vec<usize>,
    covariates: Vec<Vec<f64>>,
}

impl PredictionPlan {
    /// Number of planned targets (rows of any design built from this plan).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the plan contains no targets.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The model dimensions the plan was resolved against.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }

    /// Build the prediction design matrix `Λ·A_pred` for hyperparameters
    /// `hyper`. Bitwise identical to
    /// [`CoregionalModel::prediction_design`] on the same targets.
    pub fn design(&self, hyper: &ModelHyper) -> CsrMatrix {
        build_design(
            hyper,
            &self.projections,
            &self.vars,
            &self.times,
            &self.covariates,
            self.dims.nv,
            self.dims.ns,
            self.dims.nt,
            self.dims.nr,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_la::chol;
    use dalia_mesh::{Domain, Point};
    use dalia_sparse::SparseCholesky;

    fn small_observations(nv: usize, nt: usize, nr: usize) -> Vec<Observation> {
        let mut obs = Vec::new();
        let locs = [(0.2, 0.3), (0.7, 0.6), (0.4, 0.8), (0.85, 0.2)];
        for v in 0..nv {
            for t in 0..nt {
                for (i, &(x, y)) in locs.iter().enumerate() {
                    obs.push(Observation {
                        var: v,
                        t,
                        loc: Point::new(x, y),
                        covariates: vec![1.0; nr],
                        value: 0.5 * v as f64 + 0.1 * t as f64 + 0.05 * i as f64,
                    });
                }
            }
        }
        obs
    }

    fn small_model(nv: usize) -> (CoregionalModel, ModelHyper) {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let nt = 3;
        let nr = 1;
        let model = CoregionalModel::new(&mesh, nt, 1.0, nv, nr, small_observations(nv, nt, nr)).unwrap();
        let mut hyper = ModelHyper::default_for(nv, 0.7, 2.0);
        if nv == 3 {
            hyper.lambdas = vec![0.5, -0.3, 0.2];
            hyper.sigmas = vec![1.0, 1.3, 0.8];
        }
        (model, hyper)
    }

    #[test]
    fn dims_are_consistent() {
        let (model, _) = small_model(3);
        let d = model.dims;
        assert_eq!(d.block_size(), 3 * 9);
        assert_eq!(d.arrow_size(), 3);
        assert_eq!(d.latent_dim(), 3 * (9 * 3 + 1));
    }

    #[test]
    fn qp_bta_matches_csr_assembly() {
        // The block-dense BTA assembly and the sparse+permutation assembly are
        // two independent code paths for the same matrix (Eq. 11 + Fig. 2c).
        for nv in [1usize, 2, 3] {
            let (model, hyper) = small_model(nv);
            let bta = model.assemble_qp_bta(&hyper);
            let csr = model.assemble_qp_csr(&hyper, true);
            let diff = bta.to_dense().max_abs_diff(&csr.to_dense());
            assert!(diff < 1e-9, "nv={nv}: BTA vs CSR prior mismatch {diff}");
        }
    }

    #[test]
    fn in_place_assembly_matches_allocating_assembly() {
        let (model, hyper) = small_model(2);
        let d = model.dims;
        let mut work = BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size());
        // Pollute the workspace with values from a different θ, then re-fill.
        let mut other = ModelHyper::default_for(2, 0.4, 1.5);
        other.lambdas = vec![0.9];
        model.assemble_qp_bta_into(&other, &mut work);
        model.assemble_qp_bta_into(&hyper, &mut work);
        let fresh = model.assemble_qp_bta(&hyper);
        assert_eq!(work.to_dense().max_abs_diff(&fresh.to_dense()), 0.0);

        let design_reused = model.assemble_qc_bta_into(&hyper, &mut work);
        let (qc_fresh, design_fresh) = model.assemble_qc_bta(&hyper);
        assert_eq!(work.to_dense().max_abs_diff(&qc_fresh.to_dense()), 0.0);
        assert_eq!(design_reused.max_abs_diff(&design_fresh), 0.0);

        // extend_qp_to_qc on a copied Q_p gives the same Q_c.
        let mut copied = BtaMatrix::zeros(d.nt, d.block_size(), d.arrow_size());
        model.assemble_qp_bta_into(&hyper, &mut copied);
        model.extend_qp_to_qc(&hyper, &mut copied);
        assert_eq!(copied.to_dense().max_abs_diff(&qc_fresh.to_dense()), 0.0);
    }

    #[test]
    fn prediction_plan_matches_direct_design_bitwise() {
        let (model, hyper) = small_model(2);
        let targets: Vec<PredictionTarget> = (0..6)
            .map(|i| PredictionTarget {
                var: i % 2,
                t: i % 3,
                loc: Point::new(0.15 + 0.1 * i as f64, 0.9 - 0.1 * i as f64),
                covariates: vec![1.0],
            })
            .collect();
        let plan = model.prediction_plan(&targets).unwrap();
        assert_eq!(plan.len(), targets.len());
        assert!(!plan.is_empty());
        assert_eq!(plan.dims(), model.dims);
        // The plan stamps out designs for several θ; each must be bitwise
        // identical to the direct per-call path.
        let mut other = ModelHyper::default_for(2, 0.4, 1.5);
        other.lambdas = vec![0.9];
        for h in [&hyper, &other] {
            assert_eq!(plan.design(h), model.prediction_design(h, &targets).unwrap());
        }
    }

    #[test]
    fn prediction_plan_rejects_invalid_targets() {
        let (model, _) = small_model(2);
        let good = PredictionTarget {
            var: 0,
            t: 0,
            loc: Point::new(0.5, 0.5),
            covariates: vec![1.0],
        };
        let bad_var = PredictionTarget { var: 2, ..good.clone() };
        let bad_t = PredictionTarget { t: 3, ..good.clone() };
        let bad_cov = PredictionTarget { covariates: vec![], ..good.clone() };
        for (i, bad) in [bad_var, bad_t, bad_cov].into_iter().enumerate() {
            let err = model.prediction_plan(&[good.clone(), bad]).unwrap_err();
            match err {
                ModelError::InvalidObservation { index, .. } => {
                    assert_eq!(index, 1, "case {i}: wrong offending index")
                }
                other => panic!("case {i}: expected InvalidObservation, got {other:?}"),
            }
        }
        let outside = PredictionTarget { loc: Point::new(5.0, 5.0), ..good };
        assert!(matches!(
            model.prediction_plan(&[outside]).unwrap_err(),
            ModelError::LocationOutsideDomain { .. }
        ));
    }

    #[test]
    fn qc_bta_matches_csr_assembly() {
        for nv in [1usize, 3] {
            let (model, hyper) = small_model(nv);
            let (bta, _) = model.assemble_qc_bta(&hyper);
            let csr = model.assemble_qc_csr(&hyper, true);
            let diff = bta.to_dense().max_abs_diff(&csr.to_dense());
            assert!(diff < 1e-9, "nv={nv}: BTA vs CSR conditional mismatch {diff}");
        }
    }

    #[test]
    fn permuted_and_natural_orderings_have_same_logdet() {
        let (model, hyper) = small_model(2);
        let qp_perm = model.assemble_qp_csr(&hyper, true);
        let qp_nat = model.assemble_qp_csr(&hyper, false);
        let ld_p = SparseCholesky::factor(&qp_perm).unwrap().logdet();
        let ld_n = SparseCholesky::factor(&qp_nat).unwrap().logdet();
        assert!((ld_p - ld_n).abs() < 1e-7 * (1.0 + ld_p.abs()));
    }

    #[test]
    fn conditional_precision_is_spd() {
        let (model, hyper) = small_model(3);
        let (bta, _) = model.assemble_qc_bta(&hyper);
        assert!(chol::cholesky(&bta.to_dense()).is_ok());
    }

    #[test]
    fn congruence_only_touches_bta_pattern() {
        // Verify the claim behind `add_congruence_to_bta`: observations never
        // couple different time steps.
        let (model, hyper) = small_model(2);
        let design = model.joint_design(&hyper);
        let d_diag = model.noise_diag(&hyper);
        let w = ops::congruence_diag(&design, &d_diag);
        let b = model.dims.block_size();
        let nt = model.dims.nt;
        for r in 0..nt * b {
            for (c, v) in w.row_iter(r) {
                if c < nt * b && v != 0.0 {
                    assert_eq!(r / b, c / b, "observation coupled time blocks {r} and {c}");
                }
            }
        }
    }

    #[test]
    fn information_vector_matches_dense() {
        let (model, hyper) = small_model(2);
        let design = model.joint_design(&hyper);
        let info = model.information_vector(&hyper, &design);
        // Dense reference: Aᵀ D y.
        let a = design.to_dense();
        let d = dalia_la::Matrix::from_diag(&model.noise_diag(&hyper));
        let ref_info = dalia_la::blas::matvec_t(&a, &dalia_la::blas::matvec(&d, &model.y));
        for (x, y) in info.iter().zip(&ref_info) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn log_likelihood_peaks_at_generating_field() {
        let (model, hyper) = small_model(1);
        let design = model.joint_design(&hyper);
        // Solve the least-squares-like problem: x = 0 gives lower likelihood
        // than the conditional mean.
        let (qc, _) = model.assemble_qc_bta(&hyper);
        let info = model.information_vector(&hyper, &design);
        let mu = chol::spd_solve_vec(&qc.to_dense(), &info).unwrap();
        let ll_mu = model.log_likelihood(&hyper, &design, &mu);
        let ll_zero = model.log_likelihood(&hyper, &design, &vec![0.0; mu.len()]);
        assert!(ll_mu > ll_zero);
    }

    #[test]
    fn invalid_observations_are_rejected() {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let bad_var = vec![Observation {
            var: 5,
            t: 0,
            loc: Point::new(0.5, 0.5),
            covariates: vec![1.0],
            value: 0.0,
        }];
        assert!(CoregionalModel::new(&mesh, 2, 1.0, 2, 1, bad_var).is_err());

        let bad_time = vec![Observation {
            var: 0,
            t: 9,
            loc: Point::new(0.5, 0.5),
            covariates: vec![1.0],
            value: 0.0,
        }];
        assert!(CoregionalModel::new(&mesh, 2, 1.0, 2, 1, bad_time).is_err());

        let outside = vec![Observation {
            var: 0,
            t: 0,
            loc: Point::new(5.0, 5.0),
            covariates: vec![1.0],
            value: 0.0,
        }];
        assert!(CoregionalModel::new(&mesh, 2, 1.0, 2, 1, outside).is_err());
    }

    #[test]
    fn fixed_effect_index_points_at_arrow() {
        let (model, _) = small_model(2);
        let idx = model.fixed_effect_index(1, 0);
        assert_eq!(idx, 2 * 9 * 3 + 1);
        assert!(idx < model.dims.latent_dim());
    }
}
