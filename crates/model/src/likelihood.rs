//! Observation likelihood families and the per-observation quantities the
//! INLA inner loop consumes.
//!
//! The latent model stays Gaussian; only the observation layer changes.
//! For a non-Gaussian family the conditional posterior `π(x | y, θ)` is no
//! longer Gaussian and INLA replaces it by a Gaussian approximation at its
//! mode `x*` — found by Newton iterations in which each observation `i`
//! contributes a *working weight* `w_i(η) = −∂²ℓ_i/∂η²` and a *score*
//! `g_i(η) = ∂ℓ_i/∂η` at the current linear predictor `η = (Λ·A) x`. The
//! working weights enter the conditional precision as
//! `Q_c(η) = Q_p + Aᵀ diag(w(η)) A`, i.e. a purely diagonal perturbation of
//! the Gaussian-case `AᵀDA` term — which is why the BTA structure and every
//! solver backend carry over unchanged.
//!
//! Each observation may carry a positive *scale*: the exposure `E_i` for
//! Poisson counts (`y_i ~ Poisson(E_i·e^{η_i})`) and the trial count `n_i`
//! for binomial data (`y_i ~ Binomial(n_i, logistic(η_i))`); Gaussian
//! observations ignore it. Scales live on the
//! [`CoregionalModel`](crate::CoregionalModel), not on
//! [`Observation`](crate::Observation), so existing construction sites are
//! untouched.

/// Observation likelihood family (per model, applied to every observation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Likelihood {
    /// Gaussian observation noise with per-variable precision `τ_v` (taken
    /// from [`ModelHyper::noise_prec`](crate::ModelHyper::noise_prec)). The
    /// Laplace approximation is exact and the inner Newton loop converges in
    /// one step.
    Gaussian,
    /// Poisson counts with log link: `y_i ~ Poisson(E_i · e^{η_i})` where the
    /// exposure `E_i` is the observation's scale.
    Poisson,
    /// Bernoulli / binomial with logit link:
    /// `y_i ~ Binomial(n_i, logistic(η_i))` where the trial count `n_i` is the
    /// observation's scale (`1` for plain Bernoulli data).
    Bernoulli,
}

impl Likelihood {
    /// Whether the per-observation log-likelihood is an exact quadratic in the
    /// linear predictor. Newton's method converges on a quadratic in exactly
    /// one step, so the inner loop short-circuits — this is what keeps the
    /// Gaussian path on its historical single-solve trajectory.
    pub fn is_quadratic(&self) -> bool {
        matches!(self, Likelihood::Gaussian)
    }

    /// Short name for reports and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Likelihood::Gaussian => "gaussian",
            Likelihood::Poisson => "poisson",
            Likelihood::Bernoulli => "bernoulli",
        }
    }

    /// Log-density `ℓ_i(η)` of one observation `y` at linear predictor `eta`,
    /// with observation scale `scale` (exposure / trials) and Gaussian noise
    /// precision `tau` (ignored by the non-Gaussian families).
    pub fn log_density(&self, y: f64, eta: f64, scale: f64, tau: f64) -> f64 {
        match self {
            Likelihood::Gaussian => {
                let ln2pi = (2.0 * std::f64::consts::PI).ln();
                let r = y - eta;
                0.5 * (tau.ln() - ln2pi) - 0.5 * tau * r * r
            }
            Likelihood::Poisson => {
                // y ln(E e^η) − E e^η − ln y!
                y * (scale.ln() + eta) - scale * eta.exp() - ln_gamma(y + 1.0)
            }
            Likelihood::Bernoulli => {
                // ln C(n, y) + y η − n ln(1 + e^η), with a stable softplus.
                ln_binomial(scale, y) + y * eta - scale * softplus(eta)
            }
        }
    }

    /// Score `g_i(η) = ∂ℓ_i/∂η` of one observation.
    pub fn score(&self, y: f64, eta: f64, scale: f64, tau: f64) -> f64 {
        match self {
            Likelihood::Gaussian => tau * (y - eta),
            Likelihood::Poisson => y - scale * eta.exp(),
            Likelihood::Bernoulli => y - scale * sigmoid(eta),
        }
    }

    /// Working weight `w_i(η) = −∂²ℓ_i/∂η²` of one observation (always
    /// nonnegative for these log-concave families, so `Q_c` stays SPD).
    pub fn working_weight(&self, eta: f64, scale: f64, tau: f64) -> f64 {
        match self {
            Likelihood::Gaussian => tau,
            Likelihood::Poisson => scale * eta.exp(),
            Likelihood::Bernoulli => {
                let p = sigmoid(eta);
                scale * p * (1.0 - p)
            }
        }
    }

    /// Mean response `E[y | η]` (the inverse link scaled by exposure/trials):
    /// `η` for Gaussian, `E·e^η` for Poisson, `n·logistic(η)` for binomial.
    pub fn mean_response(&self, eta: f64, scale: f64) -> f64 {
        match self {
            Likelihood::Gaussian => eta,
            Likelihood::Poisson => scale * eta.exp(),
            Likelihood::Bernoulli => scale * sigmoid(eta),
        }
    }

    /// Derivative of [`mean_response`](Self::mean_response) with respect to
    /// `η` (the delta-method factor for mapping latent uncertainty onto the
    /// response scale).
    pub fn mean_response_deriv(&self, eta: f64, scale: f64) -> f64 {
        match self {
            Likelihood::Gaussian => 1.0,
            Likelihood::Poisson => scale * eta.exp(),
            Likelihood::Bernoulli => {
                let p = sigmoid(eta);
                scale * p * (1.0 - p)
            }
        }
    }

    /// Validate one observed value against the family's support. `scale` is
    /// the observation's exposure / trial count.
    pub fn validate_value(&self, y: f64, scale: f64) -> Result<(), String> {
        if !y.is_finite() {
            return Err(format!("observed value {y} is not finite"));
        }
        match self {
            Likelihood::Gaussian => Ok(()),
            Likelihood::Poisson => {
                if y < 0.0 {
                    Err(format!("Poisson count {y} is negative"))
                } else {
                    Ok(())
                }
            }
            Likelihood::Bernoulli => {
                if y < 0.0 || y > scale {
                    Err(format!("binomial count {y} outside [0, trials={scale}]"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Logistic function `1 / (1 + e^{−η})`, stable for large `|η|`.
pub fn sigmoid(eta: f64) -> f64 {
    if eta >= 0.0 {
        1.0 / (1.0 + (-eta).exp())
    } else {
        let e = eta.exp();
        e / (1.0 + e)
    }
}

/// Stable softplus `ln(1 + e^{η})`.
fn softplus(eta: f64) -> f64 {
    if eta > 0.0 {
        eta + (-eta).exp().ln_1p()
    } else {
        eta.exp().ln_1p()
    }
}

/// `ln Γ(x)` for `x > 0` (Lanczos approximation, g = 7, 9 coefficients;
/// relative error below 1e-13 on the positive axis).
#[allow(clippy::excessive_precision)] // published Lanczos coefficients, verbatim
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma: x={x} must be positive");
    let z = x - 1.0;
    let mut acc = 0.99999999999980993;
    for (i, c) in COEFFS.iter().enumerate() {
        acc += c / (z + (i + 1) as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, y)` — the log binomial coefficient, zero when `n` is not
/// meaningfully larger than a Bernoulli trial count of one.
fn ln_binomial(n: f64, y: f64) -> f64 {
    // Γ-based so non-integer "trials" (grouped rates) are handled gracefully.
    ln_gamma(n + 1.0) - ln_gamma(y + 1.0) - ln_gamma(n - y + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_derivative(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            fact *= n as f64;
            let err = (ln_gamma(n as f64 + 1.0) - fact.ln()).abs();
            assert!(err < 1e-10 * (1.0 + fact.ln().abs()), "n={n}: {err}");
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn scores_match_log_density_derivatives() {
        for lik in [Likelihood::Gaussian, Likelihood::Poisson, Likelihood::Bernoulli] {
            let (y, scale, tau) = match lik {
                Likelihood::Gaussian => (0.7, 1.0, 2.5),
                Likelihood::Poisson => (3.0, 1.7, 0.0),
                Likelihood::Bernoulli => (2.0, 5.0, 0.0),
            };
            for &eta in &[-1.5, -0.2, 0.0, 0.4, 1.8] {
                let g = lik.score(y, eta, scale, tau);
                let g_fd = fd_derivative(|e| lik.log_density(y, e, scale, tau), eta);
                assert!(
                    (g - g_fd).abs() < 1e-5 * (1.0 + g.abs()),
                    "{}: score {g} vs fd {g_fd} at eta={eta}",
                    lik.name()
                );
                let w = lik.working_weight(eta, scale, tau);
                let w_fd = -fd_derivative(|e| lik.score(y, e, scale, tau), eta);
                assert!(
                    (w - w_fd).abs() < 1e-5 * (1.0 + w.abs()),
                    "{}: weight {w} vs fd {w_fd} at eta={eta}",
                    lik.name()
                );
                assert!(w >= 0.0, "{}: negative working weight {w}", lik.name());
            }
        }
    }

    #[test]
    fn poisson_log_density_normalizes_on_small_supports() {
        // Σ_y p(y) over enough of the support should be ≈ 1.
        for &(eta, scale) in &[(0.0, 1.0), (0.7, 2.0), (-0.5, 3.5)] {
            let total: f64 = (0..200)
                .map(|y| Likelihood::Poisson.log_density(y as f64, eta, scale, 0.0).exp())
                .sum();
            assert!((total - 1.0).abs() < 1e-10, "eta={eta} scale={scale}: {total}");
        }
    }

    #[test]
    fn binomial_log_density_normalizes() {
        let n = 6.0;
        for &eta in &[-1.0, 0.0, 0.8] {
            let total: f64 = (0..=6)
                .map(|y| Likelihood::Bernoulli.log_density(y as f64, eta, n, 0.0).exp())
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "eta={eta}: {total}");
        }
    }

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-300);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn only_the_gaussian_family_is_quadratic() {
        assert!(Likelihood::Gaussian.is_quadratic());
        assert!(!Likelihood::Poisson.is_quadratic());
        assert!(!Likelihood::Bernoulli.is_quadratic());
    }

    #[test]
    fn mean_response_and_deriv_are_consistent() {
        for lik in [Likelihood::Gaussian, Likelihood::Poisson, Likelihood::Bernoulli] {
            for &eta in &[-0.8, 0.0, 1.2] {
                let d = lik.mean_response_deriv(eta, 2.0);
                let d_fd = fd_derivative(|e| lik.mean_response(e, 2.0), eta);
                assert!((d - d_fd).abs() < 1e-5 * (1.0 + d.abs()), "{}", lik.name());
            }
        }
    }

    #[test]
    fn support_validation() {
        assert!(Likelihood::Poisson.validate_value(3.0, 1.0).is_ok());
        assert!(Likelihood::Poisson.validate_value(-1.0, 1.0).is_err());
        assert!(Likelihood::Bernoulli.validate_value(1.0, 1.0).is_ok());
        assert!(Likelihood::Bernoulli.validate_value(2.0, 1.0).is_err());
        assert!(Likelihood::Gaussian.validate_value(f64::NAN, 1.0).is_err());
        assert!(Likelihood::Gaussian.validate_value(-17.5, 1.0).is_ok());
    }
}
