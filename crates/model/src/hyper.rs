//! Hyperparameter vector of the (multivariate) spatio-temporal model and the
//! coregionalization matrix Λ.
//!
//! For `nv` response variables the model has
//! `dim(θ) = 2·nv (ranges) + nv (scales σ) + nv(nv−1)/2 (couplings λ) + nv (noise precisions)`
//! hyperparameters — 15 for the trivariate model of the paper and 4 for a
//! univariate model. Positive parameters are optimized on the log scale,
//! couplings on the natural scale.

use dalia_la::{chol, Matrix};
use dalia_spde::{InternalHyper, StHyper};

/// Structured view of the model hyperparameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelHyper {
    /// Spatial correlation range of each latent process.
    pub range_s: Vec<f64>,
    /// Temporal correlation range of each latent process.
    pub range_t: Vec<f64>,
    /// Marginal standard deviations σ_i (the diagonal scaling of Λ).
    pub sigmas: Vec<f64>,
    /// Coregionalization couplings λ, ordered as the strict lower triangle of
    /// the unit coupling matrix column-by-column (λ_1 = W_21, λ_2 = W_32,
    /// λ_3 = direct 3←1 coupling, matching the paper's trivariate Λ).
    pub lambdas: Vec<f64>,
    /// Observation noise precisions τ_i, one per response variable.
    pub noise_prec: Vec<f64>,
}

impl ModelHyper {
    /// Number of response variables.
    pub fn nv(&self) -> usize {
        self.sigmas.len()
    }

    /// Number of hyperparameters.
    pub fn dim(&self) -> usize {
        theta_dim(self.nv())
    }

    /// A reasonable default configuration for `nv` processes (unit scales,
    /// moderate ranges, unit noise precision, zero couplings).
    pub fn default_for(nv: usize, range_s: f64, range_t: f64) -> Self {
        Self {
            range_s: vec![range_s; nv],
            range_t: vec![range_t; nv],
            sigmas: vec![1.0; nv],
            lambdas: vec![0.0; nv * (nv - 1) / 2],
            noise_prec: vec![10.0; nv],
        }
    }

    /// Internal SPDE coefficients of latent process `i` (unit variance by the
    /// LMC convention: the scale lives in Λ).
    pub fn internal(&self, i: usize) -> InternalHyper {
        StHyper::new(1.0, self.range_s[i], self.range_t[i]).to_internal()
    }

    /// Pack into the unconstrained optimizer vector θ.
    ///
    /// Layout: `[log ρ_s(i), log ρ_t(i)]_{i<nv}, [log σ_i]_{i<nv}, [λ_j], [log τ_i]`.
    pub fn to_theta(&self) -> Vec<f64> {
        let nv = self.nv();
        let mut theta = Vec::with_capacity(theta_dim(nv));
        for i in 0..nv {
            theta.push(self.range_s[i].ln());
            theta.push(self.range_t[i].ln());
        }
        for i in 0..nv {
            theta.push(self.sigmas[i].ln());
        }
        theta.extend_from_slice(&self.lambdas);
        for i in 0..nv {
            theta.push(self.noise_prec[i].ln());
        }
        theta
    }

    /// Unpack from the optimizer vector θ.
    pub fn from_theta(nv: usize, theta: &[f64]) -> Self {
        assert_eq!(theta.len(), theta_dim(nv), "theta dimension mismatch");
        let mut range_s = Vec::with_capacity(nv);
        let mut range_t = Vec::with_capacity(nv);
        for i in 0..nv {
            range_s.push(theta[2 * i].exp());
            range_t.push(theta[2 * i + 1].exp());
        }
        let sigmas: Vec<f64> = (0..nv).map(|i| theta[2 * nv + i].exp()).collect();
        let nl = nv * (nv - 1) / 2;
        let lambdas = theta[3 * nv..3 * nv + nl].to_vec();
        let noise_prec: Vec<f64> = (0..nv).map(|i| theta[3 * nv + nl + i].exp()).collect();
        Self { range_s, range_t, sigmas, lambdas, noise_prec }
    }

    /// The coregionalization matrix Λ (lower triangular).
    ///
    /// For `nv = 3` this is the paper's parameterization (Eq. 5):
    /// ```text
    /// Λ = [      σ1           0      0 ]
    ///     [   λ1 σ1          σ2      0 ]
    ///     [ (λ3+λ1λ2) σ1   λ2 σ2    σ3 ]
    /// ```
    /// For general `nv`, Λ = W·diag(σ) where `W` is unit lower triangular and
    /// its strict lower triangle is filled column-by-column with the λ values.
    pub fn lambda_matrix(&self) -> Matrix {
        let nv = self.nv();
        let mut w = Matrix::identity(nv);
        if nv == 3 && self.lambdas.len() == 3 {
            let (l1, l2, l3) = (self.lambdas[0], self.lambdas[1], self.lambdas[2]);
            w[(1, 0)] = l1;
            w[(2, 0)] = l3 + l1 * l2;
            w[(2, 1)] = l2;
        } else {
            let mut idx = 0;
            for j in 0..nv {
                for i in (j + 1)..nv {
                    w[(i, j)] = self.lambdas[idx];
                    idx += 1;
                }
            }
        }
        // Scale column j by σ_j.
        for j in 0..nv {
            for i in 0..nv {
                w[(i, j)] *= self.sigmas[j];
            }
        }
        w
    }

    /// `Λ⁻¹`, used to form the joint precision (Eq. 11): the coefficient of
    /// process `i`'s precision in joint block `(k, l)` is `M[i,k]·M[i,l]` with
    /// `M = Λ⁻¹`.
    pub fn lambda_inverse(&self) -> Matrix {
        chol::inverse(&self.lambda_matrix()).expect("Λ is lower triangular with positive diagonal")
    }

    /// Coefficients `c_i[k][l] = M[i,k]·M[i,l]` for the joint precision.
    pub fn coregional_coefficients(&self) -> Vec<Matrix> {
        let nv = self.nv();
        let minv = self.lambda_inverse();
        (0..nv)
            .map(|i| Matrix::from_fn(nv, nv, |k, l| minv[(i, k)] * minv[(i, l)]))
            .collect()
    }
}

/// Number of hyperparameters for `nv` response variables.
pub fn theta_dim(nv: usize) -> usize {
    2 * nv + nv + nv * (nv - 1) / 2 + nv
}

/// Independent Gaussian prior on the components of θ.
#[derive(Clone, Debug)]
pub struct ThetaPrior {
    /// Prior means.
    pub mean: Vec<f64>,
    /// Prior standard deviations.
    pub sd: Vec<f64>,
}

impl ThetaPrior {
    /// Weakly informative prior centred at `center` with common sd.
    pub fn weakly_informative(center: &[f64], sd: f64) -> Self {
        Self { mean: center.to_vec(), sd: vec![sd; center.len()] }
    }

    /// Log prior density (up to the additive normalization constant, which is
    /// included so the objective is a proper log posterior).
    pub fn log_density(&self, theta: &[f64]) -> f64 {
        assert_eq!(theta.len(), self.mean.len());
        let mut lp = 0.0;
        for ((t, m), s) in theta.iter().zip(&self.mean).zip(&self.sd) {
            let z = (t - m) / s;
            lp += -0.5 * z * z - s.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_dimension_formula() {
        assert_eq!(theta_dim(1), 4);
        assert_eq!(theta_dim(2), 9);
        assert_eq!(theta_dim(3), 15);
    }

    #[test]
    fn theta_roundtrip() {
        let h = ModelHyper {
            range_s: vec![0.4, 0.8, 1.2],
            range_t: vec![2.0, 3.0, 4.0],
            sigmas: vec![1.0, 1.5, 0.7],
            lambdas: vec![0.5, -0.3, 0.2],
            noise_prec: vec![5.0, 8.0, 12.0],
        };
        let theta = h.to_theta();
        assert_eq!(theta.len(), 15);
        let back = ModelHyper::from_theta(3, &theta);
        assert!((back.range_s[1] - 0.8).abs() < 1e-12);
        assert!((back.lambdas[1] + 0.3).abs() < 1e-12);
        assert!((back.noise_prec[2] - 12.0).abs() < 1e-10);
    }

    #[test]
    fn lambda_matrix_matches_paper_parameterization() {
        let h = ModelHyper {
            range_s: vec![1.0; 3],
            range_t: vec![1.0; 3],
            sigmas: vec![2.0, 3.0, 4.0],
            lambdas: vec![0.5, 0.25, 0.1],
            noise_prec: vec![1.0; 3],
        };
        let l = h.lambda_matrix();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((l[(1, 0)] - 0.5 * 2.0).abs() < 1e-14);
        assert!((l[(2, 0)] - (0.1 + 0.5 * 0.25) * 2.0).abs() < 1e-14);
        assert!((l[(2, 1)] - 0.25 * 3.0).abs() < 1e-14);
        assert!((l[(2, 2)] - 4.0).abs() < 1e-14);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn joint_precision_coefficients_match_eq11() {
        // Verify the (1,1) entry of Eq. 11: 1/σ1² Q1 + λ1²/σ2² Q2 + λ3²/σ3² Q3.
        let h = ModelHyper {
            range_s: vec![1.0; 3],
            range_t: vec![1.0; 3],
            sigmas: vec![1.3, 0.9, 1.7],
            lambdas: vec![0.6, -0.4, 0.2],
            noise_prec: vec![1.0; 3],
        };
        let c = h.coregional_coefficients();
        let (s1, s2, s3) = (1.3f64, 0.9f64, 1.7f64);
        let (l1, _l2, l3) = (0.6f64, -0.4f64, 0.2f64);
        assert!((c[0][(0, 0)] - 1.0 / (s1 * s1)).abs() < 1e-12);
        assert!((c[1][(0, 0)] - l1 * l1 / (s2 * s2)).abs() < 1e-12);
        assert!((c[2][(0, 0)] - l3 * l3 / (s3 * s3)).abs() < 1e-12);
        // (3,3) entry: 1/σ3² Q3 only.
        assert!((c[2][(2, 2)] - 1.0 / (s3 * s3)).abs() < 1e-12);
        assert!(c[0][(2, 2)].abs() < 1e-12);
        assert!(c[1][(2, 2)].abs() < 1e-12);
    }

    #[test]
    fn lambda_sigma_scaling_consistency() {
        // The covariance implied by Λ for unit-variance latent processes has
        // Var(y_1) = σ1².
        let h = ModelHyper {
            range_s: vec![1.0; 2],
            range_t: vec![1.0; 2],
            sigmas: vec![2.0, 0.5],
            lambdas: vec![0.7],
            noise_prec: vec![1.0; 2],
        };
        let l = h.lambda_matrix();
        let cov = dalia_la::blas::matmul(&l, &l.transpose());
        assert!((cov[(0, 0)] - 4.0).abs() < 1e-12);
        // Var(y_2) = λ1²σ1² + σ2².
        assert!((cov[(1, 1)] - (0.7f64.powi(2) * 4.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn prior_density_peaks_at_mean() {
        let prior = ThetaPrior::weakly_informative(&[0.0, 1.0], 2.0);
        let at_mean = prior.log_density(&[0.0, 1.0]);
        let off = prior.log_density(&[1.0, 0.0]);
        assert!(at_mean > off);
    }

    #[test]
    fn univariate_degenerate_lambda() {
        let h = ModelHyper::default_for(1, 0.5, 2.0);
        assert_eq!(h.dim(), 4);
        let l = h.lambda_matrix();
        assert_eq!(l.shape(), (1, 1));
        assert!((l[(0, 0)] - 1.0).abs() < 1e-14);
        let c = h.coregional_coefficients();
        assert!((c[0][(0, 0)] - 1.0).abs() < 1e-14);
    }
}
