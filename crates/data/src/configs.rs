//! The dataset configurations of the paper's Table IV and their scaled-down
//! counterparts used for measured runs on a single CPU core.

use dalia_hpc::ModelDims;

/// One dataset configuration (a row of Table IV).
#[derive(Clone, Debug)]
pub struct DatasetConfig {
    /// Dataset identifier (MB1, MB2, WA1, WA2, SA1, AP1).
    pub name: &'static str,
    /// Number of hyperparameters.
    pub dim_theta: usize,
    /// Number of response variables.
    pub nv: usize,
    /// Spatial mesh size (per process, per partition for MB2).
    pub ns: usize,
    /// Number of fixed effects per process.
    pub nr: usize,
    /// Number of time steps (smallest configuration for sweeps).
    pub nt: usize,
    /// Largest number of time steps (for sweep datasets), equal to `nt` for
    /// fixed-size datasets.
    pub nt_max: usize,
    /// Short description of the role the dataset plays in the evaluation.
    pub role: &'static str,
}

impl DatasetConfig {
    /// Total latent dimension `N = nv(ns·nt + nr)` at `nt` time steps.
    pub fn latent_dim(&self, nt: usize) -> usize {
        self.nv * (self.ns * nt + self.nr)
    }

    /// Model dimensions for the performance model at `nt` time steps.
    pub fn model_dims(&self, nt: usize) -> ModelDims {
        ModelDims { nv: self.nv, ns: self.ns, nt, nr: self.nr, dim_theta: self.dim_theta }
    }

    /// A scaled-down version (spatial mesh and time steps reduced by roughly
    /// `factor`) used for measured runs of the real algorithms.
    pub fn scaled(&self, factor: usize) -> DatasetConfig {
        DatasetConfig {
            ns: (self.ns / factor).max(16),
            nt: (self.nt / factor).max(2),
            nt_max: (self.nt_max / factor).max(2),
            ..self.clone()
        }
    }
}

/// MB1: univariate spatio-temporal model used for the strong-scaling
/// comparison against INLA_DIST and R-INLA (Fig. 4).
pub fn mb1() -> DatasetConfig {
    DatasetConfig {
        name: "MB1",
        dim_theta: 4,
        nv: 1,
        ns: 4002,
        nr: 6,
        nt: 250,
        nt_max: 250,
        role: "Fig. 4 strong scaling vs INLA_DIST / R-INLA",
    }
}

/// MB2: univariate model used for the solver weak-scaling microbenchmarks
/// (Fig. 5); `nt` is the number of time steps *per process*.
pub fn mb2() -> DatasetConfig {
    DatasetConfig {
        name: "MB2",
        dim_theta: 4,
        nv: 1,
        ns: 1675,
        nr: 6,
        nt: 128,
        nt_max: 2048,
        role: "Fig. 5 distributed solver weak scaling",
    }
}

/// WA1: trivariate coregional model for weak scaling in time (Fig. 6a).
pub fn wa1() -> DatasetConfig {
    DatasetConfig {
        name: "WA1",
        dim_theta: 15,
        nv: 3,
        ns: 1247,
        nr: 1,
        nt: 2,
        nt_max: 512,
        role: "Fig. 6a weak scaling through the time domain",
    }
}

/// WA2: trivariate coregional model for weak scaling in space through mesh
/// refinement (Fig. 6b); `ns` here is the coarsest mesh of the ladder
/// 72 → 282 → 1119 → 4485.
pub fn wa2() -> DatasetConfig {
    DatasetConfig {
        name: "WA2",
        dim_theta: 15,
        nv: 3,
        ns: 72,
        nr: 1,
        nt: 48,
        nt_max: 48,
        role: "Fig. 6b weak scaling through spatial mesh refinement",
    }
}

/// The WA2 mesh-refinement ladder of Fig. 6b/6c.
pub fn wa2_mesh_ladder() -> Vec<usize> {
    vec![72, 282, 1119, 4485]
}

/// SA1: trivariate coregional model for the application-level strong scaling
/// (Fig. 7).
pub fn sa1() -> DatasetConfig {
    DatasetConfig {
        name: "SA1",
        dim_theta: 15,
        nv: 3,
        ns: 1675,
        nr: 1,
        nt: 192,
        nt_max: 192,
        role: "Fig. 7 application-level strong scaling",
    }
}

/// AP1: the air-pollution application over northern Italy (Fig. 8, Sec. VI).
pub fn ap1() -> DatasetConfig {
    DatasetConfig {
        name: "AP1",
        dim_theta: 15,
        nv: 3,
        ns: 4210,
        nr: 2,
        nt: 48,
        nt_max: 48,
        role: "Fig. 8 air-pollution downscaling application",
    }
}

/// All Table IV rows in paper order.
pub fn all_configs() -> Vec<DatasetConfig> {
    vec![mb1(), mb2(), wa1(), wa2(), sa1(), ap1()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_dimensions_match_paper() {
        // N values reported in Table IV.
        assert_eq!(mb1().latent_dim(250), 1_000_506);
        assert_eq!(sa1().latent_dim(192), 964_803);
        assert_eq!(ap1().latent_dim(48), 606_246);
        // WA1 at nt = 2: N = 7485; at nt = 512: N = 1,915,395.
        assert_eq!(wa1().latent_dim(2), 7_485);
        assert_eq!(wa1().latent_dim(512), 1_915_395);
    }

    #[test]
    fn hyperparameter_counts() {
        assert_eq!(mb1().dim_theta, 4);
        for c in [wa1(), wa2(), sa1(), ap1()] {
            assert_eq!(c.dim_theta, 15);
            assert_eq!(c.nv, 3);
        }
    }

    #[test]
    fn scaled_configs_shrink() {
        let s = sa1().scaled(8);
        assert!(s.ns < sa1().ns);
        assert!(s.nt < sa1().nt);
        assert!(s.ns >= 16 && s.nt >= 2);
    }

    #[test]
    fn mesh_ladder_matches_figure() {
        assert_eq!(wa2_mesh_ladder(), vec![72, 282, 1119, 4485]);
    }

    #[test]
    fn all_configs_listed() {
        let names: Vec<&str> = all_configs().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["MB1", "MB2", "WA1", "WA2", "SA1", "AP1"]);
    }
}
