//! # dalia-data — dataset configurations and synthetic data generators
//!
//! * [`configs`] — the paper's Table IV dataset configurations (MB1, MB2, WA1,
//!   WA2, SA1, AP1), both at paper scale (for the performance model) and in
//!   scaled-down form (for measured runs),
//! * [`synthetic`] — synthetic multivariate air-pollution-like datasets with
//!   known ground truth (the CAMS reanalysis substitute), smooth random
//!   spatio-temporal fields, an elevation covariate and observation grids,
//!   plus Poisson count and binomial exceedance generators for the
//!   non-Gaussian likelihood path.

pub mod configs;
pub mod synthetic;

pub use configs::{all_configs, ap1, mb1, mb2, sa1, wa1, wa2, wa2_mesh_ladder, DatasetConfig};
pub use synthetic::{
    correlation, elevation_km, generate_count_dataset, generate_exceedance_dataset,
    generate_pollution_dataset, generate_univariate_dataset, observation_grid, sample_poisson,
    CountGroundTruth, GroundTruth, SmoothField, StreamingSource,
};
