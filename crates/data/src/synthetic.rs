//! Synthetic data generators.
//!
//! The paper's application uses CAMS reanalysis fields of PM2.5, PM10 and O3
//! over northern Italy, which are not redistributable here. These generators
//! produce synthetic datasets with the same structure — multiple interdependent
//! smooth spatio-temporal fields observed on a coarse regular grid, with an
//! elevation covariate and Gaussian measurement noise — and, unlike the real
//! data, come with known ground truth so recovery can be verified.

use dalia_mesh::{Domain, Point};
use dalia_model::{ModelHyper, Observation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground truth of a synthetic dataset.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// The hyperparameters used for generation.
    pub hyper: ModelHyper,
    /// Elevation coefficients per response variable (µg/m³ per km).
    pub elevation_effects: Vec<f64>,
    /// Intercepts per response variable.
    pub intercepts: Vec<f64>,
    /// Observation noise standard deviations per response variable.
    pub noise_sd: Vec<f64>,
}

/// A smooth random spatio-temporal field built from a small number of random
/// Fourier features — a cheap stand-in for an exact GP sample whose spatial
/// and temporal correlation lengths are controlled by `range_s` / `range_t`.
#[derive(Clone, Debug)]
pub struct SmoothField {
    weights: Vec<f64>,
    freq_x: Vec<f64>,
    freq_y: Vec<f64>,
    freq_t: Vec<f64>,
    phases: Vec<f64>,
}

impl SmoothField {
    /// Draw a new random field with unit marginal variance.
    pub fn new(rng: &mut StdRng, range_s: f64, range_t: f64, n_features: usize) -> Self {
        let mut weights = Vec::with_capacity(n_features);
        let mut freq_x = Vec::with_capacity(n_features);
        let mut freq_y = Vec::with_capacity(n_features);
        let mut freq_t = Vec::with_capacity(n_features);
        let mut phases = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            weights.push(rng.random_range(-1.0..1.0));
            freq_x.push(rng.random_range(-1.0..1.0) * 2.0 / range_s);
            freq_y.push(rng.random_range(-1.0..1.0) * 2.0 / range_s);
            freq_t.push(rng.random_range(-1.0..1.0) * 2.0 / range_t);
            phases.push(rng.random_range(0.0..std::f64::consts::TAU));
        }
        // Normalize to unit variance (Var of sum of w_i cos(...) with random
        // phases is Σ w_i² / 2).
        let var: f64 = weights.iter().map(|w| w * w).sum::<f64>() / 2.0;
        let scale = 1.0 / var.sqrt();
        weights.iter_mut().for_each(|w| *w *= scale);
        Self { weights, freq_x, freq_y, freq_t, phases }
    }

    /// Evaluate the field at `(x, y, t)`.
    pub fn eval(&self, x: f64, y: f64, t: f64) -> f64 {
        let mut s = 0.0;
        for i in 0..self.weights.len() {
            s += self.weights[i]
                * (self.freq_x[i] * x + self.freq_y[i] * y + self.freq_t[i] * t + self.phases[i]).cos();
        }
        s
    }
}

/// Synthetic elevation surface over the domain (km): a mountain ridge along
/// the northern edge of the domain, loosely mimicking the Alps bordering the
/// Po valley.
pub fn elevation_km(domain: &Domain, p: &Point) -> f64 {
    let v = (p.y - domain.y0) / domain.height();
    let u = (p.x - domain.x0) / domain.width();
    let ridge = (2.5 * (v - 0.55).max(0.0)).powi(2) * 3.0;
    let foothills = 0.2 * ((6.0 * u).sin() * 0.5 + 0.5) * v;
    ridge + foothills
}

/// Regular grid of observation locations (a stand-in for the 0.1° CAMS grid),
/// inset slightly from the domain boundary.
pub fn observation_grid(domain: &Domain, nx: usize, ny: usize) -> Vec<Point> {
    let mut pts = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let x = domain.x0 + domain.width() * (i as f64 + 0.5) / nx as f64;
            let y = domain.y0 + domain.height() * (j as f64 + 0.5) / ny as f64;
            pts.push(Point::new(x, y));
        }
    }
    pts
}

/// Generate a synthetic multivariate pollution-like dataset on `grid`
/// locations over `nt` time steps.
///
/// The response variables mimic (PM2.5, PM10, O3): strong positive coupling
/// between the first two, negative coupling with the third, negative elevation
/// effects on particulate matter and a positive one on ozone — the structure
/// the paper reports in Sec. VI.
pub fn generate_pollution_dataset(
    domain: &Domain,
    grid: &[Point],
    nt: usize,
    seed: u64,
) -> (Vec<Observation>, GroundTruth) {
    let nv = 3;
    let hyper = ModelHyper {
        range_s: vec![0.35 * domain.width(); nv],
        range_t: vec![6.0; nv],
        sigmas: vec![1.0, 1.1, 0.9],
        // Strong PM2.5–PM10 coupling, negative coupling of O3 with both.
        lambdas: vec![0.95, -0.45, -0.25],
        noise_prec: vec![25.0, 25.0, 25.0],
    };
    let elevation_effects = vec![-0.45, -0.55, 1.27];
    let intercepts = vec![12.0, 18.0, 45.0];
    let noise_sd: Vec<f64> = hyper.noise_prec.iter().map(|p| 1.0 / p.sqrt()).collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let fields: Vec<SmoothField> = (0..nv)
        .map(|i| SmoothField::new(&mut rng, hyper.range_s[i], hyper.range_t[i], 48))
        .collect();
    let lambda = hyper.lambda_matrix();

    let mut observations = Vec::with_capacity(nv * nt * grid.len());
    for t in 0..nt {
        for p in grid {
            let elev = elevation_km(domain, p);
            let u: Vec<f64> = fields.iter().map(|f| f.eval(p.x, p.y, t as f64)).collect();
            for k in 0..nv {
                // Coregional mixing of the latent fields.
                let mut latent = 0.0;
                for l in 0..=k {
                    latent += lambda[(k, l)] * u[l];
                }
                let noise = rng.random_range(-1.0..1.0) * noise_sd[k] * 1.732; // ~unit-variance uniform
                let value = intercepts[k] + elevation_effects[k] * elev + latent + noise;
                observations.push(Observation {
                    var: k,
                    t,
                    loc: *p,
                    covariates: vec![1.0, elev],
                    value,
                });
            }
        }
    }
    (observations, GroundTruth { hyper, elevation_effects, intercepts, noise_sd })
}


/// A deterministic stream of arriving observation slices — the synthetic
/// stand-in for a live feed (e.g. hourly CAMS updates) driving a
/// [`StreamingWindow`](../../dalia_core/struct.StreamingWindow.html).
///
/// The source reproduces [`generate_pollution_dataset`] slice by slice:
/// `StreamingSource::new(domain, grid, seed)` followed by `nt` calls to
/// [`next_slice`](Self::next_slice) yields exactly the observations of
/// `generate_pollution_dataset(domain, grid, nt, seed)`, in the same order
/// with the same values — so a streaming consumer and a batch refit see
/// bit-identical data, which is what the streaming parity tests rely on.
pub struct StreamingSource {
    domain: Domain,
    grid: Vec<Point>,
    fields: Vec<SmoothField>,
    truth: GroundTruth,
    rng: StdRng,
    next_t: usize,
}

impl StreamingSource {
    /// Open a trivariate pollution stream over `grid` (same ground-truth
    /// structure as [`generate_pollution_dataset`]).
    pub fn new(domain: &Domain, grid: &[Point], seed: u64) -> Self {
        let nv = 3;
        let hyper = ModelHyper {
            range_s: vec![0.35 * domain.width(); nv],
            range_t: vec![6.0; nv],
            sigmas: vec![1.0, 1.1, 0.9],
            lambdas: vec![0.95, -0.45, -0.25],
            noise_prec: vec![25.0, 25.0, 25.0],
        };
        let elevation_effects = vec![-0.45, -0.55, 1.27];
        let intercepts = vec![12.0, 18.0, 45.0];
        let noise_sd: Vec<f64> = hyper.noise_prec.iter().map(|p| 1.0 / p.sqrt()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let fields: Vec<SmoothField> = (0..nv)
            .map(|i| SmoothField::new(&mut rng, hyper.range_s[i], hyper.range_t[i], 48))
            .collect();
        Self {
            domain: *domain,
            grid: grid.to_vec(),
            fields,
            truth: GroundTruth { hyper, elevation_effects, intercepts, noise_sd },
            rng,
            next_t: 0,
        }
    }

    /// Ground truth shared by every slice the source will ever emit.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Number of slices emitted so far (the absolute time index of the slice
    /// the next [`next_slice`](Self::next_slice) call produces).
    pub fn slices_emitted(&self) -> usize {
        self.next_t
    }

    /// Number of observations in every slice (`3 · grid.len()`).
    pub fn slice_len(&self) -> usize {
        3 * self.grid.len()
    }

    /// The next arriving slice, with observations tagged with their absolute
    /// time index from the start of the stream.
    pub fn next_slice(&mut self) -> Vec<Observation> {
        let t = self.next_t;
        self.next_t += 1;
        self.slice_tagged(t, t)
    }

    /// The next arriving slice, re-tagged with a *window-relative* time index
    /// — what `StreamingWindow::append_slices` expects once old slices have
    /// been retired and the window's time axis no longer starts at the
    /// stream's origin. The latent field still evolves along the stream's
    /// absolute clock.
    pub fn next_slice_for(&mut self, window_t: usize) -> Vec<Observation> {
        let t = self.next_t;
        self.next_t += 1;
        self.slice_tagged(t, window_t)
    }

    fn slice_tagged(&mut self, stream_t: usize, tag_t: usize) -> Vec<Observation> {
        let nv = self.fields.len();
        let lambda = self.truth.hyper.lambda_matrix();
        let mut slice = Vec::with_capacity(nv * self.grid.len());
        for p in &self.grid {
            let elev = elevation_km(&self.domain, p);
            let u: Vec<f64> =
                self.fields.iter().map(|f| f.eval(p.x, p.y, stream_t as f64)).collect();
            for k in 0..nv {
                let mut latent = 0.0;
                for l in 0..=k {
                    latent += lambda[(k, l)] * u[l];
                }
                let noise =
                    self.rng.random_range(-1.0..1.0) * self.truth.noise_sd[k] * 1.732;
                let value =
                    self.truth.intercepts[k] + self.truth.elevation_effects[k] * elev + latent + noise;
                slice.push(Observation {
                    var: k,
                    t: tag_t,
                    loc: *p,
                    covariates: vec![1.0, elev],
                    value,
                });
            }
        }
        slice
    }
}

/// Generate a univariate spatio-temporal dataset with a known fixed effect
/// (used by the quickstart example and the recovery integration tests).
pub fn generate_univariate_dataset(
    domain: &Domain,
    n_locations: usize,
    nt: usize,
    beta: f64,
    seed: u64,
) -> (Vec<Observation>, GroundTruth) {
    let hyper = ModelHyper {
        range_s: vec![0.4 * domain.width()],
        range_t: vec![4.0],
        sigmas: vec![1.0],
        lambdas: vec![],
        noise_prec: vec![50.0],
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let field = SmoothField::new(&mut rng, hyper.range_s[0], hyper.range_t[0], 32);
    let noise_sd = 1.0 / hyper.noise_prec[0].sqrt();

    let mut observations = Vec::with_capacity(n_locations * nt);
    for t in 0..nt {
        for _ in 0..n_locations {
            let x = rng.random_range(domain.x0 + 0.01..domain.x1 - 0.01);
            let y = rng.random_range(domain.y0 + 0.01..domain.y1 - 0.01);
            let covariate = rng.random_range(-1.0..1.0);
            let noise = rng.random_range(-1.0..1.0) * noise_sd * 1.732;
            observations.push(Observation {
                var: 0,
                t,
                loc: Point::new(x, y),
                covariates: vec![covariate],
                value: beta * covariate + field.eval(x, y, t as f64) + noise,
            });
        }
    }
    (
        observations,
        GroundTruth {
            hyper,
            elevation_effects: vec![beta],
            intercepts: vec![0.0],
            noise_sd: vec![noise_sd],
        },
    )
}

/// Ground truth of a synthetic count (Poisson) or exceedance (binomial)
/// dataset.
#[derive(Clone, Debug)]
pub struct CountGroundTruth {
    /// The latent-field hyperparameters used for generation. The noise
    /// precision component is inert under non-Gaussian likelihoods (pinned
    /// only by its prior) but kept for θ-packing compatibility.
    pub hyper: ModelHyper,
    /// Intercept of the log-rate / logit.
    pub intercept: f64,
    /// Elevation coefficient of the log-rate / logit.
    pub elevation_effect: f64,
    /// Per-observation scales, aligned with the observation list: exposures
    /// `E_i` for Poisson, trial counts `n_i` for binomial.
    pub scales: Vec<f64>,
}

/// Draw one Poisson(λ) variate.
///
/// Knuth's product-of-uniforms method below λ = 30, a rounded-and-clamped
/// normal approximation (Box–Muller) above — accurate enough for synthetic
/// data at the rates these generators produce, and built only on the uniform
/// generator available here.
pub fn sample_poisson(rng: &mut StdRng, lambda: f64) -> f64 {
    assert!(lambda >= 0.0 && lambda.is_finite(), "sample_poisson: bad rate {lambda}");
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= 1.0 - rng.random();
            if p <= l {
                return k as f64;
            }
            k += 1;
        }
    }
    let u1: f64 = 1.0 - rng.random();
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (lambda + lambda.sqrt() * z).round().max(0.0)
}

/// Generate a univariate spatio-temporal **count** dataset: disease counts
/// (or pollution-threshold exceedance counts) on `grid` locations over `nt`
/// time steps, `y_i ~ Poisson(E_i · exp(η_i))` with log-rate
/// `η = intercept + elevation_effect · elev + u(s, t)` and per-location
/// exposures `E_i` (population at risk) varying across the grid — the
/// paper's Fig. 8 style epidemic/air-quality workload.
///
/// Returns `(observations, truth)`; feed `truth.scales` to
/// `CoregionalModel::with_observation_scales` as the exposures.
pub fn generate_count_dataset(
    domain: &Domain,
    grid: &[Point],
    nt: usize,
    seed: u64,
) -> (Vec<Observation>, CountGroundTruth) {
    let hyper = ModelHyper {
        range_s: vec![0.4 * domain.width()],
        range_t: vec![4.0],
        sigmas: vec![0.6],
        lambdas: vec![],
        noise_prec: vec![1.0],
    };
    let intercept = -0.3;
    let elevation_effect = -0.5;

    let mut rng = StdRng::seed_from_u64(seed);
    let field = SmoothField::new(&mut rng, hyper.range_s[0], hyper.range_t[0], 32);
    // Population-at-risk exposures, constant over time per location.
    let exposures_per_loc: Vec<f64> =
        (0..grid.len()).map(|_| rng.random_range(20.0..80.0)).collect();

    let mut observations = Vec::with_capacity(grid.len() * nt);
    let mut scales = Vec::with_capacity(grid.len() * nt);
    for t in 0..nt {
        for (j, p) in grid.iter().enumerate() {
            let elev = elevation_km(domain, p);
            let eta =
                intercept + elevation_effect * elev + hyper.sigmas[0] * field.eval(p.x, p.y, t as f64);
            let exposure = exposures_per_loc[j];
            let y = sample_poisson(&mut rng, exposure * eta.exp());
            observations.push(Observation {
                var: 0,
                t,
                loc: *p,
                covariates: vec![1.0, elev],
                value: y,
            });
            scales.push(exposure);
        }
    }
    (observations, CountGroundTruth { hyper, intercept, elevation_effect, scales })
}

/// Generate a univariate spatio-temporal **exceedance** dataset:
/// `y_i ~ Binomial(n_i, σ(η_i))` successes out of `n_i` monitoring readings
/// per cell (how many of the day's readings exceeded a threshold), with
/// logit `η = intercept + elevation_effect · elev + u(s, t)`.
///
/// Returns `(observations, truth)`; feed `truth.scales` to
/// `CoregionalModel::with_observation_scales` as the trial counts.
pub fn generate_exceedance_dataset(
    domain: &Domain,
    grid: &[Point],
    nt: usize,
    seed: u64,
) -> (Vec<Observation>, CountGroundTruth) {
    let hyper = ModelHyper {
        range_s: vec![0.4 * domain.width()],
        range_t: vec![4.0],
        sigmas: vec![0.8],
        lambdas: vec![],
        noise_prec: vec![1.0],
    };
    let intercept = 0.2;
    let elevation_effect = -0.8;

    let mut rng = StdRng::seed_from_u64(seed);
    let field = SmoothField::new(&mut rng, hyper.range_s[0], hyper.range_t[0], 32);
    let trials_per_loc: Vec<f64> =
        (0..grid.len()).map(|_| rng.random_range(25.0f64..60.0).floor()).collect();

    let mut observations = Vec::with_capacity(grid.len() * nt);
    let mut scales = Vec::with_capacity(grid.len() * nt);
    for t in 0..nt {
        for (j, p) in grid.iter().enumerate() {
            let elev = elevation_km(domain, p);
            let eta =
                intercept + elevation_effect * elev + hyper.sigmas[0] * field.eval(p.x, p.y, t as f64);
            let prob = 1.0 / (1.0 + (-eta).exp());
            let n = trials_per_loc[j];
            let mut y = 0.0;
            for _ in 0..(n as usize) {
                if rng.random() < prob {
                    y += 1.0;
                }
            }
            observations.push(Observation {
                var: 0,
                t,
                loc: *p,
                covariates: vec![1.0, elev],
                value: y,
            });
            scales.push(n);
        }
    }
    (observations, CountGroundTruth { hyper, intercept, elevation_effect, scales })
}

/// Empirical Pearson correlation between two equally long samples.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    cov / (va * vb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_field_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = SmoothField::new(&mut rng, 1.0, 5.0, 64);
        let mut vals = Vec::new();
        for i in 0..500 {
            let x = (i % 25) as f64 * 0.2;
            let y = (i / 25) as f64 * 0.3;
            vals.push(f.eval(x, y, (i % 7) as f64));
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(var > 0.2 && var < 3.0, "field variance {var} implausible");
    }

    #[test]
    fn pollution_dataset_has_expected_structure() {
        let domain = Domain::northern_italy_like();
        let grid = observation_grid(&domain, 8, 5);
        let (obs, truth) = generate_pollution_dataset(&domain, &grid, 6, 7);
        assert_eq!(obs.len(), 3 * 6 * 40);
        assert_eq!(truth.elevation_effects.len(), 3);
        // All observations carry intercept + elevation covariates.
        assert!(obs.iter().all(|o| o.covariates.len() == 2));
        // PM-like variables should be strongly positively correlated; O3
        // negatively correlated with them (after removing the elevation trend
        // is not even needed for the sign).
        let series = |k: usize| -> Vec<f64> {
            obs.iter().filter(|o| o.var == k).map(|o| o.value).collect()
        };
        let pm25 = series(0);
        let pm10 = series(1);
        let o3 = series(2);
        assert!(correlation(&pm25, &pm10) > 0.6);
        assert!(correlation(&pm25, &o3) < 0.1);
    }

    #[test]
    fn pollution_dataset_is_deterministic_per_seed() {
        let domain = Domain::northern_italy_like();
        let grid = observation_grid(&domain, 4, 3);
        let (a, _) = generate_pollution_dataset(&domain, &grid, 3, 11);
        let (b, _) = generate_pollution_dataset(&domain, &grid, 3, 11);
        let (c, _) = generate_pollution_dataset(&domain, &grid, 3, 12);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.value == y.value));
        assert!(a.iter().zip(&c).any(|(x, y)| x.value != y.value));
    }

    #[test]
    fn elevation_is_higher_in_the_north() {
        let domain = Domain::northern_italy_like();
        let south = elevation_km(&domain, &Point::new(10.0, 44.2));
        let north = elevation_km(&domain, &Point::new(10.0, 46.4));
        assert!(north > south);
        assert!(south >= 0.0);
    }

    #[test]
    fn univariate_dataset_shapes() {
        let domain = Domain::unit_square();
        let (obs, truth) = generate_univariate_dataset(&domain, 20, 4, 1.5, 5);
        assert_eq!(obs.len(), 80);
        assert!(obs.iter().all(|o| o.var == 0 && o.t < 4));
        assert_eq!(truth.elevation_effects[0], 1.5);
    }

    #[test]
    fn observation_grid_is_inside_domain() {
        let domain = Domain::northern_italy_like();
        let grid = observation_grid(&domain, 10, 6);
        assert_eq!(grid.len(), 60);
        assert!(grid.iter().all(|p| domain.contains(p)));
    }

    #[test]
    fn poisson_sampler_has_correct_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        for &lambda in &[0.5, 4.0, 12.0, 80.0] {
            let n = 4000;
            let draws: Vec<f64> = (0..n).map(|_| sample_poisson(&mut rng, lambda)).collect();
            assert!(draws.iter().all(|&y| y >= 0.0 && y.fract() == 0.0));
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var =
                draws.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64;
            // Mean and variance of Poisson(λ) are both λ; 5-sigma-ish bands.
            let tol = 5.0 * (lambda / n as f64).sqrt() + 0.05 * lambda;
            assert!((mean - lambda).abs() < tol, "λ={lambda}: mean {mean}");
            assert!((var - lambda).abs() < 0.2 * lambda + 0.5, "λ={lambda}: var {var}");
        }
    }

    #[test]
    fn count_dataset_has_valid_counts_and_exposures() {
        let domain = Domain::unit_square();
        let grid = observation_grid(&domain, 5, 4);
        let (obs, truth) = generate_count_dataset(&domain, &grid, 4, 9);
        assert_eq!(obs.len(), 80);
        assert_eq!(truth.scales.len(), obs.len());
        assert!(obs.iter().all(|o| o.value >= 0.0 && o.value.fract() == 0.0));
        assert!(truth.scales.iter().all(|&e| (20.0..80.0).contains(&e)));
        // Determinism per seed.
        let (again, _) = generate_count_dataset(&domain, &grid, 4, 9);
        assert!(obs.iter().zip(&again).all(|(a, b)| a.value == b.value));
        let (other, _) = generate_count_dataset(&domain, &grid, 4, 10);
        assert!(obs.iter().zip(&other).any(|(a, b)| a.value != b.value));
    }

    #[test]
    fn exceedance_dataset_respects_trial_counts() {
        let domain = Domain::unit_square();
        let grid = observation_grid(&domain, 5, 4);
        let (obs, truth) = generate_exceedance_dataset(&domain, &grid, 3, 5);
        assert_eq!(obs.len(), 60);
        assert_eq!(truth.scales.len(), obs.len());
        for (o, &n) in obs.iter().zip(&truth.scales) {
            assert!(n >= 1.0 && n.fract() == 0.0, "bad trial count {n}");
            assert!(
                o.value >= 0.0 && o.value <= n && o.value.fract() == 0.0,
                "count {} outside [0, {n}]",
                o.value
            );
        }
    }

    #[test]
    fn streaming_source_matches_batch_prefix_bitwise() {
        let domain = Domain::unit_square();
        let grid = observation_grid(&domain, 4, 3);
        let nt = 5;
        let (batch, _) = generate_pollution_dataset(&domain, &grid, nt, 7);
        let mut stream = StreamingSource::new(&domain, &grid, 7);
        let mut streamed = Vec::new();
        for _ in 0..nt {
            streamed.extend(stream.next_slice());
        }
        assert_eq!(stream.slices_emitted(), nt);
        assert_eq!(batch.len(), streamed.len());
        for (a, b) in batch.iter().zip(&streamed) {
            assert_eq!(a.var, b.var);
            assert_eq!(a.t, b.t);
            assert_eq!(a.value.to_bits(), b.value.to_bits(), "stream diverged from batch");
        }
    }

    #[test]
    fn streaming_source_retags_window_relative_slices() {
        let domain = Domain::unit_square();
        let grid = observation_grid(&domain, 3, 3);
        let mut a = StreamingSource::new(&domain, &grid, 11);
        let mut b = StreamingSource::new(&domain, &grid, 11);
        let _ = a.next_slice();
        let _ = b.next_slice();
        let absolute = a.next_slice();
        let retagged = b.next_slice_for(4);
        assert_eq!(a.slice_len(), absolute.len());
        for (x, y) in absolute.iter().zip(&retagged) {
            assert_eq!(x.t, 1);
            assert_eq!(y.t, 4, "window-relative tag must be honored");
            assert_eq!(x.value.to_bits(), y.value.to_bits(), "retagging must not change values");
        }
    }

    #[test]
    fn correlation_helper_sanity() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![2.0, 4.0, 6.0, 8.0];
        let c = vec![4.0, 3.0, 2.0, 1.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
    }
}
