//! Incremental BTA factorization for streaming temporal windows.
//!
//! The BTA structure is indexed by time (`n = n_t` diagonal blocks, one per
//! temporal slab), so a sliding observation window maps onto appending and
//! retiring *block columns*. Block Cholesky elimination proceeds strictly
//! left-to-right: factor column `i` depends only on assembled blocks with
//! column index `≤ i`, so when the window grows at the tail the leading
//! factor columns are unchanged by construction and only the trailing
//! columns need to be re-eliminated.
//!
//! ```text
//!        retained           recomputed
//!   ┌ L_00               │              ┐
//!   │ L_10  L_11         │              │   append k slices: re-eliminate
//!   │       L_21  ████   │              │   from column c0 = n_old − 1
//!   │             ████   │ ████         │   (its assembled diagonal block
//!   │                    │ ████  ████   │   carries the temporal boundary
//!   │ ████  ████  ████   │ ████  ████ █ │   condition and changes), plus
//!   └────────────────────┴──────────────┘   the whole arrow row and tip.
//! ```
//!
//! Three regions must be recomputed when `k` new slices arrive:
//!
//! 1. **Column `c0 = n_old − 1` onward.** The assembled temporal matrices
//!    (`M0`, `M1`, `M2` in `dalia-mesh`) carry boundary-modified entries at
//!    the *last* time index, so appending slices changes the previously-last
//!    assembled diagonal block. Columns `0 .. c0` are bitwise unchanged.
//! 2. **The whole arrow row.** Every observation contributes to the arrow
//!    (fixed-effect) rows, and the assembly's per-row duplicate sort is not
//!    order-stable under a growing observation list — so the arrow panels
//!    are cheaply recomputed from the new assembly against the *retained*
//!    `L_diag`/`L_sub` blocks (`O(n · a · b²)` with `a ≪ b`).
//! 3. **The tip.** It accumulates one Schur update per column.
//!
//! [`pobtaf_extend`] performs exactly the kernel calls the cold
//! factorization [`crate::pobtaf`] would issue for the recomputed regions,
//! with bitwise-identical operands, so the extended factor is **bitwise
//! identical** to a cold full factorization of the new window — at any
//! thread count, since the forked schedule (mirroring
//! [`crate::pobtaf_parallel`]) only moves disjoint-output subtasks between
//! workers. Cost is `O((k + 1) b³ + n a b²)` against the cold `O(n b³)`.
//!
//! [`pobtaf_retire`] handles the other edge of the window: dropping leading
//! block columns invalidates *every* factor column (column 0's Schur
//! complement cascades through the entire elimination), so retirement is a
//! full refactorization that recycles the factor's storage in place. The
//! streaming session layer amortizes this by retiring in batches while
//! appending incrementally.

use crate::bta::{BtaCholesky, BtaMatrix};
use crate::distributed::{run2, run3, InteriorPacks, InteriorSchedule, STEAL_MIN_BLOCK};
use crate::SerinvError;
use dalia_la::blas::{self, Side, Trans, Triangle};
use dalia_la::chol;

/// Reusable pack-buffer lanes for the streaming kernels: one per concurrent
/// subtask of the forked column schedule, so a warm streaming session
/// allocates nothing per window update. The lanes are the same four the
/// stealable partition interiors use.
pub struct StreamPacks {
    packs: InteriorPacks,
}

impl StreamPacks {
    /// Fresh (cold) pack lanes.
    pub fn new() -> Self {
        StreamPacks { packs: InteriorPacks::new() }
    }

    /// Drop any cached packed panels in every lane. The streaming kernels
    /// rewrite factor blocks in place on every extend/retire, so they call
    /// this defensively at entry; with the lanes' panel caches disabled (the
    /// default) it is a no-op.
    pub fn invalidate_panels(&mut self) {
        self.packs.invalidate_panels();
    }
}

impl Default for StreamPacks {
    fn default() -> Self {
        Self::new()
    }
}

/// Extend a BTA Cholesky factor in place to a window that grew by trailing
/// block columns, re-factorizing only the affected region.
///
/// `factor` must hold the factor of the *old* window (its leading
/// `n_old − 1` diagonal columns and sub-diagonal blocks are retained
/// verbatim), and `a_new` the newly assembled matrix of the *new* window:
/// same `b` and `a`, `a_new.n > n_old`, and assembled diagonal blocks
/// `0 .. n_old − 1` and sub-diagonal blocks `0 .. n_old − 2` bitwise equal
/// to the old window's (which the temporal assembly guarantees — only the
/// boundary block changes). The arrow row, tip, and everything from column
/// `n_old − 1` may differ arbitrarily.
///
/// The result is bitwise identical to `pobtaf(a_new)`.
pub fn pobtaf_extend(factor: &mut BtaCholesky, a_new: &BtaMatrix) -> Result<(), SerinvError> {
    let mut packs = StreamPacks::new();
    pobtaf_extend_scheduled(factor, a_new, &mut packs, InteriorSchedule::Stealable)
}

/// [`pobtaf_extend`] with warm [`StreamPacks`] lanes and an explicit
/// [`InteriorSchedule`]. The two schedules produce **bitwise identical**
/// factors; `Stealable` forks the disjoint-output subtasks of each
/// recomputed column onto the pool exactly as [`crate::pobtaf_parallel`]
/// does.
pub fn pobtaf_extend_scheduled(
    factor: &mut BtaCholesky,
    a_new: &BtaMatrix,
    packs: &mut StreamPacks,
    sched: InteriorSchedule,
) -> Result<(), SerinvError> {
    let m = &mut factor.blocks;
    assert_eq!(
        (m.b, m.a),
        (a_new.b, a_new.a),
        "pobtaf_extend: block structure mismatch between factor and new window"
    );
    let n_old = m.n;
    let n_new = a_new.n;
    assert!(n_old >= 1, "pobtaf_extend: the old factor must have at least one block column");
    assert!(n_new > n_old, "pobtaf_extend: the new window must add at least one block column");
    let c0 = n_old - 1;
    let has_arrow = m.a > 0;
    let split = sched == InteriorSchedule::Stealable
        && m.b >= STEAL_MIN_BLOCK
        && dalia_pool::current_num_threads() > 1;
    // The extend rewrites factor blocks in place: stale packed panels from a
    // previous window must not survive into this one.
    packs.invalidate_panels();
    let packs = &mut packs.packs;

    // Grow the factor storage and overwrite the recomputed region with the
    // newly assembled values; columns 0 .. c0 keep their factor values.
    for i in c0..n_new {
        if i < n_old {
            m.diag[i].as_mut_slice().copy_from_slice(a_new.diag[i].as_slice());
        } else {
            m.diag.push(a_new.diag[i].clone());
        }
    }
    for i in (n_old - 1)..(n_new - 1) {
        m.sub.push(a_new.sub[i].clone());
    }
    for i in 0..n_new {
        if i < n_old {
            m.arrow[i].as_mut_slice().copy_from_slice(a_new.arrow[i].as_slice());
        } else {
            m.arrow.push(a_new.arrow[i].clone());
        }
    }
    m.tip.as_mut_slice().copy_from_slice(a_new.tip.as_slice());
    m.n = n_new;

    // Recompute the arrow panels of the retained columns against the
    // retained L_diag / L_sub, replaying the cold kernel sequence for each:
    // C_i -= L_{T,i-1} L_{i,i-1}ᵀ, then C_i := C_i L_ii^{-ᵀ}, then the tip
    // update T -= C_i C_iᵀ — operands bitwise equal to the cold loop's.
    if has_arrow {
        for i in 0..c0 {
            if i > 0 {
                let (head, tail) = m.arrow.split_at_mut(i);
                blas::gemm_with(
                    &mut packs.left,
                    Trans::No,
                    Trans::Yes,
                    -1.0,
                    &head[i - 1],
                    &m.sub[i - 1],
                    1.0,
                    &mut tail[0],
                );
            }
            blas::trsm_with(
                &mut packs.arrow,
                Side::Right,
                Triangle::Lower,
                Trans::Yes,
                &m.diag[i],
                &mut m.arrow[i],
            );
            blas::syrk_full_with(&mut packs.schur, Trans::No, -1.0, &m.arrow[i], 1.0, &mut m.tip);
        }
    }

    // Replay the last retained column's trailing updates onto the first
    // recomputed column (what cold column c0 − 1 contributed to column c0).
    if c0 > 0 {
        let (sub_head, _) = m.sub.split_at(c0);
        let b_prev = &sub_head[c0 - 1];
        let (_, diag_tail) = m.diag.split_at_mut(c0);
        blas::syrk_full_with(&mut packs.diag, Trans::No, -1.0, b_prev, 1.0, &mut diag_tail[0]);
        if has_arrow {
            let (arrow_head, arrow_tail) = m.arrow.split_at_mut(c0);
            blas::gemm_with(
                &mut packs.left,
                Trans::No,
                Trans::Yes,
                -1.0,
                &arrow_head[c0 - 1],
                b_prev,
                1.0,
                &mut arrow_tail[0],
            );
        }
    }

    factor_columns(m, c0, packs, split)
}

/// Retire leading block columns: refactorize `a_new` (the assembled matrix
/// of the shrunk window) into `factor` in place, recycling its storage.
///
/// Unlike the append edge, retiring the *head* of the window invalidates
/// every factor column — column 0's Schur complement feeds column 1's, and
/// so on through the entire elimination — so there is no trailing-block
/// shortcut and this is a full refactorization. It exists so a streaming
/// session keeps one factor allocation (and one set of pack lanes) alive
/// across the whole append/retire lifecycle, and so retirement cost can be
/// amortized over many cheap [`pobtaf_extend`] updates.
///
/// The result is bitwise identical to `pobtaf(a_new)`.
pub fn pobtaf_retire(factor: &mut BtaCholesky, a_new: &BtaMatrix) -> Result<(), SerinvError> {
    let mut packs = StreamPacks::new();
    pobtaf_retire_scheduled(factor, a_new, &mut packs, InteriorSchedule::Stealable)
}

/// [`pobtaf_retire`] with warm [`StreamPacks`] lanes and an explicit
/// [`InteriorSchedule`]; the schedules are bitwise identical.
pub fn pobtaf_retire_scheduled(
    factor: &mut BtaCholesky,
    a_new: &BtaMatrix,
    packs: &mut StreamPacks,
    sched: InteriorSchedule,
) -> Result<(), SerinvError> {
    let m = &mut factor.blocks;
    assert_eq!(
        (m.b, m.a),
        (a_new.b, a_new.a),
        "pobtaf_retire: block structure mismatch between factor and new window"
    );
    assert!(
        a_new.n <= m.n,
        "pobtaf_retire: the new window must not be larger than the factor (use pobtaf_extend)"
    );
    let split = sched == InteriorSchedule::Stealable
        && m.b >= STEAL_MIN_BLOCK
        && a_new.n > 1
        && dalia_pool::current_num_threads() > 1;
    // Retirement rewrites every factor block in place: stale packed panels
    // from the previous window must not survive into this one.
    packs.invalidate_panels();

    // Shrink the storage to the new window, keeping the allocations of the
    // surviving blocks, then overwrite with the new assembled values.
    m.diag.truncate(a_new.n);
    m.sub.truncate(a_new.n.saturating_sub(1));
    m.arrow.truncate(a_new.n);
    m.n = a_new.n;
    m.copy_values_from(a_new);

    factor_columns(m, 0, &mut packs.packs, split)
}

/// Eliminate block columns `start .. n` of `m` in place (plus the arrow
/// tip), assuming columns `0 .. start` already hold factor values and the
/// working blocks of column `start` carry all Schur updates from them.
///
/// With `split == false` this issues exactly the kernel sequence of the
/// sequential `factor_in_place` loop; with `split == true` it forks the
/// disjoint-output subtasks of each column as pool join groups exactly as
/// [`crate::pobtaf_parallel`] does — the kernel calls and operands are
/// identical either way, so the factors match bitwise.
fn factor_columns(
    m: &mut BtaMatrix,
    start: usize,
    packs: &mut InteriorPacks,
    split: bool,
) -> Result<(), SerinvError> {
    let n = m.n;
    let has_arrow = m.a > 0;
    for i in start..n {
        // D_i = L_ii L_iiᵀ — the critical path of the column.
        chol::potrf_with(&mut packs.diag, &mut m.diag[i])
            .map_err(|e| SerinvError::Factorization { block: i, source: e })?;

        // B_i := B_i L_ii⁻ᵀ ∥ C_i := C_i L_ii⁻ᵀ (disjoint outputs).
        {
            let InteriorPacks { diag: pk_diag, arrow: pk_arrow, .. } = packs;
            let l_ii = &m.diag[i];
            let sub_rhs = if i + 1 < n { Some(&mut m.sub[i]) } else { None };
            let arrow_rhs = if has_arrow { Some(&mut m.arrow[i]) } else { None };
            run2(
                split,
                move || {
                    if let Some(bi) = sub_rhs {
                        blas::trsm_with(pk_diag, Side::Right, Triangle::Lower, Trans::Yes, l_ii, bi);
                    }
                },
                move || {
                    if let Some(ci) = arrow_rhs {
                        blas::trsm_with(pk_arrow, Side::Right, Triangle::Lower, Trans::Yes, l_ii, ci);
                    }
                },
            );
        }

        // Trailing updates: D_{i+1}, C_{i+1} and the tip are disjoint.
        {
            let InteriorPacks { diag: pk_diag, left: pk_left, schur: pk_schur, .. } = packs;
            let (_, diag_tail) = m.diag.split_at_mut(i + 1);
            let arrow_mid = (i + 1).min(m.arrow.len());
            let (arrow_head, arrow_tail) = m.arrow.split_at_mut(arrow_mid);
            let b_i = if i + 1 < n { Some(&m.sub[i]) } else { None };
            let c_i = if has_arrow { Some(&arrow_head[i]) } else { None };
            let next_diag = if i + 1 < n { Some(&mut diag_tail[0]) } else { None };
            let next_arrow = if has_arrow && i + 1 < n { Some(&mut arrow_tail[0]) } else { None };
            let tip = if has_arrow { Some(&mut m.tip) } else { None };
            run3(
                split,
                move || {
                    if let (Some(nd), Some(bi)) = (next_diag, b_i) {
                        blas::syrk_full_with(pk_diag, Trans::No, -1.0, bi, 1.0, nd);
                    }
                },
                move || {
                    if let (Some(na), Some(ci), Some(bi)) = (next_arrow, c_i, b_i) {
                        blas::gemm_with(pk_left, Trans::No, Trans::Yes, -1.0, ci, bi, 1.0, na);
                    }
                },
                move || {
                    if let (Some(t), Some(ci)) = (tip, c_i) {
                        blas::syrk_full_with(pk_schur, Trans::No, -1.0, ci, 1.0, t);
                    }
                },
            );
        }
    }
    if has_arrow {
        chol::potrf_with(&mut packs.diag, &mut m.tip)
            .map_err(|e| SerinvError::Factorization { block: n, source: e })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::pobtaf;
    use crate::testing::test_matrix;
    use dalia_la::Matrix;

    fn assert_factor_bits_eq(a: &BtaCholesky, b: &BtaCholesky, tag: &str) {
        let (x, y) = (&a.blocks, &b.blocks);
        assert_eq!((x.n, x.b, x.a), (y.n, y.b, y.a), "{tag}: structure");
        let pairs = |u: &Matrix, v: &Matrix, what: &str| {
            for (i, (p, q)) in u.as_slice().iter().zip(v.as_slice()).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "{tag}: {what} entry {i}: {p} vs {q}");
            }
        };
        for (k, (u, v)) in x.diag.iter().zip(&y.diag).enumerate() {
            pairs(u, v, &format!("diag[{k}]"));
        }
        for (k, (u, v)) in x.sub.iter().zip(&y.sub).enumerate() {
            pairs(u, v, &format!("sub[{k}]"));
        }
        for (k, (u, v)) in x.arrow.iter().zip(&y.arrow).enumerate() {
            pairs(u, v, &format!("arrow[{k}]"));
        }
        pairs(&x.tip, &y.tip, "tip");
    }

    /// The old window's assembled matrix: leading diagonal and sub-diagonal
    /// blocks bitwise equal to the new window's (what the temporal assembly
    /// guarantees), but a different boundary block, arrow row and tip — the
    /// regions `pobtaf_extend` must recompute from `a_new`.
    fn old_window_of(a_new: &BtaMatrix, n_old: usize) -> BtaMatrix {
        let mut old = BtaMatrix::zeros(n_old, a_new.b, a_new.a);
        for i in 0..n_old {
            old.diag[i] = a_new.diag[i].clone();
        }
        // The old boundary block differs (temporal Neumann condition).
        for i in 0..a_new.b {
            old.diag[n_old - 1][(i, i)] += 0.75;
        }
        for i in 0..n_old - 1 {
            old.sub[i] = a_new.sub[i].clone();
        }
        // The arrow row and tip of the old window differ arbitrarily.
        let other = test_matrix(n_old, a_new.b, a_new.a, 91);
        old.arrow = other.arrow.clone();
        old.tip = other.tip.clone();
        old
    }

    #[test]
    fn extend_matches_cold_factorization_bitwise() {
        for (n_old, n_new, b, a) in [(4, 5, 3, 2), (4, 7, 3, 2), (1, 3, 2, 1), (3, 5, 2, 0)] {
            let a_new = test_matrix(n_new, b, a, 11);
            let a_old = old_window_of(&a_new, n_old);
            let mut f = pobtaf(&a_old).unwrap();
            pobtaf_extend(&mut f, &a_new).unwrap();
            let cold = pobtaf(&a_new).unwrap();
            assert_factor_bits_eq(&f, &cold, &format!("extend {n_old}->{n_new} b={b} a={a}"));
        }
    }

    #[test]
    fn repeated_extends_match_cold_each_step() {
        let (b, a) = (3, 2);
        let full = test_matrix(8, b, a, 23);
        let window_at = |n: usize| {
            let mut w = BtaMatrix::zeros(n, b, a);
            for i in 0..n {
                w.diag[i] = full.diag[i].clone();
            }
            for i in 0..w.b {
                w.diag[n - 1][(i, i)] += 0.5; // boundary block of this window
            }
            for i in 0..n - 1 {
                w.sub[i] = full.sub[i].clone();
            }
            let other = test_matrix(n, b, a, 40 + n as u64);
            w.arrow = other.arrow.clone();
            w.tip = other.tip.clone();
            w
        };
        let mut f = pobtaf(&window_at(3)).unwrap();
        let mut packs = StreamPacks::new();
        for n in 4..=8 {
            let w = window_at(n);
            pobtaf_extend_scheduled(&mut f, &w, &mut packs, InteriorSchedule::Stealable).unwrap();
            let cold = pobtaf(&w).unwrap();
            assert_factor_bits_eq(&f, &cold, &format!("k=1 extend to n={n}"));
        }
    }

    #[test]
    fn retire_matches_cold_factorization_bitwise() {
        let big = test_matrix(7, 3, 2, 3);
        let small = test_matrix(4, 3, 2, 57);
        let mut f = pobtaf(&big).unwrap();
        let mut packs = StreamPacks::new();
        pobtaf_retire_scheduled(&mut f, &small, &mut packs, InteriorSchedule::Stealable).unwrap();
        let cold = pobtaf(&small).unwrap();
        assert_factor_bits_eq(&f, &cold, "retire 7->4");
        // And the retired factor can be extended again (full lifecycle).
        let grown = test_matrix(6, 3, 2, 57);
        let mut a_new = grown.clone();
        for i in 0..4 {
            a_new.diag[i] = small.diag[i].clone();
        }
        for i in 0..3 {
            a_new.sub[i] = small.sub[i].clone();
        }
        // Undo the boundary delta convention: here the "old" boundary block
        // equals the new assembly's, which pobtaf_extend also supports (it
        // overwrites column c0 from a_new regardless).
        pobtaf_extend_scheduled(&mut f, &a_new, &mut packs, InteriorSchedule::Stealable).unwrap();
        let cold2 = pobtaf(&a_new).unwrap();
        assert_factor_bits_eq(&f, &cold2, "extend after retire 4->6");
    }

    #[test]
    fn scheduled_extend_is_bitwise_identical_across_thread_counts() {
        // Blocks above the fork cutoff so the stealable schedule actually
        // splits; 1-thread and 4-thread results must agree bitwise with the
        // sequential cold factorization.
        let (n_old, n_new, b, a) = (3, 5, STEAL_MIN_BLOCK, 4);
        let a_new = test_matrix(n_new, b, a, 13);
        let a_old = old_window_of(&a_new, n_old);
        let cold = pobtaf(&a_new).unwrap();
        for threads in [1usize, 4] {
            let pool = dalia_pool::ThreadPool::new(threads);
            let mut f = pobtaf(&a_old).unwrap();
            pool.install(|| {
                let mut packs = StreamPacks::new();
                pobtaf_extend_scheduled(&mut f, &a_new, &mut packs, InteriorSchedule::Stealable)
            })
            .unwrap();
            assert_factor_bits_eq(&f, &cold, &format!("threads={threads}"));
        }
    }

    #[test]
    fn extend_reuses_leading_allocations() {
        let a_new = test_matrix(6, 3, 2, 11);
        let a_old = old_window_of(&a_new, 4);
        let mut f = pobtaf(&a_old).unwrap();
        let before: Vec<*const f64> = f.blocks.diag.iter().map(|m| m.as_slice().as_ptr()).collect();
        pobtaf_extend(&mut f, &a_new).unwrap();
        for (i, &p) in before.iter().enumerate() {
            assert_eq!(p, f.blocks.diag[i].as_slice().as_ptr(), "diag[{i}] was reallocated");
        }
    }
}
