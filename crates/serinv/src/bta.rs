//! Block-tridiagonal-with-arrowhead (BTA) matrices in block-dense storage.
//!
//! A BTA matrix has `n` diagonal blocks of size `b × b`, sub-diagonal blocks
//! `B_i` coupling consecutive diagonal blocks, an arrow row of blocks
//! `C_i` (size `a × b`) coupling every diagonal block to the arrow tip, and an
//! `a × a` arrow tip `T` (see Fig. 2c of the paper):
//!
//! ```text
//! ┌ D_0  B_0ᵀ              C_0ᵀ ┐
//! │ B_0  D_1   B_1ᵀ        C_1ᵀ │
//! │      B_1   D_2   ⋱     C_2ᵀ │
//! │            ⋱     ⋱          │
//! │ C_0  C_1   C_2   …     T    │
//! └                             ┘
//! ```
//!
//! Only the lower triangle is stored; the matrix is assumed symmetric. The
//! block-dense representation is what enables the GPU-style dense kernels of
//! `dalia-la` to operate on the structured sparsity pattern (at the cost of
//! O(n·b²) memory instead of O(nnz), as discussed in Sec. IV-C of the paper).
//!
//! In the spatio-temporal model the structure parameters map to paper
//! quantities as `n = n_t` (time steps), `b = n_v · n_s` (variates × spatial
//! mesh nodes — the size of one temporal slab of the latent field) and
//! `a = n_v · n_r` (variates × fixed-effect covariates, the arrowhead that
//! couples the fixed effects to every time step). [`BtaMatrix`] is the
//! assembled precision `Q`; [`BtaCholesky`] holds the factor `L` of
//! `Q = L Lᵀ` in the same block layout, from which
//! [`BtaCholesky::logdet`] reads `log |Q| = 2 Σ log L_ii` — one of the three
//! terms of every INLA objective evaluation.

use crate::SerinvError;
use dalia_la::Matrix;

/// Symmetric block-tridiagonal matrix with arrowhead, lower-triangle storage.
#[derive(Clone, Debug)]
pub struct BtaMatrix {
    /// Number of diagonal blocks (`n` = number of time steps).
    pub n: usize,
    /// Size of each diagonal block (`b = n_v · n_s`).
    pub b: usize,
    /// Size of the arrow tip (`a = n_v · n_r`); may be zero (pure BT matrix).
    pub a: usize,
    /// Diagonal blocks `D_0 .. D_{n-1}` (each `b × b`, full storage, symmetric).
    pub diag: Vec<Matrix>,
    /// Sub-diagonal blocks `B_0 .. B_{n-2}` where `B_i` sits at block `(i+1, i)`.
    pub sub: Vec<Matrix>,
    /// Arrow row blocks `C_0 .. C_{n-1}` (each `a × b`).
    pub arrow: Vec<Matrix>,
    /// Arrow tip block (`a × a`).
    pub tip: Matrix,
}

impl BtaMatrix {
    /// Zero BTA matrix with the given block structure.
    pub fn zeros(n: usize, b: usize, a: usize) -> Self {
        assert!(n >= 1, "need at least one diagonal block");
        Self {
            n,
            b,
            a,
            diag: (0..n).map(|_| Matrix::zeros(b, b)).collect(),
            sub: (0..n.saturating_sub(1)).map(|_| Matrix::zeros(b, b)).collect(),
            arrow: (0..n).map(|_| Matrix::zeros(a, b)).collect(),
            tip: Matrix::zeros(a, a),
        }
    }

    /// Total matrix dimension `N = n·b + a`.
    pub fn dim(&self) -> usize {
        self.n * self.b + self.a
    }

    /// Memory footprint of the block-dense representation in `f64` entries.
    pub fn dense_footprint(&self) -> usize {
        self.n * self.b * self.b
            + self.n.saturating_sub(1) * self.b * self.b
            + self.n * self.a * self.b
            + self.a * self.a
    }

    /// Zero every block in place (workspace reuse: re-assembly into
    /// pre-allocated storage starts from a clean slate without reallocating).
    pub fn set_zero(&mut self) {
        for d in &mut self.diag {
            d.fill_zero();
        }
        for s in &mut self.sub {
            s.fill_zero();
        }
        for c in &mut self.arrow {
            c.fill_zero();
        }
        self.tip.fill_zero();
    }

    /// Copy the block values of `other` into this matrix without allocating.
    /// Both matrices must have the same `(n, b, a)` structure.
    pub fn copy_values_from(&mut self, other: &BtaMatrix) {
        assert_eq!(
            (self.n, self.b, self.a),
            (other.n, other.b, other.a),
            "copy_values_from: block structure mismatch"
        );
        for (dst, src) in self.diag.iter_mut().zip(&other.diag) {
            dst.as_mut_slice().copy_from_slice(src.as_slice());
        }
        for (dst, src) in self.sub.iter_mut().zip(&other.sub) {
            dst.as_mut_slice().copy_from_slice(src.as_slice());
        }
        for (dst, src) in self.arrow.iter_mut().zip(&other.arrow) {
            dst.as_mut_slice().copy_from_slice(src.as_slice());
        }
        self.tip.as_mut_slice().copy_from_slice(other.tip.as_slice());
    }

    /// Add `alpha · I` to the diagonal (regularization / jitter).
    pub fn add_diagonal(&mut self, alpha: f64) {
        for d in &mut self.diag {
            for i in 0..self.b {
                d[(i, i)] += alpha;
            }
        }
        for i in 0..self.a {
            self.tip[(i, i)] += alpha;
        }
    }

    /// Dense copy of the full symmetric matrix (testing / small problems).
    pub fn to_dense(&self) -> Matrix {
        let nd = self.dim();
        let mut m = Matrix::zeros(nd, nd);
        for i in 0..self.n {
            m.set_block(i * self.b, i * self.b, &self.diag[i]);
        }
        for i in 0..self.n.saturating_sub(1) {
            m.set_block((i + 1) * self.b, i * self.b, &self.sub[i]);
            m.set_block(i * self.b, (i + 1) * self.b, &self.sub[i].transpose());
        }
        if self.a > 0 {
            let a0 = self.n * self.b;
            for i in 0..self.n {
                m.set_block(a0, i * self.b, &self.arrow[i]);
                m.set_block(i * self.b, a0, &self.arrow[i].transpose());
            }
            m.set_block(a0, a0, &self.tip);
        }
        m
    }

    /// Build a BTA matrix from a dense symmetric matrix with the given block
    /// structure (entries outside the BTA pattern are ignored).
    pub fn from_dense(m: &Matrix, n: usize, b: usize, a: usize) -> Self {
        assert_eq!(m.nrows(), n * b + a, "dense matrix size does not match block structure");
        let mut bta = Self::zeros(n, b, a);
        for i in 0..n {
            bta.diag[i] = m.block(i * b, i * b, b, b);
        }
        for i in 0..n - 1 {
            bta.sub[i] = m.block((i + 1) * b, i * b, b, b);
        }
        if a > 0 {
            let a0 = n * b;
            for i in 0..n {
                bta.arrow[i] = m.block(a0, i * b, a, b);
            }
            bta.tip = m.block(a0, a0, a, a);
        }
        bta
    }

    /// Symmetrize each diagonal block and the tip (numerical hygiene after
    /// assembly from sums of products).
    pub fn symmetrize(&mut self) {
        for d in &mut self.diag {
            d.symmetrize();
        }
        if self.a > 0 {
            self.tip.symmetrize();
        }
    }

    /// Multiply with a dense vector: `y = A x` (uses the symmetric structure).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "matvec dimension mismatch");
        let b = self.b;
        let a = self.a;
        let mut y = vec![0.0; self.dim()];
        // Diagonal and sub-diagonal contributions.
        for i in 0..self.n {
            let xi = &x[i * b..(i + 1) * b];
            let yi = dalia_la::blas::matvec(&self.diag[i], xi);
            for (k, v) in yi.iter().enumerate() {
                y[i * b + k] += v;
            }
            if i + 1 < self.n {
                let xj = &x[(i + 1) * b..(i + 2) * b];
                // y_{i+1} += B_i x_i ; y_i += B_iᵀ x_{i+1}
                let lo = dalia_la::blas::matvec(&self.sub[i], xi);
                for (k, v) in lo.iter().enumerate() {
                    y[(i + 1) * b + k] += v;
                }
                let up = dalia_la::blas::matvec_t(&self.sub[i], xj);
                for (k, v) in up.iter().enumerate() {
                    y[i * b + k] += v;
                }
            }
        }
        if a > 0 {
            let a0 = self.n * b;
            let xt = &x[a0..];
            for i in 0..self.n {
                let xi = &x[i * b..(i + 1) * b];
                let lo = dalia_la::blas::matvec(&self.arrow[i], xi);
                for (k, v) in lo.iter().enumerate() {
                    y[a0 + k] += v;
                }
                let up = dalia_la::blas::matvec_t(&self.arrow[i], xt);
                for (k, v) in up.iter().enumerate() {
                    y[i * b + k] += v;
                }
            }
            let tt = dalia_la::blas::matvec(&self.tip, xt);
            for (k, v) in tt.iter().enumerate() {
                y[a0 + k] += v;
            }
        }
        y
    }

    /// Estimated number of floating point operations of a BTA Cholesky
    /// factorization (Sec. IV-C: `O(n·(b³ + a³))` leading terms).
    pub fn factorization_flops(&self) -> u64 {
        let n = self.n as u64;
        let b = self.b as u64;
        let a = self.a as u64;
        // potrf(b) + trsm(b) + syrk(b) per block column, plus arrow updates.
        n * (b * b * b / 3 + b * b * b + b * b * b + 2 * a * b * b + a * a * b) + a * a * a / 3
    }
}

/// Cholesky factor of a BTA matrix: same block layout as [`BtaMatrix`], with
/// `diag[i]` holding the lower-triangular `L_ii`, `sub[i]` holding `L_{i+1,i}`,
/// `arrow[i]` holding `L_{T,i}` and `tip` holding `L_TT`.
#[derive(Clone, Debug)]
pub struct BtaCholesky {
    /// Factorized blocks in BTA layout.
    pub blocks: BtaMatrix,
}

impl BtaCholesky {
    /// Log-determinant of the factorized matrix: `2 Σ log diag(L)`.
    ///
    /// Every factor diagonal entry must be strictly positive and finite —
    /// a zero, negative or NaN pivot means the factorization did not produce
    /// a valid Cholesky factor (e.g. NaN model inputs sail through `potrf`'s
    /// pivot check because every comparison with NaN is false). Instead of
    /// silently returning NaN that would corrupt `f(θ)` and the BFGS line
    /// search downstream, this reports the offending entry as a structured
    /// [`SerinvError::IndefiniteLogdet`].
    pub fn logdet(&self) -> Result<f64, SerinvError> {
        let mut s = 0.0;
        for (block, d) in self.blocks.diag.iter().enumerate() {
            for i in 0..self.blocks.b {
                let v = d[(i, i)];
                if !(v > 0.0) || !v.is_finite() {
                    return Err(SerinvError::IndefiniteLogdet { block, index: i, value: v });
                }
                s += v.ln();
            }
        }
        for i in 0..self.blocks.a {
            let v = self.blocks.tip[(i, i)];
            if !(v > 0.0) || !v.is_finite() {
                return Err(SerinvError::IndefiniteLogdet {
                    block: self.blocks.n,
                    index: i,
                    value: v,
                });
            }
            s += v.ln();
        }
        Ok(2.0 * s)
    }

    /// Dense lower-triangular factor (testing only).
    pub fn to_dense_factor(&self) -> Matrix {
        let mut m = self.blocks.to_dense();
        // to_dense mirrors the lower blocks into the upper triangle; zero it.
        m.zero_upper();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::test_matrix;

    #[test]
    fn dims_and_footprint() {
        let m = BtaMatrix::zeros(4, 3, 2);
        assert_eq!(m.dim(), 14);
        assert_eq!(m.dense_footprint(), 4 * 9 + 3 * 9 + 4 * 6 + 4);
    }

    #[test]
    fn dense_roundtrip() {
        let m = test_matrix(5, 3, 2, 1);
        let d = m.to_dense();
        // The dense image must be symmetric.
        let mut dt = d.clone();
        dt.symmetrize();
        assert!(d.max_abs_diff(&dt) < 1e-14);
        let back = BtaMatrix::from_dense(&d, 5, 3, 2);
        assert!(back.to_dense().max_abs_diff(&d) < 1e-14);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = test_matrix(4, 3, 2, 2);
        let x: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.7).sin()).collect();
        let y = m.matvec(&x);
        let yd = dalia_la::blas::matvec(&m.to_dense(), &x);
        for (a, b) in y.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_bt_matrix_without_arrow() {
        let m = test_matrix(3, 2, 0, 3);
        assert_eq!(m.dim(), 6);
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let y = m.matvec(&x);
        let yd = dalia_la::blas::matvec(&m.to_dense(), &x);
        for (a, b) in y.iter().zip(&yd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn add_diagonal_shifts() {
        let mut m = BtaMatrix::zeros(2, 2, 1);
        m.add_diagonal(3.0);
        assert_eq!(m.diag[0][(0, 0)], 3.0);
        assert_eq!(m.tip[(0, 0)], 3.0);
        assert_eq!(m.diag[1][(1, 0)], 0.0);
    }

    #[test]
    fn logdet_rejects_nonpositive_and_nonfinite_factor_diagonals() {
        let base = test_matrix(3, 2, 1, 5);
        let good = crate::sequential::pobtaf(&base).unwrap();
        assert!(good.logdet().unwrap().is_finite());

        // A deliberately indefinite matrix must fail at factorization time
        // with a structured error, never reach a NaN logdet.
        let mut indefinite = base.clone();
        for i in 0..indefinite.b {
            indefinite.diag[1][(i, i)] -= 1e3;
        }
        match crate::sequential::pobtaf(&indefinite) {
            Err(SerinvError::Factorization { block, .. }) => assert_eq!(block, 1),
            other => panic!("expected a factorization error, got {other:?}"),
        }

        // A factor whose diagonal was corrupted (the NaN-input case that
        // sails through potrf's pivot check) reports the offending entry
        // instead of silently returning NaN.
        let mut bad = good.clone();
        bad.blocks.diag[2][(1, 1)] = -0.5;
        match bad.logdet() {
            Err(SerinvError::IndefiniteLogdet { block: 2, index: 1, value }) => {
                assert_eq!(value, -0.5);
            }
            other => panic!("expected IndefiniteLogdet, got {other:?}"),
        }
        let mut nan = good.clone();
        nan.blocks.tip[(0, 0)] = f64::NAN;
        match nan.logdet() {
            Err(SerinvError::IndefiniteLogdet { block: 3, index: 0, value }) => {
                assert!(value.is_nan());
            }
            other => panic!("expected IndefiniteLogdet at the tip, got {other:?}"),
        }
    }

    #[test]
    fn flop_estimate_positive_and_monotone() {
        let small = BtaMatrix::zeros(4, 3, 1).factorization_flops();
        let big = BtaMatrix::zeros(8, 3, 1).factorization_flops();
        assert!(small > 0);
        assert!(big > small);
    }
}
