//! Sequential BTA solver kernels: Cholesky factorization (`pobtaf`),
//! triangular solve (`pobtas`) and selected inversion (`pobtasi`).
//!
//! The routine names follow the Serinv library the paper integrates
//! (POBTAF/POBTAS/POBTASI = POsitive-definite Block-Tridiagonal-Arrowhead
//! Factorize / Solve / Selected Inversion), and each routine computes one of
//! the paper quantities an INLA evaluation needs:
//!
//! | routine | computes | used for |
//! |---|---|---|
//! | [`pobtaf`] | block factor `L` with `Q = L Lᵀ` | `log \|Q_p\|`, `log \|Q_c\|` via [`BtaCholesky::logdet`] |
//! | [`pobtas`] | `x = Q⁻¹ r` | the conditional mean `μ_c = Q_c⁻¹ Aᵀ D y` (Eq. 7) |
//! | [`pobtasi`] | selected inverse `Σ = Q⁻¹` on the BTA pattern | latent marginal variances `diag(Q_c⁻¹)` |
//!
//! The computational pattern per block column `i` is: POTRF on the diagonal
//! block (`D_i = L_ii L_iiᵀ`), TRSM on the sub-diagonal and arrow blocks
//! (`L_{i+1,i} = B_i L_ii^{-ᵀ}`, `L_{T,i} = C_i L_ii^{-ᵀ}`) and SYRK/GEMM
//! Schur updates onto `D_{i+1}`, `C_{i+1}` and the tip `T` — a complexity of
//! `O(n (b³ + a³))` versus the `O((n b)³)` of a dense factorization.
//!
//! Every dense kernel call bottoms out in the cache-blocked, packed
//! micro-kernels of `dalia_la::blas`. The `*_with` entry points thread a
//! reusable [`PackBuffer`] through the block loop so a stateful caller (the
//! solver sessions in `dalia-core`) performs *zero* allocations per
//! factorization once its workspaces are warm; the plain entry points create
//! a transient buffer per call.

use crate::bta::{BtaCholesky, BtaMatrix};
use crate::SerinvError;
use dalia_la::blas::{self, PackBuffer, Side, Trans, Triangle};
use dalia_la::{chol, Matrix};

/// BTA Cholesky factorization (sequential reference implementation).
///
/// Consumes a copy of the matrix and returns its block Cholesky factor.
pub fn pobtaf(a: &BtaMatrix) -> Result<BtaCholesky, SerinvError> {
    pobtaf_reusing(a, None)
}

/// [`pobtaf`] with workspace reuse: if `storage` holds a BTA matrix of the
/// same `(n, b, a)` structure (typically the blocks of a retired factor), its
/// allocations are recycled for the new factor instead of cloning `a`.
///
/// Stateful solver sessions use this to keep one factor allocation alive
/// across the dozens-to-hundreds of factorizations an INLA run performs.
pub fn pobtaf_reusing(
    a: &BtaMatrix,
    storage: Option<BtaMatrix>,
) -> Result<BtaCholesky, SerinvError> {
    let mut pack = PackBuffer::new();
    pobtaf_with(a, storage, &mut pack)
}

/// [`pobtaf_reusing`] with an explicit kernel packing workspace: `pack` is
/// threaded through every `potrf` / `trsm` / `syrk` / `gemm` the block loop
/// issues, so a caller that owns both the factor `storage` and the
/// `PackBuffer` allocates nothing per factorization.
pub fn pobtaf_with(
    a: &BtaMatrix,
    storage: Option<BtaMatrix>,
    pack: &mut PackBuffer,
) -> Result<BtaCholesky, SerinvError> {
    let mut m = match storage {
        Some(mut s) if (s.n, s.b, s.a) == (a.n, a.b, a.a) => {
            s.copy_values_from(a);
            s
        }
        _ => a.clone(),
    };
    factor_in_place(&mut m, pack)?;
    Ok(BtaCholesky { blocks: m })
}

/// Register every block of `m` with the panel cache of `pack`.
///
/// `fresh = true` (factorization entry) promises the blocks are about to be
/// overwritten once and then only read — cached panels overlapping them are
/// dropped. `fresh = false` (solve / selected-inversion entry on a finished
/// factor) promises the blocks are unchanged since the last registration, so
/// panels packed during the factorization are served straight back.
/// No-ops unless [`PackBuffer::enable_panel_reuse`] is on.
fn register_bta_blocks(pack: &mut PackBuffer, m: &BtaMatrix, fresh: bool) {
    if !pack.panel_reuse_enabled() {
        return;
    }
    let reg: fn(&mut PackBuffer, &[f64]) =
        if fresh { PackBuffer::register_stable } else { PackBuffer::register_stable_readonly };
    for d in &m.diag {
        reg(pack, d.as_slice());
    }
    for s in &m.sub {
        reg(pack, s.as_slice());
    }
    for c in &m.arrow {
        reg(pack, c.as_slice());
    }
    reg(pack, m.tip.as_slice());
}

/// The factorization kernel: overwrite `m` with its block Cholesky factor.
///
/// The factor blocks are write-once-then-read within the sweep (each block is
/// finalized by its potrf/trsm before any kernel packs panels from it), so
/// they are registered as stable packing sources: with panel reuse enabled on
/// `pack`, the `L_ii` panels shared by the sub-diagonal and arrow `trsm`s —
/// and the factor panels re-read by later [`pobtas`] / [`pobtasi`] sweeps —
/// are packed exactly once.
pub(crate) fn factor_in_place(m: &mut BtaMatrix, pack: &mut PackBuffer) -> Result<(), SerinvError> {
    let n = m.n;
    let has_arrow = m.a > 0;
    register_bta_blocks(pack, m, true);

    for i in 0..n {
        // Factorize the diagonal block: D_i = L_ii L_iiᵀ.
        chol::potrf_with(pack, &mut m.diag[i]).map_err(|e| SerinvError::Factorization {
            block: i,
            source: e,
        })?;
        let (left, right) = m.diag.split_at_mut(i + 1);
        let l_ii = &left[i];

        // B_i := B_i L_ii^{-T}, C_i := C_i L_ii^{-T}.
        if i + 1 < n {
            blas::trsm_with(pack, Side::Right, Triangle::Lower, Trans::Yes, l_ii, &mut m.sub[i]);
        }
        if has_arrow {
            blas::trsm_with(pack, Side::Right, Triangle::Lower, Trans::Yes, l_ii, &mut m.arrow[i]);
        }

        // Schur updates on the trailing blocks.
        if i + 1 < n {
            let b_i = &m.sub[i];
            // D_{i+1} -= B_i B_iᵀ.
            blas::syrk_full_with(pack, Trans::No, -1.0, b_i, 1.0, &mut right[0]);
            if has_arrow {
                // C_{i+1} -= C_i B_iᵀ.
                let (arrow_left, arrow_right) = m.arrow.split_at_mut(i + 1);
                blas::gemm_with(pack, Trans::No, Trans::Yes, -1.0, &arrow_left[i], b_i, 1.0, &mut arrow_right[0]);
            }
        }
        if has_arrow {
            // T -= C_i C_iᵀ.
            blas::syrk_full_with(pack, Trans::No, -1.0, &m.arrow[i], 1.0, &mut m.tip);
        }
    }
    if has_arrow {
        chol::potrf_with(pack, &mut m.tip)
            .map_err(|e| SerinvError::Factorization { block: n, source: e })?;
    }
    Ok(())
}

/// BTA triangular solve: solves `A X = B` given the factor from [`pobtaf`].
/// The right-hand side is a dense `N × k` matrix, overwritten with the
/// solution.
pub fn pobtas(factor: &BtaCholesky, rhs: &mut Matrix) {
    let mut pack = PackBuffer::new();
    pobtas_with(factor, rhs, &mut pack);
}

/// [`pobtas`] with an explicit kernel packing workspace.
///
/// The factor blocks are registered with the panel cache as read-only stable
/// sources, so repeated solves against one factor (the conditional-mean
/// solves of an inner Newton loop, posterior draws) re-use the factor panels
/// packed by the factorization instead of re-packing them per sweep.
pub fn pobtas_with(factor: &BtaCholesky, rhs: &mut Matrix, pack: &mut PackBuffer) {
    let m = &factor.blocks;
    let (n, b, a) = (m.n, m.b, m.a);
    assert_eq!(rhs.nrows(), m.dim(), "pobtas: rhs dimension mismatch");
    let k = rhs.ncols();
    let a0 = n * b;
    register_bta_blocks(pack, m, false);

    // Forward substitution: L y = rhs.
    for i in 0..n {
        if i > 0 {
            // rhs_i -= B_{i-1} y_{i-1}.
            let y_prev = rhs.block((i - 1) * b, 0, b, k);
            let mut update = Matrix::zeros(b, k);
            blas::gemm_with(pack, Trans::No, Trans::No, 1.0, &m.sub[i - 1], &y_prev, 0.0, &mut update);
            rhs.add_block(i * b, 0, -1.0, &update);
        }
        let mut yi = rhs.block(i * b, 0, b, k);
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::No, &m.diag[i], &mut yi);
        rhs.set_block(i * b, 0, &yi);
        if a > 0 {
            // rhs_T -= C_i y_i.
            let mut update = Matrix::zeros(a, k);
            blas::gemm_with(pack, Trans::No, Trans::No, 1.0, &m.arrow[i], &yi, 0.0, &mut update);
            rhs.add_block(a0, 0, -1.0, &update);
        }
    }
    if a > 0 {
        let mut yt = rhs.block(a0, 0, a, k);
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::No, &m.tip, &mut yt);
        // Backward: x_T = L_TTᵀ \ y_T.
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::Yes, &m.tip, &mut yt);
        rhs.set_block(a0, 0, &yt);
    }

    // Backward substitution: Lᵀ x = y.
    for i in (0..n).rev() {
        let mut yi = rhs.block(i * b, 0, b, k);
        if i + 1 < n {
            // y_i -= B_iᵀ x_{i+1}.
            let x_next = rhs.block((i + 1) * b, 0, b, k);
            blas::gemm_with(pack, Trans::Yes, Trans::No, -1.0, &m.sub[i], &x_next, 1.0, &mut yi);
        }
        if a > 0 {
            // y_i -= C_iᵀ x_T.
            let x_t = rhs.block(a0, 0, a, k);
            blas::gemm_with(pack, Trans::Yes, Trans::No, -1.0, &m.arrow[i], &x_t, 1.0, &mut yi);
        }
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::Yes, &m.diag[i], &mut yi);
        rhs.set_block(i * b, 0, &yi);
    }
}

/// Convenience wrapper: solve for a single right-hand-side vector.
pub fn pobtas_vec(factor: &BtaCholesky, rhs: &[f64]) -> Vec<f64> {
    let mut m = Matrix::col_vector(rhs);
    pobtas(factor, &mut m);
    m.col(0).to_vec()
}

/// Backward-only BTA triangular solve: `Lᵀ X = B` for the factor from
/// [`pobtaf`], overwriting the dense `N × k` right-hand side with the
/// solution.
///
/// This is the half-solve behind factor-backed posterior sampling: for
/// `z ~ N(0, I)`, the vector `x = Lᵀ⁻¹ z` has covariance
/// `Lᵀ⁻¹ L⁻¹ = (L Lᵀ)⁻¹ = Q⁻¹`, so `μ + Lᵀ⁻¹ z` is an exact draw from
/// `N(μ, Q⁻¹)` at the cost of one backward sweep per right-hand-side column.
pub fn pobtas_lt(factor: &BtaCholesky, rhs: &mut Matrix) {
    let mut pack = PackBuffer::new();
    pobtas_lt_with(factor, rhs, &mut pack);
}

/// [`pobtas_lt`] with an explicit kernel packing workspace (factor blocks
/// registered read-only with the panel cache, like [`pobtas_with`]).
pub fn pobtas_lt_with(factor: &BtaCholesky, rhs: &mut Matrix, pack: &mut PackBuffer) {
    let m = &factor.blocks;
    let (n, b, a) = (m.n, m.b, m.a);
    assert_eq!(rhs.nrows(), m.dim(), "pobtas_lt: rhs dimension mismatch");
    let k = rhs.ncols();
    let a0 = n * b;
    register_bta_blocks(pack, m, false);

    if a > 0 {
        let mut xt = rhs.block(a0, 0, a, k);
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::Yes, &m.tip, &mut xt);
        rhs.set_block(a0, 0, &xt);
    }
    for i in (0..n).rev() {
        let mut yi = rhs.block(i * b, 0, b, k);
        if i + 1 < n {
            // y_i -= B_iᵀ x_{i+1}.
            let x_next = rhs.block((i + 1) * b, 0, b, k);
            blas::gemm_with(pack, Trans::Yes, Trans::No, -1.0, &m.sub[i], &x_next, 1.0, &mut yi);
        }
        if a > 0 {
            // y_i -= C_iᵀ x_T.
            let x_t = rhs.block(a0, 0, a, k);
            blas::gemm_with(pack, Trans::Yes, Trans::No, -1.0, &m.arrow[i], &x_t, 1.0, &mut yi);
        }
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::Yes, &m.diag[i], &mut yi);
        rhs.set_block(i * b, 0, &yi);
    }
}

/// Selected inverse of a BTA matrix: the blocks of `A⁻¹` on the BTA pattern.
///
/// The result is returned in BTA layout: `diag[i] = Σ_ii`,
/// `sub[i] = Σ_{i+1,i}`, `arrow[i] = Σ_{T,i}`, `tip = Σ_TT`.
#[derive(Clone, Debug)]
pub struct BtaSelectedInverse {
    /// Selected inverse blocks in BTA layout.
    pub blocks: BtaMatrix,
}

impl BtaSelectedInverse {
    /// Marginal variances: the diagonal of the selected inverse.
    pub fn diagonal(&self) -> Vec<f64> {
        let m = &self.blocks;
        let mut out = Vec::with_capacity(m.dim());
        for i in 0..m.n {
            for j in 0..m.b {
                out.push(m.diag[i][(j, j)]);
            }
        }
        for j in 0..m.a {
            out.push(m.tip[(j, j)]);
        }
        out
    }
}

/// BTA selected inversion (sequential reference implementation).
pub fn pobtasi(factor: &BtaCholesky) -> BtaSelectedInverse {
    let mut pack = PackBuffer::new();
    pobtasi_with(factor, &mut pack)
}

/// [`pobtasi`] with an explicit kernel packing workspace threaded through the
/// backward block sweep (pure `trsm` / `gemm` work). The factor blocks are
/// registered read-only with the panel cache, so a selected inversion right
/// after a factorization (or a repeated one on an unchanged factor) re-uses
/// the factor panels instead of re-packing them.
pub fn pobtasi_with(factor: &BtaCholesky, pack: &mut PackBuffer) -> BtaSelectedInverse {
    let m = &factor.blocks;
    let (n, b, a) = (m.n, m.b, m.a);
    let mut inv = BtaMatrix::zeros(n, b, a);
    register_bta_blocks(pack, m, false);

    // Σ_TT = L_TT^{-T} L_TT^{-1}.
    if a > 0 {
        let mut tip_inv = Matrix::identity(a);
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::No, &m.tip, &mut tip_inv);
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::Yes, &m.tip, &mut tip_inv);
        inv.tip = tip_inv;
    }

    for i in (0..n).rev() {
        let l_ii = &m.diag[i];
        // L_ii^{-1}.
        let mut l_inv = Matrix::identity(b);
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::No, l_ii, &mut l_inv);

        // Σ_{R,i} = −Σ_{R,R} L_{R,i} L_ii^{-1} with R the sub-rows of column i.
        let mut sigma_sub = Matrix::zeros(b, b); // Σ_{i+1,i}
        let mut sigma_arr = Matrix::zeros(a, b); // Σ_{T,i}
        if i + 1 < n {
            let b_i = &m.sub[i];
            // Σ_{i+1,i} = −(Σ_{i+1,i+1} B_i + Σ_{T,i+1}ᵀ C_i) L_ii^{-1}.
            blas::gemm_with(pack, Trans::No, Trans::No, -1.0, &inv.diag[i + 1], b_i, 0.0, &mut sigma_sub);
            if a > 0 {
                blas::gemm_with(pack, Trans::Yes, Trans::No, -1.0, &inv.arrow[i + 1], &m.arrow[i], 1.0, &mut sigma_sub);
            }
            let mut tmp = Matrix::zeros(b, b);
            blas::gemm_with(pack, Trans::No, Trans::No, 1.0, &sigma_sub, &l_inv, 0.0, &mut tmp);
            sigma_sub = tmp;
            if a > 0 {
                // Σ_{T,i} = −(Σ_{T,i+1} B_i + Σ_TT C_i) L_ii^{-1}.
                blas::gemm_with(pack, Trans::No, Trans::No, -1.0, &inv.arrow[i + 1], b_i, 0.0, &mut sigma_arr);
                blas::gemm_with(pack, Trans::No, Trans::No, -1.0, &inv.tip, &m.arrow[i], 1.0, &mut sigma_arr);
                let mut tmp = Matrix::zeros(a, b);
                blas::gemm_with(pack, Trans::No, Trans::No, 1.0, &sigma_arr, &l_inv, 0.0, &mut tmp);
                sigma_arr = tmp;
            }
        } else if a > 0 {
            // Last block column: only the arrow row below.
            blas::gemm_with(pack, Trans::No, Trans::No, -1.0, &inv.tip, &m.arrow[i], 0.0, &mut sigma_arr);
            let mut tmp = Matrix::zeros(a, b);
            blas::gemm_with(pack, Trans::No, Trans::No, 1.0, &sigma_arr, &l_inv, 0.0, &mut tmp);
            sigma_arr = tmp;
        }

        // Σ_ii = L_ii^{-T}(L_ii^{-1} − B_iᵀ Σ_{i+1,i} − C_iᵀ Σ_{T,i}).
        let mut inner = l_inv.clone();
        if i + 1 < n {
            blas::gemm_with(pack, Trans::Yes, Trans::No, -1.0, &m.sub[i], &sigma_sub, 1.0, &mut inner);
        }
        if a > 0 {
            blas::gemm_with(pack, Trans::Yes, Trans::No, -1.0, &m.arrow[i], &sigma_arr, 1.0, &mut inner);
        }
        blas::trsm_with(pack, Side::Left, Triangle::Lower, Trans::Yes, l_ii, &mut inner);
        // Numerical symmetrization of the diagonal block.
        inner.symmetrize();

        inv.diag[i] = inner;
        if i + 1 < n {
            inv.sub[i] = sigma_sub;
        }
        if a > 0 {
            inv.arrow[i] = sigma_arr;
        }
    }
    BtaSelectedInverse { blocks: inv }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{test_matrix, test_rhs};
    use dalia_la::chol;

    #[test]
    fn pobtaf_reconstructs_matrix() {
        let a = test_matrix(5, 3, 2, 1);
        let f = pobtaf(&a).unwrap();
        let l = f.to_dense_factor();
        let rec = blas::matmul(&l, &l.transpose());
        assert!(rec.max_abs_diff(&a.to_dense()) < 1e-10);
    }

    #[test]
    fn pobtaf_logdet_matches_dense() {
        let a = test_matrix(6, 2, 3, 2);
        let f = pobtaf(&a).unwrap();
        let dense_l = chol::cholesky(&a.to_dense()).unwrap();
        assert!((f.logdet().unwrap() - chol::logdet_from_cholesky(&dense_l)).abs() < 1e-10);
    }

    #[test]
    fn pobtaf_no_arrow() {
        let a = test_matrix(4, 3, 0, 3);
        let f = pobtaf(&a).unwrap();
        let dense_l = chol::cholesky(&a.to_dense()).unwrap();
        assert!((f.logdet().unwrap() - chol::logdet_from_cholesky(&dense_l)).abs() < 1e-10);
    }

    #[test]
    fn pobtaf_reusing_recycles_storage_bitwise() {
        let a = test_matrix(5, 3, 2, 11);
        let fresh = pobtaf(&a).unwrap();
        // Matching storage: recycled, result bitwise identical.
        let reused = pobtaf_reusing(&a, Some(BtaMatrix::zeros(5, 3, 2))).unwrap();
        for i in 0..5 {
            assert_eq!(fresh.blocks.diag[i].as_slice(), reused.blocks.diag[i].as_slice());
        }
        assert_eq!(fresh.blocks.tip.as_slice(), reused.blocks.tip.as_slice());
        // A retired factor's blocks work as storage for the next call.
        let recycled = pobtaf_reusing(&a, Some(reused.blocks)).unwrap();
        assert_eq!(fresh.logdet().unwrap().to_bits(), recycled.logdet().unwrap().to_bits());
        // Mismatched storage falls back to a fresh clone.
        let fallback = pobtaf_reusing(&a, Some(BtaMatrix::zeros(2, 2, 1))).unwrap();
        assert_eq!(fresh.logdet().unwrap().to_bits(), fallback.logdet().unwrap().to_bits());
    }

    #[test]
    fn pobtaf_rejects_indefinite() {
        let mut a = test_matrix(3, 2, 1, 4);
        // Destroy positive definiteness of an interior diagonal block.
        a.diag[1][(0, 0)] = -100.0;
        assert!(matches!(pobtaf(&a), Err(SerinvError::Factorization { .. })));
    }

    #[test]
    fn pobtas_solves_linear_system() {
        let a = test_matrix(5, 3, 2, 5);
        let f = pobtaf(&a).unwrap();
        let x_true = test_rhs(a.dim(), 2);
        let dense = a.to_dense();
        let mut rhs = blas::matmul(&dense, &x_true);
        pobtas(&f, &mut rhs);
        assert!(rhs.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn pobtas_vec_matches_dense_solve() {
        let a = test_matrix(4, 2, 1, 6);
        let f = pobtaf(&a).unwrap();
        let b: Vec<f64> = (0..a.dim()).map(|i| (i as f64 * 0.3).cos()).collect();
        let x = pobtas_vec(&f, &b);
        let x_dense = chol::spd_solve_vec(&a.to_dense(), &b).unwrap();
        for (a, b) in x.iter().zip(&x_dense) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pobtas_lt_matches_dense_transpose_solve() {
        for (n, b, a, seed) in [(5usize, 3usize, 2usize, 5u64), (4, 3, 0, 7), (1, 4, 2, 10)] {
            let m = test_matrix(n, b, a, seed);
            let f = pobtaf(&m).unwrap();
            let x_true = test_rhs(m.dim(), 3);
            // Dense reference: rhs = Lᵀ x_true, so the solve must recover x_true.
            let l = f.to_dense_factor();
            let mut rhs = blas::matmul(&l.transpose(), &x_true);
            pobtas_lt(&f, &mut rhs);
            assert!(
                rhs.max_abs_diff(&x_true) < 1e-9,
                "pobtas_lt mismatch for (n={n}, b={b}, a={a})"
            );
        }
    }

    #[test]
    fn pobtas_lt_composes_to_full_solve() {
        // L⁻ᵀ (L⁻¹ b) must equal the full pobtas solve (the two sweeps of
        // pobtas factored apart), pinning the sampling half-solve to the
        // production solve path.
        let m = test_matrix(5, 3, 2, 12);
        let f = pobtaf(&m).unwrap();
        let b: Vec<f64> = (0..m.dim()).map(|i| (i as f64 * 0.17).sin()).collect();
        let full = pobtas_vec(&f, &b);
        // Forward half via a dense solve on the assembled factor.
        let l = f.to_dense_factor();
        let mut x = Matrix::col_vector(&b);
        blas::trsm(Side::Left, Triangle::Lower, Trans::No, &l, &mut x);
        pobtas_lt(&f, &mut x);
        for (p, q) in full.iter().zip(x.col(0)) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn pobtas_no_arrow() {
        let a = test_matrix(4, 3, 0, 7);
        let f = pobtaf(&a).unwrap();
        let b: Vec<f64> = (0..a.dim()).map(|i| 1.0 + (i % 3) as f64).collect();
        let x = pobtas_vec(&f, &b);
        let x_dense = chol::spd_solve_vec(&a.to_dense(), &b).unwrap();
        for (a, b) in x.iter().zip(&x_dense) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pobtasi_matches_dense_inverse_on_pattern() {
        let a = test_matrix(5, 3, 2, 8);
        let f = pobtaf(&a).unwrap();
        let sel = pobtasi(&f);
        let dense_inv = chol::spd_inverse(&a.to_dense()).unwrap();
        let (n, b, aa) = (a.n, a.b, a.a);
        let a0 = n * b;
        for i in 0..n {
            let expected = dense_inv.block(i * b, i * b, b, b);
            assert!(sel.blocks.diag[i].max_abs_diff(&expected) < 1e-9, "diag block {i}");
        }
        for i in 0..n - 1 {
            let expected = dense_inv.block((i + 1) * b, i * b, b, b);
            assert!(sel.blocks.sub[i].max_abs_diff(&expected) < 1e-9, "sub block {i}");
        }
        for i in 0..n {
            let expected = dense_inv.block(a0, i * b, aa, b);
            assert!(sel.blocks.arrow[i].max_abs_diff(&expected) < 1e-9, "arrow block {i}");
        }
        let expected_tip = dense_inv.block(a0, a0, aa, aa);
        assert!(sel.blocks.tip.max_abs_diff(&expected_tip) < 1e-9);
        // Marginal variances match the dense inverse diagonal.
        let vars = sel.diagonal();
        for i in 0..a.dim() {
            assert!((vars[i] - dense_inv[(i, i)]).abs() < 1e-9);
        }
    }

    #[test]
    fn pobtasi_no_arrow_matches_dense() {
        let a = test_matrix(4, 2, 0, 9);
        let f = pobtaf(&a).unwrap();
        let sel = pobtasi(&f);
        let dense_inv = chol::spd_inverse(&a.to_dense()).unwrap();
        let vars = sel.diagonal();
        for i in 0..a.dim() {
            assert!((vars[i] - dense_inv[(i, i)]).abs() < 1e-9);
        }
    }

    #[test]
    fn single_block_matrix() {
        let a = test_matrix(1, 4, 2, 10);
        let f = pobtaf(&a).unwrap();
        let sel = pobtasi(&f);
        let dense_inv = chol::spd_inverse(&a.to_dense()).unwrap();
        for (i, v) in sel.diagonal().iter().enumerate() {
            assert!((v - dense_inv[(i, i)]).abs() < 1e-10);
        }
    }
}
