//! # serinv — structured sparse solvers for BTA matrices
//!
//! Rust re-implementation of the structured solver layer that the DALIA paper
//! builds on (the Serinv library plus the paper's own distributed triangular
//! solve):
//!
//! * [`bta`] — block-dense storage of block-tridiagonal-with-arrowhead (BTA)
//!   matrices and their Cholesky factors,
//! * [`sequential`] — `pobtaf` / `pobtas` / `pobtasi` reference kernels
//!   (factorization, triangular solve, selected inversion),
//! * [`partition`] — time-domain partitioning with load balancing,
//! * [`distributed`] — `d_pobtaf` / `d_pobtas` / `d_pobtasi`, the
//!   nested-dissection partitioned variants executed in parallel over
//!   partitions (the in-process analogue of the paper's multi-GPU scheme),
//! * [`streaming`] — `pobtaf_extend` / `pobtaf_retire`, incremental
//!   trailing-block refactorization for sliding temporal windows,
//! * [`testing`] — deterministic SPD test matrices.

pub mod bta;
pub mod distributed;
pub mod partition;
pub mod sequential;
pub mod streaming;
pub mod testing;

pub use bta::{BtaCholesky, BtaMatrix};
pub use distributed::{
    d_pobtaf, d_pobtaf_scheduled, d_pobtas, d_pobtas_scheduled, d_pobtasi, d_pobtasi_scheduled,
    pobtaf_parallel, DistBtaCholesky, InteriorSchedule, PartitionFactor,
};
pub use partition::Partitioning;
pub use sequential::{
    pobtaf, pobtaf_reusing, pobtaf_with, pobtas, pobtas_lt, pobtas_lt_with, pobtas_vec,
    pobtas_with, pobtasi, pobtasi_with,
    BtaSelectedInverse,
};
pub use streaming::{
    pobtaf_extend, pobtaf_extend_scheduled, pobtaf_retire, pobtaf_retire_scheduled, StreamPacks,
};

/// Errors produced by the structured solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum SerinvError {
    /// A diagonal block (or the reduced system / arrow tip) failed to
    /// factorize: the matrix is not positive definite.
    Factorization {
        /// Index of the offending block column (`n` refers to the arrow tip).
        block: usize,
        /// The underlying dense kernel error.
        source: dalia_la::LaError,
    },
    /// A log-determinant was requested from a factor whose diagonal holds a
    /// zero, negative or non-finite entry — the factorization did not produce
    /// a valid Cholesky factor (typically NaN model inputs that pass through
    /// `potrf`'s pivot check, since every comparison with NaN is false).
    IndefiniteLogdet {
        /// Index of the offending block (`n` refers to the arrow tip).
        block: usize,
        /// Row index of the offending diagonal entry within the block.
        index: usize,
        /// The offending factor diagonal value.
        value: f64,
    },
}

impl std::fmt::Display for SerinvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerinvError::Factorization { block, source } => {
                write!(f, "BTA factorization failed at block column {block}: {source}")
            }
            SerinvError::IndefiniteLogdet { block, index, value } => write!(
                f,
                "BTA factor is not a valid Cholesky factor: diagonal entry {index} of block \
                 {block} is {value} (expected a strictly positive finite pivot)"
            ),
        }
    }
}

impl std::error::Error for SerinvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SerinvError::Factorization {
            block: 3,
            source: dalia_la::LaError::NotPositiveDefinite { pivot: 1, value: -2.0 },
        };
        assert!(e.to_string().contains("block column 3"));
    }
}
