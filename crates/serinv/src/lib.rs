//! # serinv — structured sparse solvers for BTA matrices
//!
//! Rust re-implementation of the structured solver layer that the DALIA paper
//! builds on (the Serinv library plus the paper's own distributed triangular
//! solve):
//!
//! * [`bta`] — block-dense storage of block-tridiagonal-with-arrowhead (BTA)
//!   matrices and their Cholesky factors,
//! * [`sequential`] — `pobtaf` / `pobtas` / `pobtasi` reference kernels
//!   (factorization, triangular solve, selected inversion),
//! * [`partition`] — time-domain partitioning with load balancing,
//! * [`distributed`] — `d_pobtaf` / `d_pobtas` / `d_pobtasi`, the
//!   nested-dissection partitioned variants executed in parallel over
//!   partitions (the in-process analogue of the paper's multi-GPU scheme),
//! * [`testing`] — deterministic SPD test matrices.

pub mod bta;
pub mod distributed;
pub mod partition;
pub mod sequential;
pub mod testing;

pub use bta::{BtaCholesky, BtaMatrix};
pub use distributed::{
    d_pobtaf, d_pobtaf_scheduled, d_pobtas, d_pobtas_scheduled, d_pobtasi, d_pobtasi_scheduled,
    pobtaf_parallel, DistBtaCholesky, InteriorSchedule, PartitionFactor,
};
pub use partition::Partitioning;
pub use sequential::{
    pobtaf, pobtaf_reusing, pobtaf_with, pobtas, pobtas_lt, pobtas_vec, pobtasi, pobtasi_with,
    BtaSelectedInverse,
};

/// Errors produced by the structured solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum SerinvError {
    /// A diagonal block (or the reduced system / arrow tip) failed to
    /// factorize: the matrix is not positive definite.
    Factorization {
        /// Index of the offending block column (`n` refers to the arrow tip).
        block: usize,
        /// The underlying dense kernel error.
        source: dalia_la::LaError,
    },
}

impl std::fmt::Display for SerinvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerinvError::Factorization { block, source } => {
                write!(f, "BTA factorization failed at block column {block}: {source}")
            }
        }
    }
}

impl std::error::Error for SerinvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SerinvError::Factorization {
            block: 3,
            source: dalia_la::LaError::NotPositiveDefinite { pivot: 1, value: -2.0 },
        };
        assert!(e.to_string().contains("block column 3"));
    }
}
