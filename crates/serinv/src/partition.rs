//! Time-domain partitioning of BTA matrices (Sec. IV-C of the paper).
//!
//! The `n` diagonal blocks (time steps) are split into `P` contiguous
//! partitions, one per process. The nested-dissection scheme used by the
//! distributed solver adds extra work for the interior partitions, so the
//! paper assigns more time steps to the boundary partitions via a
//! *load-balancing factor* (`lb = 1.6` in Fig. 5).
//!
//! Terminology used throughout `serinv::distributed`: the last block of every
//! partition except the final one is its **separator**; the remaining blocks
//! are **interior**. Interiors are eliminated independently per partition,
//! while the separators plus the arrow tip form the sequential **reduced
//! system** — a smaller BTA matrix with `P − 1` diagonal blocks. A
//! [`Partitioning`] is pure structure (no numeric data), so the stateful
//! solvers compute it once per model and reuse it for every θ.

/// Take `excess` blocks back from `sizes` after the floored shares of
/// [`Partitioning::load_balanced`] overshoot `n` (the `max(1)` floor of
/// tiny interior shares can push the total past `n`).
///
/// Interior partitions give blocks back first (round-robin over `1..p-1`)
/// while any of them still has more than one block; the boundary partitions
/// — which the load-balancing factor deliberately over-provisions — only
/// shrink once every interior partition is down to a single block, and then
/// alternately starting with the larger one. Every partition keeps at least
/// one block.
fn shrink_excess(sizes: &mut [usize], mut excess: usize) {
    let p = sizes.len();
    let mut idx = 0usize;
    while excess > 0 && p > 2 && sizes[1..p - 1].iter().any(|&s| s > 1) {
        let target = 1 + idx % (p - 2);
        idx += 1;
        if sizes[target] > 1 {
            sizes[target] -= 1;
            excess -= 1;
        }
    }
    // All interiors are at their one-block minimum: boundaries give the rest
    // back, larger side first so the two stay balanced.
    let mut take_last = sizes[p - 1] > sizes[0];
    while excess > 0 {
        let target = if take_last { p - 1 } else { 0 };
        take_last = !take_last;
        if sizes[target] > 1 {
            sizes[target] -= 1;
            excess -= 1;
        }
    }
}

/// A contiguous partitioning of `n` diagonal blocks into `P` slices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    /// `boundaries[p]..boundaries[p+1]` is the slice of partition `p`.
    boundaries: Vec<usize>,
}

impl Partitioning {
    /// Even partitioning of `n` blocks into `p` partitions (remainder spread
    /// over the first partitions).
    pub fn even(n: usize, p: usize) -> Self {
        Self::load_balanced(n, p, 1.0)
    }

    /// Load-balanced partitioning: the first and last partitions receive
    /// `lb`-times the share of the interior partitions (paper Sec. V-C).
    ///
    /// With `P <= 2` the load-balancing factor has no effect and the split is
    /// even. Each partition receives at least one block (as long as `n >= p`).
    pub fn load_balanced(n: usize, p: usize, lb: f64) -> Self {
        assert!(p >= 1, "need at least one partition");
        assert!(n >= p, "cannot split {n} blocks into {p} partitions");
        assert!(lb >= 1.0, "load-balancing factor must be >= 1");
        let mut sizes = vec![0usize; p];
        if p == 1 {
            sizes[0] = n;
        } else {
            // Relative weights: boundary partitions get weight lb, interior 1.
            let weights: Vec<f64> = (0..p)
                .map(|i| if i == 0 || i == p - 1 { lb } else { 1.0 })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut assigned = 0usize;
            for i in 0..p {
                let share = ((weights[i] / total) * n as f64).floor() as usize;
                sizes[i] = share.max(1);
                assigned += sizes[i];
            }
            // Distribute the remainder (or take back the excess) round-robin,
            // preferring boundary partitions when adding and interior ones when
            // removing.
            let mut idx = 0usize;
            while assigned < n {
                sizes[if idx.is_multiple_of(2) { 0 } else { p - 1 }] += 1;
                assigned += 1;
                idx += 1;
            }
            if assigned > n {
                shrink_excess(&mut sizes, assigned - n);
            }
        }
        let mut boundaries = Vec::with_capacity(p + 1);
        boundaries.push(0);
        let mut acc = 0;
        for s in sizes {
            acc += s;
            boundaries.push(acc);
        }
        debug_assert_eq!(acc, n);
        Self { boundaries }
    }

    /// Explicit partitioning from per-partition sizes (each `>= 1`). The
    /// general constructor behind [`Partitioning::even`] /
    /// [`Partitioning::load_balanced`]; used directly to build deliberately
    /// *skewed* layouts (one huge partition next to many tiny ones) for the
    /// stealable-interior stress tests and `pool_bench`'s skewed-partition
    /// scenario.
    ///
    /// ```
    /// let p = serinv::Partitioning::from_sizes(&[5, 1, 2]);
    /// assert_eq!(p.num_partitions(), 3);
    /// assert_eq!(p.range(0), (0, 5));
    /// assert_eq!(p.range(2), (6, 8));
    /// ```
    pub fn from_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "need at least one partition");
        assert!(sizes.iter().all(|&s| s >= 1), "every partition needs at least one block");
        let mut boundaries = Vec::with_capacity(sizes.len() + 1);
        boundaries.push(0);
        let mut acc = 0;
        for &s in sizes {
            acc += s;
            boundaries.push(acc);
        }
        Self { boundaries }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        *self.boundaries.last().unwrap()
    }

    /// Half-open block range `[start, end)` of partition `p`.
    pub fn range(&self, p: usize) -> (usize, usize) {
        (self.boundaries[p], self.boundaries[p + 1])
    }

    /// Number of blocks owned by partition `p`.
    pub fn size(&self, p: usize) -> usize {
        self.boundaries[p + 1] - self.boundaries[p]
    }

    /// Index of the separator block *owned* by partition `p` (its last block),
    /// defined for `p < P-1`. The separators, in order, form the reduced
    /// system of the nested-dissection scheme.
    pub fn separator(&self, p: usize) -> usize {
        assert!(p + 1 < self.num_partitions(), "last partition has no separator");
        self.boundaries[p + 1] - 1
    }

    /// Interior block range `[start, end)` of partition `p`: its blocks minus
    /// the separator (for the last partition all blocks are interior).
    /// The range may be empty for single-block partitions.
    pub fn interior(&self, p: usize) -> (usize, usize) {
        let (s, e) = self.range(p);
        if p + 1 < self.num_partitions() {
            (s, e - 1)
        } else {
            (s, e)
        }
    }

    /// All separator block indices, in increasing order.
    pub fn separators(&self) -> Vec<usize> {
        (0..self.num_partitions().saturating_sub(1)).map(|p| self.separator(p)).collect()
    }

    /// Maximum partition size (proxy for the per-device memory footprint that
    /// drives the strategy-selection logic of Sec. V-D).
    pub fn max_size(&self) -> usize {
        (0..self.num_partitions()).map(|p| self.size(p)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partitioning_covers_all_blocks() {
        let p = Partitioning::even(10, 3);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.num_blocks(), 10);
        let total: usize = (0..3).map(|i| p.size(i)).sum();
        assert_eq!(total, 10);
        // Contiguity.
        assert_eq!(p.range(0).0, 0);
        assert_eq!(p.range(2).1, 10);
        assert_eq!(p.range(0).1, p.range(1).0);
    }

    #[test]
    fn single_partition() {
        let p = Partitioning::even(7, 1);
        assert_eq!(p.size(0), 7);
        assert_eq!(p.interior(0), (0, 7));
        assert!(p.separators().is_empty());
    }

    #[test]
    fn load_balancing_gives_more_to_boundaries() {
        let p = Partitioning::load_balanced(32, 4, 1.6);
        assert_eq!(p.num_blocks(), 32);
        assert!(p.size(0) > p.size(1), "first partition should be larger: {:?}", (0..4).map(|i| p.size(i)).collect::<Vec<_>>());
        assert!(p.size(3) >= p.size(2));
    }

    #[test]
    fn separators_are_last_blocks_of_partitions() {
        let p = Partitioning::even(12, 4);
        let seps = p.separators();
        assert_eq!(seps.len(), 3);
        for (i, &s) in seps.iter().enumerate() {
            assert_eq!(s, p.range(i).1 - 1);
        }
        // Interiors exclude separators except for the last partition.
        assert_eq!(p.interior(0).1, p.separator(0));
        assert_eq!(p.interior(3), p.range(3));
    }

    #[test]
    fn every_partition_nonempty() {
        for (n, np) in [(5usize, 5usize), (9, 4), (17, 6)] {
            let p = Partitioning::load_balanced(n, np, 2.0);
            for i in 0..np {
                assert!(p.size(i) >= 1);
            }
            assert_eq!(p.num_blocks(), n);
        }
    }

    #[test]
    #[should_panic]
    fn too_many_partitions_panics() {
        let _ = Partitioning::even(3, 5);
    }

    #[test]
    fn shrink_excess_prefers_interior_partitions() {
        // Interiors (indices 1..p-1) give blocks back round-robin; the
        // over-provisioned boundaries stay untouched while any interior can
        // still shrink. The retired traversal walked `idx % p` from 1 and so
        // hit the boundaries (targets 0 and p-1) on every lap.
        let mut sizes = [3usize, 2, 2, 3];
        shrink_excess(&mut sizes, 2);
        assert_eq!(sizes, [3, 1, 1, 3]);

        // More excess than one lap: interiors first, all the way down...
        let mut sizes = [4usize, 3, 2, 4];
        shrink_excess(&mut sizes, 3);
        assert_eq!(sizes, [4, 1, 1, 4]);

        // ...then the boundaries, larger one first, alternating.
        let mut sizes = [2usize, 1, 1, 3];
        shrink_excess(&mut sizes, 2);
        assert_eq!(sizes, [1, 1, 1, 2]);
        let mut sizes = [2usize, 1, 1, 2];
        shrink_excess(&mut sizes, 2);
        assert_eq!(sizes, [1, 1, 1, 1]);
    }

    #[test]
    fn load_balanced_overshoot_shrinks_without_starving() {
        // n = 6, p = 5, lb = 4: weights total 11, so the boundary floors are
        // 2 each while every interior share floors to 0 and is bumped to the
        // one-block minimum — 2+1+1+1+2 = 7 > 6, the floored shares
        // overshoot and the excess-removal path runs.
        let p = Partitioning::load_balanced(6, 5, 4.0);
        assert_eq!(p.num_blocks(), 6);
        let sizes: Vec<usize> = (0..5).map(|i| p.size(i)).collect();
        assert!(sizes.iter().all(|&s| s >= 1), "starved partition: {sizes:?}");
        // The interiors were already at their minimum, so the excess must
        // come out of a boundary — never out of an interior's last block.
        assert_eq!(&sizes[1..4], &[1, 1, 1]);
        assert_eq!(sizes.iter().sum::<usize>(), 6);

        // Sweep overshoot-prone corners: totals must always match and no
        // partition may starve.
        for (n, np, lb) in [(6usize, 5usize, 4.0f64), (7, 6, 5.0), (9, 7, 3.0), (10, 8, 6.0)] {
            let p = Partitioning::load_balanced(n, np, lb);
            assert_eq!(p.num_blocks(), n, "n={n} p={np} lb={lb}");
            for i in 0..np {
                assert!(p.size(i) >= 1, "n={n} p={np} lb={lb} partition {i} starved");
            }
        }
    }

    #[test]
    fn from_sizes_builds_skewed_layouts() {
        let p = Partitioning::from_sizes(&[9, 1, 1, 1]);
        assert_eq!(p.num_blocks(), 12);
        assert_eq!(p.num_partitions(), 4);
        assert_eq!(p.size(0), 9);
        assert_eq!(p.interior(0), (0, 8)); // separator 8 excluded
        assert_eq!(p.interior(1), (9, 9)); // single-block partition: empty interior
        assert_eq!(p.interior(3), (11, 12)); // last partition keeps its block
        assert_eq!(p.separators(), vec![8, 9, 10]);
        // Equivalent to the general constructors where layouts coincide.
        assert_eq!(Partitioning::from_sizes(&[4, 3, 3]), Partitioning::even(10, 3));
    }

    #[test]
    #[should_panic]
    fn from_sizes_rejects_empty_partitions() {
        let _ = Partitioning::from_sizes(&[3, 0, 2]);
    }
}
