//! Deterministic test-matrix generators shared by unit tests, integration
//! tests and benchmarks.

use crate::bta::BtaMatrix;
use dalia_la::Matrix;

/// Deterministic symmetric positive definite BTA test matrix.
///
/// The entries are a cheap hash of the indices so that the matrix is
/// reproducible without a random number generator; diagonal dominance makes it
/// safely positive definite for any `(n, b, a)`.
pub fn test_matrix(n: usize, b: usize, a: usize, seed: u64) -> BtaMatrix {
    let mut m = BtaMatrix::zeros(n, b, a);
    let f = |i: usize, j: usize, k: usize| {
        (((i * 31 + j * 17 + k * 7 + seed as usize * 11) % 13) as f64) / 13.0 - 0.5
    };
    for k in 0..n {
        let mut d = Matrix::from_fn(b, b, |i, j| f(i, j, k));
        d.symmetrize();
        for i in 0..b {
            d[(i, i)] += (b + a) as f64 + 2.0;
        }
        m.diag[k] = d;
    }
    for k in 0..n.saturating_sub(1) {
        m.sub[k] = Matrix::from_fn(b, b, |i, j| 0.3 * f(i, j, k + 100));
    }
    for k in 0..n {
        m.arrow[k] = Matrix::from_fn(a, b, |i, j| 0.2 * f(i, j, k + 200));
    }
    let mut tip = Matrix::from_fn(a, a, |i, j| f(i, j, 300));
    tip.symmetrize();
    for i in 0..a {
        tip[(i, i)] += (a + n * 2) as f64 + 2.0;
    }
    m.tip = tip;
    m
}

/// Deterministic right-hand side with `k` columns for a matrix of size `dim`.
pub fn test_rhs(dim: usize, k: usize) -> Matrix {
    Matrix::from_fn(dim, k, |i, j| ((i * 7 + j * 13) as f64 * 0.37).sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_la::chol;

    #[test]
    fn test_matrix_is_spd() {
        for (n, b, a) in [(3usize, 2usize, 1usize), (5, 3, 2), (4, 4, 0)] {
            let m = test_matrix(n, b, a, 7);
            assert!(chol::cholesky(&m.to_dense()).is_ok(), "({n},{b},{a}) not SPD");
        }
    }

    #[test]
    fn rhs_shape() {
        let r = test_rhs(10, 3);
        assert_eq!(r.shape(), (10, 3));
    }
}
