//! Distributed (time-domain partitioned) BTA solver routines.
//!
//! These implement the nested-dissection scheme used by the Serinv library and
//! by the paper's new `PPOBTAS` distributed triangular solve: the time domain
//! is split into `P` contiguous partitions; the *interior* blocks of every
//! partition are eliminated independently (and in parallel), producing Schur
//! complement contributions onto the *separator* blocks (the last block of
//! each partition) and the arrow tip. The resulting *reduced system* is again
//! a BTA matrix with `P−1` diagonal blocks; back-substitution and selected
//! inversion then proceed independently per partition again.
//!
//! In the original framework each partition lives on its own GPU and the
//! reduced system is gathered with NCCL; here partitions are tasks on the
//! work-stealing pool (`dalia-pool`, reached through the vendored `rayon`
//! shim's `par_iter`): each partition splits adaptively across the pool's
//! workers, and idle workers steal the still-queued partitions, so
//! load-imbalanced partitionings no longer serialize on the unluckiest
//! worker. This preserves the algorithmic structure (work split,
//! reduced-system bottleneck, load imbalance) while the cluster-level
//! behaviour is captured by the performance model in `dalia-hpc`. Large
//! reduced-system `gemm` trailing updates additionally fan out column panels
//! on the same pool inside `dalia_la::blas` — bitwise-identically to the
//! sequential kernels, so the distributed results stay independent of the
//! worker count.
//!
//! # Stealable partition interiors
//!
//! Since pool v2 a partition interior is no longer one indivisible task:
//! [`d_pobtaf`], [`d_pobtas`] and [`d_pobtasi`] express the per-column DAG of
//! every interior block column as `join`-structured subtasks
//! ([`InteriorSchedule::Stealable`]). In the factorization the diagonal
//! `potrf` stays on the critical path, then the three independent `trsm`
//! solves against `L_jjᵀ` (sub-diagonal coupling, left-separator fill `W`,
//! arrow panel `C`) fork as one join group, and the Schur accumulation /
//! next-column propagation (which touch disjoint output blocks) fork as a
//! second. The solve forks the three separator/tip right-hand-side
//! accumulations per column, and the selected inversion forks the three
//! independent selected-inverse columns (`Σ_{ls,j}`, `Σ_{j+1,j}`/`Σ_{rs,j}`,
//! `Σ_{T,j}`) between the `L_jj⁻¹` solve and the diagonal recovery. Each
//! subtask owns a dedicated [`PackBuffer`] lane so the packed micro-kernels
//! never contend for workspace. An idle worker can therefore steal *inside*
//! a single huge partition — the skewed 1-big/N-tiny layout that used to
//! serialize the whole S3 fan-out now scales (see `pool_bench`'s
//! skewed-partition scenario and the watchdogged stress test in
//! `crates/hpc/tests/pool_stress.rs`).
//!
//! Splitting changes only *where* each block operation runs, never its
//! operand values or kernel call sequence, so the factors, solutions and
//! selected inverses are **bitwise identical** to the
//! [`InteriorSchedule::Indivisible`] baseline and to a 1-thread run — pinned
//! by the `*_bitwise_match_indivisible` tests below and by the
//! parallel-vs-sequential session proptest in `tests/session_reuse.rs`.
//!
//! # The reduced system is no longer sequential
//!
//! Two stages of the pipeline used to run on one worker regardless of `P`:
//!
//! * **Schur assembly** is a *tree reduction*: per-partition
//!   `SchurContribution`s merge pairwise along a fixed binary tree
//!   (contiguous partition ranges split at their midpoint, left half always
//!   accumulated before the right). The pairing order is a function of `P`
//!   alone, so the assembled reduced matrix is bitwise independent of the
//!   worker count and of whether the merge ran forked or inline.
//! * **Reduced-system factorization** runs through [`pobtaf_parallel`]: the
//!   right-looking trailing updates of each reduced block column (the
//!   `trsm` pair, then the `syrk`/`gemm`/`syrk` Schur and arrow updates)
//!   fork as join groups with per-subtask [`PackBuffer`] lanes, exactly
//!   like the stealable interiors. Tiny reduced systems (`b` below the
//!   fork cutoff, or a 1-thread pool) fall back to the sequential
//!   [`pobtaf`] kernel; either way the factor is bitwise identical to it.
//!
//! The three phases mirror their sequential counterparts and compute the same
//! paper quantities (`log |Q|`, `Q⁻¹ r`, `diag(Q⁻¹)`):
//!
//! 1. **`d_pobtaf`** — per-partition interior elimination (parallel), a
//!    tree-reduced Schur assembly onto the separators/tip, then a parallel
//!    `pobtaf` of the reduced `(P−1)`-block BTA system — formerly the
//!    sequential scalability bottleneck the paper's Fig. 5 measures.
//! 2. **`d_pobtas`** — parallel forward substitution on the interiors (with
//!    forked separator/tip accumulations per column), the reduced-system
//!    solve, and a parallel backward pass (with the carried sub-diagonal
//!    term and the separator/tip back-couplings forked per column).
//! 3. **`d_pobtasi`** — selected inversion of the reduced system followed by
//!    an independent backward sweep per partition (pure `trsm`/`syrk`/`gemm`
//!    block work), the three selected-inverse columns forked per block
//!    column.
//!
//! Every parallel closure owns a private [`PackBuffer`], so the packed
//! micro-kernels in `dalia_la::blas` never contend for workspace across
//! partitions; the buffer is reused across all block columns of that
//! partition.

use crate::bta::{BtaCholesky, BtaMatrix};
use crate::partition::Partitioning;
use crate::sequential::{pobtaf, pobtas, pobtasi, BtaSelectedInverse};
use crate::SerinvError;
use dalia_la::blas::{self, PackBuffer, Side, Trans, Triangle};
use dalia_la::{chol, Matrix};
use rayon::prelude::*;

/// Per-partition blocks of the distributed Cholesky factor.
#[derive(Clone, Debug)]
pub struct PartitionFactor {
    /// Partition index.
    pub p: usize,
    /// Global half-open range `[s, e)` of interior blocks.
    pub interior: (usize, usize),
    /// `L_jj` for every interior block.
    pub l_diag: Vec<Matrix>,
    /// `L_{j+1,j}` between consecutive interior blocks.
    pub l_sub: Vec<Matrix>,
    /// `L_{ls,j}` coupling to the left separator (empty for partition 0).
    pub l_left: Vec<Matrix>,
    /// `L_{rs, e-1}` coupling of the last interior block to the right
    /// separator (absent for the last partition or empty interiors).
    pub l_right: Option<Matrix>,
    /// `L_{T,j}` arrow coupling for every interior block.
    pub l_arrow: Vec<Matrix>,
}

/// Schur-complement contribution of one partition onto the reduced system.
#[derive(Clone, Debug)]
struct SchurContribution {
    p: usize,
    /// Update to the left-separator diagonal block.
    s_ll: Option<Matrix>,
    /// Update to the right-separator diagonal block.
    s_rr: Option<Matrix>,
    /// Update to the (right-separator, left-separator) coupling block.
    s_rl: Option<Matrix>,
    /// Update to the (tip, left-separator) arrow block.
    s_al: Option<Matrix>,
    /// Update to the (tip, right-separator) arrow block.
    s_ar: Option<Matrix>,
    /// Update to the arrow tip.
    s_tt: Matrix,
}

/// Distributed BTA Cholesky factorization.
#[derive(Clone, Debug)]
pub enum DistBtaCholesky {
    /// Trivial case `P = 1`: the sequential factorization.
    Sequential(BtaCholesky),
    /// Genuine partitioned factorization.
    Partitioned {
        /// Block structure `(n, b, a)` of the factorized matrix.
        structure: (usize, usize, usize),
        /// The time-domain partitioning.
        partitioning: Partitioning,
        /// Per-partition interior factors.
        partitions: Vec<PartitionFactor>,
        /// Factorized reduced system over the separators + tip.
        reduced: BtaCholesky,
    },
}

impl DistBtaCholesky {
    /// Log-determinant of the factorized matrix.
    ///
    /// Like [`BtaCholesky::logdet`], a zero, negative or non-finite factor
    /// diagonal entry is reported as [`SerinvError::IndefiniteLogdet`]
    /// (with the block index in the *global* time-block numbering) instead
    /// of silently contributing NaN to the objective.
    pub fn logdet(&self) -> Result<f64, SerinvError> {
        match self {
            DistBtaCholesky::Sequential(f) => f.logdet(),
            DistBtaCholesky::Partitioned { partitions, reduced, .. } => {
                let mut s = 0.0;
                for pf in partitions {
                    for (j, d) in pf.l_diag.iter().enumerate() {
                        for i in 0..d.nrows() {
                            let v = d[(i, i)];
                            if !(v > 0.0) || !v.is_finite() {
                                return Err(SerinvError::IndefiniteLogdet {
                                    block: pf.interior.0 + j,
                                    index: i,
                                    value: v,
                                });
                            }
                            s += v.ln();
                        }
                    }
                }
                Ok(2.0 * s + reduced.logdet()?)
            }
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        match self {
            DistBtaCholesky::Sequential(_) => 1,
            DistBtaCholesky::Partitioned { partitioning, .. } => partitioning.num_partitions(),
        }
    }
}

/// How [`d_pobtaf`] schedules the interior elimination of each partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InteriorSchedule {
    /// Split every interior block column into `join`-structured pool
    /// subtasks (independent `trsm` solves, then Schur accumulation and
    /// next-column propagation), each with a dedicated [`PackBuffer`] lane —
    /// idle workers can steal work *inside* a single large partition. The
    /// default; bitwise identical to [`InteriorSchedule::Indivisible`].
    #[default]
    Stealable,
    /// Eliminate each partition interior as one sequential task (the pool v1
    /// behaviour). Kept as the measurable baseline for `pool_bench`'s
    /// skewed-partition scenario and as the no-overhead path for callers
    /// that pin one partition per worker.
    Indivisible,
}

/// Below this diagonal block size the column subtasks are too small to repay
/// the fork overhead (a `trsm` at `b = 48` is a few microseconds), so the
/// stealable schedule falls back to the sequential column step. Scheduling
/// only — results are bitwise identical either way.
pub(crate) const STEAL_MIN_BLOCK: usize = 48;

/// Dedicated pack-buffer lanes for the stealable interior elimination: one
/// per concurrent `join` subtask, reused across all block columns of the
/// partition, so the packed micro-kernels never contend for workspace and a
/// warm partition task allocates nothing per column.
pub(crate) struct InteriorPacks {
    /// Critical path (`potrf`) + sub-diagonal `trsm` + `D_{j+1}` propagation.
    pub(crate) diag: PackBuffer,
    /// Left-separator fill `trsm` + `W_{j+1}`/`C_{j+1}` propagation.
    pub(crate) left: PackBuffer,
    /// Arrow-panel `trsm`.
    pub(crate) arrow: PackBuffer,
    /// Schur accumulation onto the reduced system.
    pub(crate) schur: PackBuffer,
}

impl InteriorPacks {
    pub(crate) fn new() -> Self {
        InteriorPacks {
            diag: PackBuffer::new(),
            left: PackBuffer::new(),
            arrow: PackBuffer::new(),
            schur: PackBuffer::new(),
        }
    }

    /// Drop any cached packed panels in every lane. The lanes run with panel
    /// reuse disabled today (the interior blocks are rewritten every
    /// elimination, and the lanes run concurrently), so this is a defensive
    /// no-op kept cheap by the disabled-cache fast path — but it keeps the
    /// invalidation contract uniform across all pack owners.
    pub(crate) fn invalidate_panels(&mut self) {
        self.diag.invalidate_panels();
        self.left.invalidate_panels();
        self.arrow.invalidate_panels();
        self.schur.invalidate_panels();
    }
}

/// Run three independent subtasks of one column step, either as a
/// `join`-structured fork (stealable by idle pool workers) or inline. The
/// subtasks write disjoint outputs, so the fork changes scheduling only.
pub(crate) fn run3(
    split: bool,
    f: impl FnOnce() + Send,
    g: impl FnOnce() + Send,
    h: impl FnOnce() + Send,
) {
    if split {
        dalia_pool::join(f, || {
            dalia_pool::join(g, h);
        });
    } else {
        f();
        g();
        h();
    }
}

/// Two-subtask variant of [`run3`] for column steps with only a pair of
/// independent lanes (the reduced-system `trsm` pair, the solve's carried /
/// external update split).
pub(crate) fn run2(split: bool, f: impl FnOnce() + Send, g: impl FnOnce() + Send) {
    if split {
        dalia_pool::join(f, g);
    } else {
        f();
        g();
    }
}

/// Interior elimination of one partition. Returns the partition factor and its
/// Schur contribution to the reduced system.
///
/// With [`InteriorSchedule::Stealable`] the per-column trailing-update DAG is
/// forked into pool subtasks (see the module docs); the kernel calls and
/// their operands are identical in both schedules, so the factors match
/// bitwise.
fn factor_partition(
    a: &BtaMatrix,
    part: &Partitioning,
    p: usize,
    sched: InteriorSchedule,
) -> Result<(PartitionFactor, SchurContribution), SerinvError> {
    let (s, e) = part.interior(p);
    let num_parts = part.num_partitions();
    let b = a.b;
    let aa = a.a;
    let has_left = p > 0;
    let has_right = p + 1 < num_parts;
    let has_arrow = aa > 0;
    let split = sched == InteriorSchedule::Stealable
        && b >= STEAL_MIN_BLOCK
        && dalia_pool::current_num_threads() > 1;

    let len = e.saturating_sub(s);
    let mut l_diag = Vec::with_capacity(len);
    let mut l_sub = Vec::with_capacity(len.saturating_sub(1));
    let mut l_left = Vec::with_capacity(if has_left { len } else { 0 });
    let mut l_arrow = Vec::with_capacity(len);
    let mut l_right = None;

    let mut packs = InteriorPacks::new();
    let mut s_ll = if has_left { Some(Matrix::zeros(b, b)) } else { None };
    let mut s_rr = if has_right { Some(Matrix::zeros(b, b)) } else { None };
    let mut s_rl = if has_left && has_right { Some(Matrix::zeros(b, b)) } else { None };
    let mut s_al = if has_left { Some(Matrix::zeros(aa, b)) } else { None };
    let mut s_ar = if has_right { Some(Matrix::zeros(aa, b)) } else { None };
    let mut s_tt = Matrix::zeros(aa, aa);

    // Working copies of the current column's blocks.
    let mut diag_work = if len > 0 { a.diag[s].clone() } else { Matrix::zeros(0, 0) };
    // Coupling of the first interior block to the left separator: Qᵀ of the
    // original sub-diagonal block B_{s-1} (the entry sits in the interior
    // column because the separator is eliminated later).
    let mut left_work = if has_left && len > 0 { Some(a.sub[s - 1].transpose()) } else { None };
    let mut arrow_work = if len > 0 { a.arrow[s].clone() } else { Matrix::zeros(aa, 0) };

    for j in s..e {
        let is_last = j + 1 == e;
        // Factorize the diagonal block — the critical path of the column.
        chol::potrf_with(&mut packs.diag, &mut diag_work)
            .map_err(|err| SerinvError::Factorization { block: j, source: err })?;
        let l_jj = diag_work.clone();

        // Off-diagonal couplings of this column, divided by L_jjᵀ on the
        // right: three independent solves, forked as the first subtask group
        // (`b_j` and `r_j` are mutually exclusive, so lane one solves
        // whichever exists).
        let mut b_j = if !is_last { Some(a.sub[j].clone()) } else { None };
        let mut r_j = if is_last && has_right { Some(a.sub[j].clone()) } else { None };
        {
            let InteriorPacks { diag: pk_diag, left: pk_left, arrow: pk_arrow, .. } = &mut packs;
            let l = &l_jj;
            let sub_rhs = b_j.as_mut().or(r_j.as_mut());
            let left_rhs = left_work.as_mut();
            let arrow_rhs = if has_arrow { Some(&mut arrow_work) } else { None };
            run3(
                split,
                move || {
                    if let Some(m) = sub_rhs {
                        blas::trsm_with(pk_diag, Side::Right, Triangle::Lower, Trans::Yes, l, m);
                    }
                },
                move || {
                    if let Some(w) = left_rhs {
                        blas::trsm_with(pk_left, Side::Right, Triangle::Lower, Trans::Yes, l, w);
                    }
                },
                move || {
                    if let Some(c) = arrow_rhs {
                        blas::trsm_with(pk_arrow, Side::Right, Triangle::Lower, Trans::Yes, l, c);
                    }
                },
            );
        }
        let w_j = left_work.clone();
        let c_j = arrow_work.clone();

        // Second subtask group: Schur accumulation onto the reduced system
        // and propagation to the next interior column. The three lanes write
        // disjoint outputs (the `s_*` accumulators; `D_{j+1}`;
        // `W_{j+1}`/`C_{j+1}`) and only share read-only inputs.
        let mut next_diag = if !is_last { Some(a.diag[j + 1].clone()) } else { None };
        // W_{j+1} = -W_j B_jᵀ starts from zeros (no original coupling for
        // j+1 > s); C_{j+1} starts from the original arrow block.
        let mut next_left =
            if !is_last && w_j.is_some() { Some(Matrix::zeros(b, b)) } else { None };
        let mut next_arrow = if !is_last { Some(a.arrow[j + 1].clone()) } else { None };
        {
            let InteriorPacks { diag: pk_diag, left: pk_left, schur: pk_schur, .. } = &mut packs;
            let (s_ll, s_rr, s_rl, s_al, s_ar, s_tt) =
                (&mut s_ll, &mut s_rr, &mut s_rl, &mut s_al, &mut s_ar, &mut s_tt);
            let (b_j, r_j, w_j, c_j) = (&b_j, &r_j, &w_j, &c_j);
            let (next_diag, next_left, next_arrow) =
                (&mut next_diag, &mut next_left, &mut next_arrow);
            run3(
                split,
                move || {
                    // Schur updates onto the reduced system.
                    if let (Some(sll), Some(w)) = (s_ll.as_mut(), w_j.as_ref()) {
                        blas::syrk_full_with(pk_schur, Trans::No, 1.0, w, 1.0, sll);
                    }
                    if has_arrow {
                        if let (Some(sal), Some(w)) = (s_al.as_mut(), w_j.as_ref()) {
                            blas::gemm_with(pk_schur, Trans::No, Trans::Yes, 1.0, c_j, w, 1.0, sal);
                        }
                        blas::syrk_full_with(pk_schur, Trans::No, 1.0, c_j, 1.0, s_tt);
                    }
                    if is_last {
                        if let (Some(srr), Some(r)) = (s_rr.as_mut(), r_j.as_ref()) {
                            blas::syrk_full_with(pk_schur, Trans::No, 1.0, r, 1.0, srr);
                        }
                        if let (Some(srl), (Some(r), Some(w))) =
                            (s_rl.as_mut(), (r_j.as_ref(), w_j.as_ref()))
                        {
                            blas::gemm_with(pk_schur, Trans::No, Trans::Yes, 1.0, r, w, 1.0, srl);
                        }
                        if has_arrow {
                            if let (Some(sar), Some(r)) = (s_ar.as_mut(), r_j.as_ref()) {
                                blas::gemm_with(
                                    pk_schur,
                                    Trans::No,
                                    Trans::Yes,
                                    1.0,
                                    c_j,
                                    r,
                                    1.0,
                                    sar,
                                );
                            }
                        }
                    }
                },
                move || {
                    // D_{j+1} -= B_j B_jᵀ.
                    if let (Some(nd), Some(bj)) = (next_diag.as_mut(), b_j.as_ref()) {
                        blas::syrk_full_with(pk_diag, Trans::No, -1.0, bj, 1.0, nd);
                    }
                },
                move || {
                    if let Some(bj) = b_j.as_ref() {
                        // W_{j+1} = -W_j B_jᵀ.
                        if let (Some(nl), Some(w)) = (next_left.as_mut(), w_j.as_ref()) {
                            blas::gemm_with(pk_left, Trans::No, Trans::Yes, -1.0, w, bj, 0.0, nl);
                        }
                        // C_{j+1} -= C_j B_jᵀ.
                        if let (Some(na), true) = (next_arrow.as_mut(), has_arrow) {
                            blas::gemm_with(pk_left, Trans::No, Trans::Yes, -1.0, c_j, bj, 1.0, na);
                        }
                    }
                },
            );
        }
        if !is_last {
            diag_work = next_diag.expect("next diagonal block exists before the last column");
            left_work = next_left;
            arrow_work = next_arrow.expect("next arrow block exists before the last column");
        }

        // Store the factor blocks of this column.
        l_diag.push(l_jj);
        if let Some(bj) = b_j {
            l_sub.push(bj);
        }
        if let Some(w) = w_j {
            l_left.push(w);
        }
        if let Some(r) = r_j {
            l_right = Some(r);
        }
        l_arrow.push(c_j);
    }

    Ok((
        PartitionFactor { p, interior: (s, e), l_diag, l_sub, l_left, l_right, l_arrow },
        SchurContribution { p, s_ll, s_rr, s_rl, s_al, s_ar, s_tt },
    ))
}

/// Merged Schur contributions of a contiguous partition range, keyed by
/// reduced block index — one node of the tree reduction in
/// [`assemble_reduced`]. Each list is sorted by index; a matrix moves from
/// its [`SchurContribution`] into the leaf and is then only ever added to
/// (`axpy`), never copied, as nodes merge upward.
struct SchurSpan {
    /// Updates to reduced diagonal blocks `(k, ΔD_k)`.
    diag: Vec<(usize, Matrix)>,
    /// Updates to reduced sub-diagonal blocks `(k, ΔB_k)` at `(k+1, k)`.
    sub: Vec<(usize, Matrix)>,
    /// Updates to reduced arrow blocks `(k, ΔC_k)`.
    arrow: Vec<(usize, Matrix)>,
    /// Update to the arrow tip (absent when `a = 0`).
    tip: Option<Matrix>,
}

impl SchurSpan {
    /// Leaf node: the contributions of one partition. Partition `p` touches
    /// reduced index `p-1` through its left separator and `p` through its
    /// right one, so the index lists are sorted by construction.
    fn leaf(c: &mut SchurContribution, has_arrow: bool) -> SchurSpan {
        let p = c.p;
        let mut diag = Vec::with_capacity(2);
        if let Some(sll) = c.s_ll.take() {
            diag.push((p - 1, sll));
        }
        if let Some(srr) = c.s_rr.take() {
            diag.push((p, srr));
        }
        let sub = c.s_rl.take().map(|srl| (p - 1, srl)).into_iter().collect();
        let mut arrow = Vec::with_capacity(2);
        let tip = if has_arrow {
            if let Some(sal) = c.s_al.take() {
                arrow.push((p - 1, sal));
            }
            if let Some(sar) = c.s_ar.take() {
                arrow.push((p, sar));
            }
            Some(std::mem::replace(&mut c.s_tt, Matrix::zeros(0, 0)))
        } else {
            None
        };
        SchurSpan { diag, sub, arrow, tip }
    }

    /// Merge two sorted update lists; overlapping indices accumulate as
    /// `left + right` (the only overlap is the junction block between the
    /// two partition ranges).
    fn merge_lists(left: Vec<(usize, Matrix)>, right: Vec<(usize, Matrix)>) -> Vec<(usize, Matrix)> {
        let mut out = Vec::with_capacity(left.len() + right.len());
        let mut r = right.into_iter().peekable();
        for (k, mut m) in left {
            while let Some(&(rk, _)) = r.peek() {
                if rk < k {
                    out.push(r.next().unwrap());
                } else if rk == k {
                    m.axpy(1.0, &r.next().unwrap().1);
                } else {
                    break;
                }
            }
            out.push((k, m));
        }
        out.extend(r);
        out
    }

    /// Combine the spans of two adjacent partition ranges: always
    /// `left + right`, so the accumulation order depends only on the tree
    /// shape, never on which worker finished first.
    fn merge(left: SchurSpan, right: SchurSpan) -> SchurSpan {
        let tip = match (left.tip, right.tip) {
            (Some(mut l), Some(r)) => {
                l.axpy(1.0, &r);
                Some(l)
            }
            (l, r) => l.or(r),
        };
        SchurSpan {
            diag: Self::merge_lists(left.diag, right.diag),
            sub: Self::merge_lists(left.sub, right.sub),
            arrow: Self::merge_lists(left.arrow, right.arrow),
            tip,
        }
    }
}

/// Tree-reduce a contiguous range of Schur contributions. The range always
/// splits at its midpoint and every merge accumulates left-before-right, so
/// the result is a pure function of the contribution values — forking the
/// two halves onto the pool changes scheduling only, and the assembled
/// reduced system stays bitwise independent of the worker count.
fn reduce_schur(contribs: &mut [SchurContribution], has_arrow: bool, split: bool) -> SchurSpan {
    match contribs {
        [] => SchurSpan { diag: Vec::new(), sub: Vec::new(), arrow: Vec::new(), tip: None },
        [c] => SchurSpan::leaf(c, has_arrow),
        _ => {
            let mid = contribs.len() / 2;
            let (left, right) = contribs.split_at_mut(mid);
            let (ls, rs) = if split {
                dalia_pool::join(
                    || reduce_schur(left, has_arrow, split),
                    || reduce_schur(right, has_arrow, split),
                )
            } else {
                (reduce_schur(left, has_arrow, false), reduce_schur(right, has_arrow, false))
            };
            SchurSpan::merge(ls, rs)
        }
    }
}

/// Assemble the reduced BTA system over the separators + tip from the original
/// matrix and the partitions' Schur contributions.
///
/// The per-partition contributions combine by tree reduction ([`reduce_schur`])
/// instead of a linear left-to-right walk: pairs of adjacent partition ranges
/// merge in parallel on the pool, and the deep sum onto the arrow tip (every
/// partition contributes to it) accumulates along a fixed binary tree rather
/// than serializing over `P` terms.
fn assemble_reduced(
    a: &BtaMatrix,
    part: &Partitioning,
    contribs: &mut [SchurContribution],
) -> BtaMatrix {
    let seps = part.separators();
    let n_red = seps.len();
    let b = a.b;
    let aa = a.a;
    let mut reduced = BtaMatrix::zeros(n_red, b, aa);
    for (k, &sep) in seps.iter().enumerate() {
        reduced.diag[k] = a.diag[sep].clone();
        if aa > 0 {
            reduced.arrow[k] = a.arrow[sep].clone();
        }
        if k + 1 < n_red {
            // Adjacent separators in the original matrix keep their original
            // coupling (this happens when the partition between them has no
            // interior blocks).
            if seps[k + 1] == sep + 1 {
                reduced.sub[k] = a.sub[sep].clone();
            }
        }
    }
    reduced.tip = a.tip.clone();

    let split = dalia_pool::current_num_threads() > 1;
    let span = reduce_schur(contribs, aa > 0, split);
    for (k, m) in &span.diag {
        reduced.diag[*k].axpy(-1.0, m);
    }
    for (k, m) in &span.sub {
        // Coupling between reduced blocks k+1 (row) and k (column).
        reduced.sub[*k].axpy(-1.0, m);
    }
    for (k, m) in &span.arrow {
        reduced.arrow[*k].axpy(-1.0, m);
    }
    if let Some(tip) = &span.tip {
        reduced.tip.axpy(-1.0, tip);
    }
    reduced
}

/// Fork-join parallel BTA Cholesky factorization: [`pobtaf`] with the
/// right-looking trailing updates of every block column forked as pool join
/// groups — the path [`d_pobtaf_scheduled`] uses for the reduced system,
/// which a linear chain of partitions cannot parallelize any other way.
///
/// Per column the diagonal `potrf` stays on the critical path; the two
/// independent `trsm` solves against `L_iiᵀ` (sub-diagonal `B_i`, arrow
/// panel `C_i`) fork as one join group, and the three trailing updates with
/// disjoint outputs (`D_{i+1} −= B_i B_iᵀ`, `C_{i+1} −= C_i B_iᵀ`,
/// `T −= C_i C_iᵀ`) fork as a second, each subtask on a dedicated
/// [`PackBuffer`] lane. The kernel calls and their operands are identical to
/// the sequential loop, so the factor is **bitwise identical** to
/// [`pobtaf`]'s. Tiny systems (`b` below the fork cutoff), single-block
/// matrices and 1-thread pools fall back to the sequential kernel outright.
pub fn pobtaf_parallel(a: &BtaMatrix) -> Result<BtaCholesky, SerinvError> {
    let split =
        a.b >= STEAL_MIN_BLOCK && a.n > 1 && dalia_pool::current_num_threads() > 1;
    if !split {
        return pobtaf(a);
    }

    let mut m = a.clone();
    let n = m.n;
    let has_arrow = m.a > 0;
    let mut packs = InteriorPacks::new();
    for i in 0..n {
        // D_i = L_ii L_iiᵀ — the critical path of the column.
        chol::potrf_with(&mut packs.diag, &mut m.diag[i])
            .map_err(|e| SerinvError::Factorization { block: i, source: e })?;

        // B_i := B_i L_ii⁻ᵀ ∥ C_i := C_i L_ii⁻ᵀ (disjoint outputs, shared
        // read of L_ii).
        {
            let InteriorPacks { diag: pk_diag, arrow: pk_arrow, .. } = &mut packs;
            let l_ii = &m.diag[i];
            let sub_rhs = if i + 1 < n { Some(&mut m.sub[i]) } else { None };
            let arrow_rhs = if has_arrow { Some(&mut m.arrow[i]) } else { None };
            run2(
                split,
                move || {
                    if let Some(bi) = sub_rhs {
                        blas::trsm_with(pk_diag, Side::Right, Triangle::Lower, Trans::Yes, l_ii, bi);
                    }
                },
                move || {
                    if let Some(ci) = arrow_rhs {
                        blas::trsm_with(pk_arrow, Side::Right, Triangle::Lower, Trans::Yes, l_ii, ci);
                    }
                },
            );
        }

        // Trailing updates: D_{i+1}, C_{i+1} and the tip are disjoint.
        {
            let InteriorPacks { diag: pk_diag, left: pk_left, schur: pk_schur, .. } = &mut packs;
            let (_, diag_tail) = m.diag.split_at_mut(i + 1);
            let arrow_mid = (i + 1).min(m.arrow.len());
            let (arrow_head, arrow_tail) = m.arrow.split_at_mut(arrow_mid);
            let b_i = if i + 1 < n { Some(&m.sub[i]) } else { None };
            let c_i = if has_arrow { Some(&arrow_head[i]) } else { None };
            let next_diag = if i + 1 < n { Some(&mut diag_tail[0]) } else { None };
            let next_arrow =
                if has_arrow && i + 1 < n { Some(&mut arrow_tail[0]) } else { None };
            let tip = if has_arrow { Some(&mut m.tip) } else { None };
            run3(
                split,
                move || {
                    if let (Some(nd), Some(bi)) = (next_diag, b_i) {
                        blas::syrk_full_with(pk_diag, Trans::No, -1.0, bi, 1.0, nd);
                    }
                },
                move || {
                    if let (Some(na), Some(ci), Some(bi)) = (next_arrow, c_i, b_i) {
                        blas::gemm_with(pk_left, Trans::No, Trans::Yes, -1.0, ci, bi, 1.0, na);
                    }
                },
                move || {
                    if let (Some(t), Some(ci)) = (tip, c_i) {
                        blas::syrk_full_with(pk_schur, Trans::No, -1.0, ci, 1.0, t);
                    }
                },
            );
        }
    }
    if has_arrow {
        chol::potrf_with(&mut packs.diag, &mut m.tip)
            .map_err(|e| SerinvError::Factorization { block: n, source: e })?;
    }
    Ok(BtaCholesky { blocks: m })
}

/// Distributed BTA Cholesky factorization (`d_pobtaf`) with stealable
/// partition interiors ([`InteriorSchedule::Stealable`]).
pub fn d_pobtaf(a: &BtaMatrix, part: &Partitioning) -> Result<DistBtaCholesky, SerinvError> {
    d_pobtaf_scheduled(a, part, InteriorSchedule::Stealable)
}

/// [`d_pobtaf`] with an explicit [`InteriorSchedule`].
///
/// The two schedules produce **bitwise identical** factors; `Indivisible`
/// exists as the measurable pool v1 baseline (one sequential task per
/// partition interior, sequential reduced-system factorization) for
/// `pool_bench` and the stress tests. The Schur assembly tree-reduces under
/// both schedules — its pairing order is fixed, so it is not a scheduling
/// degree of freedom.
pub fn d_pobtaf_scheduled(
    a: &BtaMatrix,
    part: &Partitioning,
    sched: InteriorSchedule,
) -> Result<DistBtaCholesky, SerinvError> {
    assert_eq!(part.num_blocks(), a.n, "partitioning does not match the matrix");
    let num_parts = part.num_partitions();
    if num_parts == 1 {
        return Ok(DistBtaCholesky::Sequential(pobtaf(a)?));
    }
    let results: Result<Vec<_>, SerinvError> = (0..num_parts)
        .into_par_iter()
        .map(|p| factor_partition(a, part, p, sched))
        .collect();
    let results = results?;
    let (partitions, mut contribs): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    let reduced_matrix = assemble_reduced(a, part, &mut contribs);
    let reduced = match sched {
        InteriorSchedule::Stealable => pobtaf_parallel(&reduced_matrix)?,
        InteriorSchedule::Indivisible => pobtaf(&reduced_matrix)?,
    };
    Ok(DistBtaCholesky::Partitioned {
        structure: (a.n, a.b, a.a),
        partitioning: part.clone(),
        partitions,
        reduced,
    })
}

/// Distributed BTA triangular solve (`d_pobtas`, the paper's `PPOBTAS`) with
/// stealable partition interiors ([`InteriorSchedule::Stealable`]).
///
/// Solves `A X = B` for the dense right-hand side `rhs` (overwritten with the
/// solution), given a distributed factorization.
pub fn d_pobtas(factor: &DistBtaCholesky, rhs: &mut Matrix) {
    d_pobtas_scheduled(factor, rhs, InteriorSchedule::Stealable)
}

/// [`d_pobtas`] with an explicit [`InteriorSchedule`].
///
/// With [`InteriorSchedule::Stealable`] every interior column forks its
/// independent subtasks as pool join groups: in the forward sweep the three
/// separator/tip right-hand-side accumulations (left fill `W`, right
/// coupling, arrow panel) run after the column's `trsm`; in the backward
/// sweep the carried sub-diagonal term and the external separator/tip
/// back-couplings fork against each other. The two schedules execute the
/// same kernel calls on the same operands, so the solutions are **bitwise
/// identical** — the fork changes scheduling only.
pub fn d_pobtas_scheduled(factor: &DistBtaCholesky, rhs: &mut Matrix, sched: InteriorSchedule) {
    match factor {
        DistBtaCholesky::Sequential(f) => pobtas(f, rhs),
        DistBtaCholesky::Partitioned { structure, partitioning, partitions, reduced } => {
            let (n, b, a) = *structure;
            assert_eq!(rhs.nrows(), n * b + a, "d_pobtas: rhs dimension mismatch");
            let k = rhs.ncols();
            let a0 = n * b;
            let seps = partitioning.separators();
            let n_red = seps.len();
            let split = sched == InteriorSchedule::Stealable
                && b >= STEAL_MIN_BLOCK
                && dalia_pool::current_num_threads() > 1;

            // ---- Forward substitution on the interiors (parallel). ----
            // Per partition: (partition index, interior solutions, update to
            // the left separator, update to the right separator, tip update).
            type ForwardPartial = (usize, Vec<Matrix>, Option<Matrix>, Option<Matrix>, Matrix);
            let partial: Vec<ForwardPartial> = partitions
                .par_iter()
                .map(|pf| {
                    let (s, e) = pf.interior;
                    let len = e - s;
                    let mut packs = InteriorPacks::new();
                    let mut ys: Vec<Matrix> = Vec::with_capacity(len);
                    let mut left_update: Option<Matrix> =
                        (!pf.l_left.is_empty()).then(|| Matrix::zeros(b, k));
                    let mut right_update: Option<Matrix> =
                        pf.l_right.as_ref().map(|_| Matrix::zeros(b, k));
                    let mut tip_update = Matrix::zeros(a, k);
                    for (idx, j) in (s..e).enumerate() {
                        let mut yj = rhs.block(j * b, 0, b, k);
                        if idx > 0 {
                            blas::gemm_with(&mut packs.diag, Trans::No, Trans::No, -1.0, &pf.l_sub[idx - 1], &ys[idx - 1], 1.0, &mut yj);
                        }
                        blas::trsm_with(&mut packs.diag, Side::Left, Triangle::Lower, Trans::No, &pf.l_diag[idx], &mut yj);
                        // Separator / tip accumulations: three disjoint
                        // outputs reading the shared y_j — one join group.
                        {
                            let InteriorPacks { left: pk_left, arrow: pk_arrow, schur: pk_schur, .. } =
                                &mut packs;
                            let (lu, ru, tu) = (&mut left_update, &mut right_update, &mut tip_update);
                            let y = &yj;
                            let w = pf.l_left.get(idx);
                            let r = if idx + 1 == len { pf.l_right.as_ref() } else { None };
                            let c = if a > 0 { Some(&pf.l_arrow[idx]) } else { None };
                            run3(
                                split,
                                move || {
                                    if let (Some(lu), Some(w)) = (lu.as_mut(), w) {
                                        blas::gemm_with(pk_left, Trans::No, Trans::No, 1.0, w, y, 1.0, lu);
                                    }
                                },
                                move || {
                                    if let (Some(ru), Some(r)) = (ru.as_mut(), r) {
                                        blas::gemm_with(pk_schur, Trans::No, Trans::No, 1.0, r, y, 1.0, ru);
                                    }
                                },
                                move || {
                                    if let Some(c) = c {
                                        blas::gemm_with(pk_arrow, Trans::No, Trans::No, 1.0, c, y, 1.0, tu);
                                    }
                                },
                            );
                        }
                        ys.push(yj);
                    }
                    (pf.p, ys, left_update, right_update, tip_update)
                })
                .collect();

            // Write interior y values and apply separator/tip updates.
            let mut reduced_rhs = Matrix::zeros(n_red * b + a, k);
            for (kk, &sep) in seps.iter().enumerate() {
                let block = rhs.block(sep * b, 0, b, k);
                reduced_rhs.set_block(kk * b, 0, &block);
            }
            if a > 0 {
                let tip_block = rhs.block(a0, 0, a, k);
                reduced_rhs.set_block(n_red * b, 0, &tip_block);
            }
            for (p, ys, left_update, right_update, tip_update) in &partial {
                let pf = &partitions[*p];
                let (s, _e) = pf.interior;
                for (idx, y) in ys.iter().enumerate() {
                    rhs.set_block((s + idx) * b, 0, y);
                }
                if let Some(lu) = left_update {
                    reduced_rhs.add_block((p - 1) * b, 0, -1.0, lu);
                }
                if let Some(ru) = right_update {
                    reduced_rhs.add_block(*p * b, 0, -1.0, ru);
                }
                if a > 0 {
                    reduced_rhs.add_block(n_red * b, 0, -1.0, tip_update);
                }
            }

            // ---- Solve the reduced system. ----
            pobtas(reduced, &mut reduced_rhs);

            // Scatter the separator / tip solutions back.
            for (kk, &sep) in seps.iter().enumerate() {
                let block = reduced_rhs.block(kk * b, 0, b, k);
                rhs.set_block(sep * b, 0, &block);
            }
            if a > 0 {
                let tip_block = reduced_rhs.block(n_red * b, 0, a, k);
                rhs.set_block(a0, 0, &tip_block);
            }

            // Hoist the separator / tip solution blocks out of the parallel
            // region: every partition reads (at most) two separators and the
            // tip, so one extraction per reduced block replaces the former
            // per-partition clones.
            let sep_x: Vec<Matrix> = (0..n_red).map(|kk| reduced_rhs.block(kk * b, 0, b, k)).collect();
            let tip_x = (a > 0).then(|| reduced_rhs.block(n_red * b, 0, a, k));

            // ---- Backward substitution on the interiors (parallel). ----
            let last_p = partitioning.num_partitions() - 1;
            let solutions: Vec<(usize, Vec<Matrix>)> = partitions
                .par_iter()
                .map(|pf| {
                    let (s, e) = pf.interior;
                    let len = e - s;
                    let mut packs = InteriorPacks::new();
                    let mut xs: Vec<Matrix> = vec![Matrix::zeros(0, 0); len];
                    let x_left = if pf.p > 0 { Some(&sep_x[pf.p - 1]) } else { None };
                    let x_right = if pf.p < last_p { Some(&sep_x[pf.p]) } else { None };
                    let x_tip = tip_x.as_ref();
                    // The external separator / tip back-couplings accumulate
                    // into a dedicated buffer so they can fork against the
                    // carried sub-diagonal term; both schedules run the same
                    // sequence, keeping the result schedule-independent.
                    let mut ext = if len > 0 { Matrix::zeros(b, k) } else { Matrix::zeros(0, 0) };
                    for idx in (0..len).rev() {
                        let j = s + idx;
                        let mut t = rhs.block(j * b, 0, b, k);
                        ext.fill_zero();
                        {
                            let InteriorPacks { diag: pk_diag, left: pk_left, .. } = &mut packs;
                            let carried =
                                if idx + 1 < len { Some((&pf.l_sub[idx], &xs[idx + 1])) } else { None };
                            let (t_ref, ext_ref) = (&mut t, &mut ext);
                            let w = pf.l_left.get(idx);
                            let r = if idx + 1 == len { pf.l_right.as_ref() } else { None };
                            let c = &pf.l_arrow;
                            run2(
                                split,
                                move || {
                                    if let Some((l, x)) = carried {
                                        blas::gemm_with(pk_diag, Trans::Yes, Trans::No, -1.0, l, x, 1.0, t_ref);
                                    }
                                },
                                move || {
                                    if let (Some(w), Some(xl)) = (w, x_left) {
                                        blas::gemm_with(pk_left, Trans::Yes, Trans::No, -1.0, w, xl, 1.0, ext_ref);
                                    }
                                    if let (Some(r), Some(xr)) = (r, x_right) {
                                        blas::gemm_with(pk_left, Trans::Yes, Trans::No, -1.0, r, xr, 1.0, ext_ref);
                                    }
                                    if let Some(xt) = x_tip {
                                        blas::gemm_with(pk_left, Trans::Yes, Trans::No, -1.0, &c[idx], xt, 1.0, ext_ref);
                                    }
                                },
                            );
                        }
                        t.axpy(1.0, &ext);
                        blas::trsm_with(&mut packs.diag, Side::Left, Triangle::Lower, Trans::Yes, &pf.l_diag[idx], &mut t);
                        xs[idx] = t;
                    }
                    (pf.p, xs)
                })
                .collect();

            for (p, xs) in solutions {
                let (s, _e) = partitions[p].interior;
                for (idx, x) in xs.iter().enumerate() {
                    rhs.set_block((s + idx) * b, 0, x);
                }
            }
        }
    }
}

/// Distributed selected inversion (`d_pobtasi`): the selected inverse blocks
/// on the original BTA pattern, matching [`pobtasi`] exactly. Uses stealable
/// partition interiors ([`InteriorSchedule::Stealable`]).
pub fn d_pobtasi(factor: &DistBtaCholesky) -> BtaSelectedInverse {
    d_pobtasi_scheduled(factor, InteriorSchedule::Stealable)
}

/// [`d_pobtasi`] with an explicit [`InteriorSchedule`].
///
/// With [`InteriorSchedule::Stealable`] every interior column of the backward
/// selected-inverse pass forks its three independent Σ products — `Σ_{ls,j}`
/// (left separator column), `Σ_{j+1,j}` / `Σ_{rs,j}` (below-diagonal), and
/// `Σ_{T,j}` (arrow row) — as one pool join group with per-lane
/// `PackBuffer`s; `L_jj⁻¹` and the diagonal update stay on the critical path.
/// Both schedules execute the same kernel calls on the same operands, so the
/// selected inverse is **bitwise identical** across schedules.
pub fn d_pobtasi_scheduled(factor: &DistBtaCholesky, sched: InteriorSchedule) -> BtaSelectedInverse {
    match factor {
        DistBtaCholesky::Sequential(f) => pobtasi(f),
        DistBtaCholesky::Partitioned { structure, partitioning, partitions, reduced } => {
            let (n, b, a) = *structure;
            let seps = partitioning.separators();
            let n_red = seps.len();
            let split = sched == InteriorSchedule::Stealable
                && b >= STEAL_MIN_BLOCK
                && dalia_pool::current_num_threads() > 1;
            let reduced_sel = pobtasi(reduced);
            let mut inv = BtaMatrix::zeros(n, b, a);

            // Fill in the separator / tip blocks directly from the reduced
            // selected inverse.
            if a > 0 {
                inv.tip = reduced_sel.blocks.tip.clone();
            }
            for (kk, &sep) in seps.iter().enumerate() {
                inv.diag[sep] = reduced_sel.blocks.diag[kk].clone();
                if a > 0 {
                    inv.arrow[sep] = reduced_sel.blocks.arrow[kk].clone();
                }
                // Coupling between adjacent separators (only when the partition
                // between them has no interior blocks).
                if kk + 1 < n_red && seps[kk + 1] == sep + 1 {
                    inv.sub[sep] = reduced_sel.blocks.sub[kk].clone();
                }
            }

            // Per-partition backward pass (parallel).
            struct PartInverse {
                p: usize,
                s: usize,
                diag: Vec<Matrix>,
                sub_within: Vec<Matrix>,
                sub_to_right_sep: Option<Matrix>,
                sub_from_left_sep: Option<Matrix>,
                arrow: Vec<Matrix>,
            }

            let parts: Vec<PartInverse> = partitions
                .par_iter()
                .map(|pf| {
                    let (s, e) = pf.interior;
                    let len = e - s;
                    let p = pf.p;
                    let mut packs = InteriorPacks::new();
                    let has_left = p > 0;
                    let has_right = p + 1 < partitioning.num_partitions();

                    // Borrowed views into the shared reduced selected inverse
                    // — no per-partition clones (the reduced system is
                    // read-only during this pass).
                    let sig_ls_ls = if has_left { Some(&reduced_sel.blocks.diag[p - 1]) } else { None };
                    let sig_rs_rs = if has_right { Some(&reduced_sel.blocks.diag[p]) } else { None };
                    let sig_rs_ls = if has_left && has_right {
                        Some(&reduced_sel.blocks.sub[p - 1])
                    } else {
                        None
                    };
                    let sig_t_ls = if has_left && a > 0 { Some(&reduced_sel.blocks.arrow[p - 1]) } else { None };
                    let sig_t_rs = if has_right && a > 0 { Some(&reduced_sel.blocks.arrow[p]) } else { None };
                    let sig_tt = &reduced_sel.blocks.tip;

                    let mut diag_out: Vec<Matrix> = vec![Matrix::zeros(0, 0); len];
                    let mut sub_within: Vec<Matrix> = vec![Matrix::zeros(0, 0); len.saturating_sub(1)];
                    let mut sub_to_right_sep: Option<Matrix> = None;
                    let mut sub_from_left_sep: Option<Matrix> = None;
                    let mut arrow_out: Vec<Matrix> = vec![Matrix::zeros(0, 0); len];

                    // Backward carry: Σ_{j+1,j+1}, Σ_{ls,j+1}, Σ_{T,j+1}.
                    let mut next_diag: Option<Matrix> = None;
                    let mut next_left: Option<Matrix> = None;
                    let mut next_arrow: Option<Matrix> = None;

                    for idx in (0..len).rev() {
                        let is_last = idx + 1 == len;
                        let l_jj = &pf.l_diag[idx];
                        let mut l_inv = Matrix::identity(b);
                        blas::trsm_with(&mut packs.diag, Side::Left, Triangle::Lower, Trans::No, l_jj, &mut l_inv);

                        let w_j = pf.l_left.get(idx);
                        let c_j = &pf.l_arrow[idx];
                        let b_j = if !is_last { Some(&pf.l_sub[idx]) } else { None };
                        let r_j = if is_last { pf.l_right.as_ref() } else { None };

                        // The three Σ products of this column are mutually
                        // independent (disjoint outputs, shared read-only
                        // inputs) — fork them as one join group.
                        let mut sigma_left: Option<Matrix> = None;
                        let mut sigma_below: Option<Matrix> = None;
                        let mut sigma_tip: Option<Matrix> = None;
                        {
                            let InteriorPacks { left: pk_left, arrow: pk_arrow, schur: pk_schur, .. } =
                                &mut packs;
                            let (sl_out, sb_out, st_out) =
                                (&mut sigma_left, &mut sigma_below, &mut sigma_tip);
                            let li = &l_inv;
                            let nd = next_diag.as_ref();
                            let nl = next_left.as_ref();
                            let na = next_arrow.as_ref();
                            run3(
                                split,
                                // Σ_{ls,j}.
                                move || {
                                    if has_left {
                                        let mut m = Matrix::zeros(b, b);
                                        if let (Some(bj), Some(nl)) = (b_j, nl) {
                                            blas::gemm_with(pk_left, Trans::No, Trans::No, -1.0, nl, bj, 1.0, &mut m);
                                        }
                                        if let (Some(sll), Some(w)) = (sig_ls_ls, w_j) {
                                            blas::gemm_with(pk_left, Trans::No, Trans::No, -1.0, sll, w, 1.0, &mut m);
                                        }
                                        if let (Some(rj), Some(srl)) = (r_j, sig_rs_ls) {
                                            // Σ_{ls,rs} = Σ_{rs,ls}ᵀ.
                                            blas::gemm_with(pk_left, Trans::Yes, Trans::No, -1.0, srl, rj, 1.0, &mut m);
                                        }
                                        if a > 0 {
                                            if let Some(stl) = sig_t_ls {
                                                blas::gemm_with(pk_left, Trans::Yes, Trans::No, -1.0, stl, c_j, 1.0, &mut m);
                                            }
                                        }
                                        let mut out = Matrix::zeros(b, b);
                                        blas::gemm_with(pk_left, Trans::No, Trans::No, 1.0, &m, li, 0.0, &mut out);
                                        *sl_out = Some(out);
                                    }
                                },
                                // Σ_{j+1,j} (within partition) or Σ_{rs,j} (last column).
                                move || {
                                    *sb_out = if let Some(bj) = b_j {
                                        let mut m = Matrix::zeros(b, b);
                                        blas::gemm_with(pk_schur, Trans::No, Trans::No, -1.0, nd.unwrap(), bj, 1.0, &mut m);
                                        if let (Some(nl), Some(w)) = (nl, w_j) {
                                            // Σ_{j+1,ls} = Σ_{ls,j+1}ᵀ.
                                            blas::gemm_with(pk_schur, Trans::Yes, Trans::No, -1.0, nl, w, 1.0, &mut m);
                                        }
                                        if a > 0 {
                                            blas::gemm_with(pk_schur, Trans::Yes, Trans::No, -1.0, na.unwrap(), c_j, 1.0, &mut m);
                                        }
                                        let mut out = Matrix::zeros(b, b);
                                        blas::gemm_with(pk_schur, Trans::No, Trans::No, 1.0, &m, li, 0.0, &mut out);
                                        Some(out)
                                    } else if let Some(rj) = r_j {
                                        let mut m = Matrix::zeros(b, b);
                                        blas::gemm_with(pk_schur, Trans::No, Trans::No, -1.0, sig_rs_rs.unwrap(), rj, 1.0, &mut m);
                                        if let (Some(srl), Some(w)) = (sig_rs_ls, w_j) {
                                            blas::gemm_with(pk_schur, Trans::No, Trans::No, -1.0, srl, w, 1.0, &mut m);
                                        }
                                        if a > 0 {
                                            if let Some(str_) = sig_t_rs {
                                                blas::gemm_with(pk_schur, Trans::Yes, Trans::No, -1.0, str_, c_j, 1.0, &mut m);
                                            }
                                        }
                                        let mut out = Matrix::zeros(b, b);
                                        blas::gemm_with(pk_schur, Trans::No, Trans::No, 1.0, &m, li, 0.0, &mut out);
                                        Some(out)
                                    } else {
                                        None
                                    };
                                },
                                // Σ_{T,j}.
                                move || {
                                    if a > 0 {
                                        let mut m = Matrix::zeros(a, b);
                                        if let Some(bj) = b_j {
                                            blas::gemm_with(pk_arrow, Trans::No, Trans::No, -1.0, na.unwrap(), bj, 1.0, &mut m);
                                        }
                                        if let (Some(stl), Some(w)) = (sig_t_ls, w_j) {
                                            blas::gemm_with(pk_arrow, Trans::No, Trans::No, -1.0, stl, w, 1.0, &mut m);
                                        }
                                        if let (Some(str_), Some(rj)) = (sig_t_rs, r_j) {
                                            blas::gemm_with(pk_arrow, Trans::No, Trans::No, -1.0, str_, rj, 1.0, &mut m);
                                        }
                                        blas::gemm_with(pk_arrow, Trans::No, Trans::No, -1.0, sig_tt, c_j, 1.0, &mut m);
                                        let mut out = Matrix::zeros(a, b);
                                        blas::gemm_with(pk_arrow, Trans::No, Trans::No, 1.0, &m, li, 0.0, &mut out);
                                        *st_out = Some(out);
                                    }
                                },
                            );
                        }

                        // Σ_{jj} = L_jj^{-T}(L_jj^{-1} − Σ_k L_{k,j}ᵀ Σ_{k,j}).
                        let mut inner = l_inv.clone();
                        if let (Some(bj), Some(sb)) = (b_j, sigma_below.as_ref()) {
                            blas::gemm_with(&mut packs.diag, Trans::Yes, Trans::No, -1.0, bj, sb, 1.0, &mut inner);
                        }
                        if let (Some(rj), Some(sb)) = (r_j, sigma_below.as_ref()) {
                            blas::gemm_with(&mut packs.diag, Trans::Yes, Trans::No, -1.0, rj, sb, 1.0, &mut inner);
                        }
                        if let (Some(w), Some(sl)) = (w_j, sigma_left.as_ref()) {
                            blas::gemm_with(&mut packs.diag, Trans::Yes, Trans::No, -1.0, w, sl, 1.0, &mut inner);
                        }
                        if let Some(st) = sigma_tip.as_ref() {
                            blas::gemm_with(&mut packs.diag, Trans::Yes, Trans::No, -1.0, c_j, st, 1.0, &mut inner);
                        }
                        blas::trsm_with(&mut packs.diag, Side::Left, Triangle::Lower, Trans::Yes, l_jj, &mut inner);
                        inner.symmetrize();

                        diag_out[idx] = inner.clone();
                        if let Some(sb) = sigma_below.clone() {
                            if is_last {
                                sub_to_right_sep = Some(sb);
                            } else {
                                sub_within[idx] = sb;
                            }
                        }
                        if idx == 0 {
                            if let Some(sl) = sigma_left.as_ref() {
                                // Σ_{s, ls} = Σ_{ls, s}ᵀ is the sub-diagonal block at (s, s-1).
                                sub_from_left_sep = Some(sl.transpose());
                            }
                        }
                        if let Some(st) = sigma_tip.clone() {
                            arrow_out[idx] = st;
                        }

                        next_diag = Some(inner);
                        next_left = sigma_left;
                        next_arrow = sigma_tip;
                    }

                    PartInverse {
                        p,
                        s,
                        diag: diag_out,
                        sub_within,
                        sub_to_right_sep,
                        sub_from_left_sep,
                        arrow: arrow_out,
                    }
                })
                .collect();

            for part in parts {
                let s = part.s;
                for (idx, m) in part.diag.into_iter().enumerate() {
                    inv.diag[s + idx] = m;
                }
                for (idx, m) in part.sub_within.into_iter().enumerate() {
                    inv.sub[s + idx] = m;
                }
                if let Some(m) = part.sub_to_right_sep {
                    let e = partitions[part.p].interior.1;
                    inv.sub[e - 1] = m;
                }
                if let Some(m) = part.sub_from_left_sep {
                    inv.sub[s - 1] = m;
                }
                if a > 0 {
                    for (idx, m) in part.arrow.into_iter().enumerate() {
                        inv.arrow[s + idx] = m;
                    }
                }
            }

            BtaSelectedInverse { blocks: inv }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{test_matrix, test_rhs};

    fn check_equivalence(n: usize, b: usize, a: usize, p: usize, lb: f64) {
        let m = test_matrix(n, b, a, 42);
        let part = Partitioning::load_balanced(n, p, lb);
        let seq = pobtaf(&m).unwrap();
        let dist = d_pobtaf(&m, &part).unwrap();

        // Log-determinants agree.
        assert!(
            (seq.logdet().unwrap() - dist.logdet().unwrap()).abs()
                < 1e-8 * (1.0 + seq.logdet().unwrap().abs()),
            "logdet mismatch for P={p}: {} vs {}",
            seq.logdet().unwrap(),
            dist.logdet().unwrap()
        );

        // Solves agree.
        let rhs0 = test_rhs(m.dim(), 2);
        let mut rhs_seq = rhs0.clone();
        pobtas(&seq, &mut rhs_seq);
        let mut rhs_dist = rhs0.clone();
        d_pobtas(&dist, &mut rhs_dist);
        assert!(
            rhs_seq.max_abs_diff(&rhs_dist) < 1e-8,
            "solve mismatch for P={p}: {}",
            rhs_seq.max_abs_diff(&rhs_dist)
        );

        // Selected inverses agree block by block.
        let sel_seq = pobtasi(&seq);
        let sel_dist = d_pobtasi(&dist);
        for i in 0..n {
            assert!(
                sel_seq.blocks.diag[i].max_abs_diff(&sel_dist.blocks.diag[i]) < 1e-8,
                "diag {i} mismatch for P={p}"
            );
        }
        for i in 0..n - 1 {
            assert!(
                sel_seq.blocks.sub[i].max_abs_diff(&sel_dist.blocks.sub[i]) < 1e-8,
                "sub {i} mismatch for P={p}"
            );
        }
        if a > 0 {
            for i in 0..n {
                assert!(
                    sel_seq.blocks.arrow[i].max_abs_diff(&sel_dist.blocks.arrow[i]) < 1e-8,
                    "arrow {i} mismatch for P={p}"
                );
            }
            assert!(sel_seq.blocks.tip.max_abs_diff(&sel_dist.blocks.tip) < 1e-8);
        }
    }

    #[test]
    fn distributed_matches_sequential_two_partitions() {
        check_equivalence(8, 3, 2, 2, 1.0);
    }

    #[test]
    fn distributed_matches_sequential_four_partitions() {
        check_equivalence(12, 2, 2, 4, 1.0);
    }

    #[test]
    fn distributed_matches_sequential_with_load_balancing() {
        check_equivalence(16, 2, 1, 4, 1.6);
    }

    #[test]
    fn distributed_matches_sequential_no_arrow() {
        check_equivalence(10, 3, 0, 3, 1.0);
    }

    #[test]
    fn distributed_single_partition_falls_back_to_sequential() {
        check_equivalence(6, 2, 1, 1, 1.0);
    }

    #[test]
    fn distributed_with_single_block_partitions() {
        // P = n/1: some partitions have empty interiors.
        check_equivalence(6, 2, 1, 6, 1.0);
        check_equivalence(5, 2, 1, 5, 1.0);
    }

    #[test]
    fn distributed_many_partitions_odd_sizes() {
        check_equivalence(11, 2, 2, 3, 1.3);
        check_equivalence(9, 3, 1, 4, 1.0);
    }

    /// Exact (bitwise) equality of two partition factor sets.
    fn assert_factors_bitwise_equal(x: &DistBtaCholesky, y: &DistBtaCholesky, tag: &str) {
        let (DistBtaCholesky::Partitioned { partitions: px, reduced: rx, .. },
             DistBtaCholesky::Partitioned { partitions: py, reduced: ry, .. }) = (x, y)
        else {
            panic!("{tag}: expected partitioned factorizations");
        };
        assert_eq!(px.len(), py.len(), "{tag}: partition count");
        for (fx, fy) in px.iter().zip(py) {
            let p = fx.p;
            assert_eq!(fx.interior, fy.interior, "{tag}: interior range of partition {p}");
            for (i, (mx, my)) in fx.l_diag.iter().zip(&fy.l_diag).enumerate() {
                assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: l_diag[{i}] of partition {p}");
            }
            for (i, (mx, my)) in fx.l_sub.iter().zip(&fy.l_sub).enumerate() {
                assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: l_sub[{i}] of partition {p}");
            }
            for (i, (mx, my)) in fx.l_left.iter().zip(&fy.l_left).enumerate() {
                assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: l_left[{i}] of partition {p}");
            }
            for (i, (mx, my)) in fx.l_arrow.iter().zip(&fy.l_arrow).enumerate() {
                assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: l_arrow[{i}] of partition {p}");
            }
            match (&fx.l_right, &fy.l_right) {
                (Some(mx), Some(my)) => {
                    assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: l_right of partition {p}")
                }
                (None, None) => {}
                _ => panic!("{tag}: l_right presence mismatch in partition {p}"),
            }
        }
        assert_eq!(
            rx.logdet().unwrap().to_bits(),
            ry.logdet().unwrap().to_bits(),
            "{tag}: reduced logdet"
        );
        assert_chol_bitwise_equal(rx, ry, &format!("{tag}: reduced factor"));
    }

    /// Exact (bitwise) equality of two BTA Cholesky factors, block by block.
    fn assert_chol_bitwise_equal(x: &BtaCholesky, y: &BtaCholesky, tag: &str) {
        let (bx, by) = (&x.blocks, &y.blocks);
        assert_eq!(bx.n, by.n, "{tag}: block count");
        for (i, (mx, my)) in bx.diag.iter().zip(&by.diag).enumerate() {
            assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: diag[{i}]");
        }
        for (i, (mx, my)) in bx.sub.iter().zip(&by.sub).enumerate() {
            assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: sub[{i}]");
        }
        for (i, (mx, my)) in bx.arrow.iter().zip(&by.arrow).enumerate() {
            assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: arrow[{i}]");
        }
        assert_eq!(bx.tip.max_abs_diff(&by.tip), 0.0, "{tag}: tip");
    }

    /// Exact (bitwise) equality of two selected inverses, block by block.
    fn assert_selinv_bitwise_equal(x: &BtaSelectedInverse, y: &BtaSelectedInverse, tag: &str) {
        let (bx, by) = (&x.blocks, &y.blocks);
        assert_eq!(bx.n, by.n, "{tag}: block count");
        for (i, (mx, my)) in bx.diag.iter().zip(&by.diag).enumerate() {
            assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: diag[{i}]");
        }
        for (i, (mx, my)) in bx.sub.iter().zip(&by.sub).enumerate() {
            assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: sub[{i}]");
        }
        for (i, (mx, my)) in bx.arrow.iter().zip(&by.arrow).enumerate() {
            assert_eq!(mx.max_abs_diff(my), 0.0, "{tag}: arrow[{i}]");
        }
        assert_eq!(bx.tip.max_abs_diff(&by.tip), 0.0, "{tag}: tip");
    }

    #[test]
    fn stealable_interiors_bitwise_match_indivisible() {
        // Blocks above STEAL_MIN_BLOCK so the stealable schedule actually
        // forks, on a multi-worker pool so subtasks really get stolen. The
        // two schedules (and any worker count) must agree to the last bit.
        let n = 9;
        let (b, aa) = (STEAL_MIN_BLOCK + 16, 3);
        let m = test_matrix(n, b, aa, 7);
        let part = Partitioning::from_sizes(&[6, 1, 1, 1]);
        let pool = dalia_pool::ThreadPool::new(4);
        let stealable =
            pool.install(|| d_pobtaf_scheduled(&m, &part, InteriorSchedule::Stealable)).unwrap();
        let indivisible =
            d_pobtaf_scheduled(&m, &part, InteriorSchedule::Indivisible).unwrap();
        assert_factors_bitwise_equal(&stealable, &indivisible, "stealable-vs-indivisible");
        // And a second stealable run is deterministic despite stealing.
        let again =
            pool.install(|| d_pobtaf_scheduled(&m, &part, InteriorSchedule::Stealable)).unwrap();
        assert_factors_bitwise_equal(&stealable, &again, "stealable-rerun");
    }

    #[test]
    fn parallel_reduced_pobtaf_bitwise_matches_sequential() {
        // The forked right-looking reduced-system factorization must agree
        // with the sequential kernel to the last bit, with and without an
        // arrow, and on a 1-thread pool (where it falls back outright).
        let pool = dalia_pool::ThreadPool::new(4);
        let single = dalia_pool::ThreadPool::new(1);
        for (aa, seed) in [(3, 11), (0, 12)] {
            let m = test_matrix(5, STEAL_MIN_BLOCK + 16, aa, seed);
            let seq = pobtaf(&m).unwrap();
            let par = pool.install(|| pobtaf_parallel(&m)).unwrap();
            assert_chol_bitwise_equal(&par, &seq, &format!("pobtaf_parallel a={aa}"));
            let one = single.install(|| pobtaf_parallel(&m)).unwrap();
            assert_chol_bitwise_equal(&one, &seq, &format!("pobtaf_parallel 1T a={aa}"));
        }
        // Below the fork cutoff the parallel entry point is the sequential
        // kernel by definition.
        let m = test_matrix(6, STEAL_MIN_BLOCK / 2, 2, 13);
        let par = pool.install(|| pobtaf_parallel(&m)).unwrap();
        assert_chol_bitwise_equal(&par, &pobtaf(&m).unwrap(), "pobtaf_parallel tiny");
    }

    #[test]
    fn tree_reduced_assembly_independent_of_worker_count() {
        // 8 partitions give a 3-level Schur reduction tree; the sequential
        // (1-thread) and forked (4-thread) reductions share the same pairing
        // order, so the assembled reduced factor must agree bitwise.
        let m = test_matrix(16, 3, 2, 33);
        let part = Partitioning::load_balanced(16, 8, 1.0);
        let f1 = dalia_pool::ThreadPool::new(1).install(|| d_pobtaf(&m, &part)).unwrap();
        let f4 = dalia_pool::ThreadPool::new(4).install(|| d_pobtaf(&m, &part)).unwrap();
        assert_factors_bitwise_equal(&f1, &f4, "tree-reduce worker count");
    }

    #[test]
    fn stealable_solve_and_selinv_bitwise_match_indivisible() {
        // Same contract as the factorization test: blocks above the fork
        // cutoff on a multi-worker pool, stealable vs indivisible schedules
        // (and reruns, and different worker counts) agree to the last bit.
        let n = 9;
        let (b, aa) = (STEAL_MIN_BLOCK + 16, 3);
        let m = test_matrix(n, b, aa, 21);
        let part = Partitioning::from_sizes(&[6, 1, 1, 1]);
        let pool = dalia_pool::ThreadPool::new(4);
        let factor = pool.install(|| d_pobtaf(&m, &part)).unwrap();

        let rhs0 = test_rhs(m.dim(), 3);
        let mut steal = rhs0.clone();
        pool.install(|| d_pobtas_scheduled(&factor, &mut steal, InteriorSchedule::Stealable));
        let mut indiv = rhs0.clone();
        d_pobtas_scheduled(&factor, &mut indiv, InteriorSchedule::Indivisible);
        assert_eq!(steal.max_abs_diff(&indiv), 0.0, "solve: stealable vs indivisible");
        let mut again = rhs0.clone();
        pool.install(|| d_pobtas_scheduled(&factor, &mut again, InteriorSchedule::Stealable));
        assert_eq!(steal.max_abs_diff(&again), 0.0, "solve: stealable rerun");
        let mut one = rhs0.clone();
        dalia_pool::ThreadPool::new(1)
            .install(|| d_pobtas_scheduled(&factor, &mut one, InteriorSchedule::Stealable));
        assert_eq!(steal.max_abs_diff(&one), 0.0, "solve: 1-thread vs 4-thread");

        let sel_steal = pool.install(|| d_pobtasi_scheduled(&factor, InteriorSchedule::Stealable));
        let sel_indiv = d_pobtasi_scheduled(&factor, InteriorSchedule::Indivisible);
        assert_selinv_bitwise_equal(&sel_steal, &sel_indiv, "selinv: stealable vs indivisible");
        let sel_again = pool.install(|| d_pobtasi_scheduled(&factor, InteriorSchedule::Stealable));
        assert_selinv_bitwise_equal(&sel_steal, &sel_again, "selinv: stealable rerun");
    }

    /// Full-pipeline schedule parity on a given explicit layout: factor,
    /// solve and selected inverse must be bitwise identical across schedules
    /// and numerically match the sequential pipeline.
    fn check_schedules_agree(n: usize, b: usize, aa: usize, sizes: &[usize], tag: &str) {
        let m = test_matrix(n, b, aa, 5);
        let part = Partitioning::from_sizes(sizes);
        let pool = dalia_pool::ThreadPool::new(4);
        let fs = pool
            .install(|| d_pobtaf_scheduled(&m, &part, InteriorSchedule::Stealable))
            .unwrap();
        let fi = d_pobtaf_scheduled(&m, &part, InteriorSchedule::Indivisible).unwrap();
        assert_factors_bitwise_equal(&fs, &fi, tag);

        let rhs0 = test_rhs(m.dim(), 2);
        let mut xs = rhs0.clone();
        pool.install(|| d_pobtas_scheduled(&fs, &mut xs, InteriorSchedule::Stealable));
        let mut xi = rhs0.clone();
        d_pobtas_scheduled(&fi, &mut xi, InteriorSchedule::Indivisible);
        assert_eq!(xs.max_abs_diff(&xi), 0.0, "{tag}: solve schedules");

        let ss = pool.install(|| d_pobtasi_scheduled(&fs, InteriorSchedule::Stealable));
        let si = d_pobtasi_scheduled(&fi, InteriorSchedule::Indivisible);
        assert_selinv_bitwise_equal(&ss, &si, tag);

        let seq = pobtaf(&m).unwrap();
        let mut xq = rhs0.clone();
        pobtas(&seq, &mut xq);
        assert!(xs.max_abs_diff(&xq) < 1e-8, "{tag}: solve vs sequential");
        let sq = pobtasi(&seq);
        for i in 0..n {
            assert!(
                sq.blocks.diag[i].max_abs_diff(&ss.blocks.diag[i]) < 1e-8,
                "{tag}: selected-inverse diag {i} vs sequential"
            );
        }
    }

    #[test]
    fn schedules_agree_on_skewed_layout() {
        check_schedules_agree(8, STEAL_MIN_BLOCK + 16, 2, &[5, 1, 1, 1], "skewed");
    }

    #[test]
    fn schedules_agree_with_empty_interiors() {
        // P = n: every partition is a single block, all interiors empty.
        check_schedules_agree(4, STEAL_MIN_BLOCK + 16, 1, &[1, 1, 1, 1], "empty-interior");
    }

    #[test]
    fn schedules_agree_without_arrow() {
        check_schedules_agree(8, STEAL_MIN_BLOCK + 16, 0, &[5, 1, 1, 1], "no-arrow");
    }

    #[test]
    fn schedules_agree_on_one_thread() {
        // On a 1-thread pool the stealable schedule never forks; pin that
        // the fallback path is the same computation.
        let m = test_matrix(8, STEAL_MIN_BLOCK + 16, 2, 5);
        let part = Partitioning::from_sizes(&[5, 1, 1, 1]);
        let pool = dalia_pool::ThreadPool::new(1);
        let fs = pool
            .install(|| d_pobtaf_scheduled(&m, &part, InteriorSchedule::Stealable))
            .unwrap();
        let fi = d_pobtaf_scheduled(&m, &part, InteriorSchedule::Indivisible).unwrap();
        assert_factors_bitwise_equal(&fs, &fi, "1-thread");
        let rhs0 = test_rhs(m.dim(), 2);
        let mut xs = rhs0.clone();
        pool.install(|| d_pobtas_scheduled(&fs, &mut xs, InteriorSchedule::Stealable));
        let mut xi = rhs0.clone();
        d_pobtas_scheduled(&fi, &mut xi, InteriorSchedule::Indivisible);
        assert_eq!(xs.max_abs_diff(&xi), 0.0, "1-thread: solve schedules");
        let ss = pool.install(|| d_pobtasi_scheduled(&fs, InteriorSchedule::Stealable));
        let si = d_pobtasi_scheduled(&fi, InteriorSchedule::Indivisible);
        assert_selinv_bitwise_equal(&ss, &si, "1-thread");
    }

    #[test]
    fn skewed_partitioning_matches_sequential() {
        // A deliberately imbalanced 1-big/N-tiny layout (the shape the
        // stealable schedule exists for) still reproduces the sequential
        // factorization's quantities.
        let (n, b, aa) = (12, 3, 2);
        let m = test_matrix(n, b, aa, 99);
        let part = Partitioning::from_sizes(&[9, 1, 1, 1]);
        let seq = pobtaf(&m).unwrap();
        let dist = d_pobtaf(&m, &part).unwrap();
        assert!(
            (seq.logdet().unwrap() - dist.logdet().unwrap()).abs()
                < 1e-8 * (1.0 + seq.logdet().unwrap().abs()),
            "skewed logdet mismatch: {} vs {}",
            seq.logdet().unwrap(),
            dist.logdet().unwrap()
        );
        let rhs0 = test_rhs(m.dim(), 2);
        let mut rhs_seq = rhs0.clone();
        pobtas(&seq, &mut rhs_seq);
        let mut rhs_dist = rhs0.clone();
        d_pobtas(&dist, &mut rhs_dist);
        assert!(rhs_seq.max_abs_diff(&rhs_dist) < 1e-8, "skewed solve mismatch");
        let sel_seq = pobtasi(&seq);
        let sel_dist = d_pobtasi(&dist);
        for i in 0..n {
            assert!(
                sel_seq.blocks.diag[i].max_abs_diff(&sel_dist.blocks.diag[i]) < 1e-8,
                "skewed selected-inverse diag {i} mismatch"
            );
        }
    }
}
