//! Allocation-count pin for the distributed solve / selected-inverse passes.
//!
//! `d_pobtas` / `d_pobtasi` sit in the per-θ hot loop, so their reduced-system
//! coupling blocks must be shared across partitions, not cloned per partition
//! per call (the regression this test pins): the solve hoists one extraction
//! per separator (`sep_x` / tip) out of the parallel region, and the selected
//! inverse borrows the `sig_*` views straight from the reduced selected
//! inverse. This test counts heap allocations around steady-state calls on a
//! 1-thread pool (deterministic scheduling) and fails if the counts creep
//! back up to per-partition-clone territory.

// A counting global allocator requires implementing the unsafe `GlobalAlloc`
// trait; the implementation only bumps a counter and delegates to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use serinv::testing::{test_matrix, test_rhs};
use serinv::{d_pobtaf, d_pobtas, d_pobtasi, Partitioning};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn solve_and_selinv_do_not_clone_reduced_blocks_per_partition() {
    // 6 partitions → 5 separators; small blocks keep the numbers readable.
    let (n, b, a) = (12, 8, 2);
    let m = test_matrix(n, b, a, 77);
    let part = Partitioning::from_sizes(&[7, 1, 1, 1, 1, 1]);
    let pool = dalia_pool::ThreadPool::new(1);

    let factor = pool.install(|| d_pobtaf(&m, &part)).unwrap();
    let rhs0 = test_rhs(m.dim(), 4);

    // Warm up once (lazy pool / pack structures), then measure steady state.
    let mut rhs = rhs0.clone();
    pool.install(|| d_pobtas(&factor, &mut rhs));
    pool.install(|| d_pobtasi(&factor));

    let mut rhs_a = rhs0.clone();
    let solve_allocs = allocs_during(|| pool.install(|| d_pobtas(&factor, &mut rhs_a)));
    let selinv_allocs = allocs_during(|| {
        let _sel = pool.install(|| d_pobtasi(&factor));
    });

    // Steady-state calls are deterministic: a rerun allocates exactly as much.
    let mut rhs_b = rhs0.clone();
    let solve_again = allocs_during(|| pool.install(|| d_pobtas(&factor, &mut rhs_b)));
    let selinv_again = allocs_during(|| {
        let _sel = pool.install(|| d_pobtasi(&factor));
    });
    assert_eq!(solve_allocs, solve_again, "d_pobtas allocation count is nondeterministic");
    assert_eq!(selinv_allocs, selinv_again, "d_pobtasi allocation count is nondeterministic");
    eprintln!("steady-state allocations: d_pobtas = {solve_allocs}, d_pobtasi = {selinv_allocs}");

    // Absolute budgets, measured with the shared/borrowed reduced blocks and
    // set with less headroom than the per-partition clones would cost
    // (≥ 3 × 6 extra matrices for the solve, ≥ 5 × 5 for the selinv on this
    // layout). A regression to cloning blows straight through them.
    assert!(
        solve_allocs <= SOLVE_ALLOC_BUDGET,
        "d_pobtas allocated {solve_allocs} times (budget {SOLVE_ALLOC_BUDGET}) — \
         are reduced solution blocks being cloned per partition again?"
    );
    assert!(
        selinv_allocs <= SELINV_ALLOC_BUDGET,
        "d_pobtasi allocated {selinv_allocs} times (budget {SELINV_ALLOC_BUDGET}) — \
         are reduced sig_* blocks being cloned per partition again?"
    );
}

// Empirical steady-state counts on the layout above (86 / 173) plus ~10%
// headroom — tighter than the former per-partition clone overhead.
const SOLVE_ALLOC_BUDGET: usize = 95;
const SELINV_ALLOC_BUDGET: usize = 190;

#[test]
fn warm_solve_and_selinv_take_the_zero_repack_fast_path() {
    use dalia_la::PackBuffer;
    use serinv::{pobtaf_with, pobtas_with, pobtasi_with};

    // b = 64 puts the inner gemm/syrk calls exactly at the packed-path
    // threshold (64·8·64 and 64³ ≥ the naive-kernel cutoff), so the solve and
    // selected inversion actually fetch panels of the registered factor.
    let (n, b, a) = (3, 64, 8);
    let m = test_matrix(n, b, a, 9);
    let pool = dalia_pool::ThreadPool::new(1);

    pool.install(|| {
        let mut pack = PackBuffer::new();
        pack.enable_panel_reuse(true);
        let factor = pobtaf_with(&m, None, &mut pack).expect("factorizes");

        // Warm pass: populates the panel cache for every factor-block panel
        // the solve and selected inverse touch.
        let mut rhs = test_rhs(m.dim(), 8);
        pobtas_with(&factor, &mut rhs, &mut pack);
        let _ = pobtasi_with(&factor, &mut pack);
        let (h1, m1) = pack.panel_stats();
        assert!(m1 > 0, "warm-up should have packed factor panels");

        // Steady state on the unchanged factor: every eligible panel fetch
        // must be served from the cache — zero repacks.
        let mut rhs2 = test_rhs(m.dim(), 8);
        pobtas_with(&factor, &mut rhs2, &mut pack);
        let _ = pobtasi_with(&factor, &mut pack);
        let (h2, m2) = pack.panel_stats();
        assert_eq!(
            m2 - m1,
            0,
            "warm solve/selinv repacked {} panels of an unchanged factor",
            m2 - m1
        );
        assert!(h2 > h1, "warm solve/selinv should hit the panel cache");
    });
}
