//! Public-API tests for the partitioning seam and the sequential-vs-
//! distributed factorization agreement, exercised the way downstream crates
//! consume `serinv` (through the re-exports, not the module internals).

use serinv::{d_pobtaf, d_pobtas, pobtaf, pobtas, testing, Partitioning};

#[test]
fn load_balanced_block_counts_sum_to_n() {
    for &n in &[4usize, 9, 16, 31, 64, 100] {
        for &p in &[1usize, 2, 3, 4, 7] {
            if p > n {
                continue;
            }
            for &lb in &[1.0f64, 1.3, 1.6, 2.0, 3.5] {
                let part = Partitioning::load_balanced(n, p, lb);
                assert_eq!(part.num_partitions(), p, "n={n} p={p} lb={lb}");
                assert_eq!(part.num_blocks(), n, "n={n} p={p} lb={lb}");
                let total: usize = (0..p).map(|i| part.size(i)).sum();
                assert_eq!(total, n, "sizes must sum to n for n={n} p={p} lb={lb}");
            }
        }
    }
}

#[test]
fn load_balanced_partitions_are_nonempty_and_contiguous() {
    for &(n, p, lb) in &[
        (5usize, 5usize, 2.0f64),
        (6, 5, 4.0),
        (17, 6, 1.6),
        (32, 4, 1.6),
        (12, 3, 1.0),
        (50, 8, 2.5),
    ] {
        let part = Partitioning::load_balanced(n, p, lb);
        let mut expected_start = 0usize;
        for i in 0..p {
            let (s, e) = part.range(i);
            assert_eq!(s, expected_start, "partition {i} not contiguous (n={n} p={p} lb={lb})");
            assert!(e > s, "partition {i} empty (n={n} p={p} lb={lb})");
            expected_start = e;
        }
        assert_eq!(expected_start, n);
        // Separators are exactly the last block of every partition but the last.
        let seps = part.separators();
        assert_eq!(seps.len(), p - 1);
        for (i, &sep) in seps.iter().enumerate() {
            assert_eq!(sep, part.range(i).1 - 1);
        }
    }
}

#[test]
fn load_balancing_factor_shifts_work_to_boundaries() {
    // With P > 2 and a large factor, boundary partitions must own at least as
    // many blocks as every interior partition.
    let part = Partitioning::load_balanced(60, 5, 2.0);
    let sizes: Vec<usize> = (0..5).map(|i| part.size(i)).collect();
    let interior_max = sizes[1..4].iter().copied().max().unwrap();
    assert!(sizes[0] >= interior_max, "sizes {sizes:?}");
    assert!(sizes[4] >= interior_max, "sizes {sizes:?}");
}

#[test]
fn sequential_and_distributed_logdet_agree() {
    for &(n, b, a) in &[(8usize, 3usize, 2usize), (12, 4, 0), (16, 2, 3)] {
        let m = testing::test_matrix(n, b, a, 5);
        let seq = pobtaf(&m).expect("sequential factorization failed");
        for &p in &[1usize, 2, 3, 4] {
            for &lb in &[1.0f64, 1.6] {
                let part = Partitioning::load_balanced(n, p, lb);
                let dist = d_pobtaf(&m, &part).expect("distributed factorization failed");
                let (ls, ld) = (seq.logdet().unwrap(), dist.logdet().unwrap());
                assert!(
                    (ls - ld).abs() < 1e-8 * (1.0 + ls.abs()),
                    "logdet mismatch for n={n} b={b} a={a} P={p} lb={lb}: {ls} vs {ld}"
                );
            }
        }
    }
}

#[test]
fn sequential_and_distributed_solves_agree() {
    let (n, b, a) = (10usize, 3usize, 2usize);
    let m = testing::test_matrix(n, b, a, 11);
    let rhs = testing::test_rhs(m.dim(), 2);
    let seq = pobtaf(&m).unwrap();
    let mut x_seq = rhs.clone();
    pobtas(&seq, &mut x_seq);
    for &p in &[2usize, 3, 4] {
        let part = Partitioning::load_balanced(n, p, 1.6);
        let dist = d_pobtaf(&m, &part).unwrap();
        let mut x_dist = rhs.clone();
        d_pobtas(&dist, &mut x_dist);
        assert!(
            x_dist.max_abs_diff(&x_seq) < 1e-8,
            "solution mismatch for P={p}: {}",
            x_dist.max_abs_diff(&x_seq)
        );
    }
}
