//! Bitwise packing-reuse wall: warm-session BTA factorizations with the
//! keyed panel cache enabled must be **bit-identical** to pack-per-call,
//! across the `Q_p`/`Q_c` factorization pair, across simulated BFGS
//! iterations (values rewritten, cache invalidated, storage recycled), and
//! at 1 and 4 pinned worker threads.
//!
//! The cache can only change *when* a panel is packed, never *what* it
//! contains — `pack_panel` is deterministic in its inputs — so every factor
//! block, solve and selected-inverse output must match the cache-disabled
//! run bit for bit. Any drift here means a stale panel was served.

use dalia_la::PackBuffer;
use serinv::testing::{test_matrix, test_rhs};
use serinv::{pobtaf_with, pobtas_with, pobtasi_with};

/// Run a 3-iteration "BFGS" session: per iteration, assemble fresh `Q_p` /
/// `Q_c` values, factorize both recycling the previous factors' storage,
/// then solve and selected-invert against the conditional factor. Returns
/// every output bit produced, plus the final `(hits, misses)` panel stats.
fn session(threads: usize, reuse: bool) -> (Vec<u64>, (u64, u64)) {
    // b = 64 crosses the packed-path threshold (64³ ≥ the naive cutoff), so
    // the factorization and selected inversion run the cache-blocked engine.
    let (n, b, a) = (4usize, 64usize, 8usize);
    let pool = dalia_pool::ThreadPool::new(threads);
    pool.install(|| {
        let mut pack = PackBuffer::new();
        pack.enable_panel_reuse(reuse);
        let mut fp_store = None;
        let mut fc_store = None;
        let mut bits = Vec::new();
        for iter in 0..3u64 {
            // The assemble path contract: values change → panels invalid.
            pack.invalidate_panels();
            let qp = test_matrix(n, b, a, 100 + iter);
            let qc = test_matrix(n, b, a, 200 + iter);
            let fp = pobtaf_with(&qp, fp_store.take(), &mut pack).expect("qp factorizes");
            let fc = pobtaf_with(&qc, fc_store.take(), &mut pack).expect("qc factorizes");
            let mut rhs = test_rhs(qc.dim(), 8);
            pobtas_with(&fc, &mut rhs, &mut pack);
            let sel = pobtasi_with(&fc, &mut pack);
            for f in [&fp, &fc] {
                for d in &f.blocks.diag {
                    bits.extend(d.as_slice().iter().map(|v| v.to_bits()));
                }
                for s in &f.blocks.sub {
                    bits.extend(s.as_slice().iter().map(|v| v.to_bits()));
                }
                for c in &f.blocks.arrow {
                    bits.extend(c.as_slice().iter().map(|v| v.to_bits()));
                }
                bits.extend(f.blocks.tip.as_slice().iter().map(|v| v.to_bits()));
            }
            bits.extend(rhs.as_slice().iter().map(|v| v.to_bits()));
            bits.extend(sel.diagonal().iter().map(|v| v.to_bits()));
            fp_store = Some(fp.blocks);
            fc_store = Some(fc.blocks);
        }
        (bits, pack.panel_stats())
    })
}

#[test]
fn warm_session_with_panel_reuse_is_bitwise_identical_to_pack_per_call() {
    for threads in [1usize, 4] {
        let (cold, cold_stats) = session(threads, false);
        let (warm, warm_stats) = session(threads, true);
        assert_eq!(cold_stats, (0, 0), "disabled cache must not count fetches");
        assert!(
            warm_stats.0 > 0,
            "warm session must hit the panel cache (hits={}, misses={})",
            warm_stats.0,
            warm_stats.1
        );
        assert_eq!(cold.len(), warm.len());
        let drift = cold.iter().zip(&warm).position(|(c, w)| c != w);
        assert_eq!(
            drift, None,
            "panel-cache reuse drifted from pack-per-call at {threads} threads (first \
             differing output word: {drift:?})"
        );
    }
}

#[test]
fn warm_session_outputs_are_thread_count_invariant() {
    // The BTA kernels are bitwise deterministic across pool widths; the panel
    // cache must preserve that (its panels are keyed per PackBuffer and the
    // parallel-gemm leaves use their own thread-local, cache-disabled packs).
    let (one, _) = session(1, true);
    let (four, _) = session(4, true);
    assert_eq!(one, four, "warm-session outputs changed with the worker thread count");
}
