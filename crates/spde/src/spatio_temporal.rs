//! Spatio-temporal SPDE precision matrices (DEMF-style diffusion model).
//!
//! With variables ordered time-major (time step outer, mesh node inner) the
//! precision of the discretized diffusion SPDE is a sum of Kronecker products
//! of small temporal matrices and spatial FEM operators:
//!
//! ```text
//! Q_st(γ) = γ_e² ( γ_t² (M2 ⊗ q1) + 2 γ_t (M1 ⊗ q2) + (M0 ⊗ q3) )
//! ```
//!
//! where `q1 = γ_s² C + G`, `q2 = q1 C̃⁻¹ q1`, `q3 = q2 C̃⁻¹ q1` and
//! `M0/M1/M2` are the temporal lumped-mass / boundary / stiffness matrices.
//! Since the temporal matrices are (at most) tridiagonal, `Q_st` is
//! block-tridiagonal with blocks of size `n_s` — the structure the paper's
//! BTA solver exploits.

use crate::hyper::{InternalHyper, StHyper};
use crate::spatial::SpatialSpde;
use dalia_mesh::{temporal_matrices, TemporalMatrices, TriangleMesh};
use dalia_sparse::{ops, CsrMatrix};

/// Precomputed spatial and temporal operators of a spatio-temporal SPDE model.
#[derive(Clone, Debug)]
pub struct SpatioTemporalSpde {
    /// Spatial FEM operators.
    pub spatial: SpatialSpde,
    /// Temporal discretization matrices.
    pub temporal: TemporalMatrices,
    /// Number of spatial mesh nodes `n_s`.
    pub ns: usize,
    /// Number of time steps `n_t`.
    pub nt: usize,
}

impl SpatioTemporalSpde {
    /// Build the operators for `mesh` and `nt` time steps of size `dt`.
    pub fn new(mesh: &TriangleMesh, nt: usize, dt: f64) -> Self {
        let spatial = SpatialSpde::new(mesh);
        let temporal = temporal_matrices(nt, dt);
        let ns = spatial.n_nodes;
        Self { spatial, temporal, ns, nt }
    }

    /// Total latent dimension `n_s * n_t`.
    pub fn dim(&self) -> usize {
        self.ns * self.nt
    }

    /// Assemble the spatio-temporal precision matrix for internal
    /// hyperparameters `γ`.
    pub fn precision_internal(&self, gamma: &InternalHyper) -> CsrMatrix {
        let q1 = self.spatial.q1(gamma.gamma_s);
        let q2 = self.spatial.q2(gamma.gamma_s);
        let q3 = self.spatial.q3(gamma.gamma_s);
        let ge2 = gamma.gamma_e * gamma.gamma_e;
        let gt = gamma.gamma_t;

        let term2 = ops::kron(&self.temporal.m2, &q1);
        let term1 = ops::kron(&self.temporal.m1, &q2);
        let term0 = ops::kron(&self.temporal.m0, &q3);
        ops::linear_combination(&[
            (ge2 * gt * gt, &term2),
            (ge2 * 2.0 * gt, &term1),
            (ge2, &term0),
        ])
    }

    /// Assemble the precision for interpretable hyperparameters.
    pub fn precision(&self, hyper: &StHyper) -> CsrMatrix {
        self.precision_internal(&hyper.to_internal())
    }

    /// Diagonal block `(t, t)` and sub-diagonal block `(t+1, t)` coefficient
    /// view: the precision restricted to time steps `t` and `t'` equals
    /// `Σ_k m_k[t, t'] * q_{3-k}` — used by the block-dense assembly path.
    pub fn block(&self, gamma: &InternalHyper, t_row: usize, t_col: usize) -> CsrMatrix {
        assert!(t_row < self.nt && t_col < self.nt);
        let ge2 = gamma.gamma_e * gamma.gamma_e;
        let gt = gamma.gamma_t;
        let m2 = self.temporal.m2.get(t_row, t_col);
        let m1 = self.temporal.m1.get(t_row, t_col);
        let m0 = self.temporal.m0.get(t_row, t_col);
        let q1 = self.spatial.q1(gamma.gamma_s);
        let q2 = self.spatial.q2(gamma.gamma_s);
        let q3 = self.spatial.q3(gamma.gamma_s);
        ops::linear_combination(&[
            (ge2 * gt * gt * m2, &q1),
            (ge2 * 2.0 * gt * m1, &q2),
            (ge2 * m0, &q3),
        ])
    }

    /// `true` when the precision is block-tridiagonal in time, i.e. the
    /// temporal matrices have no entries beyond the first off-diagonal.
    pub fn is_block_tridiagonal(&self) -> bool {
        for m in [&self.temporal.m0, &self.temporal.m1, &self.temporal.m2] {
            for r in 0..self.nt {
                for (c, v) in m.row_iter(r) {
                    if v != 0.0 && c.abs_diff(r) > 1 {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_mesh::Domain;
    use dalia_sparse::SparseCholesky;

    fn model(ns_grid: usize, nt: usize) -> SpatioTemporalSpde {
        let mesh = TriangleMesh::structured(Domain::unit_square(), ns_grid, ns_grid);
        SpatioTemporalSpde::new(&mesh, nt, 1.0)
    }

    #[test]
    fn dimensions() {
        let m = model(4, 5);
        assert_eq!(m.ns, 16);
        assert_eq!(m.nt, 5);
        assert_eq!(m.dim(), 80);
        let q = m.precision(&StHyper::new(1.0, 0.5, 2.0));
        assert_eq!(q.shape(), (80, 80));
    }

    #[test]
    fn precision_is_symmetric_positive_definite() {
        let m = model(4, 4);
        let q = m.precision(&StHyper::new(1.0, 0.5, 2.0));
        assert!(q.is_symmetric(1e-9));
        assert!(SparseCholesky::factor(&q).is_ok());
    }

    #[test]
    fn precision_is_block_tridiagonal() {
        let m = model(3, 6);
        assert!(m.is_block_tridiagonal());
        let q = m.precision(&StHyper::new(1.0, 0.5, 2.0));
        let ns = m.ns;
        // Any entry with |time(i) - time(j)| > 1 must be zero.
        for r in 0..q.nrows() {
            for (c, v) in q.row_iter(r) {
                let tr = r / ns;
                let tc = c / ns;
                if tr.abs_diff(tc) > 1 {
                    assert_eq!(v, 0.0, "entry ({r},{c}) breaks block-tridiagonality");
                }
            }
        }
    }

    #[test]
    fn blocks_match_full_assembly() {
        let m = model(3, 4);
        let gamma = StHyper::new(0.8, 0.6, 1.5).to_internal();
        let q = m.precision_internal(&gamma);
        let ns = m.ns;
        for (tr, tc) in [(0usize, 0usize), (1, 1), (2, 1), (1, 2), (3, 3)] {
            let block = m.block(&gamma, tr, tc);
            let dense_block = q.dense_block(tr * ns, tc * ns, ns, ns);
            assert!(
                block.to_dense().max_abs_diff(&dense_block) < 1e-10,
                "block ({tr},{tc}) mismatch"
            );
        }
    }

    #[test]
    fn hyperparameters_change_precision_smoothly() {
        let m = model(3, 3);
        let q1 = m.precision(&StHyper::new(1.0, 0.5, 1.0));
        let q2 = m.precision(&StHyper::new(1.0, 0.5, 1.0001));
        let diff = q1.max_abs_diff(&q2);
        let scale = q1.to_dense().max_abs();
        assert!(diff > 0.0);
        assert!(diff < 0.01 * scale, "precision jumped too much for a tiny hyperparameter change");
    }

    #[test]
    fn single_time_step_degenerates_to_spatial_like() {
        let m = model(4, 1);
        let q = m.precision(&StHyper::new(1.0, 0.5, 1.0));
        assert_eq!(q.shape(), (16, 16));
        assert!(SparseCholesky::factor(&q).is_ok());
    }

    #[test]
    fn larger_temporal_range_increases_time_coupling() {
        let m = model(3, 4);
        let ns = m.ns;
        let weak = m.precision(&StHyper::new(1.0, 0.5, 0.5));
        let strong = m.precision(&StHyper::new(1.0, 0.5, 4.0));
        // Relative strength of the off-diagonal (time-coupling) block grows
        // with the temporal range.
        let off_weak = weak.dense_block(ns, 0, ns, ns).frobenius_norm();
        let diag_weak = weak.dense_block(0, 0, ns, ns).frobenius_norm();
        let off_strong = strong.dense_block(ns, 0, ns, ns).frobenius_norm();
        let diag_strong = strong.dense_block(0, 0, ns, ns).frobenius_norm();
        assert!(off_strong / diag_strong > off_weak / diag_weak);
    }
}
