//! Hyperparameter parameterizations for the spatio-temporal SPDE model.
//!
//! Users think in *interpretable* parameters (marginal standard deviation σ,
//! spatial range ρ_s, temporal range ρ_t); the SPDE operators are written in
//! *internal* parameters (γ_e, γ_s, γ_t). The mapping below follows the
//! DEMF(α_t=1, α_s=2, α_e=1) relations of the diffusion-based extension of
//! Matérn fields (Lindgren et al., 2024) in spatial dimension d = 2:
//!
//! * ν_s = α − d/2 = 1 with α = α_e + α_s (α_t − 1/2) = 2,
//! * ρ_s = √(8 ν_s) / γ_s,
//! * ρ_t = γ_t √(8 (α_t − 1/2)) / γ_s^{α_s} = 2 γ_t / γ_s²,
//! * σ² = Γ(α_t − 1/2) Γ(ν_s) / (Γ(α_t) Γ(α) (4π)^{(d+1)/2} γ_e² γ_t γ_s^{2 ν_s}).
//!
//! The optimizer works on the natural-logarithm scale of the interpretable
//! parameters, which keeps the search space unconstrained.

use std::f64::consts::PI;

/// Interpretable hyperparameters of one univariate spatio-temporal process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StHyper {
    /// Marginal standard deviation of the field.
    pub sigma: f64,
    /// Spatial correlation range.
    pub range_s: f64,
    /// Temporal correlation range.
    pub range_t: f64,
}

/// Internal SPDE coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InternalHyper {
    /// Variance-scaling coefficient γ_e.
    pub gamma_e: f64,
    /// Spatial scale coefficient γ_s.
    pub gamma_s: f64,
    /// Temporal scale coefficient γ_t.
    pub gamma_t: f64,
}

impl StHyper {
    /// Create a new set of interpretable hyperparameters (all must be > 0).
    pub fn new(sigma: f64, range_s: f64, range_t: f64) -> Self {
        assert!(sigma > 0.0 && range_s > 0.0 && range_t > 0.0, "hyperparameters must be positive");
        Self { sigma, range_s, range_t }
    }

    /// Map to the internal SPDE coefficients.
    pub fn to_internal(&self) -> InternalHyper {
        let nu_s = 1.0_f64;
        let gamma_s = (8.0 * nu_s).sqrt() / self.range_s;
        let gamma_t = self.range_t * gamma_s * gamma_s / 2.0;
        // σ² = c / (γ_e² γ_t γ_s²) with c = Γ(1/2) / ((4π)^{3/2}).
        let c = PI.sqrt() / (4.0 * PI).powf(1.5);
        let gamma_e = (c / (self.sigma * self.sigma * gamma_t * gamma_s * gamma_s)).sqrt();
        InternalHyper { gamma_e, gamma_s, gamma_t }
    }

    /// Log-scale vector `[log σ, log ρ_s, log ρ_t]` used by the optimizer.
    pub fn to_log_vec(&self) -> [f64; 3] {
        [self.sigma.ln(), self.range_s.ln(), self.range_t.ln()]
    }

    /// Inverse of [`StHyper::to_log_vec`].
    pub fn from_log_vec(v: &[f64]) -> Self {
        assert!(v.len() >= 3, "need three log-hyperparameters");
        Self::new(v[0].exp(), v[1].exp(), v[2].exp())
    }
}

impl InternalHyper {
    /// Map back to interpretable parameters (inverse of [`StHyper::to_internal`]).
    pub fn to_interpretable(&self) -> StHyper {
        let nu_s = 1.0_f64;
        let range_s = (8.0 * nu_s).sqrt() / self.gamma_s;
        let range_t = 2.0 * self.gamma_t / (self.gamma_s * self.gamma_s);
        let c = PI.sqrt() / (4.0 * PI).powf(1.5);
        let sigma2 = c / (self.gamma_e * self.gamma_e * self.gamma_t * self.gamma_s * self.gamma_s);
        StHyper { sigma: sigma2.sqrt(), range_s, range_t }
    }
}

/// Hyperparameters of a purely spatial Matérn field (α = 2, d = 2),
/// used for spatial-only models and unit tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpatialHyper {
    /// Marginal standard deviation.
    pub sigma: f64,
    /// Spatial correlation range.
    pub range_s: f64,
}

impl SpatialHyper {
    /// Create a new spatial hyperparameter set.
    pub fn new(sigma: f64, range_s: f64) -> Self {
        assert!(sigma > 0.0 && range_s > 0.0);
        Self { sigma, range_s }
    }

    /// κ (inverse-range) parameter: κ = √(8ν)/ρ with ν = 1.
    pub fn kappa(&self) -> f64 {
        (8.0_f64).sqrt() / self.range_s
    }

    /// Precision scaling τ such that the marginal variance of the α = 2
    /// Whittle–Matérn field equals σ²: σ² = 1 / (4π κ² τ²).
    pub fn tau(&self) -> f64 {
        let kappa = self.kappa();
        1.0 / (self.sigma * kappa * (4.0 * PI).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_interpretable_internal() {
        let h = StHyper::new(1.5, 0.4, 2.0);
        let back = h.to_internal().to_interpretable();
        assert!((back.sigma - h.sigma).abs() < 1e-12);
        assert!((back.range_s - h.range_s).abs() < 1e-12);
        assert!((back.range_t - h.range_t).abs() < 1e-12);
    }

    #[test]
    fn log_vec_roundtrip() {
        let h = StHyper::new(0.7, 1.3, 5.0);
        let v = h.to_log_vec();
        let back = StHyper::from_log_vec(&v);
        assert!((back.sigma - h.sigma).abs() < 1e-12);
        assert!((back.range_t - h.range_t).abs() < 1e-12);
    }

    #[test]
    fn monotone_relations() {
        // Larger spatial range => smaller gamma_s.
        let a = StHyper::new(1.0, 0.5, 1.0).to_internal();
        let b = StHyper::new(1.0, 1.0, 1.0).to_internal();
        assert!(b.gamma_s < a.gamma_s);
        // Larger sigma => smaller gamma_e.
        let c = StHyper::new(2.0, 0.5, 1.0).to_internal();
        assert!(c.gamma_e < a.gamma_e);
        // Larger temporal range => larger gamma_t (for fixed range_s).
        let d = StHyper::new(1.0, 0.5, 2.0).to_internal();
        assert!(d.gamma_t > a.gamma_t);
    }

    #[test]
    fn positivity_enforced() {
        let result = std::panic::catch_unwind(|| StHyper::new(-1.0, 1.0, 1.0));
        assert!(result.is_err());
    }

    #[test]
    fn spatial_hyper_kappa_tau() {
        let h = SpatialHyper::new(1.0, 2.0);
        assert!((h.kappa() - (8.0_f64).sqrt() / 2.0).abs() < 1e-14);
        // σ² = 1 / (4π κ² τ²) must hold.
        let sigma2 = 1.0 / (4.0 * PI * h.kappa().powi(2) * h.tau().powi(2));
        assert!((sigma2 - 1.0).abs() < 1e-12);
    }
}
