//! Purely spatial Whittle–Matérn SPDE precision matrices (α = 2).
//!
//! The SPDE `(κ² − Δ) u = W` discretized with P1 finite elements yields the
//! GMRF precision `Q = τ² (κ⁴ C + 2 κ² G + G C̃⁻¹ G)` where `C̃` is the lumped
//! mass matrix (Lindgren, Rue & Lindström 2011). These operators are also the
//! spatial building blocks `q1, q2, q3` of the spatio-temporal precision.

use crate::hyper::SpatialHyper;
use dalia_mesh::{lumped_mass_diag, mass_matrix, stiffness_matrix, TriangleMesh};
use dalia_sparse::{ops, CsrMatrix};

/// Precomputed FEM operators of a spatial mesh, reused across hyperparameter
/// configurations (only the scalar combination coefficients change).
#[derive(Clone, Debug)]
pub struct SpatialSpde {
    /// Consistent mass matrix `C`.
    pub c: CsrMatrix,
    /// Lumped mass diagonal `c̃`.
    pub c_lumped: Vec<f64>,
    /// Stiffness matrix `G`.
    pub g: CsrMatrix,
    /// `G C̃⁻¹ G`.
    pub g2: CsrMatrix,
    /// `G C̃⁻¹ G C̃⁻¹ G`.
    pub g3: CsrMatrix,
    /// Number of mesh nodes.
    pub n_nodes: usize,
}

impl SpatialSpde {
    /// Assemble the FEM operators of `mesh`.
    pub fn new(mesh: &TriangleMesh) -> Self {
        let c = mass_matrix(mesh);
        let c_lumped = lumped_mass_diag(mesh);
        let g = stiffness_matrix(mesh);
        let cinv: Vec<f64> = c_lumped.iter().map(|&d| 1.0 / d).collect();
        let cinv_mat = CsrMatrix::from_diag(&cinv);
        let g_cinv = ops::spgemm(&g, &cinv_mat);
        let g2 = ops::spgemm(&g_cinv, &g);
        let g3 = ops::spgemm(&g_cinv, &g2);
        let n_nodes = mesh.n_nodes();
        Self { c, c_lumped, g, g2, g3, n_nodes }
    }

    /// First-order spatial operator `q1(γ_s) = γ_s² C + G`
    /// (uses the lumped mass for consistency with the higher orders).
    pub fn q1(&self, gamma_s: f64) -> CsrMatrix {
        let c_lumped = CsrMatrix::from_diag(&self.c_lumped);
        ops::add(gamma_s * gamma_s, &c_lumped, 1.0, &self.g)
    }

    /// Second-order spatial operator
    /// `q2(γ_s) = γ_s⁴ C + 2 γ_s² G + G C̃⁻¹ G`.
    pub fn q2(&self, gamma_s: f64) -> CsrMatrix {
        let c_lumped = CsrMatrix::from_diag(&self.c_lumped);
        let g2 = gamma_s * gamma_s;
        ops::linear_combination(&[(g2 * g2, &c_lumped), (2.0 * g2, &self.g), (1.0, &self.g2)])
    }

    /// Third-order spatial operator
    /// `q3(γ_s) = γ_s⁶ C + 3 γ_s⁴ G + 3 γ_s² G C̃⁻¹ G + G C̃⁻¹ G C̃⁻¹ G`.
    pub fn q3(&self, gamma_s: f64) -> CsrMatrix {
        let c_lumped = CsrMatrix::from_diag(&self.c_lumped);
        let g2 = gamma_s * gamma_s;
        ops::linear_combination(&[
            (g2 * g2 * g2, &c_lumped),
            (3.0 * g2 * g2, &self.g),
            (3.0 * g2, &self.g2),
            (1.0, &self.g3),
        ])
    }

    /// Precision matrix of a spatial Matérn field (α = 2):
    /// `Q = τ² q2(κ)`.
    pub fn precision(&self, hyper: &SpatialHyper) -> CsrMatrix {
        let tau = hyper.tau();
        self.q2(hyper.kappa()).scaled(tau * tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dalia_mesh::Domain;
    use dalia_sparse::SparseCholesky;

    fn spde() -> SpatialSpde {
        let mesh = TriangleMesh::structured(Domain::unit_square(), 7, 7);
        SpatialSpde::new(&mesh)
    }

    #[test]
    fn operators_are_symmetric() {
        let s = spde();
        assert!(s.c.is_symmetric(1e-12));
        assert!(s.g.is_symmetric(1e-12));
        assert!(s.g2.is_symmetric(1e-10));
        assert!(s.g3.is_symmetric(1e-10));
        assert!(s.q1(2.0).is_symmetric(1e-10));
        assert!(s.q2(2.0).is_symmetric(1e-10));
        assert!(s.q3(2.0).is_symmetric(1e-10));
    }

    #[test]
    fn precision_is_positive_definite() {
        let s = spde();
        let q = s.precision(&SpatialHyper::new(1.0, 0.4));
        assert!(SparseCholesky::factor(&q).is_ok());
    }

    #[test]
    fn q_operators_are_positive_definite() {
        let s = spde();
        for gs in [0.5, 2.0, 8.0] {
            assert!(SparseCholesky::factor(&s.q1(gs)).is_ok());
            assert!(SparseCholesky::factor(&s.q2(gs)).is_ok());
            assert!(SparseCholesky::factor(&s.q3(gs)).is_ok());
        }
    }

    #[test]
    fn larger_range_gives_higher_correlation() {
        // Larger spatial range (smoother field) increases the correlation
        // between two neighbouring interior nodes.
        let s = spde();
        let corr = |range: f64| {
            let q = s.precision(&SpatialHyper::new(1.0, range));
            let cov = dalia_la::chol::spd_inverse(&q.to_dense()).unwrap();
            // Nodes 24 and 25 are adjacent interior nodes of the 7x7 grid.
            cov[(24, 25)] / (cov[(24, 24)] * cov[(25, 25)]).sqrt()
        };
        let c_short = corr(0.2);
        let c_long = corr(0.8);
        assert!(c_long > c_short, "correlation should grow with range ({c_short} vs {c_long})");
        assert!(c_long > 0.5);
    }

    #[test]
    fn marginal_variance_roughly_matches_sigma() {
        // On a mesh with generous boundary margin, the central-node marginal
        // variance should be within a factor ~2 of σ² (boundary effects make
        // the match approximate).
        let domain = Domain { x0: -2.0, x1: 3.0, y0: -2.0, y1: 3.0 };
        let mesh = TriangleMesh::structured(domain, 21, 21);
        let s = SpatialSpde::new(&mesh);
        let sigma = 1.0;
        let q = s.precision(&SpatialHyper::new(sigma, 0.6));
        let f = SparseCholesky::factor(&q).unwrap();
        let vars = f.marginal_variances();
        // Pick the node closest to the domain center.
        let center = mesh
            .vertices
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = (a.x - 0.5).powi(2) + (a.y - 0.5).powi(2);
                let db = (b.x - 0.5).powi(2) + (b.y - 0.5).powi(2);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap()
            .0;
        let v = vars[center];
        assert!(v > 0.3 && v < 3.0, "central marginal variance {v} too far from 1");
    }

    #[test]
    fn scaling_with_tau_is_quadratic() {
        let s = spde();
        let h1 = SpatialHyper::new(1.0, 0.4);
        let h2 = SpatialHyper::new(2.0, 0.4);
        let q1 = s.precision(&h1);
        let q2 = s.precision(&h2);
        // Doubling sigma divides the precision by 4.
        let ratio = q1.get(0, 0) / q2.get(0, 0);
        assert!((ratio - 4.0).abs() < 1e-10);
    }
}
