//! # dalia-spde — SPDE precision matrices for spatial and spatio-temporal GPs
//!
//! Implements the stochastic partial differential equation (SPDE)
//! representation of Gaussian fields used by the paper:
//!
//! * [`hyper`] — interpretable ↔ internal hyperparameter mappings
//!   (DEMF(1,2,1) relations),
//! * [`spatial`] — Whittle–Matérn spatial precision operators `q1, q2, q3`,
//! * [`spatio_temporal`] — the block-tridiagonal spatio-temporal precision
//!   `Q_st = γ_e²(γ_t² M2⊗q1 + 2γ_t M1⊗q2 + M0⊗q3)`.

pub mod hyper;
pub mod spatial;
pub mod spatio_temporal;

pub use hyper::{InternalHyper, SpatialHyper, StHyper};
pub use spatial::SpatialSpde;
pub use spatio_temporal::SpatioTemporalSpde;
