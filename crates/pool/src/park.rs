//! Event-based parking for idle workers (pool v2).
//!
//! Until PR 5 an idle worker parked on the injector channel's *timed*
//! `recv` and re-scanned the deques every 500 µs — a polling loop that burned
//! wakeups while the pool was idle and added up to 500 µs of latency between
//! a job being published and a sleeping worker noticing it. This module
//! replaces that loop with a futex-style event protocol built from two
//! pieces:
//!
//! * [`Parker`] / [`Unparker`] — a token-based, condvar-backed parking
//!   primitive with `std::thread::park` semantics: `unpark` deposits a
//!   one-shot token, `park` consumes it or sleeps until it arrives. An
//!   unpark that races ahead of the matching park is never lost, and
//!   repeated unparks coalesce into a single token (at most one spurious
//!   wake).
//! * [`Sleep`] — the pool-wide idle registry: a worker *announces* itself
//!   before parking, and publishers issue **targeted wakes** — pop exactly
//!   one announced worker and unpark it — when they push a job (local deque
//!   push or injector send, the latter through the `crossbeam` shim's notify
//!   hook). Completion events (a `join`/`scope` latch becoming ready) wake
//!   the registered waiter directly through a [`WakeHandle`].
//!
//! # Why no wakeup is ever lost
//!
//! The publisher's protocol is *push job, then read the idle registry*; the
//! sleeper's protocol is *announce in the registry, then re-scan the queues,
//! then park*. Both structures are lock-protected, so the two orders cannot
//! both miss: if the sleeper's re-scan ran before the publisher's push
//! committed, the publisher's later registry read happens-after the
//! sleeper's announcement and finds it (targeted wake); otherwise the
//! re-scan finds the job and the worker never parks. The same argument
//! covers shutdown (flag store before `wake_all`, flag check after
//! announcing).
//!
//! Every transition is counted in [`WakeStats`] so tests and benchmarks can
//! assert that idle workers actually sleep (no polling), that wakes are
//! targeted, and that spurious wakes stay bounded.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
#[cfg(test)]
use std::time::Duration;

/// The sleeping half of a parking pair: owned by exactly one thread, which
/// alternates between [`Parker::park`] and doing work.
///
/// Semantics follow `std::thread::park`: an [`Unparker::unpark`] deposits a
/// one-shot token; `park` returns immediately if a token is present
/// (consuming it) and blocks otherwise. Tokens do not accumulate — any
/// number of unparks between two parks produce exactly one wake.
pub struct Parker {
    inner: Arc<ParkInner>,
}

/// The waking half of a parking pair; cheap to clone and share across
/// threads.
#[derive(Clone)]
pub struct Unparker {
    inner: Arc<ParkInner>,
}

struct ParkInner {
    token: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    /// Create a new parker with no token pending.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Parker {
        Parker { inner: Arc::new(ParkInner { token: Mutex::new(false), cv: Condvar::new() }) }
    }

    /// A handle that can wake this parker from any thread.
    pub fn unparker(&self) -> Unparker {
        Unparker { inner: Arc::clone(&self.inner) }
    }

    /// Block the current thread until a token is available, then consume it.
    pub fn park(&self) {
        let mut token = self.inner.token.lock().unwrap_or_else(PoisonError::into_inner);
        while !*token {
            token = self.inner.cv.wait(token).unwrap_or_else(PoisonError::into_inner);
        }
        *token = false;
    }

    /// Block for at most `timeout` waiting for a token. Returns `true` if a
    /// token was consumed, `false` on timeout.
    ///
    /// Test-only: the pool itself never parks on a timer (that is the whole
    /// point of v2), but the unit tests below need a bounded way to assert
    /// that a token is *absent*.
    #[cfg(test)]
    pub(crate) fn park_timeout(&self, timeout: Duration) -> bool {
        let mut token = self.inner.token.lock().unwrap_or_else(PoisonError::into_inner);
        if !*token {
            let (guard, _) = self
                .inner
                .cv
                .wait_timeout(token, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            token = guard;
        }
        let had = *token;
        *token = false;
        had
    }
}

impl Unparker {
    /// Deposit a wake token and notify the parked thread (if any). Multiple
    /// unparks without an intervening park coalesce into one token.
    pub fn unpark(&self) {
        *self.inner.token.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.inner.cv.notify_one();
    }
}

/// Snapshot of the pool's parking/wake accounting, taken with
/// [`crate::ThreadPool::wake_stats`].
///
/// The counters are monotonic over the pool's lifetime and are meant for
/// tests and benchmarks, not for scheduling decisions:
///
/// * an **event-parked** pool shows `parks > 0` after any idle period and a
///   `wake_latency` benchmark far below the retired 500 µs polling interval;
/// * `spurious_wakes` stay small relative to `parks` (a woken worker that
///   finds its job already stolen re-parks — that is the only source).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WakeStats {
    /// Times a worker actually went to sleep on its [`Parker`].
    pub parks: u64,
    /// Targeted wakes issued because a job was pushed onto a worker deque.
    pub push_wakes: u64,
    /// Targeted wakes issued by the injector channel's notify hook (external
    /// submission through `install` / `spawn` / `scope` from non-workers).
    pub injector_wakes: u64,
    /// Wakes issued by a completion event: a `join`/`scope` latch became
    /// ready and woke its registered waiter.
    pub completion_wakes: u64,
    /// Times a parked worker woke up and found neither work nor its awaited
    /// completion (its target was consumed by another worker, or a stray
    /// token was left by a racing waker). The worker re-parks; forward
    /// progress never depends on spurious wakes.
    pub spurious_wakes: u64,
}

/// Wake counters shared between the [`Sleep`] registry and the
/// [`WakeHandle`]s that latches hold.
#[derive(Default)]
pub(crate) struct WakeCounters {
    parks: AtomicU64,
    push_wakes: AtomicU64,
    injector_wakes: AtomicU64,
    completion_wakes: AtomicU64,
    spurious_wakes: AtomicU64,
}

/// A targeted waker for one specific waiting worker, registered on a latch
/// by the worker before it parks. `wake` is called by whichever thread
/// completes the awaited job.
pub(crate) struct WakeHandle {
    unparker: Unparker,
    counters: Arc<WakeCounters>,
}

impl WakeHandle {
    /// Wake the registered waiter and account the completion wake.
    pub(crate) fn wake(&self) {
        self.counters.completion_wakes.fetch_add(1, Ordering::Relaxed);
        self.unparker.unpark();
    }
}

/// The pool-wide idle registry: which workers are (about to go) asleep, and
/// how to wake exactly one of them when a job is published.
pub(crate) struct Sleep {
    /// Indices of announced-idle workers, most recent last (LIFO wake order:
    /// the most recently parked worker is the most cache-warm).
    idle: Mutex<Vec<usize>>,
    /// Lock-free fast-path mirror of `idle.len()`: publishers skip the lock
    /// entirely while nobody sleeps (the common case under load). The
    /// happens-before edge that makes the relaxed read safe is the deque
    /// mutex: see the module docs.
    idle_count: AtomicUsize,
    /// One unparker per worker, indexed like the deques.
    unparkers: Vec<Unparker>,
    counters: Arc<WakeCounters>,
}

/// Which kind of publication triggered a targeted wake (for accounting).
#[derive(Clone, Copy)]
pub(crate) enum WakeReason {
    /// A job was pushed onto a worker's deque.
    Push,
    /// A job was sent through the injector channel.
    Injector,
}

impl Sleep {
    pub(crate) fn new(unparkers: Vec<Unparker>) -> Sleep {
        Sleep {
            idle: Mutex::new(Vec::with_capacity(unparkers.len())),
            idle_count: AtomicUsize::new(0),
            unparkers,
            counters: Arc::new(WakeCounters::default()),
        }
    }

    /// Register worker `index` as idle. Must be followed by a re-scan of the
    /// work queues before parking (see the module docs for why).
    pub(crate) fn announce(&self, index: usize) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(!idle.contains(&index), "worker {index} announced idle twice");
        idle.push(index);
        self.idle_count.store(idle.len(), Ordering::Relaxed);
    }

    /// Remove worker `index` from the idle registry if still present (a
    /// targeted wake removes it on the waker's side; a completion wake does
    /// not).
    pub(crate) fn retract(&self, index: usize) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = idle.iter().position(|&i| i == index) {
            idle.swap_remove(pos);
            self.idle_count.store(idle.len(), Ordering::Relaxed);
        }
    }

    /// Targeted wake: pop one announced-idle worker and unpark it. No-op when
    /// nobody is asleep — a worker between its queue re-scan and `park` is
    /// covered by the announce-then-re-scan protocol, and a worker still
    /// scanning will find the job itself.
    pub(crate) fn wake_one(&self, reason: WakeReason) {
        if self.idle_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        let woken = {
            let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
            let woken = idle.pop();
            self.idle_count.store(idle.len(), Ordering::Relaxed);
            woken
        };
        if let Some(index) = woken {
            match reason {
                WakeReason::Push => self.counters.push_wakes.fetch_add(1, Ordering::Relaxed),
                WakeReason::Injector => {
                    self.counters.injector_wakes.fetch_add(1, Ordering::Relaxed)
                }
            };
            self.unparkers[index].unpark();
        }
    }

    /// Broadcast wake of *every* worker, announced or not (pool shutdown).
    /// Parker tokens persist, so a worker that parks after this call still
    /// wakes immediately and re-checks the shutdown flag.
    pub(crate) fn wake_all(&self) {
        {
            let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
            idle.clear();
            self.idle_count.store(0, Ordering::Relaxed);
        }
        for u in &self.unparkers {
            u.unpark();
        }
    }

    /// A [`WakeHandle`] that wakes worker `index`, for registration on a
    /// completion latch.
    pub(crate) fn completion_handle(&self, index: usize) -> WakeHandle {
        WakeHandle {
            unparker: self.unparkers[index].clone(),
            counters: Arc::clone(&self.counters),
        }
    }

    pub(crate) fn note_park(&self) {
        self.counters.parks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_spurious(&self) {
        self.counters.spurious_wakes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> WakeStats {
        WakeStats {
            parks: self.counters.parks.load(Ordering::Relaxed),
            push_wakes: self.counters.push_wakes.load(Ordering::Relaxed),
            injector_wakes: self.counters.injector_wakes.load(Ordering::Relaxed),
            completion_wakes: self.counters.completion_wakes.load(Ordering::Relaxed),
            spurious_wakes: self.counters.spurious_wakes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unpark_before_park_is_not_lost() {
        let p = Parker::new();
        p.unparker().unpark();
        let t0 = Instant::now();
        p.park(); // must return immediately: the token was deposited first
        assert!(t0.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn park_timeout_times_out_without_token() {
        let p = Parker::new();
        let t0 = Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(20)));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn repeated_unparks_coalesce_into_one_token() {
        let p = Parker::new();
        let u = p.unparker();
        u.unpark();
        u.unpark();
        u.unpark();
        assert!(p.park_timeout(Duration::from_millis(10)));
        // The three unparks produced exactly one token: the next park must
        // time out (this is the "at most one spurious wake" guarantee).
        assert!(!p.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn cross_thread_unpark_wakes_a_parked_thread() {
        let p = Parker::new();
        let u = p.unparker();
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                u.unpark();
            });
            let t0 = Instant::now();
            p.park();
            let waited = t0.elapsed();
            assert!(waited >= Duration::from_millis(10), "parked for only {waited:?}");
        });
    }

    #[test]
    fn sleep_targeted_wake_pops_lifo_and_accounts() {
        let parkers: Vec<Parker> = (0..3).map(|_| Parker::new()).collect();
        let sleep = Sleep::new(parkers.iter().map(|p| p.unparker()).collect());
        sleep.announce(0);
        sleep.announce(2);
        sleep.wake_one(WakeReason::Push); // wakes 2 (most recent)
        sleep.wake_one(WakeReason::Injector); // wakes 0
        sleep.wake_one(WakeReason::Push); // nobody left: no-op
        assert!(parkers[2].park_timeout(Duration::from_millis(50)));
        assert!(parkers[0].park_timeout(Duration::from_millis(50)));
        assert!(!parkers[1].park_timeout(Duration::from_millis(10)));
        let stats = sleep.stats();
        assert_eq!(stats.push_wakes, 1);
        assert_eq!(stats.injector_wakes, 1);
    }

    #[test]
    fn sleep_retract_removes_only_the_given_worker() {
        let parkers: Vec<Parker> = (0..2).map(|_| Parker::new()).collect();
        let sleep = Sleep::new(parkers.iter().map(|p| p.unparker()).collect());
        sleep.announce(0);
        sleep.announce(1);
        sleep.retract(0);
        sleep.retract(0); // double retract is a no-op
        sleep.wake_one(WakeReason::Push);
        assert!(parkers[1].park_timeout(Duration::from_millis(50)));
        assert!(!parkers[0].park_timeout(Duration::from_millis(10)));
    }
}
