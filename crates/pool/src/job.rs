//! Erased job references and completion latches.
//!
//! This module contains the crate's only `unsafe` code (the workspace's
//! second sanctioned exception, next to the AVX2 micro-kernel in
//! `dalia_la::blas`): a [`JobRef`] is a type- and lifetime-erased pointer to
//! a job that lives either on the publishing caller's stack ([`StackJob`]) or
//! in a heap allocation ([`HeapJob`]). Erasure is what lets a long-lived
//! worker thread execute a closure that borrows the caller's locals — the
//! same mechanism `rayon-core` and `crossbeam::scope` are built on.
//!
//! Soundness contract, enforced by the callers in `lib.rs`:
//!
//! * a [`StackJob`]'s publisher does not return (and therefore does not
//!   invalidate the job's stack slot) until the job's [`Latch`] has been set,
//!   and the latch is set only by [`StackJob::execute_erased`] *after* it has
//!   finished touching the job;
//! * a [`HeapJob`]'s allocation is owned by its [`JobRef`] and released
//!   exactly once, inside [`HeapJob::execute_erased`];
//! * every published [`JobRef`] is executed exactly once: it is consumed
//!   either by the worker that dequeued it or by the publisher popping it
//!   back.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, PoisonError};

use crate::park::WakeHandle;

/// A binary completion latch: one-shot, set by the executor, awaited by the
/// publisher. Built on `Mutex` + `Condvar` so waiting threads sleep.
///
/// A pool worker that waits on a latch does not sit on the condvar — it
/// registers a [`WakeHandle`] (its own parker) via [`Latch::set_waker`] and
/// parks, so `set` wakes it through the pool's event-parking protocol and
/// the worker can also be woken by newly published work in the meantime.
/// External (non-worker) threads use the condvar [`Latch::wait`] directly.
///
/// The completion flag and the waker live under **one** mutex, which closes
/// both halves of the set/register race: `set_waker` refuses to register
/// once the latch is set (so a waiter can never park against an
/// already-completed job), and `set` publishes completion and extracts the
/// waker atomically, notifying the condvar while still holding the lock.
/// The latter matters for lifetime soundness: the instant a waiter can
/// observe the latch as set it may free the job this latch lives in (a
/// [`StackJob`] is storage on the *waiter's* stack), so `set` must never
/// touch `self` after the lock is released — the extracted [`WakeHandle`]
/// is self-contained and safe to invoke afterwards.
pub(crate) struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    done: bool,
    waker: Option<WakeHandle>,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Latch { state: Mutex::new(LatchState { done: false, waker: None }), cv: Condvar::new() }
    }

    /// Mark the latch as set and wake all waiters — condvar sleepers and the
    /// registered parked worker, if any. See the type docs for why the
    /// publish and the waker extraction are a single critical section.
    pub(crate) fn set(&self) {
        let waker = {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.done = true;
            self.cv.notify_all();
            st.waker.take()
        };
        if let Some(handle) = waker {
            handle.wake();
        }
    }

    /// Register the parked worker to be woken by [`Latch::set`]. Returns
    /// `false` without registering if the latch is already set (the caller
    /// must then not park on it).
    pub(crate) fn set_waker(&self, handle: WakeHandle) -> bool {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.done {
            return false;
        }
        st.waker = Some(handle);
        true
    }

    /// Deregister the waker (the waiting worker is awake and re-checking).
    pub(crate) fn take_waker(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).waker.take();
    }

    /// Non-blocking check.
    pub(crate) fn probe(&self) -> bool {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).done
    }

    /// Block until the latch is set.
    pub(crate) fn wait(&self) {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !g.done {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A counting latch for scopes: incremented per spawned task, decremented on
/// completion; waiters wake when the count reaches zero. Like [`Latch`], it
/// wakes both condvar sleepers (external threads in [`CountLatch::wait`])
/// and a registered parked pool worker, with count and waker under one
/// mutex so registration against an already-clear latch is refused rather
/// than lost. (A `CountLatch` lives in an `Arc`'d scope state, so unlike
/// [`Latch`] it has no use-after-free hazard — the shared discipline is
/// kept for uniformity.)
pub(crate) struct CountLatch {
    state: Mutex<CountLatchState>,
    cv: Condvar,
}

struct CountLatchState {
    pending: usize,
    waker: Option<WakeHandle>,
}

impl CountLatch {
    pub(crate) fn new() -> Self {
        CountLatch {
            state: Mutex::new(CountLatchState { pending: 0, waker: None }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn increment(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).pending += 1;
    }

    pub(crate) fn decrement(&self) {
        let waker = {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.pending -= 1;
            if st.pending != 0 {
                return;
            }
            self.cv.notify_all();
            st.waker.take()
        };
        if let Some(handle) = waker {
            handle.wake();
        }
    }

    pub(crate) fn is_clear(&self) -> bool {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).pending == 0
    }

    /// Block (condvar, no polling) until the count reaches zero. Used by
    /// external threads waiting on a scope; workers park instead (see
    /// [`CountLatch::set_waker`]).
    pub(crate) fn wait(&self) {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while g.pending != 0 {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Register the parked worker to be woken when the count reaches zero.
    /// Returns `false` without registering if the count is already zero.
    pub(crate) fn set_waker(&self, handle: WakeHandle) -> bool {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.pending == 0 {
            return false;
        }
        st.waker = Some(handle);
        true
    }

    /// Deregister the waker.
    pub(crate) fn take_waker(&self) {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).waker.take();
    }
}

/// Type- and lifetime-erased pointer to a publishable job.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a `JobRef` always points at a job whose closure is `Send` (bounded
// at construction in `StackJob::new` / `HeapJob::new`), and logical ownership
// of the pointee transfers with the ref: exactly one thread executes it.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

impl JobRef {
    /// Stable identity of the underlying job, used by `join` to recognize its
    /// own pending task when popping the local deque.
    pub(crate) fn id(&self) -> usize {
        self.data as usize
    }

    /// Run the job. Consumes the ref; must be called exactly once.
    #[allow(unsafe_code)]
    pub(crate) fn execute(self) {
        // SAFETY: the constructors guarantee `data` points at a live job of
        // the type `execute_fn` expects, and the exactly-once discipline in
        // the pool guarantees no double execution.
        unsafe { (self.execute_fn)(self.data) }
    }
}

/// A job whose storage lives on the publisher's stack, with a result slot and
/// a completion latch. Used by `join` and `install`.
pub(crate) struct StackJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<std::thread::Result<R>>>,
    pub(crate) latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        StackJob { func: Mutex::new(Some(f)), result: Mutex::new(None), latch: Latch::new() }
    }

    /// Erase this job into a publishable [`JobRef`].
    ///
    /// The caller promises to keep `self` alive (not return, not move it)
    /// until [`Latch::set`] has been observed on `self.latch`.
    pub(crate) fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: Self::execute_erased,
        }
    }

    /// Take the stored result after the latch is set.
    pub(crate) fn take_result(&self) -> std::thread::Result<R> {
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("StackJob result taken before completion")
    }

    #[allow(unsafe_code)]
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from `as_job_ref` on a `StackJob<F, R>` whose
        // publisher keeps it alive until `latch.set()` below.
        let job = unsafe { &*(data as *const Self) };
        let f = job
            .func
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("StackJob executed twice");
        let res = catch_unwind(AssertUnwindSafe(f));
        *job.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(res);
        job.latch.set();
    }
}

/// A heap-allocated fire-and-forget job. Used by `scope` spawns, where the
/// closure must outlive the spawning call but not the scope itself; all
/// bookkeeping (panic capture, scope counting) is folded into the closure by
/// the caller.
pub(crate) struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    pub(crate) fn new(func: F) -> Box<Self> {
        Box::new(HeapJob { func })
    }

    /// Erase the boxed job into a publishable [`JobRef`] that owns the
    /// allocation.
    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            data: Box::into_raw(self) as *const (),
            execute_fn: Self::execute_erased,
        }
    }

    #[allow(unsafe_code)]
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from `Box::into_raw` in `into_job_ref` and is
        // reconstructed exactly once here.
        let job = unsafe { Box::from_raw(data as *mut Self) };
        (job.func)();
    }
}

/// Panic payload storage shared by a scope and its spawned tasks: the first
/// captured payload wins and is re-thrown when the scope completes.
pub(crate) struct PanicSlot {
    slot: Mutex<Option<Box<dyn Any + Send>>>,
}

impl PanicSlot {
    pub(crate) fn new() -> Self {
        PanicSlot { slot: Mutex::new(None) }
    }

    pub(crate) fn store(&self, payload: Box<dyn Any + Send>) {
        let mut g = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if g.is_none() {
            *g = Some(payload);
        }
    }

    pub(crate) fn take(&self) -> Option<Box<dyn Any + Send>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner).take()
    }
}
