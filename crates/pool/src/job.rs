//! Erased job references and completion latches.
//!
//! This module contains the crate's only `unsafe` code (the workspace's
//! second sanctioned exception, next to the AVX2 micro-kernel in
//! `dalia_la::blas`): a [`JobRef`] is a type- and lifetime-erased pointer to
//! a job that lives either on the publishing caller's stack ([`StackJob`]) or
//! in a heap allocation ([`HeapJob`]). Erasure is what lets a long-lived
//! worker thread execute a closure that borrows the caller's locals — the
//! same mechanism `rayon-core` and `crossbeam::scope` are built on.
//!
//! Soundness contract, enforced by the callers in `lib.rs`:
//!
//! * a [`StackJob`]'s publisher does not return (and therefore does not
//!   invalidate the job's stack slot) until the job's [`Latch`] has been set,
//!   and the latch is set only by [`StackJob::execute_erased`] *after* it has
//!   finished touching the job;
//! * a [`HeapJob`]'s allocation is owned by its [`JobRef`] and released
//!   exactly once, inside [`HeapJob::execute_erased`];
//! * every published [`JobRef`] is executed exactly once: it is consumed
//!   either by the worker that dequeued it or by the publisher popping it
//!   back.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// A binary completion latch: one-shot, set by the executor, awaited by the
/// publisher. Built on `Mutex` + `Condvar` so waiting threads sleep.
pub(crate) struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Latch { done: Mutex::new(false), cv: Condvar::new() }
    }

    /// Mark the latch as set and wake all waiters.
    pub(crate) fn set(&self) {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    /// Non-blocking check.
    pub(crate) fn probe(&self) -> bool {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until the latch is set.
    pub(crate) fn wait(&self) {
        let mut g = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while !*g {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block until the latch is set or `timeout` elapses; returns the state.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> bool {
        let g = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        if *g {
            return true;
        }
        let (g, _) = self.cv.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        *g
    }
}

/// A counting latch for scopes: incremented per spawned task, decremented on
/// completion; waiters wake when the count reaches zero.
pub(crate) struct CountLatch {
    pending: Mutex<usize>,
    cv: Condvar,
}

impl CountLatch {
    pub(crate) fn new() -> Self {
        CountLatch { pending: Mutex::new(0), cv: Condvar::new() }
    }

    pub(crate) fn increment(&self) {
        *self.pending.lock().unwrap_or_else(PoisonError::into_inner) += 1;
    }

    pub(crate) fn decrement(&self) {
        let mut g = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *g -= 1;
        if *g == 0 {
            drop(g);
            self.cv.notify_all();
        }
    }

    pub(crate) fn is_clear(&self) -> bool {
        *self.pending.lock().unwrap_or_else(PoisonError::into_inner) == 0
    }

    /// Block until the count reaches zero or `timeout` elapses; returns
    /// whether the count is zero.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> bool {
        let g = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        if *g == 0 {
            return true;
        }
        let (g, _) = self.cv.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        *g == 0
    }
}

/// Type- and lifetime-erased pointer to a publishable job.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a `JobRef` always points at a job whose closure is `Send` (bounded
// at construction in `StackJob::new` / `HeapJob::new`), and logical ownership
// of the pointee transfers with the ref: exactly one thread executes it.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

impl JobRef {
    /// Stable identity of the underlying job, used by `join` to recognize its
    /// own pending task when popping the local deque.
    pub(crate) fn id(&self) -> usize {
        self.data as usize
    }

    /// Run the job. Consumes the ref; must be called exactly once.
    #[allow(unsafe_code)]
    pub(crate) fn execute(self) {
        // SAFETY: the constructors guarantee `data` points at a live job of
        // the type `execute_fn` expects, and the exactly-once discipline in
        // the pool guarantees no double execution.
        unsafe { (self.execute_fn)(self.data) }
    }
}

/// A job whose storage lives on the publisher's stack, with a result slot and
/// a completion latch. Used by `join` and `install`.
pub(crate) struct StackJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<std::thread::Result<R>>>,
    pub(crate) latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        StackJob { func: Mutex::new(Some(f)), result: Mutex::new(None), latch: Latch::new() }
    }

    /// Erase this job into a publishable [`JobRef`].
    ///
    /// The caller promises to keep `self` alive (not return, not move it)
    /// until [`Latch::set`] has been observed on `self.latch`.
    pub(crate) fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: Self::execute_erased,
        }
    }

    /// Take the stored result after the latch is set.
    pub(crate) fn take_result(&self) -> std::thread::Result<R> {
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("StackJob result taken before completion")
    }

    #[allow(unsafe_code)]
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from `as_job_ref` on a `StackJob<F, R>` whose
        // publisher keeps it alive until `latch.set()` below.
        let job = unsafe { &*(data as *const Self) };
        let f = job
            .func
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("StackJob executed twice");
        let res = catch_unwind(AssertUnwindSafe(f));
        *job.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(res);
        job.latch.set();
    }
}

/// A heap-allocated fire-and-forget job. Used by `scope` spawns, where the
/// closure must outlive the spawning call but not the scope itself; all
/// bookkeeping (panic capture, scope counting) is folded into the closure by
/// the caller.
pub(crate) struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    pub(crate) fn new(func: F) -> Box<Self> {
        Box::new(HeapJob { func })
    }

    /// Erase the boxed job into a publishable [`JobRef`] that owns the
    /// allocation.
    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        JobRef {
            data: Box::into_raw(self) as *const (),
            execute_fn: Self::execute_erased,
        }
    }

    #[allow(unsafe_code)]
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from `Box::into_raw` in `into_job_ref` and is
        // reconstructed exactly once here.
        let job = unsafe { Box::from_raw(data as *mut Self) };
        (job.func)();
    }
}

/// Panic payload storage shared by a scope and its spawned tasks: the first
/// captured payload wins and is re-thrown when the scope completes.
pub(crate) struct PanicSlot {
    slot: Mutex<Option<Box<dyn Any + Send>>>,
}

impl PanicSlot {
    pub(crate) fn new() -> Self {
        PanicSlot { slot: Mutex::new(None) }
    }

    pub(crate) fn store(&self, payload: Box<dyn Any + Send>) {
        let mut g = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if g.is_none() {
            *g = Some(payload);
        }
    }

    pub(crate) fn take(&self) -> Option<Box<dyn Any + Send>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner).take()
    }
}
