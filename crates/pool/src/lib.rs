//! # dalia-pool — work-stealing fork-join thread pool
//!
//! The execution substrate of the workspace's parallel fan-outs. The paper's
//! S1 (per-lane θ evaluations) and S3 (per-partition BTA elimination) layers
//! have *non-uniform* per-item costs, so a fixed-chunk eager map load
//! imbalances badly; this crate provides the work-stealing pool that the
//! vendored `rayon` shim's `par_iter` and the solver stack run on instead:
//!
//! * a **global, lazily-initialized pool** ([`global`]) sized by the
//!   `DALIA_NUM_THREADS` environment variable (default: all cores), plus
//!   independent [`ThreadPool`] instances for tests and benchmarks;
//! * **per-worker deques** in the Chili / crossbeam style: owners push and
//!   pop at the back (LIFO, cache-hot depth-first execution), thieves steal
//!   from the front (FIFO, breadth-first — the oldest, typically largest
//!   subtree moves to the idle worker);
//! * an **injector channel** (the vendored `crossbeam` bounded channel)
//!   through which external threads submit work;
//! * **event-parked idle workers** (since pool v2): a worker that fails to
//!   find work backs off through a few yielding re-scans and then parks on a
//!   condvar-based [`Parker`]. It is woken by a *targeted* wake — a job
//!   pushed onto any deque, a send through the injector (via the `crossbeam`
//!   shim's notify hook), or the completion latch it is waiting on — never
//!   by a timer. The retired v1 protocol polled the injector with a 500 µs
//!   timed `recv`; v2 wake latency is measured in tens of microseconds (see
//!   `BENCH_pool.json`) and an idle pool consumes no CPU. [`WakeStats`]
//!   exposes the park/wake accounting;
//! * fork-join primitives — [`join`], [`scope`], [`install`], detached
//!   [`spawn`] — with **panic capture and propagation**: a panicking task
//!   unwinds at the fork point of its publisher, and the pool survives.
//!
//! # Scheduling discipline and determinism
//!
//! `join(a, b)` called on a worker pushes `b` onto the worker's own deque and
//! runs `a` inline; when `a` returns, the worker pops `b` back (common case:
//! no synchronization with other workers beyond the deque lock) or, if `b`
//! was stolen, helps other workers while waiting for the thief to finish —
//! parking when there is nothing to help with. Nested `join`s therefore
//! split **inline** on the current pool — calling a parallel region from
//! inside another parallel region never spawns new OS threads and never
//! oversubscribes.
//!
//! Work stealing randomizes *where* a task runs, never *what* it computes:
//! every task owns a disjoint slice of the output, so parallel results are
//! identical to sequential ones (see the parity suites in the `rayon` shim
//! and `tests/session_reuse.rs`).
//!
//! # Safety
//!
//! The pool contains the workspace's second sanctioned `unsafe` block (next
//! to the AVX2 micro-kernel in `dalia_la::blas`): the **job lifetime
//! erasure** in the private `job` module. A `join`/`scope`/`install` closure
//! may borrow the publishing caller's stack, yet must be executed by a
//! long-lived worker thread, so the closure is erased to a raw
//! pointer + vtable pair (`JobRef`). Soundness rests on two invariants that
//! every publishing site in this crate upholds:
//!
//! 1. **The publisher outlives the job.** A stack-allocated job's publisher
//!    blocks (helping or parked, never returning) until the job's completion
//!    latch is set, and the latch is set only *after* the executor has
//!    finished touching the job. Heap-allocated jobs (`spawn`, scope tasks)
//!    own their closure and are released exactly once, inside execution.
//! 2. **Exactly-once execution.** Every published `JobRef` is consumed by
//!    exactly one executor: the worker that dequeued it or the publisher
//!    popping it back. The deques and the injector never duplicate a ref.
//!
//! The full contract is documented in `src/job.rs`; everything else in this
//! crate — including the v2 parking protocol — is safe code.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crossbeam::channel::{self, Receiver, Sender};

mod job;
mod park;

pub use park::{Parker, Unparker, WakeStats};

use job::{CountLatch, HeapJob, JobRef, PanicSlot, StackJob};
use park::{Sleep, WakeReason};

/// How many fruitless scan rounds (pop + steal sweep + injector poll, with a
/// `yield_now` between rounds) a worker tolerates before it commits to the
/// park protocol. Steal-failure backoff: a transiently empty pool is re-run
/// at deque-lock cost, a genuinely idle one goes to sleep.
const STEAL_BACKOFF_SCANS: usize = 3;

/// Injector channel capacity. Submissions beyond this back-pressure the
/// submitting thread (blocking send), which is the desired behavior.
const INJECTOR_CAP: usize = 1024;

/// Shared state of one pool: the per-worker deques, the injector, and the
/// idle/wake registry.
struct PoolInner {
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injector_tx: Sender<JobRef>,
    injector_rx: Receiver<JobRef>,
    shutdown: AtomicBool,
    sleep: Arc<Sleep>,
    /// Panics swallowed from detached `spawn` tasks (observable for tests /
    /// diagnostics; detached tasks have no caller to propagate to).
    detached_panics: AtomicUsize,
}

impl PoolInner {
    fn num_threads(&self) -> usize {
        self.deques.len()
    }

    /// Push onto the worker's own deque and issue a targeted wake: the new
    /// job is immediately stealable by a parked worker.
    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().unwrap_or_else(PoisonError::into_inner).push_back(job);
        self.sleep.wake_one(WakeReason::Push);
    }

    /// LIFO pop from the worker's own deque.
    fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].lock().unwrap_or_else(PoisonError::into_inner).pop_back()
    }

    /// FIFO steal sweep over the other workers' deques.
    fn steal(&self, thief: usize) -> Option<JobRef> {
        let n = self.deques.len();
        for k in 1..n {
            let victim = (thief + k) % n;
            let job =
                self.deques[victim].lock().unwrap_or_else(PoisonError::into_inner).pop_front();
            if job.is_some() {
                return job;
            }
        }
        None
    }

    /// One full scan for work in priority order: own deque (LIFO), then the
    /// other deques (FIFO steal), then the injector (non-blocking poll).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        self.pop_local(index)
            .or_else(|| self.steal(index))
            .or_else(|| self.injector_rx.try_recv().ok())
    }

    /// Racy peek used only for spurious-wake accounting.
    fn has_visible_work(&self, index: usize) -> bool {
        if !self.injector_rx.is_empty() {
            return true;
        }
        let n = self.deques.len();
        (0..n).any(|k| {
            !self.deques[(index + k) % n]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        })
    }

    /// One round of the event-park protocol for worker `index`: announce
    /// idle, re-check `done` / shutdown / the work queues, and only park if
    /// none of them fired (see `park.rs` for why the announce-then-re-check
    /// order makes lost wakeups impossible).
    ///
    /// Returns a job found during the re-check — the caller executes it and
    /// does not park. Returns `None` either because `done`/shutdown turned
    /// true or because the worker parked and has been woken; the caller
    /// re-evaluates its wait condition in both cases.
    fn park_or_find(&self, index: usize, done: &dyn Fn() -> bool) -> Option<JobRef> {
        self.sleep.announce(index);
        if done() || self.shutdown.load(Ordering::Acquire) {
            self.sleep.retract(index);
            return None;
        }
        if let Some(job) = self.find_work(index) {
            self.sleep.retract(index);
            return Some(job);
        }
        self.sleep.note_park();
        park_current_worker();
        self.sleep.retract(index);
        if !done() && !self.shutdown.load(Ordering::Acquire) && !self.has_visible_work(index) {
            self.sleep.note_spurious();
        }
        None
    }

    fn inject(&self, job: JobRef) {
        // The receiver lives in `self`, so the channel can only disconnect
        // while a send is in flight if the pool is being torn down mid-use,
        // which the drop protocol forbids. The send's notify hook issues the
        // targeted wake.
        if self.injector_tx.send(job).is_err() {
            panic!("dalia-pool: injector disconnected (pool used after drop)");
        }
    }
}

/// Thread-local identity of a pool worker.
struct WorkerCtx {
    pool: Arc<PoolInner>,
    index: usize,
    /// The worker's own parking primitive; its unparker is registered with
    /// the pool's [`Sleep`] registry for targeted wakes.
    parker: Parker,
}

thread_local! {
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

/// The pool (and worker index) of the current thread, if it is a worker.
fn current_worker() -> Option<(Arc<PoolInner>, usize)> {
    WORKER.with(|w| w.borrow().as_ref().map(|ctx| (Arc::clone(&ctx.pool), ctx.index)))
}

/// Park the current thread on its worker parker. Must only be called from a
/// worker thread (enforced by the callers: `park_or_find` runs on workers).
fn park_current_worker() {
    WORKER.with(|w| {
        let ctx = w.borrow();
        ctx.as_ref().expect("dalia-pool: park requested off-worker").parker.park();
    });
}

/// Whether the current thread is a worker of *any* dalia pool.
pub fn is_worker() -> bool {
    WORKER.with(|w| w.borrow().is_some())
}

fn worker_loop(inner: Arc<PoolInner>, index: usize, parker: Parker) {
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerCtx { pool: Arc::clone(&inner), index, parker });
    });
    let mut fruitless_scans = 0usize;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        if let Some(job) = inner.find_work(index) {
            fruitless_scans = 0;
            job.execute();
            continue;
        }
        // Steal-failure backoff: yield through a few more scan rounds before
        // committing to the park protocol.
        fruitless_scans += 1;
        if fruitless_scans <= STEAL_BACKOFF_SCANS {
            std::thread::yield_now();
            continue;
        }
        fruitless_scans = 0;
        if let Some(job) = inner.park_or_find(index, &|| false) {
            job.execute();
        }
    }
    // Shutdown drain: run whatever was already published (detached `spawn`
    // jobs still queued in the deques or the injector) instead of leaking
    // it — a `JobRef` reclaims its heap allocation only when executed. New
    // external submissions are impossible (drop takes the pool by value);
    // worker-side respawns are drained too, until the queues are empty.
    while let Some(job) = inner.find_work(index) {
        job.execute();
    }
    WORKER.with(|w| *w.borrow_mut() = None);
}

/// A work-stealing fork-join thread pool.
///
/// Most code uses the process-wide [`global`] pool through the free functions
/// ([`join`], [`scope`], [`install`], [`spawn`]); explicit instances exist so
/// tests and benchmarks can pin an exact thread count:
///
/// ```
/// let pool = dalia_pool::ThreadPool::new(2);
/// let (a, b) = pool.join(|| 21 * 2, || "forty-two");
/// assert_eq!((a, b), (42, "forty-two"));
/// ```
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let (injector_tx, injector_rx) = channel::bounded(INJECTOR_CAP);
        let parkers: Vec<Parker> = (0..threads).map(|_| Parker::new()).collect();
        let sleep = Arc::new(Sleep::new(parkers.iter().map(|p| p.unparker()).collect()));
        // Targeted wake on injector push: the channel's notify hook fires
        // after every successful enqueue, so an external submission unparks
        // exactly one sleeping worker instead of waiting for a poll tick.
        let hook_sleep = Arc::clone(&sleep);
        injector_tx
            .set_notify_hook(Arc::new(move || hook_sleep.wake_one(WakeReason::Injector)))
            .unwrap_or_else(|_| unreachable!("freshly created channel already has a hook"));
        let inner = Arc::new(PoolInner {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector_tx,
            injector_rx,
            shutdown: AtomicBool::new(false),
            sleep,
            detached_panics: AtomicUsize::new(0),
        });
        let handles = parkers
            .into_iter()
            .enumerate()
            .map(|(i, parker)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dalia-pool-{i}"))
                    .spawn(move || worker_loop(inner, i, parker))
                    .expect("dalia-pool: failed to spawn worker thread")
            })
            .collect();
        ThreadPool { inner, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    /// Number of panics swallowed from detached [`ThreadPool::spawn`] tasks.
    pub fn detached_panic_count(&self) -> usize {
        self.inner.detached_panics.load(Ordering::Relaxed)
    }

    /// Snapshot of the pool's parking/wake accounting: how often workers
    /// parked, how they were woken (targeted push/injector wakes vs
    /// completion wakes), and how many wakes were spurious. Counters are
    /// monotonic over the pool's lifetime.
    pub fn wake_stats(&self) -> WakeStats {
        self.inner.sleep.stats()
    }

    /// Run `a` and `b`, potentially in parallel, and return both results.
    ///
    /// Called on a worker of this pool, `b` is published to the worker's own
    /// deque (stealable by idle workers) and `a` runs inline — nested `join`s
    /// split in place without spawning threads. Called from any other thread,
    /// the whole join is [`install`](Self::install)ed into the pool first.
    ///
    /// If either closure panics, the panic is re-thrown here after *both*
    /// closures have been retired, so the pool is never left with a dangling
    /// task (no poisoning).
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.inner.num_threads() <= 1 {
            return (a(), b());
        }
        match current_worker() {
            Some((pool, index)) if Arc::ptr_eq(&pool, &self.inner) => {
                join_in_worker(&pool, index, a, b)
            }
            _ => self.install(|| {
                let (pool, index) = current_worker().expect("installed job not on a worker");
                join_in_worker(&pool, index, a, b)
            }),
        }
    }

    /// Run `f` on a pool worker, blocking until it returns. A no-op wrapper
    /// when already called from a worker of this pool.
    ///
    /// This is the bridge from external threads into the pool: the closure is
    /// published through the injector channel (whose notify hook wakes a
    /// parked worker), and nested parallelism inside `f` then uses the
    /// worker deques.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some((pool, _)) = current_worker() {
            if Arc::ptr_eq(&pool, &self.inner) {
                return f();
            }
        }
        let job = StackJob::new(f);
        self.inner.inject(job.as_job_ref());
        job.latch.wait();
        match job.take_result() {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Create a fork-join scope: closures spawned on it may borrow data that
    /// outlives the `scope` call, and `scope` does not return until every
    /// spawned task has completed.
    ///
    /// The first panic among the body and the spawned tasks is re-thrown
    /// after all tasks have completed.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        scope_on(&self.inner, op)
    }

    /// Submit a detached `'static` task. Panics inside the task are caught
    /// and counted ([`ThreadPool::detached_panic_count`]) rather than
    /// propagated — a detached task has no caller to unwind into — and never
    /// poison the pool.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        spawn_detached(&self.inner, f);
    }
}

/// Publish a detached task. On a worker of `inner` the task goes to the
/// worker's own deque — a worker must never block on its own injector, since
/// it is one of the channel's consumers (a full injector would deadlock a
/// 1-thread pool). From any other thread it goes through the injector, whose
/// blocking send is ordinary backpressure drained by the target pool.
fn spawn_detached<F>(inner: &Arc<PoolInner>, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let pool_ref = Arc::clone(inner);
    let task = move || {
        if catch_unwind(AssertUnwindSafe(f)).is_err() {
            pool_ref.detached_panics.fetch_add(1, Ordering::Relaxed);
        }
    };
    let job = HeapJob::new(task).into_job_ref();
    match current_worker() {
        Some((pool, index)) if Arc::ptr_eq(&pool, inner) => pool.push_local(index, job),
        _ => inner.inject(job),
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Store the flag first, then broadcast-wake every worker: a worker
        // mid-park wakes on its token, one about to park re-checks the flag
        // after announcing (park tokens persist, so the wake cannot be
        // lost), one executing a job checks the flag on its next loop.
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.sleep.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// `join` on the current worker: publish `b`, run `a`, then pop `b` back or
/// wait for its thief (helping with other queued work, parking when there is
/// nothing to help with).
fn join_in_worker<A, B, RA, RB>(pool: &Arc<PoolInner>, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let ref_b = job_b.as_job_ref();
    let b_id = ref_b.id();
    pool.push_local(index, ref_b);

    let ra = catch_unwind(AssertUnwindSafe(a));

    // Retire everything we still own on the local deque. By LIFO discipline
    // the only job left from this frame is `b` itself (nested joins inside
    // `a` retired their own pushes before returning), but executing whatever
    // is found keeps this correct even for helped-in jobs.
    while let Some(job) = pool.pop_local(index) {
        let is_ours = job.id() == b_id;
        job.execute();
        if is_ours {
            break;
        }
    }
    // If `b` was stolen, help other workers while its thief finishes. With
    // nothing to help with, register this worker on `b`'s latch and park:
    // the thief's completion (or any newly published job) wakes it.
    while !job_b.latch.probe() {
        if let Some(job) = pool.find_work(index) {
            job.execute();
            continue;
        }
        // `set_waker` refuses registration if the latch is already set (so
        // this worker can never park against a completed job).
        if !job_b.latch.set_waker(pool.sleep.completion_handle(index)) {
            break;
        }
        let found = pool.park_or_find(index, &|| job_b.latch.probe());
        job_b.latch.take_waker();
        if let Some(job) = found {
            job.execute();
        }
    }

    let rb = job_b.take_result();
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}

/// Run a fork-join scope on the given pool: create the scope, run the body,
/// wait for every spawned task (helping with queued work when the caller is
/// itself a worker of this pool, parking when there is nothing to help
/// with), then re-throw the first captured panic.
fn scope_on<'scope, OP, R>(inner: &Arc<PoolInner>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let state = Arc::new(ScopeState::new());
    let scope = Scope {
        pool: Arc::clone(inner),
        state: Arc::clone(&state),
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    match current_worker() {
        Some((pool, index)) if Arc::ptr_eq(&pool, inner) => {
            while !state.latch.is_clear() {
                if let Some(job) = pool.find_work(index) {
                    job.execute();
                    continue;
                }
                if !state.latch.set_waker(pool.sleep.completion_handle(index)) {
                    break;
                }
                let found = pool.park_or_find(index, &|| state.latch.is_clear());
                state.latch.take_waker();
                if let Some(job) = found {
                    job.execute();
                }
            }
        }
        // External threads cannot help; they sleep on the latch's condvar
        // until the count reaches zero (no polling).
        _ => state.latch.wait(),
    }
    if let Some(payload) = state.panic.take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Shared bookkeeping of one [`Scope`]: outstanding-task count + first panic.
struct ScopeState {
    latch: CountLatch,
    panic: PanicSlot,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState { latch: CountLatch::new(), panic: PanicSlot::new() }
    }
}

/// A fork-join scope created by [`ThreadPool::scope`] / [`scope`]. Tasks
/// spawned on it may borrow from the enclosing stack frame (`'scope`).
pub struct Scope<'scope> {
    pool: Arc<PoolInner>,
    state: Arc<ScopeState>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task on the scope. The task may borrow `'scope` data; the
    /// enclosing `scope` call blocks until it completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.latch.increment();
        let state = Arc::clone(&self.state);
        let task = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.panic.store(payload);
            }
            state.latch.decrement();
        };
        let job = HeapJob::new(task).into_job_ref();
        match current_worker() {
            Some((pool, index)) if Arc::ptr_eq(&pool, &self.pool) => pool.push_local(index, job),
            _ => self.pool.inject(job),
        }
    }
}

// ---------------------------------------------------------------------------
// Global pool + context-following free functions.
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Parse a `DALIA_NUM_THREADS`-style value; `None` / unparsable / zero fall
/// through to the hardware default.
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

fn default_num_threads() -> usize {
    parse_threads(std::env::var("DALIA_NUM_THREADS").ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    })
}

/// The process-wide pool, created on first use with `DALIA_NUM_THREADS`
/// workers (default: all available cores).
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_num_threads()))
}

/// Worker count of the *current* pool: the pool this thread works for when
/// called on a worker, the global pool otherwise. Parallel algorithms use
/// this to pick their split granularity.
pub fn current_num_threads() -> usize {
    match current_worker() {
        Some((pool, _)) => pool.num_threads(),
        None => global().num_threads(),
    }
}

/// [`ThreadPool::join`] on the current pool (the worker's own pool when
/// called from a worker, the global pool otherwise).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some((pool, index)) = current_worker() {
        if pool.num_threads() <= 1 {
            return (a(), b());
        }
        return join_in_worker(&pool, index, a, b);
    }
    global().join(a, b)
}

/// [`ThreadPool::install`] on the current pool.
pub fn install<F, R>(f: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    if is_worker() {
        return f();
    }
    global().install(f)
}

/// [`ThreadPool::scope`] on the current pool.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    if let Some((pool, _)) = current_worker() {
        // Scope on the worker's own pool without going through a `ThreadPool`
        // handle (workers only hold the shared inner state).
        return scope_on(&pool, op);
    }
    global().scope(op)
}

/// [`ThreadPool::spawn`] on the current pool.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    if let Some((pool, _)) = current_worker() {
        spawn_detached(&pool, f);
        return;
    }
    global().spawn(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn join_borrows_stack_data() {
        let pool = ThreadPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let (lo, hi) = pool.join(
            || data[..500].iter().sum::<u64>(),
            || data[500..].iter().sum::<u64>(),
        );
        assert_eq!(lo + hi, 1000 * 999 / 2);
    }

    #[test]
    fn nested_joins_split_inline() {
        fn sum(pool_depth: usize, range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if pool_depth == 0 || len <= 1 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (a, b) = join(
                || sum(pool_depth - 1, range.start..mid),
                || sum(pool_depth - 1, mid..range.end),
            );
            a + b
        }
        let pool = ThreadPool::new(4);
        let total = pool.install(|| sum(8, 0..4096));
        assert_eq!(total, 4096 * 4095 / 2);
    }

    #[test]
    fn join_propagates_panic_from_b_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || panic!("boom-b"));
        }));
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom-b");
        // Pool still functional.
        let (a, b) = pool.join(|| 10, || 20);
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn scope_runs_all_tasks() {
        let pool = ThreadPool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_propagates_task_panic_after_all_tasks_finish() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let finished = &finished;
                for i in 0..8 {
                    s.spawn(move || {
                        if i == 3 {
                            panic!("scope-task");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(r.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn detached_spawn_runs_and_swallows_panics() {
        let pool = ThreadPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.spawn(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        pool.spawn(|| panic!("detached"));
        for _ in 0..2000 {
            if done.load(Ordering::Relaxed) == 1 && pool.detached_panic_count() == 1 {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("detached tasks did not complete in time");
    }

    #[test]
    fn worker_side_spawn_flood_does_not_deadlock() {
        // Regression: detached spawns from a worker must go to the local
        // deque, never block on the pool's own injector — on a 1-thread pool
        // a worker blocked in send() would be the only possible consumer.
        const FLOOD: usize = 2 * INJECTOR_CAP;
        let pool = ThreadPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.install(move || {
            for _ in 0..FLOOD {
                let d = Arc::clone(&d);
                spawn(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        for _ in 0..10_000 {
            if done.load(Ordering::Relaxed) == FLOOD {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("flooded detached spawns did not drain: {}/{FLOOD}", done.load(Ordering::Relaxed));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(pool.num_threads(), 1);
    }

    #[test]
    fn install_reports_worker_context() {
        let pool = ThreadPool::new(2);
        assert!(!is_worker());
        let inside = pool.install(is_worker);
        assert!(inside);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn drop_drains_queued_detached_jobs() {
        // Jobs already published when the pool is dropped must still run
        // (and reclaim their heap allocations) — the shutdown drain, not a
        // leak. The first job keeps the single worker busy so the rest are
        // verifiably still queued when `drop` sets the shutdown flag.
        let done = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(1);
        let d = Arc::clone(&done);
        pool.spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            d.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..16 {
            let d = Arc::clone(&done);
            pool.spawn(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins the worker; the drain must run every queued job
        assert_eq!(done.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn idle_workers_park_instead_of_polling() {
        let pool = ThreadPool::new(2);
        // Run something so the workers are definitely live, then go idle.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!(a + b, 3);
        std::thread::sleep(Duration::from_millis(60));
        let idle = pool.wake_stats();
        assert!(idle.parks >= 2, "both workers should be parked while idle: {idle:?}");
        // New work still completes promptly (the targeted wake path).
        let sum = pool.install(|| (0..100u64).sum::<u64>());
        assert_eq!(sum, 4950);
        let after = pool.wake_stats();
        assert!(
            after.injector_wakes > idle.injector_wakes || after.push_wakes > idle.push_wakes,
            "waking an idle pool must issue a targeted wake: {after:?} vs {idle:?}"
        );
    }

    #[test]
    fn wake_stats_are_monotonic_and_consistent() {
        let pool = ThreadPool::new(3);
        let mut prev = pool.wake_stats();
        for round in 0..20 {
            let ran = AtomicUsize::new(0);
            pool.install(|| {
                scope(|s| {
                    let ran = &ran;
                    for _ in 0..16 {
                        s.spawn(move || {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            assert_eq!(ran.load(Ordering::Relaxed), 16, "round {round}");
            let now = pool.wake_stats();
            for (a, b) in [
                (now.parks, prev.parks),
                (now.push_wakes, prev.push_wakes),
                (now.injector_wakes, prev.injector_wakes),
                (now.completion_wakes, prev.completion_wakes),
                (now.spurious_wakes, prev.spurious_wakes),
            ] {
                assert!(a >= b, "wake counters must be monotonic: {now:?} vs {prev:?}");
            }
            prev = now;
        }
    }
}
