//! Two-dimensional triangulated meshes of rectangular domains.
//!
//! The paper discretizes the spatial domain (northern Italy) with an
//! unstructured finite-element mesh at several refinement levels (Fig. 6c).
//! Here meshes are structured triangulations of a rectangle, which keeps mesh
//! generation dependency-free while producing the same kind of P1 finite
//! element matrices (sparse mass and stiffness) that the SPDE approach needs.

/// A 2-D point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Create a new point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Rectangular spatial domain `[x0, x1] x [y0, y1]`.
#[derive(Clone, Copy, Debug)]
pub struct Domain {
    pub x0: f64,
    pub x1: f64,
    pub y0: f64,
    pub y1: f64,
}

impl Domain {
    /// Unit square domain.
    pub fn unit_square() -> Self {
        Self { x0: 0.0, x1: 1.0, y0: 0.0, y1: 1.0 }
    }

    /// A domain roughly shaped like the paper's northern-Italy study region
    /// (about 490 km x 250 km, expressed in degrees at ~0.1° resolution).
    pub fn northern_italy_like() -> Self {
        Self { x0: 6.6, x1: 13.1, y0: 44.0, y1: 46.5 }
    }

    /// Domain width.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Domain height.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area of the domain.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// `true` when the point lies inside (or on the boundary of) the domain.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.x0 - 1e-12 && p.x <= self.x1 + 1e-12 && p.y >= self.y0 - 1e-12 && p.y <= self.y1 + 1e-12
    }
}

/// Triangle given by three vertex indices (counter-clockwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triangle {
    pub v: [usize; 3],
}

/// A P1 triangulated mesh.
#[derive(Clone, Debug)]
pub struct TriangleMesh {
    /// Mesh vertices.
    pub vertices: Vec<Point>,
    /// Triangles (counter-clockwise vertex indices).
    pub triangles: Vec<Triangle>,
    /// The domain the mesh covers.
    pub domain: Domain,
    /// Number of vertex columns of the underlying structured grid.
    nx: usize,
    /// Number of vertex rows of the underlying structured grid.
    ny: usize,
}

impl TriangleMesh {
    /// Structured triangulation of `domain` with `nx` x `ny` vertices
    /// (so `(nx-1) x (ny-1)` cells, each split into two triangles).
    pub fn structured(domain: Domain, nx: usize, ny: usize) -> Self {
        assert!(nx >= 2 && ny >= 2, "mesh needs at least 2x2 vertices");
        let mut vertices = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                let x = domain.x0 + domain.width() * i as f64 / (nx - 1) as f64;
                let y = domain.y0 + domain.height() * j as f64 / (ny - 1) as f64;
                vertices.push(Point::new(x, y));
            }
        }
        let mut triangles = Vec::with_capacity(2 * (nx - 1) * (ny - 1));
        let idx = |i: usize, j: usize| j * nx + i;
        for j in 0..ny - 1 {
            for i in 0..nx - 1 {
                let a = idx(i, j);
                let b = idx(i + 1, j);
                let c = idx(i + 1, j + 1);
                let d = idx(i, j + 1);
                // Split the quad along the a-c diagonal, counter-clockwise.
                triangles.push(Triangle { v: [a, b, c] });
                triangles.push(Triangle { v: [a, c, d] });
            }
        }
        Self { vertices, triangles, domain, nx, ny }
    }

    /// Structured mesh with approximately `target_nodes` vertices, preserving
    /// the domain aspect ratio. Used to build the paper's mesh-refinement
    /// ladder (72, 282, 1119, 4485 nodes in WA2) at arbitrary scales.
    pub fn with_approx_nodes(domain: Domain, target_nodes: usize) -> Self {
        let aspect = domain.width() / domain.height();
        let nyf = ((target_nodes as f64) / aspect).sqrt();
        let ny = nyf.round().max(2.0) as usize;
        let nx = ((target_nodes as f64) / ny as f64).round().max(2.0) as usize;
        Self::structured(domain, nx, ny)
    }

    /// Number of mesh nodes (`n_s` in the paper's notation).
    pub fn n_nodes(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn n_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Grid resolution `(nx, ny)` of the underlying structured grid.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Uniform refinement: every edge is split, every triangle becomes four.
    /// For the structured meshes used here this is equivalent to doubling the
    /// grid resolution, which keeps the mesh structured (and point location
    /// O(1)).
    pub fn refine(&self) -> TriangleMesh {
        TriangleMesh::structured(self.domain, self.nx * 2 - 1, self.ny * 2 - 1)
    }

    /// Signed area of triangle `t` (positive for counter-clockwise).
    pub fn triangle_area(&self, t: usize) -> f64 {
        let tri = &self.triangles[t];
        let p0 = self.vertices[tri.v[0]];
        let p1 = self.vertices[tri.v[1]];
        let p2 = self.vertices[tri.v[2]];
        0.5 * ((p1.x - p0.x) * (p2.y - p0.y) - (p2.x - p0.x) * (p1.y - p0.y))
    }

    /// Total mesh area (should equal the domain area).
    pub fn total_area(&self) -> f64 {
        (0..self.n_triangles()).map(|t| self.triangle_area(t)).sum()
    }

    /// Locate the triangle containing point `p` and return `(triangle index,
    /// barycentric coordinates)`. Returns `None` when `p` is outside the
    /// domain.
    pub fn locate(&self, p: &Point) -> Option<(usize, [f64; 3])> {
        if !self.domain.contains(p) {
            return None;
        }
        // Structured grid: find the cell directly.
        let fx = (p.x - self.domain.x0) / self.domain.width() * (self.nx - 1) as f64;
        let fy = (p.y - self.domain.y0) / self.domain.height() * (self.ny - 1) as f64;
        let i = (fx.floor() as usize).min(self.nx - 2);
        let j = (fy.floor() as usize).min(self.ny - 2);
        let cell = j * (self.nx - 1) + i;
        // Each cell holds two triangles at indices 2*cell and 2*cell + 1.
        for t in [2 * cell, 2 * cell + 1] {
            if let Some(b) = self.barycentric(t, p) {
                return Some((t, b));
            }
        }
        None
    }

    /// Barycentric coordinates of `p` in triangle `t`, or `None` if outside
    /// (with a small tolerance so boundary points are accepted).
    pub fn barycentric(&self, t: usize, p: &Point) -> Option<[f64; 3]> {
        let tri = &self.triangles[t];
        let p0 = self.vertices[tri.v[0]];
        let p1 = self.vertices[tri.v[1]];
        let p2 = self.vertices[tri.v[2]];
        let area2 = (p1.x - p0.x) * (p2.y - p0.y) - (p2.x - p0.x) * (p1.y - p0.y);
        if area2.abs() < 1e-300 {
            return None;
        }
        let l1 = ((p1.x - p.x) * (p2.y - p.y) - (p2.x - p.x) * (p1.y - p.y)) / area2;
        let l2 = ((p2.x - p.x) * (p0.y - p.y) - (p0.x - p.x) * (p2.y - p.y)) / area2;
        let l3 = 1.0 - l1 - l2;
        let tol = -1e-10;
        if l1 >= tol && l2 >= tol && l3 >= tol {
            Some([l1.max(0.0), l2.max(0.0), l3.max(0.0)])
        } else {
            None
        }
    }

    /// `true` when node `v` lies on the domain boundary.
    pub fn is_boundary_node(&self, v: usize) -> bool {
        let i = v % self.nx;
        let j = v / self.nx;
        i == 0 || j == 0 || i == self.nx - 1 || j == self.ny - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_mesh_counts() {
        let m = TriangleMesh::structured(Domain::unit_square(), 4, 3);
        assert_eq!(m.n_nodes(), 12);
        assert_eq!(m.n_triangles(), 2 * 3 * 2);
    }

    #[test]
    fn areas_sum_to_domain_area() {
        let d = Domain::northern_italy_like();
        let m = TriangleMesh::structured(d, 7, 5);
        assert!((m.total_area() - d.area()).abs() < 1e-10);
        // All triangles counter-clockwise (positive area).
        for t in 0..m.n_triangles() {
            assert!(m.triangle_area(t) > 0.0);
        }
    }

    #[test]
    fn refinement_quadruples_triangles() {
        let m = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        let r = m.refine();
        assert_eq!(r.n_triangles(), 4 * m.n_triangles());
        assert!((r.total_area() - m.total_area()).abs() < 1e-12);
    }

    #[test]
    fn approx_nodes_close_to_target() {
        for target in [72usize, 282, 1119] {
            let m = TriangleMesh::with_approx_nodes(Domain::northern_italy_like(), target);
            let n = m.n_nodes() as f64;
            assert!(n > target as f64 * 0.6 && n < target as f64 * 1.6, "n={n} target={target}");
        }
    }

    #[test]
    fn locate_interior_point() {
        let m = TriangleMesh::structured(Domain::unit_square(), 5, 5);
        let p = Point::new(0.33, 0.71);
        let (t, b) = m.locate(&p).expect("point should be found");
        // Barycentric coordinates sum to 1 and reproduce the point.
        assert!((b[0] + b[1] + b[2] - 1.0).abs() < 1e-12);
        let tri = &m.triangles[t];
        let x = b[0] * m.vertices[tri.v[0]].x + b[1] * m.vertices[tri.v[1]].x + b[2] * m.vertices[tri.v[2]].x;
        let y = b[0] * m.vertices[tri.v[0]].y + b[1] * m.vertices[tri.v[1]].y + b[2] * m.vertices[tri.v[2]].y;
        assert!((x - p.x).abs() < 1e-12 && (y - p.y).abs() < 1e-12);
    }

    #[test]
    fn locate_vertex_and_outside() {
        let m = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        // Exact vertex.
        let (_, b) = m.locate(&Point::new(0.5, 0.5)).unwrap();
        assert!(b.iter().any(|&v| (v - 1.0).abs() < 1e-9) || (b.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Outside.
        assert!(m.locate(&Point::new(1.5, 0.5)).is_none());
    }

    #[test]
    fn boundary_nodes() {
        let m = TriangleMesh::structured(Domain::unit_square(), 3, 3);
        assert!(m.is_boundary_node(0));
        assert!(m.is_boundary_node(2));
        assert!(!m.is_boundary_node(4)); // center node of a 3x3 grid
    }

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-15);
    }
}
