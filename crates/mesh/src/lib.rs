//! # dalia-mesh — meshes and P1 finite element assembly
//!
//! Spatial and temporal discretization substrate for the SPDE representation
//! of Gaussian fields:
//!
//! * [`mesh2d`] — structured 2-D triangulations of rectangular domains with
//!   refinement, point location and barycentric interpolation,
//! * [`fem`] — P1 mass/stiffness assembly, observation projection matrices and
//!   the 1-D temporal matrices `M0`, `M1`, `M2` of the spatio-temporal SPDE.

pub mod fem;
pub mod mesh2d;

pub use fem::{
    lumped_mass_diag, lumped_mass_matrix, mass_matrix, projection_matrix, stiffness_matrix,
    temporal_matrices, TemporalMatrices,
};
pub use mesh2d::{Domain, Point, Triangle, TriangleMesh};
