//! P1 finite element assembly on triangulated meshes.
//!
//! Provides the spatial matrices needed by the SPDE representation of
//! Matérn/Whittle Gaussian fields (Lindgren et al. 2011, 2024):
//! the consistent and lumped mass matrices `C`, the stiffness matrix `G`,
//! and observation/projection matrices mapping mesh nodes to arbitrary
//! locations.

use crate::mesh2d::{Point, TriangleMesh};
use dalia_sparse::{CooMatrix, CsrMatrix};

/// Assemble the consistent P1 mass matrix `C` with
/// `C_ij = ∫ φ_i φ_j dx` (per-triangle: `area/12 * [[2,1,1],[1,2,1],[1,1,2]]`).
pub fn mass_matrix(mesh: &TriangleMesh) -> CsrMatrix {
    let n = mesh.n_nodes();
    let mut coo = CooMatrix::with_capacity(n, n, 9 * mesh.n_triangles());
    for t in 0..mesh.n_triangles() {
        let area = mesh.triangle_area(t);
        let v = mesh.triangles[t].v;
        for a in 0..3 {
            for b in 0..3 {
                let val = if a == b { area / 6.0 } else { area / 12.0 };
                coo.push(v[a], v[b], val);
            }
        }
    }
    coo.to_csr()
}

/// Assemble the lumped (diagonal) mass matrix: row sums of the consistent mass
/// matrix. The SPDE literature uses the lumped form because it keeps
/// `C⁻¹` diagonal, which preserves the sparsity of higher-order operators
/// such as `G C⁻¹ G`.
pub fn lumped_mass_matrix(mesh: &TriangleMesh) -> CsrMatrix {
    let n = mesh.n_nodes();
    let mut diag = vec![0.0f64; n];
    for t in 0..mesh.n_triangles() {
        let area = mesh.triangle_area(t);
        for &vi in &mesh.triangles[t].v {
            diag[vi] += area / 3.0;
        }
    }
    CsrMatrix::from_diag(&diag)
}

/// Diagonal of the lumped mass matrix.
pub fn lumped_mass_diag(mesh: &TriangleMesh) -> Vec<f64> {
    lumped_mass_matrix(mesh).diag()
}

/// Assemble the P1 stiffness matrix `G` with `G_ij = ∫ ∇φ_i · ∇φ_j dx`.
pub fn stiffness_matrix(mesh: &TriangleMesh) -> CsrMatrix {
    let n = mesh.n_nodes();
    let mut coo = CooMatrix::with_capacity(n, n, 9 * mesh.n_triangles());
    for t in 0..mesh.n_triangles() {
        let v = mesh.triangles[t].v;
        let p: Vec<Point> = v.iter().map(|&i| mesh.vertices[i]).collect();
        let area = mesh.triangle_area(t);
        // Gradients of the barycentric basis functions.
        // ∇φ_a = (1 / 2A) * (y_b - y_c, x_c - x_b) for (a, b, c) cyclic.
        let grads = [
            [(p[1].y - p[2].y) / (2.0 * area), (p[2].x - p[1].x) / (2.0 * area)],
            [(p[2].y - p[0].y) / (2.0 * area), (p[0].x - p[2].x) / (2.0 * area)],
            [(p[0].y - p[1].y) / (2.0 * area), (p[1].x - p[0].x) / (2.0 * area)],
        ];
        for a in 0..3 {
            for b in 0..3 {
                let val = area * (grads[a][0] * grads[b][0] + grads[a][1] * grads[b][1]);
                coo.push(v[a], v[b], val);
            }
        }
    }
    coo.to_csr()
}

/// Projection (observation) matrix `A` with `A[k, j] = φ_j(location_k)`:
/// each row holds the barycentric weights of the triangle containing the
/// location. Locations outside the domain produce an all-zero row and are
/// reported in the returned mask.
pub fn projection_matrix(mesh: &TriangleMesh, locations: &[Point]) -> (CsrMatrix, Vec<bool>) {
    let n = mesh.n_nodes();
    let m = locations.len();
    let mut coo = CooMatrix::with_capacity(m, n, 3 * m);
    let mut inside = vec![false; m];
    for (k, p) in locations.iter().enumerate() {
        if let Some((t, bary)) = mesh.locate(p) {
            inside[k] = true;
            let v = mesh.triangles[t].v;
            for a in 0..3 {
                coo.push(k, v[a], bary[a]);
            }
        }
    }
    (coo.to_csr(), inside)
}

/// One-dimensional temporal discretization matrices used by the
/// spatio-temporal SPDE (the `M0`, `M1`, `M2` matrices of the
/// diffusion-based extension of Matérn fields).
///
/// * `m0` — lumped temporal mass matrix (trapezoidal weights),
/// * `m1` — "boundary"/first-derivative matrix, antisymmetric part handled as
///   in the DEMF construction (here: half the boundary contribution),
/// * `m2` — temporal stiffness matrix (second-derivative penalty).
#[derive(Clone, Debug)]
pub struct TemporalMatrices {
    pub m0: CsrMatrix,
    pub m1: CsrMatrix,
    pub m2: CsrMatrix,
    /// Number of time steps.
    pub nt: usize,
    /// Time step size.
    pub dt: f64,
}

/// Assemble the temporal matrices for `nt` equally spaced time steps with
/// spacing `dt`.
pub fn temporal_matrices(nt: usize, dt: f64) -> TemporalMatrices {
    assert!(nt >= 1, "need at least one time step");
    assert!(dt > 0.0, "time step must be positive");
    // Lumped mass: dt * diag(1/2, 1, ..., 1, 1/2) (trapezoidal rule).
    let mut d0 = vec![dt; nt];
    if nt > 1 {
        d0[0] = dt / 2.0;
        d0[nt - 1] = dt / 2.0;
    }
    let m0 = CsrMatrix::from_diag(&d0);

    // Boundary matrix: diag(1/2, 0, ..., 0, 1/2) — the symmetric part of the
    // first-derivative operator over [0, T] (boundary terms).
    let mut coo1 = CooMatrix::new(nt, nt);
    if nt > 1 {
        coo1.push(0, 0, 0.5);
        coo1.push(nt - 1, nt - 1, 0.5);
    } else {
        coo1.push(0, 0, 1.0);
    }
    let m1 = coo1.to_csr();

    // Stiffness: (1/dt) * tridiag(-1, 2, -1) with Neumann boundary rows
    // (1 on the diagonal corners).
    let mut coo2 = CooMatrix::new(nt, nt);
    if nt == 1 {
        coo2.push(0, 0, 1.0 / dt);
    } else {
        for i in 0..nt {
            let diag = if i == 0 || i == nt - 1 { 1.0 } else { 2.0 };
            coo2.push(i, i, diag / dt);
            if i + 1 < nt {
                coo2.push(i, i + 1, -1.0 / dt);
                coo2.push(i + 1, i, -1.0 / dt);
            }
        }
    }
    let m2 = coo2.to_csr();

    TemporalMatrices { m0, m1, m2, nt, dt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh2d::Domain;

    fn mesh() -> TriangleMesh {
        TriangleMesh::structured(Domain::unit_square(), 5, 4)
    }

    #[test]
    fn mass_matrix_rows_sum_to_areas() {
        let m = mesh();
        let c = mass_matrix(&m);
        // Sum of all entries equals the domain area (partition of unity).
        let total: f64 = c.values().iter().sum();
        assert!((total - m.total_area()).abs() < 1e-12);
        assert!(c.is_symmetric(1e-12));
    }

    #[test]
    fn lumped_mass_equals_row_sums() {
        let m = mesh();
        let c = mass_matrix(&m);
        let cl = lumped_mass_matrix(&m);
        let ones = vec![1.0; m.n_nodes()];
        let row_sums = c.spmv(&ones);
        let lumped = cl.diag();
        for (a, b) in row_sums.iter().zip(&lumped) {
            assert!((a - b).abs() < 1e-12);
        }
        let total: f64 = lumped.iter().sum();
        assert!((total - m.total_area()).abs() < 1e-12);
    }

    #[test]
    fn stiffness_annihilates_constants() {
        let m = mesh();
        let g = stiffness_matrix(&m);
        assert!(g.is_symmetric(1e-12));
        let ones = vec![1.0; m.n_nodes()];
        let g1 = g.spmv(&ones);
        for v in g1 {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn stiffness_is_positive_semidefinite() {
        let m = mesh();
        let g = stiffness_matrix(&m);
        for seed in 0..5 {
            let x: Vec<f64> = (0..m.n_nodes()).map(|i| ((i * 7 + seed * 3) as f64 * 0.37).sin()).collect();
            assert!(g.quadratic_form(&x) >= -1e-10);
        }
    }

    #[test]
    fn stiffness_exact_for_linear_function() {
        // For u(x, y) = x on the unit square, ∫|∇u|² = 1.
        let m = TriangleMesh::structured(Domain::unit_square(), 6, 6);
        let g = stiffness_matrix(&m);
        let u: Vec<f64> = m.vertices.iter().map(|p| p.x).collect();
        assert!((g.quadratic_form(&u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_interpolates_linear_functions_exactly() {
        let m = mesh();
        let pts = vec![Point::new(0.21, 0.33), Point::new(0.77, 0.52), Point::new(0.05, 0.95)];
        let (a, inside) = projection_matrix(&m, &pts);
        assert!(inside.iter().all(|&b| b));
        // P1 interpolation is exact for linear functions f(x,y) = 2x - 3y + 1.
        let nodal: Vec<f64> = m.vertices.iter().map(|p| 2.0 * p.x - 3.0 * p.y + 1.0).collect();
        let interp = a.spmv(&nodal);
        for (val, p) in interp.iter().zip(&pts) {
            let expected = 2.0 * p.x - 3.0 * p.y + 1.0;
            assert!((val - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_flags_outside_points() {
        let m = mesh();
        let pts = vec![Point::new(0.5, 0.5), Point::new(2.0, 2.0)];
        let (a, inside) = projection_matrix(&m, &pts);
        assert!(inside[0] && !inside[1]);
        // Outside row is empty.
        assert_eq!(a.row_iter(1).count(), 0);
    }

    #[test]
    fn temporal_matrices_properties() {
        let tm = temporal_matrices(6, 0.5);
        assert_eq!(tm.m0.shape(), (6, 6));
        // Trapezoidal mass sums to the interval length (nt-1)*dt.
        let total: f64 = tm.m0.diag().iter().sum();
        assert!((total - 2.5).abs() < 1e-12);
        // Stiffness annihilates constants.
        let ones = vec![1.0; 6];
        for v in tm.m2.spmv(&ones) {
            assert!(v.abs() < 1e-12);
        }
        assert!(tm.m2.is_symmetric(1e-12));
        // Boundary matrix only touches the first and last step.
        assert_eq!(tm.m1.nnz(), 2);
    }

    #[test]
    fn temporal_single_step_degenerate() {
        let tm = temporal_matrices(1, 1.0);
        assert_eq!(tm.m0.shape(), (1, 1));
        assert!(tm.m0.get(0, 0) > 0.0);
        assert!(tm.m2.get(0, 0) > 0.0);
    }
}
