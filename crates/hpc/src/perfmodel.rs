//! Analytic cluster performance model.
//!
//! The paper's scaling experiments ran on up to 496 GH200 superchips of the
//! Alps supercomputer, with R-INLA baselines on a Sapphire-Rapids Xeon node of
//! the Fritz machine. Neither is available in this reproduction, so the
//! benchmark harnesses combine *measured* small-scale runs of the real Rust
//! algorithms with this analytic model evaluated at paper scale. The model is
//! deliberately simple — roofline-style kernel times plus latency/bandwidth
//! communication terms driven by the exact block dimensions and partition
//! layout of the algorithms — because the quantities of interest (who wins,
//! speedup factors, scaling knees, strategy switchovers) are ratios of work
//! and communication, not absolute hardware numbers.

use crate::alloc::{allocate, AllocationInput, StrategyAllocation};
use serinv::Partitioning;

/// Hardware characteristics of one device (GPU or CPU socket group).
#[derive(Clone, Debug)]
pub struct HardwareProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Effective dense FP64 throughput (flop/s) for the block sizes at hand.
    pub flops: f64,
    /// Effective memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Per-message network latency (s).
    pub net_latency: f64,
    /// Network bandwidth per link (bytes/s).
    pub net_bandwidth: f64,
    /// Usable device memory (bytes).
    pub mem_capacity: f64,
    /// Fixed per-objective-function-evaluation overhead (s): kernel launches,
    /// Python/framework overhead in the original, assembly of small terms.
    pub per_eval_overhead: f64,
}

/// NVIDIA GH200 superchip (Hopper GPU + Grace CPU) as deployed on Alps.
pub fn gh200() -> HardwareProfile {
    HardwareProfile {
        name: "GH200",
        // ~15 Tflop/s effective FP64 on mid-sized dense blocks (peak 67):
        // block kernels, framework overhead and non-GEMM fractions included.
        flops: 1.5e13,
        mem_bw: 3.0e12,
        net_latency: 5.0e-6,
        net_bandwidth: 1.0e11,
        mem_capacity: 90.0e9,
        per_eval_overhead: 0.3,
    }
}

/// Dual-socket Intel Sapphire Rapids node (Fritz, 2 TB partition) running the
/// shared-memory R-INLA/PARDISO baseline with 8 threads per solver instance.
pub fn xeon_fritz() -> HardwareProfile {
    HardwareProfile {
        name: "Xeon-8470",
        // ~8 cores per PARDISO instance; sparse supernodal kernels reach a
        // few hundred Gflop/s on this class of matrices.
        flops: 3.0e11,
        mem_bw: 1.2e11,
        net_latency: 1.0e-6,
        net_bandwidth: 2.0e10,
        mem_capacity: 2.0e12,
        per_eval_overhead: 0.2,
    }
}

/// Block dimensions of a BTA system.
#[derive(Clone, Copy, Debug)]
pub struct BtaDims {
    /// Number of diagonal blocks (time steps).
    pub n: usize,
    /// Diagonal block size (`n_v · n_s`).
    pub b: usize,
    /// Arrow tip size (`n_v · n_r`).
    pub a: usize,
}

impl BtaDims {
    /// Total matrix dimension.
    pub fn dim(&self) -> usize {
        self.n * self.b + self.a
    }

    /// Memory footprint (bytes) of the block-dense BTA representation (the
    /// factorization is performed in place, so this is the quantity that must
    /// fit on a single accelerator — Sec. IV-C).
    pub fn footprint_bytes(&self) -> f64 {
        (self.n * self.b * self.b
            + self.n.saturating_sub(1) * self.b * self.b
            + self.n * self.a * self.b
            + self.a * self.a) as f64
            * 8.0
    }
}

/// Flop count of a sequential BTA Cholesky factorization.
pub fn bta_factor_flops(d: &BtaDims) -> f64 {
    let (n, b, a) = (d.n as f64, d.b as f64, d.a as f64);
    n * (b * b * b / 3.0 + 2.0 * b * b * b + 2.0 * a * b * b + a * a * b) + a * a * a / 3.0
}

/// Flop count of a BTA triangular solve with `nrhs` right-hand sides.
pub fn bta_solve_flops(d: &BtaDims, nrhs: usize) -> f64 {
    let (n, b, a) = (d.n as f64, d.b as f64, d.a as f64);
    2.0 * nrhs as f64 * (n * (2.0 * b * b + 2.0 * a * b) + a * a)
}

/// Flop count of a BTA selected inversion.
pub fn bta_selinv_flops(d: &BtaDims) -> f64 {
    let (n, b, a) = (d.n as f64, d.b as f64, d.a as f64);
    n * (6.0 * b * b * b + 4.0 * a * b * b + 2.0 * a * a * b) + 2.0 * a * a * a / 3.0
}

/// Flop count of a *general* sparse Cholesky factorization of the same system
/// under a fill-reducing ordering (the PARDISO path used by R-INLA). Banded
/// fill of width ≈ 2b plus the dense arrow columns, with an empirical fill
/// overhead factor representing the irregular-sparsity penalty.
pub fn sparse_chol_flops(d: &BtaDims) -> f64 {
    let (n, b, a) = (d.n as f64, d.b as f64, d.a as f64);
    let fill_overhead = 1.5;
    fill_overhead * (n * b * (2.0 * b) * (2.0 * b) + a * a * (n * b) + a * a * a / 3.0)
}

/// Time for one dense-kernel-dominated task of `flops` floating point
/// operations and `bytes` of memory traffic on `hw` (roofline max).
pub fn kernel_time(hw: &HardwareProfile, flops: f64, bytes: f64) -> f64 {
    (flops / hw.flops).max(bytes / hw.mem_bw)
}

/// Time of a message of `bytes` between two devices.
pub fn message_time(hw: &HardwareProfile, bytes: f64) -> f64 {
    hw.net_latency + bytes / hw.net_bandwidth
}

/// Runtime of the *distributed* BTA factorization over `p` partitions with
/// load-balancing factor `lb` (Fig. 5 microbenchmark model).
pub fn d_bta_factor_time(d: &BtaDims, p: usize, lb: f64, hw: &HardwareProfile) -> f64 {
    if p <= 1 {
        return kernel_time(hw, bta_factor_flops(d), d.footprint_bytes());
    }
    let part = Partitioning::load_balanced(d.n, p, lb);
    let b = d.b as f64;
    let a = d.a as f64;
    // Per-column work: boundary partitions follow the sequential recurrence;
    // interior partitions carry the extra left-separator coupling (~3 extra
    // b³-level operations per column) — the load imbalance the paper
    // mitigates with lb > 1.
    let col_flops_boundary = b * b * b / 3.0 + 2.0 * b * b * b + 2.0 * a * b * b + a * a * b;
    let col_flops_interior = col_flops_boundary + 3.0 * b * b * b + 2.0 * a * b * b;
    let mut max_time: f64 = 0.0;
    for q in 0..p {
        let (s, e) = part.interior(q);
        let cols = (e - s) as f64;
        let per_col = if q == 0 || q == p - 1 { col_flops_boundary } else { col_flops_interior };
        let flops = cols * per_col;
        let bytes = cols * (2.0 * b * b + a * b) * 8.0;
        max_time = max_time.max(kernel_time(hw, flops, bytes));
    }
    // Reduced system: (p-1) blocks, factorized on one device.
    let reduced = BtaDims { n: (p - 1).max(1), b: d.b, a: d.a };
    let reduced_time = kernel_time(hw, bta_factor_flops(&reduced), reduced.footprint_bytes());
    // Communication: every partition ships its Schur contributions
    // (≈ 3 b² + 2 a b + a² values) to the reduced solve and receives the
    // separator factors back.
    let schur_bytes = (3.0 * b * b + 2.0 * a * b + a * a) * 8.0;
    let comm_time = 2.0 * message_time(hw, schur_bytes) * (p as f64).log2().max(1.0);
    max_time + reduced_time + comm_time
}

/// Runtime of the distributed selected inversion (same partition structure,
/// roughly 2–3× the factorization work per column).
pub fn d_bta_selinv_time(d: &BtaDims, p: usize, lb: f64, hw: &HardwareProfile) -> f64 {
    2.2 * d_bta_factor_time(d, p, lb, hw)
}

/// Runtime of the distributed triangular solve (the paper's `PPOBTAS`):
/// an order of magnitude cheaper than factorization, with a latency-dominated
/// reduced phase that limits its parallel efficiency (Fig. 5 shows ~32%).
pub fn d_bta_solve_time(d: &BtaDims, p: usize, lb: f64, hw: &HardwareProfile, nrhs: usize) -> f64 {
    if p <= 1 {
        return kernel_time(hw, bta_solve_flops(d, nrhs), d.footprint_bytes());
    }
    let part = Partitioning::load_balanced(d.n, p, lb);
    let b = d.b as f64;
    let a = d.a as f64;
    let mut max_time: f64 = 0.0;
    for q in 0..p {
        let (s, e) = part.interior(q);
        let cols = (e - s) as f64;
        let flops = 2.0 * nrhs as f64 * cols * (3.0 * b * b + 2.0 * a * b);
        let bytes = cols * (2.0 * b * b + a * b) * 8.0;
        max_time = max_time.max(kernel_time(hw, flops, bytes));
    }
    let reduced = BtaDims { n: (p - 1).max(1), b: d.b, a: d.a };
    let reduced_time = kernel_time(
        hw,
        bta_solve_flops(&reduced, nrhs),
        reduced.footprint_bytes(),
    );
    // The forward and backward sweeps serialize 2·P boundary exchanges, which
    // is what limits PPOBTAS parallel efficiency (Fig. 5).
    let comm = 2.0 * message_time(hw, b * b * 8.0) * p as f64 + 4.0 * hw.net_latency * p as f64;
    max_time + reduced_time + comm
}

/// Model dimensions of a (possibly multivariate) spatio-temporal INLA model.
#[derive(Clone, Copy, Debug)]
pub struct ModelDims {
    /// Number of response variables (univariate processes).
    pub nv: usize,
    /// Spatial mesh size per process.
    pub ns: usize,
    /// Number of time steps.
    pub nt: usize,
    /// Number of fixed effects per process.
    pub nr: usize,
    /// Number of hyperparameters.
    pub dim_theta: usize,
}

impl ModelDims {
    /// Univariate spatio-temporal model (4 hyperparameters: 3 field + 1 noise).
    pub fn univariate(ns: usize, nt: usize, nr: usize) -> Self {
        Self { nv: 1, ns, nt, nr, dim_theta: 4 }
    }

    /// Trivariate coregional model (15 hyperparameters as in the paper).
    pub fn trivariate(ns: usize, nt: usize, nr: usize) -> Self {
        Self { nv: 3, ns, nt, nr, dim_theta: 15 }
    }

    /// Block dimensions of the conditional precision matrix.
    pub fn bta_dims(&self) -> BtaDims {
        BtaDims { n: self.nt, b: self.nv * self.ns, a: self.nv * self.nr }
    }

    /// Total latent dimension `N = nv(ns·nt + nr)`.
    pub fn latent_dim(&self) -> usize {
        self.nv * (self.ns * self.nt + self.nr)
    }

    /// Parallel objective-function evaluations per BFGS iteration.
    pub fn n_feval(&self) -> usize {
        2 * self.dim_theta + 1
    }
}

/// Breakdown of one modeled INLA iteration.
#[derive(Clone, Debug)]
pub struct IterationCost {
    /// Total wall-clock seconds per BFGS iteration.
    pub total: f64,
    /// Seconds spent in the structured solver (factorizations + solves).
    pub solver: f64,
    /// Seconds spent assembling precision matrices.
    pub assembly: f64,
    /// Seconds spent in communication.
    pub comm: f64,
    /// Strategy allocation used.
    pub allocation: StrategyAllocation,
}

/// Modeled wall-clock time of one DALIA BFGS iteration on `devices` GH200-like
/// devices.
pub fn dalia_iteration_time(dims: &ModelDims, devices: usize, hw: &HardwareProfile) -> IterationCost {
    let bta = dims.bta_dims();
    let input = AllocationInput {
        n_feval: dims.n_feval(),
        model_bytes: bta.footprint_bytes(),
        device_bytes: hw.mem_capacity,
        nt: dims.nt,
    };
    let alloc = allocate(devices, &input);

    // One objective-function evaluation: assemble Qp and Qc, factorize both
    // (in parallel when S2 = 2), triangular-solve for the conditional mean.
    let lb = 1.6;
    let factor_time = d_bta_factor_time(&bta, alloc.s3, lb, hw);
    let solve_time = d_bta_solve_time(&bta, alloc.s3, lb, hw, 1);
    let nnz = (bta.n * bta.b * 10 + bta.a * bta.dim()) as f64;
    let assembly_time = (nnz * 8.0 * 4.0) / hw.mem_bw / alloc.s3 as f64 + hw.per_eval_overhead;
    let solver_per_eval = if alloc.s2 >= 2 {
        factor_time + solve_time
    } else {
        2.0 * factor_time + solve_time
    };
    let per_eval = solver_per_eval + assembly_time;

    // Evaluations are distributed over the S1 groups.
    let rounds = (dims.n_feval() as f64 / alloc.s1 as f64).ceil();
    let comm = message_time(hw, 8.0 * dims.dim_theta as f64) * (alloc.s1 as f64).log2().max(1.0)
        + 2.0 * hw.net_latency * (alloc.devices() as f64);
    let solver = rounds * solver_per_eval;
    let assembly = rounds * assembly_time;
    let total = rounds * per_eval + comm;
    IterationCost { total, solver, assembly, comm, allocation: alloc }
}

/// Modeled wall-clock time of one INLA_DIST BFGS iteration (sequential BTA
/// solver, S1 + S2 only, single-GPU solver).
pub fn inladist_iteration_time(dims: &ModelDims, devices: usize, hw: &HardwareProfile) -> IterationCost {
    let bta = dims.bta_dims();
    let factor_time = kernel_time(hw, bta_factor_flops(&bta), bta.footprint_bytes() / 3.0);
    let solve_time = kernel_time(hw, bta_solve_flops(&bta, 1), bta.footprint_bytes() / 3.0);
    let n_feval = dims.n_feval();
    let s1 = devices.min(n_feval).max(1);
    let s2 = if devices / s1 >= 2 { 2 } else { 1 };
    // INLA_DIST's solver is GPU-accelerated but has a larger per-call overhead
    // (sequential block pipeline, no batched assembly).
    let assembly_time = 3.0 * hw.per_eval_overhead;
    let solver_per_eval = if s2 >= 2 { factor_time + solve_time } else { 2.0 * factor_time + solve_time };
    let per_eval = 1.5 * solver_per_eval + assembly_time;
    let rounds = (n_feval as f64 / s1 as f64).ceil();
    let comm = message_time(hw, 8.0 * dims.dim_theta as f64) * (s1 as f64).log2().max(1.0);
    IterationCost {
        total: rounds * per_eval + comm,
        solver: rounds * 1.5 * solver_per_eval,
        assembly: rounds * assembly_time,
        comm,
        allocation: StrategyAllocation { s1, s2, s3: 1 },
    }
}

/// Modeled wall-clock time of one R-INLA BFGS iteration on the CPU baseline
/// (`s1_groups` nested OpenMP groups, PARDISO within each group).
pub fn rinla_iteration_time(dims: &ModelDims, s1_groups: usize, hw: &HardwareProfile) -> IterationCost {
    let bta = dims.bta_dims();
    let factor_time = kernel_time(hw, sparse_chol_flops(&bta), bta.footprint_bytes() / 3.0);
    let solve_time = kernel_time(hw, 4.0 * bta_solve_flops(&bta, 1), bta.footprint_bytes() / 6.0);
    let assembly_time = hw.per_eval_overhead;
    // R-INLA factorizes Qp and Qc sequentially within one evaluation.
    let per_eval = 2.0 * factor_time + solve_time + assembly_time;
    let rounds = (dims.n_feval() as f64 / s1_groups as f64).ceil();
    IterationCost {
        total: rounds * per_eval,
        solver: rounds * (2.0 * factor_time + solve_time),
        assembly: rounds * assembly_time,
        comm: 0.0,
        allocation: StrategyAllocation { s1: s1_groups, s2: 1, s3: 1 },
    }
}

/// Parallel efficiency of a strong-scaling series: `t1 / (p · tp)`.
pub fn parallel_efficiency(t1: f64, tp: f64, p: usize) -> f64 {
    t1 / (p as f64 * tp)
}

/// Weak-scaling parallel efficiency: `t1 / tp` (work per device constant).
pub fn weak_efficiency(t1: f64, tp: f64) -> f64 {
    t1 / tp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb1() -> ModelDims {
        // Paper dataset MB1: univariate, ns = 4002, nt = 250, nr = 6.
        ModelDims::univariate(4002, 250, 6)
    }

    fn sa1() -> ModelDims {
        // Paper dataset SA1: trivariate, ns = 1675, nt = 192, nr = 1.
        ModelDims::trivariate(1675, 192, 1)
    }

    #[test]
    fn flop_counts_scale_as_expected() {
        let d1 = BtaDims { n: 100, b: 50, a: 5 };
        let d2 = BtaDims { n: 200, b: 50, a: 5 };
        let d3 = BtaDims { n: 100, b: 100, a: 5 };
        // Linear in n.
        assert!((bta_factor_flops(&d2) / bta_factor_flops(&d1) - 2.0).abs() < 0.05);
        // Cubic in b.
        assert!(bta_factor_flops(&d3) / bta_factor_flops(&d1) > 6.0);
        // Selected inversion costs more than factorization.
        assert!(bta_selinv_flops(&d1) > bta_factor_flops(&d1));
        // Solve is much cheaper than factorization.
        assert!(bta_solve_flops(&d1, 1) < 0.1 * bta_factor_flops(&d1));
    }

    #[test]
    fn single_gpu_dalia_beats_rinla_by_about_an_order_of_magnitude() {
        // Fig. 4: on MB1, DALIA on 1 GPU is ~12.6x faster than R-INLA
        // (780 s vs ~62 s per iteration). The model should land in the right
        // ballpark (between 5x and 40x) and R-INLA should take minutes.
        let dalia = dalia_iteration_time(&mb1(), 1, &gh200());
        let rinla = rinla_iteration_time(&mb1(), 9, &xeon_fritz());
        let speedup = rinla.total / dalia.total;
        assert!(speedup > 5.0 && speedup < 40.0, "single-GPU speedup {speedup}");
        assert!(rinla.total > 100.0, "R-INLA per-iteration time {} too small", rinla.total);
    }

    #[test]
    fn dalia_strong_scaling_monotone_then_saturating() {
        let dims = sa1();
        let hw = gh200();
        let t1 = dalia_iteration_time(&dims, 1, &hw).total;
        let t31 = dalia_iteration_time(&dims, 31, &hw).total;
        let t124 = dalia_iteration_time(&dims, 124, &hw).total;
        let t496 = dalia_iteration_time(&dims, 496, &hw).total;
        assert!(t31 < t1);
        assert!(t124 <= t31 * 1.05);
        assert!(t496 <= t124 * 1.1);
        // Near-ideal scaling up to 31 devices (S1 saturation point for 15 hyperparameters).
        let eff31 = parallel_efficiency(t1, t31, 31);
        assert!(eff31 > 0.6, "efficiency at 31 devices {eff31}");
        // Far from ideal at 496 (paper reports 28.3%).
        let eff496 = parallel_efficiency(t1, t496, 496);
        assert!(eff496 < 0.6, "efficiency at 496 devices {eff496}");
        assert!(eff496 > 0.02);
    }

    #[test]
    fn three_orders_of_magnitude_over_rinla_at_scale() {
        // Fig. 7: at 496 GPUs, DALIA is ~3 orders of magnitude faster than R-INLA.
        let dims = sa1();
        let dalia = dalia_iteration_time(&dims, 496, &gh200());
        let rinla = rinla_iteration_time(&dims, 8, &xeon_fritz());
        let speedup = rinla.total / dalia.total;
        assert!(speedup > 200.0, "speedup at scale only {speedup}");
        assert!(speedup < 20000.0, "speedup at scale implausibly high {speedup}");
    }

    #[test]
    fn dalia_beats_inladist_with_s3() {
        // Fig. 4: at 18 GPUs DALIA is ~2x faster than INLA_DIST.
        let dims = mb1();
        let hw = gh200();
        let dalia = dalia_iteration_time(&dims, 18, &hw).total;
        let inladist = inladist_iteration_time(&dims, 18, &hw).total;
        assert!(inladist / dalia > 1.2, "DALIA/INLA_DIST ratio {}", inladist / dalia);
        assert!(inladist / dalia < 8.0);
    }

    #[test]
    fn memory_pressure_engages_s3() {
        // A model whose block-dense footprint exceeds one device must use S3.
        let dims = ModelDims::trivariate(4485, 48, 1);
        let cost = dalia_iteration_time(&dims, 64, &gh200());
        assert!(cost.allocation.s3 > 1, "allocation {:?}", cost.allocation);
    }

    #[test]
    fn distributed_solver_weak_scaling_efficiency_band() {
        // Fig. 5: weak scaling from 1 to 16 GPUs keeps the factorization and
        // selected inversion above ~40% parallel efficiency, and load
        // balancing (lb = 1.6) improves on the even split.
        let hw = gh200();
        let base = BtaDims { n: 128, b: 1675, a: 6 };
        let t1 = d_bta_factor_time(&base, 1, 1.0, &hw);
        for p in [2usize, 4, 8, 16] {
            let d = BtaDims { n: 128 * p, b: 1675, a: 6 };
            let tp_even = d_bta_factor_time(&d, p, 1.0, &hw);
            let tp_lb = d_bta_factor_time(&d, p, 1.6, &hw);
            let eff = weak_efficiency(t1, tp_lb);
            assert!(eff > 0.35 && eff <= 1.05, "weak efficiency at {p}: {eff}");
            assert!(tp_lb <= tp_even * 1.02, "load balancing should not hurt at {p}");
        }
    }

    #[test]
    fn triangular_solve_scales_worse_than_factorization() {
        // Fig. 5: PPOBTAS reaches only ~32% parallel efficiency at 16 GPUs
        // while factorization stays near ~59%.
        let hw = gh200();
        let base = BtaDims { n: 128, b: 1675, a: 6 };
        let t1f = d_bta_factor_time(&base, 1, 1.0, &hw);
        let t1s = d_bta_solve_time(&base, 1, 1.0, &hw, 1);
        let d16 = BtaDims { n: 128 * 16, b: 1675, a: 6 };
        let eff_f = weak_efficiency(t1f, d_bta_factor_time(&d16, 16, 1.6, &hw));
        let eff_s = weak_efficiency(t1s, d_bta_solve_time(&d16, 16, 1.6, &hw, 1));
        assert!(eff_s < eff_f, "solve efficiency {eff_s} should be below factor efficiency {eff_f}");
        // Solve remains about an order of magnitude faster in absolute terms.
        assert!(d_bta_solve_time(&d16, 16, 1.6, &hw, 1) < d_bta_factor_time(&d16, 16, 1.6, &hw));
    }

    #[test]
    fn model_dims_helpers() {
        let d = sa1();
        assert_eq!(d.n_feval(), 31);
        assert_eq!(d.latent_dim(), 3 * (1675 * 192 + 1));
        let b = d.bta_dims();
        assert_eq!(b.b, 3 * 1675);
        assert_eq!(b.a, 3);
        assert_eq!(b.dim(), d.latent_dim());
    }
}
